//! Deterministic rand 0.9 API subset (offline stub).
//!
//! Implements exactly what this workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::random_range`] over integer and
//! float ranges, [`Rng::random_bool`], and [`seq::SliceRandom::shuffle`].
//! The generator is SplitMix64 — deterministic and seed-stable, but its
//! streams differ from the real rand crate's ChaCha-based `StdRng`.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types constructible from a numeric seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of randomness (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

/// Maps 64 random bits to `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Ranges a uniform value can be drawn from (subset of
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_range!(i64, u64, u32, i32, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero state pathologies by pre-mixing the seed.
            let mut rng = StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            };
            rng.next_u64();
            rng
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3..10i64);
            assert!((3..10).contains(&v));
            let w = rng.random_range(0..=5usize);
            assert!(w <= 5);
            let f = rng.random_range(0.25..=0.75f64);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted); // astronomically unlikely to be identity
    }
}
