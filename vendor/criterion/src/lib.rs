//! Plain-text benchmarking harness with the criterion 0.5 API shape
//! (offline stub).
//!
//! Supports the subset this workspace's benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups with `sample_size`, `bench_function`,
//! `bench_with_input`, and `Bencher::iter`. Each benchmark reports the
//! median wall time per iteration as a `group/name ... time: <t>` line.
//! No statistics, plots, or saved baselines. A benchmark that registers no
//! samples (its closure never called [`Bencher::iter`]) panics instead of
//! printing a pass-shaped line, so CI smoke sweeps see the rot.
//!
//! Setting `PROVABS_BENCH_QUICK=1` (any value but `0`) mirrors real
//! criterion's `--quick` flag: the per-benchmark measurement budget drops
//! to 100 ms and samples to 2, so CI can smoke-run every bench without
//! burning minutes per data point. `sample_size`/`measurement_time` calls
//! made by a bench are clamped down too.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Whether quick mode is requested via `PROVABS_BENCH_QUICK`.
fn quick_mode() -> bool {
    std::env::var_os("PROVABS_BENCH_QUICK").is_some_and(|v| v != "0")
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    /// Target measurement budget per benchmark.
    measurement_time: Duration,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        if quick_mode() {
            Self {
                sample_size: 2,
                measurement_time: Duration::from_millis(100),
                quick: true,
            }
        } else {
            Self {
                sample_size: 10,
                measurement_time: Duration::from_secs(2),
                quick: false,
            }
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            quick: self.quick,
            _criterion: self,
        }
    }
}

/// A parameterized benchmark name, rendered as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    quick: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples (iteration batches) to take per benchmark. Quick
    /// mode clamps to 2.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = if self.quick { 2 } else { n.max(2) };
        self
    }

    /// Overrides the per-benchmark measurement budget. Quick mode clamps to
    /// its 100 ms ceiling.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = if self.quick {
            d.min(Duration::from_millis(100))
        } else {
            d
        };
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&full, self.sample_size, self.measurement_time, |b| f(b));
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    budget: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    let started = Instant::now();
    for _ in 0..sample_size {
        let mut b = Bencher {
            ns_per_iter: None,
            budget: budget / sample_size as u32,
        };
        f(&mut b);
        if let Some(ns) = b.ns_per_iter {
            samples.push(ns);
        }
        if started.elapsed() > budget {
            break;
        }
    }
    if samples.is_empty() {
        // A benchmark that never called `Bencher::iter` measured nothing.
        // CI's quick-mode smoke sweep exists to catch exactly this kind of
        // rot, so fail loudly instead of printing a pass-shaped line.
        panic!("{name}: benchmark produced no samples — the closure never called Bencher::iter");
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    println!("{name:<48} time:   {}", format_ns(median));
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Times closures for one sample.
#[derive(Debug)]
pub struct Bencher {
    ns_per_iter: Option<f64>,
    budget: Duration,
}

impl Bencher {
    /// Times `f`, running it enough times to fill this sample's budget
    /// (at least once).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up / calibration run.
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed();
        let iters = if first.is_zero() {
            64
        } else {
            (self.budget.as_nanos() / first.as_nanos().max(1)).clamp(1, 10_000) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.ns_per_iter = Some(total.as_nanos() as f64 / iters as f64);
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; `cargo test` may pass
            // `--test`-style filters. Run everything either way.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_a_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    #[should_panic(expected = "produced no samples")]
    fn sampleless_benchmark_fails_loudly() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        group.bench_function("rotted", |_b| {});
        group.finish();
    }

    #[test]
    fn benchmark_id_renders_function_slash_param() {
        assert_eq!(BenchmarkId::new("TPCH-Q3", 5).to_string(), "TPCH-Q3/5");
    }
}
