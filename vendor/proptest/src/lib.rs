//! Deterministic property-testing harness with the proptest 1.x API shape
//! (offline stub).
//!
//! Supports the subset this workspace's tests use: the [`proptest!`] macro
//! (with an optional `#![proptest_config(..)]` line), range / tuple /
//! `prop_map` / `prop::collection::vec` strategies, [`any`] for `bool`, and
//! the `prop_assert*` macros. Sampling is seeded and deterministic: case
//! `i` of every test sees the same inputs on every run. Failing inputs are
//! not shrunk — the assertion message carries the values instead.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Test-runner settings (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// The deterministic per-case random source.
#[derive(Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for case number `case` (stable across runs).
    pub fn for_case(case: u64) -> Self {
        let mut rng = Self {
            state: case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5151_7ead_5eed_0001,
        };
        rng.next_u64();
        rng
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A generator of values of one type (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Types with a canonical strategy (subset of `proptest::arbitrary`).
pub trait Arbitrary {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy of `T` (subset of `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// The [`any`] strategy for `bool`.
#[derive(Debug)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;

    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

/// Combinator namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (subset of `proptest::collection`).
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Lengths a [`vec()`] strategy may produce.
        pub trait IntoSizeRange {
            /// Draws a length.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty size range");
                self.start + (rng.next_u64() as usize) % (self.end - self.start)
            }
        }

        /// A strategy for vectors whose elements come from `element`.
        pub fn vec<S: Strategy>(
            element: S,
            size: impl IntoSizeRange,
        ) -> VecStrategy<S, impl IntoSizeRange> {
            VecStrategy { element, size }
        }

        /// The strategy returned by [`vec()`].
        #[derive(Debug)]
        pub struct VecStrategy<S, L> {
            element: S,
            size: L,
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.sample_len(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a property test needs in scope (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(x in strategy, ..) { body }`
/// becomes a `#[test]` running `body` against deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..u64::from(__config.cases) {
                let mut __rng = $crate::TestRng::for_case(__case);
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sampling_is_deterministic() {
        let strat = prop::collection::vec(0u32..=3, 6);
        let a = Strategy::sample(&strat, &mut crate::TestRng::for_case(5));
        let b = Strategy::sample(&strat, &mut crate::TestRng::for_case(5));
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert!(a.iter().all(|&x| x <= 3));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(x in 0u32..10, flip in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flip;
        }

        #[test]
        fn tuples_and_maps_compose(v in prop::collection::vec((0u32..6, 1u32..3), 0..4)) {
            prop_assert!(v.len() < 4);
            for (a, e) in v {
                prop_assert!(a < 6 && (1..3).contains(&e));
            }
        }
    }
}
