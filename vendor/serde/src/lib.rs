//! Minimal serde API surface (offline stub).
//!
//! Provides just enough of serde 1.x for this workspace to compile without
//! network access: the `Serialize`/`Deserialize` traits, the serializer and
//! deserializer traits the hand-written impls use, and re-exported no-op
//! derive macros. See `vendor/README.md` for the swap-in-real-serde story.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A serializable type (subset of `serde::Serialize`).
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A deserializable type (subset of `serde::Deserialize`).
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value with the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A data-format serializer (subset of `serde::Serializer`).
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: de::Error;

    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
}

/// A data-format deserializer (subset of `serde::Deserializer`).
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: de::Error;

    /// Hands the deserializer's next value to `visitor`, whatever its type.
    fn deserialize_any<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

/// Deserialization support traits (subset of `serde::de`).
pub mod de {
    use std::fmt;

    /// Errors a deserializer can produce.
    pub trait Error: Sized + fmt::Debug + fmt::Display {
        /// Builds an error from a message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// Drives deserialization of one value (subset of `serde::de::Visitor`).
    pub trait Visitor<'de>: Sized {
        /// The value being produced.
        type Value;

        /// Describes what this visitor expects, for error messages.
        fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

        /// Visits an `i64`.
        fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
            let _ = v;
            Err(E::custom("unexpected i64"))
        }

        /// Visits a `u64`.
        fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
            let _ = v;
            Err(E::custom("unexpected u64"))
        }

        /// Visits a string slice.
        fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
            let _ = v;
            Err(E::custom("unexpected str"))
        }
    }
}
