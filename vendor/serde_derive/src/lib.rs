//! No-op `Serialize`/`Deserialize` derive macros (offline stub).
//!
//! The derives expand to nothing: annotated types compile, but gain no
//! serialization impls until the real serde is swapped in (see
//! `vendor/README.md`).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
