//! The Table 4 matrix: privacy computation across provenance semirings and
//! query classes.

use provabs::core::privacy::{compute_privacy, PrivacyCache, PrivacyConfig, QueryClass};
use provabs::core::{fixtures, Abstraction, Bound};
use provabs::semiring::SemiringKind;

fn exabs1_privacy(semiring: SemiringKind, query_class: QueryClass) -> Option<usize> {
    let fx = fixtures::running_example();
    let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
    let mut abs = Abstraction::identity(&bound);
    for name in ["h1", "h2"] {
        let id = fx.db.annotations().get(name).unwrap();
        for r in 0..bound.num_rows() {
            for (i, &a) in bound.row_occurrences(r).iter().enumerate() {
                if a == id {
                    abs.lifts[r][i] = 1;
                }
            }
        }
    }
    let cache = PrivacyCache::new();
    compute_privacy(
        &bound,
        &abs.apply(&bound).rows,
        &PrivacyConfig {
            threshold: 1,
            semiring,
            query_class,
            ..Default::default()
        },
        &cache,
    )
    .privacy
}

#[test]
fn gray_cell_nx_and_bx_agree() {
    // B[X] only drops coefficients — Algorithm 1 is unchanged (§4 gray cell).
    let nx = exabs1_privacy(SemiringKind::NX, QueryClass::Cq);
    let bx = exabs1_privacy(SemiringKind::BX, QueryClass::Cq);
    assert_eq!(nx, Some(2));
    assert_eq!(bx, Some(2));
}

#[test]
fn red_cell_exponent_dropping_semirings_work() {
    // Why/Trio/PosBool drop exponents; the running example has no
    // exponents > 1, so privacy should not collapse (expansion may add
    // candidates but the CIM count stays >= 1 with Qreal present).
    for kind in [SemiringKind::Why, SemiringKind::Trio, SemiringKind::PosBool] {
        let p = exabs1_privacy(kind, QueryClass::Cq);
        assert!(p.is_some(), "{kind} returned no privacy");
        assert!(p.unwrap() >= 1, "{kind} lost the original query");
    }
}

#[test]
fn orange_cell_ucq_privacy_counts_at_least_cq_privacy() {
    let cq = exabs1_privacy(SemiringKind::NX, QueryClass::Cq).unwrap();
    let ucq = exabs1_privacy(SemiringKind::NX, QueryClass::Ucq).unwrap();
    assert!(
        ucq >= cq,
        "every CIM CQ is a single-disjunct CIM UCQ candidate: {ucq} < {cq}"
    );
}

#[test]
fn lin_semiring_has_no_reverse_engineering() {
    assert!(!SemiringKind::Lin.supports_reverse_engineering());
}

#[test]
fn coarsening_respects_hierarchy_on_real_provenance() {
    // Evaluate Qreal and check that coarsenings only merge information.
    let fx = fixtures::running_example();
    let out = provabs::relational::eval_cq(&fx.db, &fx.qreal);
    for (_, poly) in out.iter() {
        let bx = poly.coarsen(SemiringKind::BX);
        let why = poly.coarsen(SemiringKind::Why);
        let lin = poly.coarsen(SemiringKind::Lin);
        assert!(bx.num_monomials() <= poly.num_monomials());
        assert!(why.num_monomials() <= bx.num_monomials());
        assert_eq!(lin.num_monomials(), 1);
        // Variables never grow under coarsening.
        assert_eq!(lin.variables(), poly.variables());
    }
}
