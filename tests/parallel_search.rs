//! The parallel search engine's determinism contract, end to end: for the
//! running example and a TPC-H workload query, `parallelism: None` (all
//! cores), `Some(1)` (the sequential trace) and explicit pool sizes must
//! return the same optimum — same abstraction, same LOI, same privacy.

use provabs::core::privacy::{PrivacyCache, PrivacyConfig};
use provabs::core::search::{
    find_optimal_abstraction, find_optimal_abstraction_with_cache, SearchConfig,
};
use provabs::core::{fixtures, Bound};
use provabs_bench::{tpch_scenarios, ScenarioSettings};

fn cfg(parallelism: Option<usize>, threshold: usize) -> SearchConfig {
    SearchConfig {
        privacy: PrivacyConfig {
            threshold,
            max_concretizations: 20_000,
            ..Default::default()
        },
        parallelism,
        ..Default::default()
    }
}

#[test]
fn running_example_same_best_across_thread_counts() {
    let fx = fixtures::running_example();
    let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
    let seq = find_optimal_abstraction(&bound, &cfg(Some(1), 2))
        .best
        .expect("sequential optimum");
    assert!((seq.loi - 15f64.ln()).abs() < 1e-9); // Example 3.15: ln 15
    for parallelism in [None, Some(2), Some(4)] {
        let par = find_optimal_abstraction(&bound, &cfg(parallelism, 2))
            .best
            .expect("parallel optimum");
        assert_eq!(par.abstraction, seq.abstraction, "{parallelism:?}");
        assert_eq!(par.privacy, seq.privacy);
        assert_eq!(par.edges_used, seq.edges_used);
        assert!((par.loi - seq.loi).abs() < 1e-12);
    }
}

#[test]
fn tpch_workload_same_best_across_thread_counts() {
    // A laptop-scale Figure 16 instance; small enough for CI, large enough
    // that buckets hold many candidates and the pool actually interleaves.
    let settings = ScenarioSettings {
        tree_leaves: 120,
        tpch_lineitems: 400,
        ..Default::default()
    };
    let scenarios = tpch_scenarios(&settings);
    let s = scenarios
        .iter()
        .find(|s| s.name == "TPCH-Q3")
        .expect("TPCH-Q3 scenario");
    let bound = Bound::new(&s.db, &s.tree, &s.example).unwrap();
    // Shared caches must not perturb results either: reuse one per mode.
    let seq_cache = PrivacyCache::new();
    let seq = find_optimal_abstraction_with_cache(&bound, &cfg(Some(1), 3), &seq_cache);
    for parallelism in [None, Some(4)] {
        let par_cache = PrivacyCache::new();
        let par = find_optimal_abstraction_with_cache(&bound, &cfg(parallelism, 3), &par_cache);
        match (&seq.best, &par.best) {
            (Some(a), Some(b)) => {
                assert_eq!(a.abstraction, b.abstraction, "{parallelism:?}");
                assert_eq!(a.privacy, b.privacy);
                assert!((a.loi - b.loi).abs() < 1e-12);
            }
            (None, None) => {}
            (a, b) => panic!(
                "found-mismatch: seq={:?} par={:?}",
                a.is_some(),
                b.is_some()
            ),
        }
    }
}
