//! The parallel search engine's determinism contract, end to end: for the
//! running example and a TPC-H workload query, `parallelism: None` (all
//! cores), `Some(1)` (the sequential trace) and explicit pool sizes must
//! return the same optimum — same abstraction, same LOI, same privacy.
//! The cost-based query planner joins the contract: plans and engine work
//! counters are pure functions of database content + query, so they may
//! not move with the thread count either.

use provabs::core::privacy::{PrivacyCache, PrivacyConfig};
use provabs::core::search::{
    find_optimal_abstraction, find_optimal_abstraction_with_cache, SearchConfig,
};
use provabs::core::{fixtures, Bound};
use provabs::relational::{eval_cqs_parallel, plan_cq, Evaluator, PlanMode};
use provabs_bench::{tpch_scenarios, ScenarioSettings};
use provabs_datagen::tpch::{self, TpchConfig};

fn cfg(parallelism: Option<usize>, threshold: usize) -> SearchConfig {
    SearchConfig {
        privacy: PrivacyConfig {
            threshold,
            max_concretizations: 20_000,
            ..Default::default()
        },
        parallelism,
        ..Default::default()
    }
}

#[test]
fn running_example_same_best_across_thread_counts() {
    let fx = fixtures::running_example();
    let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
    let seq = find_optimal_abstraction(&bound, &cfg(Some(1), 2))
        .best
        .expect("sequential optimum");
    assert!((seq.loi - 15f64.ln()).abs() < 1e-9); // Example 3.15: ln 15
    for parallelism in [None, Some(2), Some(4)] {
        let par = find_optimal_abstraction(&bound, &cfg(parallelism, 2))
            .best
            .expect("parallel optimum");
        assert_eq!(par.abstraction, seq.abstraction, "{parallelism:?}");
        assert_eq!(par.privacy, seq.privacy);
        assert_eq!(par.edges_used, seq.edges_used);
        assert!((par.loi - seq.loi).abs() < 1e-12);
    }
}

#[test]
fn query_plans_and_work_counters_identical_across_parallelism() {
    // The TPC-H fixture of the parallel-determinism suite. `plan_cq` and
    // the engine take no thread count, so the parallelism-sensitive claim
    // is this: evaluating the whole workload through the shared-`&Database`
    // parallel batch evaluator at 1, 2 or 8 workers (a) returns the same
    // outputs in the same slots, and (b) leaves the database — and
    // therefore the statistics every plan reads — untouched, so replanning
    // and recounting *after* each parallel run still reproduces the
    // reference `QueryPlan`s and `EvalWork`/`PlanWork` counters bit for
    // bit, in every mode.
    let (mut db, _) = tpch::generate(&TpchConfig {
        lineitem_rows: 400,
        seed: 42,
    });
    db.build_indexes();
    let workloads = tpch::tpch_queries(db.schema());
    let queries: Vec<_> = workloads.iter().map(|w| w.query.clone()).collect();
    let modes = [
        PlanMode::CostBased,
        PlanMode::Greedy,
        PlanMode::WrittenOrder,
    ];
    // Reference plans and counters, computed once before any parallel run.
    let plans: Vec<Vec<_>> = modes
        .iter()
        .map(|&mode| {
            queries
                .iter()
                .map(|q| plan_cq(&db, q, mode, None))
                .collect()
        })
        .collect();
    let reference: Vec<_> = queries
        .iter()
        .map(|q| Evaluator::new(&db).eval_cq(q))
        .collect();
    for parallelism in [1usize, 2, 8] {
        let batch = eval_cqs_parallel(&db, &queries, parallelism);
        for (i, w) in workloads.iter().enumerate() {
            assert_eq!(
                batch[i], reference[i].0,
                "{}: output moved at parallelism {parallelism}",
                w.name
            );
            let (out, work) = Evaluator::new(&db).eval_cq(&w.query);
            assert_eq!(out, reference[i].0, "{}: post-batch output", w.name);
            assert_eq!(
                work, reference[i].1,
                "{}: EvalWork/PlanWork moved after a {parallelism}-worker batch",
                w.name
            );
            for (&mode, mode_plans) in modes.iter().zip(&plans) {
                assert_eq!(
                    plan_cq(&db, &w.query, mode, None),
                    mode_plans[i],
                    "{}: plan moved after a {parallelism}-worker batch ({mode:?})",
                    w.name
                );
            }
        }
    }
}

#[test]
fn tpch_workload_same_best_across_thread_counts() {
    // A laptop-scale Figure 16 instance; small enough for CI, large enough
    // that buckets hold many candidates and the pool actually interleaves.
    let settings = ScenarioSettings {
        tree_leaves: 120,
        tpch_lineitems: 400,
        ..Default::default()
    };
    let scenarios = tpch_scenarios(&settings);
    let s = scenarios
        .iter()
        .find(|s| s.name == "TPCH-Q3")
        .expect("TPCH-Q3 scenario");
    let bound = Bound::new(&s.db, &s.tree, &s.example).unwrap();
    // Shared caches must not perturb results either: reuse one per mode.
    let seq_cache = PrivacyCache::new();
    let seq = find_optimal_abstraction_with_cache(&bound, &cfg(Some(1), 3), &seq_cache);
    for parallelism in [None, Some(4)] {
        let par_cache = PrivacyCache::new();
        let par = find_optimal_abstraction_with_cache(&bound, &cfg(parallelism, 3), &par_cache);
        match (&seq.best, &par.best) {
            (Some(a), Some(b)) => {
                assert_eq!(a.abstraction, b.abstraction, "{parallelism:?}");
                assert_eq!(a.privacy, b.privacy);
                assert!((a.loi - b.loi).abs() < 1e-12);
            }
            (None, None) => {}
            (a, b) => panic!(
                "found-mismatch: seq={:?} par={:?}",
                a.is_some(),
                b.is_some()
            ),
        }
    }
}
