//! Failure injection and cross-validation: errors surface instead of
//! corrupting results, and the reverse-engineered queries are validated by
//! re-evaluation.

use provabs::core::{Bound, CoreError};
use provabs::datagen::kexample_for;
use provabs::datagen::tpch::{self, TpchConfig};
use provabs::relational::{eval_cq, KExample, Tuple};
use provabs::reveng::{find_consistent_queries, RevOptions};
use provabs::semiring::Monomial;
use provabs::tree::TreeBuilder;

#[test]
fn incompatible_tree_is_rejected() {
    // Tag a tuple with a label that is an inner node of the tree.
    let mut db = provabs::relational::Database::new();
    let r = db.add_relation("R", &["a"]);
    let t1 = db.insert_str(r, "t1", &["1"]);
    let inner = db.insert_str(r, "inner", &["2"]); // 'inner' tags a tuple...
    let root = db.intern_label("root");
    let mut b = TreeBuilder::new(root);
    b.add_child(root, inner); // ...but is used as an inner node
    b.add_child(inner, t1);
    let tree = b.build();
    db.build_indexes();
    let ex = KExample::new([(Tuple::parse(&["1"]), Monomial::from_annots([t1]))]);
    assert_eq!(
        Bound::new(&db, &tree, &ex).unwrap_err(),
        CoreError::IncompatibleTree
    );
}

#[test]
fn foreign_annotations_are_rejected() {
    let (mut db, rels) = tpch::generate(&TpchConfig {
        lineitem_rows: 100,
        seed: 1,
    });
    let ghost = db.intern_label("ghost");
    let ex = KExample::new([(Tuple::parse(&["1"]), Monomial::from_annots([ghost]))]);
    let tree = tpch::tpch_tree(&mut db, &rels, 50, 3, 1, false);
    assert!(matches!(
        Bound::new(&db, &tree, &ex).unwrap_err(),
        CoreError::UnresolvedAnnotation(_)
    ));
}

#[test]
fn frontier_queries_verified_by_reevaluation() {
    // Every reverse-engineered query, evaluated on the database, must derive
    // each K-example row's exact monomial (Def. 3.9 consistency).
    let (db, _) = tpch::generate(&TpchConfig {
        lineitem_rows: 500,
        seed: 5,
    });
    for w in tpch::tpch_queries(db.schema()) {
        if w.query.body.len() > 4 {
            continue; // keep evaluation cheap: Q3, Q4, Q10
        }
        let Some(ex) = kexample_for(&db, &w.query, 2) else {
            continue;
        };
        let rows = ex.resolve(&db).unwrap();
        for q in find_consistent_queries(&rows, &RevOptions::default()) {
            let out = eval_cq(&db, &q);
            for row in &ex.rows {
                assert!(
                    out.provenance(&row.output).coefficient(&row.monomial) >= 1,
                    "{}: frontier query {} fails to derive {} with its monomial",
                    w.name,
                    q.display(db.schema()),
                    row.output,
                );
            }
        }
    }
}

#[test]
fn empty_and_degenerate_examples() {
    let fx = provabs::core::fixtures::running_example();
    // Empty example.
    let empty = KExample::default();
    assert_eq!(
        Bound::new(&fx.db, &fx.tree, &empty).unwrap_err(),
        CoreError::EmptyExample
    );
    // Empty occurrence list in reveng.
    assert!(find_consistent_queries(&[], &RevOptions::default()).is_empty());
}

#[test]
fn alignment_cap_degrades_gracefully() {
    // With a 1-alignment cap the frontier is truncated but never wrong:
    // returned queries are still consistent.
    let fx = provabs::core::fixtures::running_example();
    let rows = fx.exreal.resolve(&fx.db).unwrap();
    let opts = RevOptions {
        max_alignments: 1,
        ..Default::default()
    };
    for q in find_consistent_queries(&rows, &opts) {
        let out = eval_cq(&fx.db, &q);
        for row in &fx.exreal.rows {
            assert!(out.provenance(&row.output).coefficient(&row.monomial) >= 1);
        }
    }
}
