//! The dual problem (§4) and the compression baseline of [24].

use provabs::core::compression::{compress_to_symbols, compression_baseline};
use provabs::core::dual::{find_max_privacy_abstraction, DualConfig};
use provabs::core::loi::{loss_of_information, LoiDistribution};
use provabs::core::privacy::PrivacyConfig;
use provabs::core::search::{find_optimal_abstraction, SearchConfig};
use provabs::core::{fixtures, Bound};

#[test]
fn dual_and_primal_are_consistent() {
    // If the primal finds (privacy p*, loi l*) at threshold k, the dual with
    // budget l* must achieve privacy >= k.
    let fx = fixtures::running_example();
    let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
    for k in [1usize, 2] {
        let primal = find_optimal_abstraction(
            &bound,
            &SearchConfig {
                privacy: PrivacyConfig {
                    threshold: k,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .best
        .unwrap();
        let dual = find_max_privacy_abstraction(
            &bound,
            &DualConfig {
                l_max: primal.loi + 1e-9,
                ..Default::default()
            },
        )
        .best
        .unwrap();
        assert!(
            dual.privacy >= k,
            "dual(budget={:.3}) reached only privacy {}",
            primal.loi,
            dual.privacy
        );
        assert!(dual.loi <= primal.loi + 1e-9);
    }
}

#[test]
fn compression_never_beats_the_optimum() {
    let fx = fixtures::running_example();
    let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
    for k in [1usize, 2, 3] {
        let cfg = PrivacyConfig {
            threshold: k,
            ..Default::default()
        };
        let ours = find_optimal_abstraction(
            &bound,
            &SearchConfig {
                privacy: cfg.clone(),
                ..Default::default()
            },
        )
        .best;
        let comp = compression_baseline(&bound, &cfg, &LoiDistribution::Uniform).best;
        match (ours, comp) {
            (Some(o), Some(c)) => {
                assert!(
                    c.loi >= o.loi - 1e-9,
                    "k={k}: compression {} < optimum {}",
                    c.loi,
                    o.loi
                )
            }
            (None, Some(c)) => {
                panic!("k={k}: compression found {c:?} but the optimum search did not")
            }
            _ => {}
        }
    }
}

#[test]
fn compression_targets_monotone_in_loi() {
    let fx = fixtures::running_example();
    let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
    let mut last = -1.0;
    for target in (1..=6).rev() {
        let abs = compress_to_symbols(&bound, target);
        let loi = loss_of_information(&bound, &abs, &LoiDistribution::Uniform);
        assert!(loi + 1e-9 >= last, "target {target}: LOI {loi} < {last}");
        last = loi;
    }
}
