//! §3.4: aggregate provenance and its abstraction.

use provabs::core::fixtures;
use provabs::relational::Tuple;
use provabs::reveng::ucq::find_consistent_agg_queries;
use provabs::reveng::RevOptions;
use provabs::semiring::{AggOp, AggValue, Monomial};

#[test]
fn max_age_running_example() {
    // The §3.4 example: MAX(age) over dancers who like music.
    let fx = fixtures::running_example();
    let reg = fx.db.annotations();
    let a = |n: &str| reg.get(n).unwrap();
    let mut agg = AggValue::new(AggOp::Max);
    agg.push(Monomial::from_annots([a("p1"), a("h1"), a("i1")]), 27);
    agg.push(Monomial::from_annots([a("p2"), a("h2"), a("i2")]), 31);
    assert_eq!(agg.evaluate(), 31);
    assert_eq!(agg.to_string_with(reg), "(i1*h1*p1)⊗27 +MAX (i2*h2*p2)⊗31");
    // Deleting Brenda's tuples drops the MAX to 27.
    let brenda: Vec<_> = ["p2", "h2", "i2"].iter().map(|n| a(n)).collect();
    assert_eq!(
        agg.evaluate_after_deletion(&|x| brenda.contains(&x)),
        Some(27)
    );
}

#[test]
fn abstraction_acts_on_annotation_part_only() {
    let fx = fixtures::running_example();
    let reg = fx.db.annotations();
    let a = |n: &str| reg.get(n).unwrap();
    let mut agg = AggValue::new(AggOp::Sum);
    agg.push(Monomial::from_annots([a("h1")]), 5);
    agg.push(Monomial::from_annots([a("h2")]), 7);
    let fb = a("Facebook_src");
    let mapped = agg.map_monomials(|m| {
        Monomial::from_annots(
            m.occurrences()
                .into_iter()
                .map(|x| if x == a("h1") { fb } else { x }),
        )
    });
    assert_eq!(mapped.evaluate(), 12); // values untouched
    assert!(mapped.terms[0].monomial.contains(fb));
    assert!(mapped.terms[1].monomial.contains(a("h2")));
}

#[test]
fn reverse_engineering_aggregate_heads() {
    // Consistent aggregate queries for a grouped MAX over the Person table.
    let fx = fixtures::running_example();
    let reg = fx.db.annotations();
    let a = |n: &str| reg.get(n).unwrap();
    let mut agg = AggValue::new(AggOp::Max);
    agg.push(Monomial::from_annots([a("p1")]), 27);
    agg.push(Monomial::from_annots([a("p2")]), 31);
    let groups = vec![(Tuple::new([]), agg)];
    let found = find_consistent_agg_queries(
        &groups,
        |output, monomial| {
            provabs::relational::ConcreteRow::resolve(&fx.db, output, &monomial.occurrences())
        },
        &RevOptions::default(),
    );
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].op, AggOp::Max);
    // The head exposes the aggregated age column as a variable.
    assert!(found[0].cq.head[0].as_var().is_some());
    assert_eq!(found[0].cq.body.len(), 1);
}

#[test]
fn count_and_min_monoids() {
    let mut count = AggValue::new(AggOp::Count);
    count.push(Monomial::one(), 1);
    count.push(Monomial::one(), 1);
    assert_eq!(count.evaluate(), 2);
    let mut min = AggValue::new(AggOp::Min);
    min.push(Monomial::one(), 9);
    min.push(Monomial::one(), 4);
    assert_eq!(min.evaluate(), 4);
}
