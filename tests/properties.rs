//! Cross-crate property-based tests on the core invariants.

use proptest::prelude::*;
use provabs::core::loi::{loss_of_information, LoiDistribution};
use provabs::core::privacy::{compute_privacy, PrivacyCache, PrivacyConfig};
use provabs::core::{concretize, fixtures, Abstraction, Bound};
use provabs::reveng::{
    canonical_key, cim_queries, find_consistent_queries, ContainmentMode, RevOptions,
};

/// Strategy: a random abstraction of the running example (lift per
/// occurrence bounded by its chain depth, max 3 here).
fn arb_lifts() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..=3, 6)
}

fn clamp_to_bound(bound: &Bound<'_>, lifts: &[u32]) -> Abstraction {
    let mut abs = Abstraction::identity(bound);
    let mut idx = 0;
    for r in 0..bound.num_rows() {
        for i in 0..bound.row_occurrences(r).len() {
            abs.lifts[r][i] = lifts[idx].min(bound.max_lift(r, i));
            idx += 1;
        }
    }
    abs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Uniform LOI equals ln of the concretization count (Def. 3.6 +
    /// Prop. 3.5).
    #[test]
    fn loi_is_log_of_concretization_count(lifts in arb_lifts()) {
        let fx = fixtures::running_example();
        let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = clamp_to_bound(&bound, &lifts);
        let rows = abs.apply(&bound).rows;
        let count = concretize::concretization_count(&bound, &rows) as f64;
        let loi = loss_of_information(&bound, &abs, &LoiDistribution::Uniform);
        prop_assert!((loi - count.ln()).abs() < 1e-9);
    }

    /// The abstraction's edge count and LOI are consistent: zero edges ⇔
    /// zero LOI.
    #[test]
    fn edges_zero_iff_loi_zero(lifts in arb_lifts()) {
        let fx = fixtures::running_example();
        let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = clamp_to_bound(&bound, &lifts);
        let loi = loss_of_information(&bound, &abs, &LoiDistribution::Uniform);
        if abs.edges_used() == 0 {
            prop_assert_eq!(loi, 0.0);
        } else {
            prop_assert!(loi > 0.0);
        }
    }

    /// Privacy never decreases under pointwise-larger abstractions when the
    /// original concretization survives: the concretization set only grows,
    /// so the CIM count cannot drop below what the smaller set certified...
    /// (not true in general for CIM due to minimality; what *is* invariant:
    /// the original query stays consistent). We check the weaker, always
    /// sound invariant: the original query is among the consistent queries
    /// of the *identity* concretization for any abstraction.
    #[test]
    fn original_query_always_consistent(lifts in arb_lifts()) {
        let fx = fixtures::running_example();
        let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let _abs = clamp_to_bound(&bound, &lifts);
        // The identity concretization (original rows) is in every
        // concretization set; Qreal is consistent w.r.t. it.
        let rows = fx.exreal.resolve(&fx.db).unwrap();
        let frontier = find_consistent_queries(&rows, &RevOptions::default());
        let keys: Vec<String> = frontier.iter().map(canonical_key).collect();
        prop_assert!(keys.contains(&canonical_key(&fx.qreal)));
    }

    /// CIM extraction is idempotent and anti-chain: no CIM query strictly
    /// contains another.
    #[test]
    fn cim_is_an_antichain(lifts in arb_lifts()) {
        let fx = fixtures::running_example();
        let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = clamp_to_bound(&bound, &lifts);
        let rows = abs.apply(&bound).rows;
        let cache = PrivacyCache::new();
        let out = compute_privacy(
            &bound,
            &rows,
            &PrivacyConfig { threshold: 1, max_concretizations: 3000, ..Default::default() },
            &cache,
        );
        let cim = out.cim;
        for q1 in &cim {
            for q2 in &cim {
                if canonical_key(q1) != canonical_key(q2) {
                    prop_assert!(
                        !provabs::reveng::strictly_contained(q1, q2, ContainmentMode::Bijective),
                        "CIM set is not an antichain"
                    );
                }
            }
        }
        // Idempotence.
        let again = cim_queries(&cim, ContainmentMode::Bijective);
        prop_assert_eq!(again.len(), cim.len());
    }

    /// Ablation flags never change the privacy value (only the speed).
    #[test]
    fn ablation_flags_preserve_privacy(lifts in arb_lifts(), row_by_row in any::<bool>(), conn in any::<bool>(), caching in any::<bool>()) {
        let fx = fixtures::running_example();
        let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = clamp_to_bound(&bound, &lifts);
        let rows = abs.apply(&bound).rows;
        let c1 = PrivacyCache::new();
        let c2 = PrivacyCache::new();
        let reference = compute_privacy(
            &bound,
            &rows,
            &PrivacyConfig { threshold: 1, max_concretizations: 100_000, ..Default::default() },
            &c1,
        );
        let variant = compute_privacy(
            &bound,
            &rows,
            &PrivacyConfig {
                threshold: 1,
                row_by_row,
                connectivity_filter: conn,
                caching,
                max_concretizations: 100_000,
                ..Default::default()
            },
            &c2,
        );
        prop_assert_eq!(reference.privacy, variant.privacy);
    }
}
