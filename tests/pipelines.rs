//! Cross-crate integration: the full pipeline (generate → query → K-example
//! → tree → search) on both synthetic datasets.

use provabs::core::privacy::PrivacyConfig;
use provabs::core::search::{find_optimal_abstraction, SearchConfig};
use provabs::core::Bound;
use provabs::datagen::imdb::{self, ImdbConfig};
use provabs::datagen::tpch::{self, TpchConfig};
use provabs::datagen::{join_variants, kexample_for};
use provabs::relational::eval_cq_limited;
use provabs::relational::EvalLimits;

#[test]
fn tpch_q3_pipeline_reaches_privacy_5() {
    let (db_proto, rels) = tpch::generate(&TpchConfig {
        lineitem_rows: 2_000,
        seed: 42,
    });
    let q3 = tpch::tpch_queries(db_proto.schema())
        .into_iter()
        .find(|w| w.name == "TPCH-Q3")
        .unwrap();
    let mut db = db_proto;
    let example = kexample_for(&db, &q3.query, 2).expect("K-example");
    let tree = tpch::tpch_tree_covering(&mut db, &rels, &example, 800, 5, 42, false);
    assert!(tree.compatible_with(&db));
    let bound = Bound::new(&db, &tree, &example).unwrap();
    let out = find_optimal_abstraction(
        &bound,
        &SearchConfig {
            privacy: PrivacyConfig {
                threshold: 5,
                ..Default::default()
            },
            time_budget_ms: Some(30_000),
            ..Default::default()
        },
    );
    let best = out.best.expect("TPCH-Q3 must reach privacy 5");
    assert!(best.privacy >= 5);
    assert!(best.loi > 0.0);
    assert!(best.abstraction.validate(&bound));
}

#[test]
fn tpch_higher_thresholds_cost_at_least_as_much_loi() {
    let (db_proto, rels) = tpch::generate(&TpchConfig {
        lineitem_rows: 2_000,
        seed: 42,
    });
    let q10 = tpch::tpch_queries(db_proto.schema())
        .into_iter()
        .find(|w| w.name == "TPCH-Q10")
        .unwrap();
    let mut db = db_proto;
    let example = kexample_for(&db, &q10.query, 2).unwrap();
    let tree = tpch::tpch_tree_covering(&mut db, &rels, &example, 800, 5, 42, false);
    let bound = Bound::new(&db, &tree, &example).unwrap();
    let mut last_loi = -1.0f64;
    for k in [2usize, 5, 8] {
        let out = find_optimal_abstraction(
            &bound,
            &SearchConfig {
                privacy: PrivacyConfig {
                    threshold: k,
                    ..Default::default()
                },
                time_budget_ms: Some(30_000),
                ..Default::default()
            },
        );
        let best = out
            .best
            .unwrap_or_else(|| panic!("no abstraction at k={k}"));
        assert!(
            best.loi >= last_loi - 1e-9,
            "LOI dropped between thresholds: {} < {}",
            best.loi,
            last_loi
        );
        last_loi = best.loi;
    }
}

#[test]
fn imdb_q1_pipeline_reaches_privacy_2() {
    let (db_proto, rels) = imdb::generate(&ImdbConfig::default());
    let q1 = imdb::imdb_queries(db_proto.schema())
        .into_iter()
        .find(|w| w.name == "IMDB-Q1")
        .unwrap();
    let mut db = db_proto;
    let example = kexample_for(&db, &q1.query, 2).expect("K-example");
    let tree = imdb::imdb_tree(&mut db, &rels);
    let bound = Bound::new(&db, &tree, &example).unwrap();
    let out = find_optimal_abstraction(
        &bound,
        &SearchConfig {
            privacy: PrivacyConfig {
                threshold: 2,
                ..Default::default()
            },
            time_budget_ms: Some(60_000),
            ..Default::default()
        },
    );
    let best = out.best.expect("IMDB-Q1 must reach privacy 2");
    assert!(best.privacy >= 2);
}

#[test]
fn join_variants_evaluate_and_bind() {
    let (db_proto, rels) = tpch::generate(&TpchConfig {
        lineitem_rows: 1_000,
        seed: 7,
    });
    let q7 = tpch::tpch_queries(db_proto.schema())
        .into_iter()
        .find(|w| w.name == "TPCH-Q7")
        .unwrap();
    for variant in join_variants(&q7.query, 4) {
        let mut db = db_proto.clone();
        let out = eval_cq_limited(
            &db,
            &variant,
            EvalLimits {
                max_outputs: 2,
                max_derivations: 500_000,
            },
        );
        assert!(
            out.len() >= 2,
            "{}-atom variant yields no rows",
            variant.body.len()
        );
        let example = kexample_for(&db, &variant, 2).unwrap();
        let tree = tpch::tpch_tree_covering(&mut db, &rels, &example, 400, 5, 7, false);
        assert!(Bound::new(&db, &tree, &example).is_ok());
    }
}

#[test]
fn shuffled_tree_still_supports_search() {
    // The paper's random-subcategory tree: abstraction substitutes become
    // scarcer, but the pipeline stays sound.
    let (db_proto, rels) = tpch::generate(&TpchConfig {
        lineitem_rows: 1_000,
        seed: 3,
    });
    let q4 = tpch::tpch_queries(db_proto.schema())
        .into_iter()
        .find(|w| w.name == "TPCH-Q4")
        .unwrap();
    let mut db = db_proto;
    let example = kexample_for(&db, &q4.query, 2).unwrap();
    let tree = tpch::tpch_tree_covering(&mut db, &rels, &example, 400, 5, 3, true);
    let bound = Bound::new(&db, &tree, &example).unwrap();
    let out = find_optimal_abstraction(
        &bound,
        &SearchConfig {
            privacy: PrivacyConfig {
                threshold: 2,
                ..Default::default()
            },
            time_budget_ms: Some(20_000),
            ..Default::default()
        },
    );
    // Either found (valid metrics) or truncated — never a silent failure.
    match out.best {
        Some(best) => assert!(best.privacy >= 2),
        None => assert!(out.stats.truncated || out.stats.abstractions_enumerated > 0),
    }
}
