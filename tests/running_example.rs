//! End-to-end reproduction of the paper's running example (§1–§4):
//! Figures 1–6, Tables 1 and 3, Examples 3.13, 3.15, 4.2 and 4.3.

use provabs::core::privacy::{compute_privacy, PrivacyCache, PrivacyConfig};
use provabs::core::search::{find_optimal_abstraction, SearchConfig};
use provabs::core::{concretize, fixtures, Abstraction, Bound};
use provabs::relational::{eval_cq, Tuple};
use provabs::reveng::{canonical_key, contained_in, ContainmentMode};

fn lift(bound: &Bound<'_>, abs: &mut Abstraction, name: &str, levels: u32) {
    let id = bound.db.annotations().get(name).unwrap();
    for r in 0..bound.num_rows() {
        for (i, &a) in bound.row_occurrences(r).iter().enumerate() {
            if a == id {
                abs.lifts[r][i] = levels;
            }
        }
    }
}

#[test]
fn figure_2a_exreal_from_qreal() {
    let fx = fixtures::running_example();
    let out = eval_cq(&fx.db, &fx.qreal);
    assert_eq!(out.len(), 2);
    // Outputs are the person ids 1 (James) and 2 (Brenda).
    assert!(!out.provenance(&Tuple::parse(&["1"])).is_zero());
    assert!(!out.provenance(&Tuple::parse(&["2"])).is_zero());
    assert_eq!(fx.exreal.len(), 2);
}

#[test]
fn figure_2bc_false_queries_yield_their_examples() {
    let fx = fixtures::running_example();
    // Qfalse1 derives (1) from p1*h4*i1 and (2) from p2*h5*i2 (Figure 2b).
    let out1 = eval_cq(&fx.db, &fx.qfalse1);
    let reg = fx.db.annotations();
    let m1 = provabs::semiring::Monomial::from_annots([
        reg.get("p1").unwrap(),
        reg.get("h4").unwrap(),
        reg.get("i1").unwrap(),
    ]);
    assert_eq!(out1.provenance(&Tuple::parse(&["1"])).coefficient(&m1), 1);
    // Qfalse2 derives (1) from p1*h1*i4 (Figure 2c).
    let out2 = eval_cq(&fx.db, &fx.qfalse2);
    let m2 = provabs::semiring::Monomial::from_annots([
        reg.get("p1").unwrap(),
        reg.get("h1").unwrap(),
        reg.get("i4").unwrap(),
    ]);
    assert_eq!(out2.provenance(&Tuple::parse(&["1"])).coefficient(&m2), 1);
}

#[test]
fn proposition_3_5_concretization_counts() {
    let fx = fixtures::running_example();
    let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
    // A1_T: |C| = 5 * 3 = 15; A2_T: |C| = 4 * 5 = 20.
    let mut a1 = Abstraction::identity(&bound);
    lift(&bound, &mut a1, "h1", 1);
    lift(&bound, &mut a1, "h2", 1);
    assert_eq!(
        concretize::concretization_count(&bound, &a1.apply(&bound).rows),
        15
    );
    let mut a2 = Abstraction::identity(&bound);
    lift(&bound, &mut a2, "i1", 1);
    lift(&bound, &mut a2, "i2", 1);
    assert_eq!(
        concretize::concretization_count(&bound, &a2.apply(&bound).rows),
        20
    );
}

#[test]
fn example_3_13_privacy_of_exabs1_is_2() {
    let fx = fixtures::running_example();
    let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
    let mut a1 = Abstraction::identity(&bound);
    lift(&bound, &mut a1, "h1", 1);
    lift(&bound, &mut a1, "h2", 1);
    let cache = PrivacyCache::new();
    let out = compute_privacy(
        &bound,
        &a1.apply(&bound).rows,
        &PrivacyConfig {
            threshold: 2,
            ..Default::default()
        },
        &cache,
    );
    assert_eq!(out.privacy, Some(2));
    let keys: Vec<String> = out.cim.iter().map(canonical_key).collect();
    assert!(keys.contains(&canonical_key(&fx.qreal)));
    assert!(keys.contains(&canonical_key(&fx.qfalse1)));
}

#[test]
fn example_4_2_exabs3_fails_threshold_2() {
    let fx = fixtures::running_example();
    let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
    let mut a3 = Abstraction::identity(&bound);
    lift(&bound, &mut a3, "i1", 1); // i1 -> WikiLeaks
    let cache = PrivacyCache::new();
    let out = compute_privacy(
        &bound,
        &a3.apply(&bound).rows,
        &PrivacyConfig {
            threshold: 2,
            ..Default::default()
        },
        &cache,
    );
    assert_eq!(out.privacy, None); // the paper's "-1"
}

#[test]
fn example_3_11_qreal_strictly_contained_in_qgeneral() {
    let fx = fixtures::running_example();
    assert!(contained_in(
        &fx.qreal,
        &fx.qgeneral,
        ContainmentMode::Bijective
    ));
    assert!(!contained_in(
        &fx.qgeneral,
        &fx.qreal,
        ContainmentMode::Bijective
    ));
}

#[test]
fn example_3_15_and_4_3_optimal_abstraction() {
    let fx = fixtures::running_example();
    let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
    let out = find_optimal_abstraction(
        &bound,
        &SearchConfig {
            privacy: PrivacyConfig {
                threshold: 2,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let best = out.best.expect("optimal abstraction exists");
    assert_eq!(best.privacy, 2);
    assert_eq!(best.edges_used, 2);
    assert!((best.loi - 15f64.ln()).abs() < 1e-9, "LOI must be ln 15");
}

#[test]
fn brute_force_and_heuristic_search_agree() {
    let fx = fixtures::running_example();
    let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
    for k in [1usize, 2, 3] {
        let optimized = find_optimal_abstraction(
            &bound,
            &SearchConfig {
                privacy: PrivacyConfig {
                    threshold: k,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let brute = find_optimal_abstraction(
            &bound,
            &SearchConfig {
                privacy: PrivacyConfig {
                    threshold: k,
                    row_by_row: false,
                    connectivity_filter: false,
                    caching: false,
                    ..Default::default()
                },
                sort_abstractions: false,
                prioritize_loi: false,
                early_termination: false,
                ..Default::default()
            },
        );
        match (optimized.best, brute.best) {
            (Some(o), Some(b)) => {
                assert!(
                    (o.loi - b.loi).abs() < 1e-9,
                    "k={k}: {} vs {}",
                    o.loi,
                    b.loi
                )
            }
            (None, None) => {}
            (o, b) => panic!("k={k}: disagreement {o:?} vs {b:?}"),
        }
    }
}
