//! Cost-based conjunctive-query planning over posting-list statistics.
//!
//! The join engine ([`eval_cq`](crate::eval_cq) and every variant) executes
//! body atoms in the order a [`QueryPlan`] dictates, not the order the query
//! was written. The planner reads exact statistics straight from the
//! dictionary-encoded columnar store — row counts, per-column distinct-id
//! counts, and the exact posting-list length of every query constant — and
//! greedily orders atoms smallest-estimated-frontier first, preferring atoms
//! connected to the already-bound variables so cross products are deferred
//! until unavoidable.
//!
//! # Determinism contract
//!
//! A plan is a pure function of the database **content** and the query:
//! statistics come from dense row counts, index-map *sizes* and posting
//! *lengths* (never from hash-map iteration order), candidate atoms are
//! scanned in written order with ties broken toward the lower atom index,
//! and no wall-clock, thread-count or RNG input exists. Two databases with
//! equal content — however they were built or mutated — plan every query
//! identically, which is what makes the engine's [`EvalWork`](crate::EvalWork)
//! counters machine-independent perf-gate metrics.
//!
//! # Modes
//!
//! [`PlanMode::CostBased`] is the default everywhere. Two escape hatches
//! exist for reproducibility:
//!
//! * [`PlanMode::Greedy`] replays the pre-planner engine order (most
//!   pre-bound positions first, ties toward smaller relations) bit for bit —
//!   the order the checked-in `BENCH_2.json`/`BENCH_3.json`/`BENCH_4.json`
//!   baselines were measured under, so those gates keep diffing identical
//!   counters.
//! * [`PlanMode::WrittenOrder`] executes atoms exactly as written (the
//!   delta pivot still leads a restricted evaluation — it is the access
//!   path, not a plan choice). This is the adversarial baseline the
//!   `bench_gate --bench planner` suite measures the cost-based planner
//!   against.

use crate::vintern::ValueId;
use crate::{Cq, Database, RelId, Term, VarId};
use std::collections::{BTreeMap, BTreeSet};

/// How the engine orders a query's body atoms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PlanMode {
    /// Statistics-driven ordering: smallest estimated frontier first,
    /// bound-variable connectivity preferred (the default).
    #[default]
    CostBased,
    /// The legacy constant-count greedy of the pre-planner engine: most
    /// bound positions first, ties toward smaller relations. Replays the
    /// checked-in `BENCH_2`/`BENCH_3`/`BENCH_4` counter baselines bit for
    /// bit.
    Greedy,
    /// Atoms exactly as written. The escape hatch for callers that hand-
    /// ordered their queries, and the baseline the planner perf gate
    /// (`BENCH_5.json`) compares against.
    WrittenOrder,
}

/// One step of a [`QueryPlan`]: which body atom runs at this depth and what
/// the planner expected of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStep {
    /// Index of the atom in the query's written body.
    pub atom: usize,
    /// Estimated candidate rows the engine will examine at this depth *per
    /// visit* (constants and planning-time bound variables applied under
    /// the independence assumption, rounded).
    pub est_rows: u64,
    /// Whether the atom shares a variable with the atoms planned before it
    /// (`false` marks the start of a new join-graph component — a cross
    /// product).
    pub connected: bool,
}

/// An executable atom order plus the estimates that justified it.
///
/// Produced by [`plan_cq`]; executed by the join engine. Plans depend only
/// on database content and the query (see the module docs), so asserting an
/// expected plan in a test pins the planner's behavior exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// The mode that produced this plan.
    pub mode: PlanMode,
    /// The forced leading atom of a pivot-restricted (delta) evaluation,
    /// when any: its position is the access path's, not the planner's, so
    /// it is excluded from [`QueryPlan::atoms_reordered`] and its
    /// [`PlanStep::est_rows`] is recorded as 0 (the candidates are the
    /// precomputed delta rows, which the cost model does not predict).
    pub pivoted: Option<usize>,
    /// Steps in execution order.
    pub steps: Vec<PlanStep>,
}

impl QueryPlan {
    /// The atom execution order (written-body indexes).
    pub fn atom_order(&self) -> Vec<usize> {
        self.steps.iter().map(|s| s.atom).collect()
    }

    /// How many atoms the *planner* moved: steps differing from the
    /// written order — or, for a pivot-led plan, from the pivot-first
    /// written order the pre-planner engine would have run (the pivot's
    /// placement is forced either way and never counts).
    pub fn atoms_reordered(&self) -> u64 {
        let n = self.steps.len();
        let reference: Vec<usize> = match self.pivoted {
            None => (0..n).collect(),
            Some(p) => std::iter::once(p)
                .chain((0..n).filter(|&i| i != p))
                .collect(),
        };
        self.steps
            .iter()
            .zip(reference)
            .filter(|(s, r)| s.atom != *r)
            .count() as u64
    }

    /// Sum of the per-step estimates (saturating) — the "estimated rows"
    /// aggregate next to the engine's actual
    /// [`rows_examined`](crate::EvalWork::rows_examined).
    pub fn est_rows_total(&self) -> u64 {
        self.steps
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.est_rows))
    }
}

/// Work counters of the planning layer, carried inside
/// [`EvalWork`](crate::EvalWork). Deterministic for a given database + query
/// + mode, like every other engine counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanWork {
    /// Queries (CQ bodies, incl. each UCQ disjunct and each delta pivot
    /// pass) the planner ordered.
    pub queries_planned: u64,
    /// Atoms placed at a different position than written, summed over all
    /// planned queries.
    pub atoms_reordered: u64,
    /// Sum of per-step estimated candidate rows over all planned queries
    /// (saturating) — compare against `rows_examined` to judge the cost
    /// model.
    pub est_rows: u64,
}

impl PlanWork {
    /// Accumulates another evaluation's planning counters.
    pub fn absorb(&mut self, other: &PlanWork) {
        self.queries_planned += other.queries_planned;
        self.atoms_reordered += other.atoms_reordered;
        self.est_rows = self.est_rows.saturating_add(other.est_rows);
    }

    pub(crate) fn record(&mut self, plan: &QueryPlan) {
        self.queries_planned += 1;
        self.atoms_reordered += plan.atoms_reordered();
        self.est_rows = self.est_rows.saturating_add(plan.est_rows_total());
    }
}

/// Configuration of deterministic mid-join re-planning, enabled through
/// [`Evaluator::adaptive`](crate::Evaluator::adaptive).
///
/// The engine tracks, per plan depth, the cumulative candidate rows it has
/// examined and compares them against the plan's *cumulative* estimate for
/// that depth (the saturating product of per-visit estimates along the
/// prefix, each clamped to at least 1). The first time a depth's actual
/// exceeds `k ×` its cumulative estimate the planner re-runs over the
/// remaining unbound atoms, anchored on the observed frontier cardinality
/// and fed with sideways-observed posting statistics. The trigger reads
/// exact row counters only — never wall-clock — so adaptive runs are as
/// bit-for-bit deterministic as static ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adaptive {
    /// Mis-estimate factor that arms the trigger: a depth re-plans when its
    /// examined rows exceed `k ×` its cumulative estimate. Clamped to at
    /// least 1 by [`Adaptive::new`].
    pub k: f64,
}

impl Adaptive {
    /// Adaptivity with trigger factor `k` (values below 1 are clamped to 1;
    /// 2 is the conventional default).
    pub fn new(k: f64) -> Self {
        Adaptive {
            k: if k >= 1.0 { k } else { 1.0 },
        }
    }

    /// The examined-row count beyond which a depth with cumulative estimate
    /// `cum_est` triggers a re-plan.
    pub(crate) fn threshold(&self, cum_est: u64) -> u64 {
        let t = self.k * cum_est.max(1) as f64;
        if t >= u64::MAX as f64 {
            u64::MAX
        } else {
            t.ceil() as u64
        }
    }
}

impl Default for Adaptive {
    fn default() -> Self {
        Adaptive::new(2.0)
    }
}

/// Work counters of the adaptive re-planning layer, carried inside
/// [`EvalWork`](crate::EvalWork). All zero when adaptivity is off, so
/// adaptivity-off counter baselines replay bit for bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplanWork {
    /// Times the mis-estimate trigger fired (scalar suffix re-plans plus
    /// block-pipeline restarts).
    pub replans_triggered: u64,
    /// Worst observed estimation error: the maximum over executed depths of
    /// `actual_rows / max(cumulative_estimate, 1)` (integer division),
    /// measured against the *initial* plan. Combined with `max` (not `+`)
    /// across absorbed evaluations.
    pub est_error_max: u64,
    /// Plan steps whose atom changed position across all re-plans.
    pub steps_replanned: u64,
}

impl ReplanWork {
    /// Accumulates another evaluation's re-planning counters.
    pub fn absorb(&mut self, other: &ReplanWork) {
        self.replans_triggered += other.replans_triggered;
        self.est_error_max = self.est_error_max.max(other.est_error_max);
        self.steps_replanned += other.steps_replanned;
    }
}

/// Cumulative estimated candidate rows per depth: the saturating running
/// product of the steps' per-visit estimates (each clamped to ≥ 1), scaled
/// by `anchor` — 1 for a fresh plan, or the observed frontier cardinality
/// when re-estimating a suffix mid-join. This is what the adaptive trigger
/// compares the cumulative `depth_rows` counters against.
pub(crate) fn cumulative_estimates(steps: &[PlanStep], anchor: u64) -> Vec<u64> {
    let mut cum = anchor.max(1);
    steps
        .iter()
        .map(|s| {
            cum = cum.saturating_mul(s.est_rows.max(1));
            cum
        })
        .collect()
}

/// Beyond this many distinct observed values per variable, sideways export
/// stops tracking the set and re-planning falls back to whole-relation
/// statistics for that variable. Bounds both memory and the per-re-plan
/// posting probes, and is part of the determinism contract (a fixed cap,
/// never a memory- or time-dependent one).
pub(crate) const SIDEWAYS_CAP: usize = 64;

/// Sideways-exported execution statistics: for each variable the executed
/// plan prefix has bound, the distinct dictionary ids it was actually bound
/// to (up to [`SIDEWAYS_CAP`]; an overflowed set is kept only as an
/// overflow marker). Re-planning uses these to replace the independence
/// assumption with observed posting lengths for later atoms. Lifetime: one
/// evaluation of one CQ body (delta passes and UCQ disjuncts each start
/// empty); never shared across queries or epochs.
#[derive(Debug, Default)]
pub(crate) struct Sideways {
    per_var: BTreeMap<VarId, BTreeSet<ValueId>>,
}

impl Sideways {
    /// Records that `v` was bound to `id` at some executed row. Sets grow
    /// to at most `SIDEWAYS_CAP + 1` entries; the extra entry marks
    /// overflow.
    pub(crate) fn record(&mut self, v: VarId, id: ValueId) {
        let set = self.per_var.entry(v).or_default();
        if set.len() <= SIDEWAYS_CAP {
            set.insert(id);
        }
    }

    /// Mean posting length of `rel.col` over the values `v` was observed
    /// bound to — the observed per-visit candidate count for a later atom
    /// reusing `v` at that column. `None` when the variable has no usable
    /// observation (nothing recorded, or the set overflowed the cap).
    fn mean_posting_len(&self, db: &Database, rel: RelId, col: usize, v: VarId) -> Option<f64> {
        let set = self.per_var.get(&v)?;
        if set.is_empty() || set.len() > SIDEWAYS_CAP {
            return None;
        }
        let total: u64 = set
            .iter()
            .map(|&id| db.posting_len(rel, col, id) as u64)
            .sum();
        Some(total as f64 / set.len() as f64)
    }
}

/// One atom's compiled cost factors: the statistics lookups (constant
/// posting lengths, per-column distinct counts) happen once per planning
/// call here, not once per greedy step — the greedy loop evaluates
/// [`AtomCost::estimate`] O(atoms²) times and must not re-probe the
/// dictionary each time. The engine compiles these once per evaluation and
/// shares them between its dead-atom short-circuit and the planner.
pub(crate) struct AtomCost {
    /// The atom's relation — kept so sideways-observed re-planning can
    /// probe posting lengths for values a variable was actually bound to.
    rel: RelId,
    /// Total rows of the atom's relation (the per-visit scan cost when the
    /// relation has no posting lists to probe).
    rows: f64,
    /// Whether the relation's posting-list indexes exist. When they don't,
    /// every visit of a constant-bearing or variable-bound atom falls back
    /// to a whole-relation scan (`scan_matching`).
    indexed: bool,
    /// Relation rows × the product of every constant's `posting_len / rows`
    /// selectivity — the atom's estimate before any variable binds. Exact
    /// for atoms with at most one constant.
    const_rows: f64,
    /// Per variable position: `(variable, column, 1 / distinct(column))`,
    /// applied when the variable is bound at estimation time (independence
    /// assumption).
    var_sel: Vec<(VarId, usize, f64)>,
    /// Per constant position: `(column, resolved dictionary id)`. Resolved
    /// once here; the engine's slot compilation reuses these instead of
    /// probing the interner a second time.
    const_ids: Vec<(usize, Option<ValueId>)>,
    /// The atom can never match: its relation is empty, or some constant
    /// resolves to no dictionary id or an empty posting list. Computed
    /// exactly (not via `const_rows == 0.0`, which fp underflow could fake
    /// on pathological bodies). One dead atom makes the whole query empty.
    pub(crate) dead: bool,
}

impl AtomCost {
    pub(crate) fn compile(db: &Database, q: &Cq) -> Vec<AtomCost> {
        q.body
            .iter()
            .map(|a| {
                let rows = db.relation_len(a.rel);
                let n = rows as f64;
                let mut const_rows = n;
                let mut var_sel = Vec::new();
                let mut const_ids = Vec::new();
                let mut dead = rows == 0;
                for (col, term) in a.terms.iter().enumerate() {
                    match term {
                        Term::Const(c) => {
                            let id = db.interner().lookup(c);
                            let len = match id {
                                None => 0,
                                Some(id) => db.posting_len(a.rel, col, id),
                            };
                            const_ids.push((col, id));
                            dead |= len == 0;
                            // n == 0 ⇒ len == 0 ⇒ const_rows stays 0.
                            const_rows *= len as f64 / n.max(1.0);
                        }
                        Term::Var(v) => {
                            var_sel.push((
                                *v,
                                col,
                                1.0 / db.distinct_count(a.rel, col).max(1) as f64,
                            ));
                        }
                    }
                }
                AtomCost {
                    rel: a.rel,
                    rows: n,
                    indexed: db.is_indexed(),
                    const_rows,
                    var_sel,
                    const_ids,
                    dead,
                }
            })
            .collect()
    }

    /// The dictionary id the constant at `col` resolved to during
    /// compilation (`None` when the constant was never interned).
    ///
    /// # Panics
    /// Panics when `col` is not a constant position of this atom.
    pub(crate) fn const_id(&self, col: usize) -> Option<ValueId> {
        self.const_ids
            .iter()
            .find(|(c, _)| *c == col)
            .expect("column is a compiled constant position")
            .1
    }

    /// Estimated candidate rows given the planning-time bound variable set.
    fn estimate(&self, bound: &BTreeSet<VarId>) -> f64 {
        self.var_sel
            .iter()
            .filter(|(v, _, _)| bound.contains(v))
            .fold(self.const_rows, |est, (_, _, sel)| est * sel)
    }

    /// [`AtomCost::estimate`] with sideways-observed statistics: a bound
    /// variable whose executed prefix recorded a usable value set
    /// contributes its *observed* mean posting length over those values
    /// (divided by relation rows) instead of the static `1 / distinct`
    /// independence factor. Variables without a usable observation fall
    /// back to the static factor, so this strictly refines [`estimate`].
    fn estimate_observed(&self, db: &Database, bound: &BTreeSet<VarId>, obs: &Sideways) -> f64 {
        self.var_sel
            .iter()
            .filter(|(v, _, _)| bound.contains(v))
            .fold(self.const_rows, |est, (v, col, sel)| {
                match obs.mean_posting_len(db, self.rel, *col, *v) {
                    Some(mean) => est * (mean / self.rows.max(1.0)),
                    None => est * sel,
                }
            })
    }

    /// Whether executing this atom with `bound` variables bound probes no
    /// posting list: the relation is unindexed, so a constant-bearing or
    /// variable-bound visit scans the whole relation.
    fn scan_fallback(&self, bound: &BTreeSet<VarId>) -> bool {
        !self.indexed
            && (!self.const_ids.is_empty()
                || self.var_sel.iter().any(|(v, _, _)| bound.contains(v)))
    }
}

fn est_to_u64(est: f64) -> u64 {
    if est >= u64::MAX as f64 {
        u64::MAX
    } else {
        est.round() as u64
    }
}

/// The legacy pre-planner order: start from the atom with the most
/// constants (ties toward smaller relations), then repeatedly pick the atom
/// with the most bound positions. Kept verbatim so [`PlanMode::Greedy`]
/// replays the PR 2–4 engine — and its checked-in bench baselines — bit for
/// bit.
fn greedy_order(db: &Database, q: &Cq, first: Option<usize>) -> Vec<usize> {
    let n = q.body.len();
    let mut chosen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut bound: Vec<VarId> = Vec::new();
    if let Some(i) = first {
        chosen[i] = true;
        for v in q.body[i].variables() {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
        order.push(i);
    }
    while order.len() < n {
        let mut best: Option<(usize, (usize, isize))> = None;
        for (i, atom) in q.body.iter().enumerate() {
            if chosen[i] {
                continue;
            }
            let bound_positions = atom
                .terms
                .iter()
                .filter(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                })
                .count();
            let size = db.relation_len(atom.rel) as isize;
            let key = (bound_positions, -size);
            if best.is_none_or(|(_, bk)| key > bk) {
                best = Some((i, key));
            }
        }
        let (i, _) = best.expect("atom remains");
        chosen[i] = true;
        for v in q.body[i].variables() {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
        order.push(i);
    }
    order
}

/// The cost-based order: pick the unplanned atom with the smallest
/// estimated frontier, restricted to atoms connected to the bound variable
/// set whenever any such atom exists (cross products only when the join
/// graph forces them). Ties break toward the lower written index.
fn cost_based_order(
    q: &Cq,
    costs: &[AtomCost],
    first: Option<usize>,
    anchors: &BTreeMap<usize, u64>,
) -> Vec<usize> {
    let n = q.body.len();
    let mut chosen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut bound: BTreeSet<VarId> = BTreeSet::new();
    if let Some(i) = first {
        chosen[i] = true;
        bound.extend(q.body[i].variables());
        order.push(i);
    }
    while order.len() < n {
        let connects = |i: usize| q.body[i].variables().any(|v| bound.contains(&v));
        let any_connected = (0..n).any(|i| !chosen[i] && connects(i));
        let mut best: Option<(usize, f64)> = None;
        for (i, taken) in chosen.iter().enumerate() {
            if *taken || (any_connected && !connects(i)) {
                continue;
            }
            let mut est = costs[i].estimate(&bound);
            // An anchored atom blew this estimate in an aborted attempt:
            // its observed cardinality is a floor no bound set talks down.
            if let Some(&floor) = anchors.get(&i) {
                est = est.max(floor as f64);
            }
            // Strict `<` keeps the lower index on ties.
            if best.is_none_or(|(_, b)| est < b) {
                best = Some((i, est));
            }
        }
        let (i, _) = best.expect("atom remains");
        chosen[i] = true;
        bound.extend(q.body[i].variables());
        order.push(i);
    }
    order
}

/// Re-plans the not-yet-executed tail of a running scalar evaluation:
/// orders `remaining` (written-body atom indexes) by the cost-based rule
/// under the already-bound variable set, with sideways-observed posting
/// statistics replacing the independence assumption wherever an observation
/// exists. Pure function of its inputs — the deterministic core of the
/// adaptive engine. Returned steps carry the observed estimates (clamped to
/// ≥ 1 for live atoms) so the caller can re-arm its trigger thresholds.
pub(crate) fn replan_suffix(
    db: &Database,
    q: &Cq,
    costs: &[AtomCost],
    remaining: &[usize],
    bound: &BTreeSet<VarId>,
    obs: &Sideways,
) -> Vec<PlanStep> {
    let mut bound = bound.clone();
    let mut chosen: BTreeSet<usize> = BTreeSet::new();
    let mut steps = Vec::with_capacity(remaining.len());
    while steps.len() < remaining.len() {
        let connects = |i: usize| q.body[i].variables().any(|v| bound.contains(&v));
        let any_connected = remaining
            .iter()
            .any(|&i| !chosen.contains(&i) && connects(i));
        let mut best: Option<(usize, f64)> = None;
        for &i in remaining {
            if chosen.contains(&i) || (any_connected && !connects(i)) {
                continue;
            }
            let est = costs[i].estimate_observed(db, &bound, obs);
            if best.is_none_or(|(_, b)| est < b) {
                best = Some((i, est));
            }
        }
        let (i, est) = best.expect("atom remains");
        chosen.insert(i);
        let connected = connects(i) || bound.is_empty();
        bound.extend(q.body[i].variables());
        let est_rows = if costs[i].dead {
            est_to_u64(est)
        } else {
            est_to_u64(est).max(1)
        };
        steps.push(PlanStep {
            atom: i,
            est_rows,
            connected,
        });
    }
    steps
}

/// Plans `q` against the live statistics of `db` under `mode`.
///
/// `first` forces a leading atom — the delta pivot of a restricted
/// evaluation, whose precomputed delta rows are the access path and
/// therefore not a planner choice. The remaining atoms are ordered by the
/// mode with the pivot's variables counted as bound.
///
/// The returned plan always carries the cost model's per-step estimates
/// (and connectivity flags), whatever mode chose the order, so
/// estimated-versus-actual comparisons work for every mode.
pub fn plan_cq(db: &Database, q: &Cq, mode: PlanMode, first: Option<usize>) -> QueryPlan {
    plan_cq_with_costs(db, q, &AtomCost::compile(db, q), mode, first)
}

/// [`plan_cq`] over already-compiled [`AtomCost`]s (the engine compiles
/// them once per evaluation for its dead-atom short-circuit and hands them
/// on here).
pub(crate) fn plan_cq_with_costs(
    db: &Database,
    q: &Cq,
    costs: &[AtomCost],
    mode: PlanMode,
    first: Option<usize>,
) -> QueryPlan {
    plan_cq_anchored(db, q, costs, mode, first, &BTreeMap::new())
}

/// [`plan_cq_with_costs`] with per-atom estimate floors — the observed
/// cumulative row counts of steps that blew their estimate in an aborted
/// block-pipeline attempt. An anchored atom estimates at least its observed
/// cardinality whatever the bound set, deferring it behind atoms the cost
/// model still believes cheap. An empty anchor map makes this identical to
/// the static planner, which is how adaptivity-off replays every baseline.
pub(crate) fn plan_cq_anchored(
    db: &Database,
    q: &Cq,
    costs: &[AtomCost],
    mode: PlanMode,
    first: Option<usize>,
    anchors: &BTreeMap<usize, u64>,
) -> QueryPlan {
    let n = q.body.len();
    let order: Vec<usize> = match mode {
        PlanMode::CostBased => cost_based_order(q, costs, first, anchors),
        PlanMode::Greedy => greedy_order(db, q, first),
        PlanMode::WrittenOrder => match first {
            None => (0..n).collect(),
            Some(p) => std::iter::once(p)
                .chain((0..n).filter(|&i| i != p))
                .collect(),
        },
    };
    let mut bound: BTreeSet<VarId> = BTreeSet::new();
    let steps = order
        .into_iter()
        .enumerate()
        .map(|(depth, atom)| {
            let connected = depth == 0 || q.body[atom].variables().any(|v| bound.contains(&v));
            // The forced pivot's candidates are the delta rows, not a
            // statistic the cost model predicts: record 0, not the
            // full-relation estimate an empty bound set would give.
            let est_rows = if depth == 0 && first == Some(atom) {
                0
            } else {
                let cost = &costs[atom];
                let mut est = cost.estimate(&bound);
                if let Some(&floor) = anchors.get(&atom) {
                    est = est.max(floor as f64);
                }
                if !cost.dead && cost.scan_fallback(&bound) {
                    // Unindexed relations have no posting lists: a visit
                    // of a constant-bearing or variable-bound atom scans
                    // the whole relation (`scan_matching`). Record that
                    // scan cost — a sub-one match estimate would round to
                    // a blind 0 and fool the adaptive trigger and
                    // `est_error_max`.
                    est = est.max(cost.rows);
                }
                est_to_u64(est)
            };
            bound.extend(q.body[atom].variables());
            PlanStep {
                atom,
                est_rows,
                connected,
            }
        })
        .collect();
    QueryPlan {
        mode,
        pivoted: first,
        steps,
    }
}

/// A [`QueryPlan`] next to what the engine actually did at each step —
/// returned by [`eval_cq_traced`](crate::eval_cq_traced) for cost-model
/// diagnostics and the planner bench report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanTrace {
    /// The executed plan.
    pub plan: QueryPlan,
    /// Candidate rows the engine examined at each plan step (parallel to
    /// `plan.steps`) — the per-step "actual" next to
    /// [`PlanStep::est_rows`].
    pub actual_rows: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_cq, Database};

    /// Skewed database: `Big` has a low-selectivity constant column, `Small`
    /// is tiny, `Mid` joins both.
    fn skewed_db() -> Database {
        let mut db = Database::new();
        let big = db.add_relation("Big", &["k", "tag"]);
        let small = db.add_relation("Small", &["k"]);
        let mid = db.add_relation("Mid", &["k", "m"]);
        for i in 0..200 {
            db.insert_str(
                big,
                &format!("b{i}"),
                &[&i.to_string(), if i % 2 == 0 { "hot" } else { "cold" }],
            );
        }
        for i in 0..5 {
            db.insert_str(small, &format!("s{i}"), &[&(i * 40).to_string()]);
        }
        for i in 0..40 {
            db.insert_str(
                mid,
                &format!("m{i}"),
                &[&(i * 5).to_string(), &i.to_string()],
            );
        }
        db.build_indexes();
        db
    }

    #[test]
    fn cost_based_starts_at_the_smallest_frontier() {
        let db = skewed_db();
        // Written worst-first: Big('hot') matches 100 rows, Small has 5.
        let q = parse_cq("Q(k) :- Big(k, 'hot'), Mid(k, m), Small(k)", db.schema()).unwrap();
        let plan = plan_cq(&db, &q, PlanMode::CostBased, None);
        // Small (5 rows) leads; with k bound, Big('hot') estimates
        // 100/200 ≈ 0.5 matches per probe and edges out Mid's 1.
        assert_eq!(plan.atom_order(), vec![2, 0, 1], "{plan:?}");
        assert!(plan.steps.iter().all(|s| s.connected));
        assert_eq!(plan.steps[0].est_rows, 5);
        assert_eq!(plan.atoms_reordered(), 3);
    }

    #[test]
    fn written_order_is_identity_and_pivot_leads() {
        let db = skewed_db();
        let q = parse_cq("Q(k) :- Big(k, 'hot'), Mid(k, m), Small(k)", db.schema()).unwrap();
        let plan = plan_cq(&db, &q, PlanMode::WrittenOrder, None);
        assert_eq!(plan.atom_order(), vec![0, 1, 2]);
        assert_eq!(plan.atoms_reordered(), 0);
        let pivoted = plan_cq(&db, &q, PlanMode::WrittenOrder, Some(1));
        assert_eq!(pivoted.atom_order(), vec![1, 0, 2]);
    }

    #[test]
    fn greedy_replays_the_legacy_constant_count_order() {
        let db = skewed_db();
        // Legacy greedy picks the constant-bearing Big first despite its
        // 100-row posting list — exactly the weakness the cost model fixes.
        let q = parse_cq("Q(k) :- Small(k), Mid(k, m), Big(k, 'hot')", db.schema()).unwrap();
        let greedy = plan_cq(&db, &q, PlanMode::Greedy, None);
        assert_eq!(greedy.atom_order()[0], 2);
        let cost = plan_cq(&db, &q, PlanMode::CostBased, None);
        assert_eq!(cost.atom_order()[0], 0);
    }

    #[test]
    fn estimates_are_exact_for_single_constant_atoms() {
        let db = skewed_db();
        let q = parse_cq("Q(k) :- Big(k, 'cold')", db.schema()).unwrap();
        let plan = plan_cq(&db, &q, PlanMode::CostBased, None);
        assert_eq!(plan.steps[0].est_rows, 100);
        let dead = parse_cq("Q(k) :- Big(k, 'lukewarm')", db.schema()).unwrap();
        let plan = plan_cq(&db, &dead, PlanMode::CostBased, None);
        assert_eq!(plan.steps[0].est_rows, 0);
    }

    #[test]
    fn self_join_plans_both_occurrences() {
        let db = skewed_db();
        // Both atoms hit Big, sharing `k`: the 'hot'-filtered occurrence
        // leads (100 est rows), the free one follows through the shared
        // variable at ~1 match per binding (200 rows / 200 distinct keys).
        let q = parse_cq("Q(k) :- Big(k, t), Big(k, 'hot')", db.schema()).unwrap();
        let plan = plan_cq(&db, &q, PlanMode::CostBased, None);
        assert_eq!(plan.atom_order(), vec![1, 0], "{plan:?}");
        assert!(plan.steps[1].connected, "self-join joins through k");
        assert_eq!(plan.steps[0].est_rows, 100);
        assert_eq!(plan.steps[1].est_rows, 1);
    }

    #[test]
    fn cross_products_defer_to_the_end_and_pick_the_small_side() {
        let db = skewed_db();
        // Mid(k, m) connects to nothing here: Q is a genuine cross product
        // of {Big('hot')} × {Small(s)}.
        let q = parse_cq("Q(s) :- Big(k, 'hot'), Small(s)", db.schema()).unwrap();
        let plan = plan_cq(&db, &q, PlanMode::CostBased, None);
        // Small (5 rows) leads; Big('hot') (100) is the disconnected tail.
        assert_eq!(plan.atom_order(), vec![1, 0], "{plan:?}");
        assert!(plan.steps[0].connected, "first step opens its component");
        assert!(!plan.steps[1].connected, "cross product must be flagged");
        // Three components: the planner exhausts connected atoms before
        // starting a new component.
        let q3 = parse_cq(
            "Q(s, m) :- Big(k, 'hot'), Small(s), Mid(k2, m), Big(k2, 'cold')",
            db.schema(),
        )
        .unwrap();
        let plan3 = plan_cq(&db, &q3, PlanMode::CostBased, None);
        // Small (5) opens; no atom connects to `s`, so the next component
        // opens at Mid (40) and finishes with its 'cold' Big partner
        // before the last disconnected atom runs.
        assert_eq!(plan3.atom_order(), vec![1, 2, 3, 0], "{plan3:?}");
        assert_eq!(
            plan3.steps.iter().filter(|s| !s.connected).count(),
            2,
            "two component breaks"
        );
    }

    #[test]
    fn constant_only_atoms_plan_first_when_selective() {
        let db = skewed_db();
        // The fully ground atom Small(40) matches exactly one row: the
        // cheapest possible start even against the tiny Small scan.
        let q = parse_cq("Q(k) :- Small(k), Small(40)", db.schema()).unwrap();
        let plan = plan_cq(&db, &q, PlanMode::CostBased, None);
        assert_eq!(plan.atom_order(), vec![1, 0], "{plan:?}");
        assert_eq!(plan.steps[0].est_rows, 1);
    }

    #[test]
    fn empty_relations_plan_first_with_zero_estimate() {
        let mut db = Database::new();
        let big = db.add_relation("Big", &["k"]);
        let _nothing = db.add_relation("Nothing", &["k"]);
        for i in 0..50 {
            db.insert_str(big, &format!("b{i}"), &[&i.to_string()]);
        }
        db.build_indexes();
        let q = parse_cq("Q(k) :- Big(k), Nothing(k)", db.schema()).unwrap();
        let plan = plan_cq(&db, &q, PlanMode::CostBased, None);
        assert_eq!(plan.atom_order(), vec![1, 0], "{plan:?}");
        assert_eq!(plan.steps[0].est_rows, 0);
    }

    #[test]
    fn single_atom_queries_have_the_trivial_plan() {
        let db = skewed_db();
        let q = parse_cq("Q(k) :- Big(k, t)", db.schema()).unwrap();
        for mode in [
            PlanMode::CostBased,
            PlanMode::Greedy,
            PlanMode::WrittenOrder,
        ] {
            let plan = plan_cq(&db, &q, mode, None);
            assert_eq!(plan.atom_order(), vec![0], "{mode:?}");
            assert_eq!(plan.atoms_reordered(), 0);
            assert_eq!(plan.steps[0].est_rows, 200);
            assert!(plan.steps[0].connected);
        }
    }

    #[test]
    fn plans_are_content_determined() {
        // Same content, different construction path (indexes, mutation
        // history) — identical plan.
        let db = skewed_db();
        let mut rebuilt = skewed_db();
        let extra = rebuilt.insert_str(crate::RelId(0), "tmp", &["999", "hot"]);
        rebuilt.delete(extra).unwrap();
        let q = parse_cq("Q(k) :- Big(k, 'hot'), Mid(k, m), Small(k)", db.schema()).unwrap();
        for mode in [
            PlanMode::CostBased,
            PlanMode::Greedy,
            PlanMode::WrittenOrder,
        ] {
            assert_eq!(
                plan_cq(&db, &q, mode, None),
                plan_cq(&rebuilt, &q, mode, None),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn unindexed_scan_fallback_atoms_record_the_scan_cost() {
        // Regression for the est_rows = 0 blind spot: on an unindexed
        // database a bound-variable visit of Big scans all 200 rows, but
        // the match estimate (200 / 200 distinct keys × hot selectivity)
        // used to round toward 0 and hide that cost entirely.
        let mut indexed = skewed_db();
        let q = parse_cq("Q(k) :- Small(k), Big(k, 'hot')", indexed.schema()).unwrap();

        let mut unindexed = Database::new();
        let big = unindexed.add_relation("Big", &["k", "tag"]);
        let small = unindexed.add_relation("Small", &["k"]);
        let _mid = unindexed.add_relation("Mid", &["k", "m"]);
        for i in 0..200 {
            unindexed.insert_str(
                big,
                &format!("b{i}"),
                &[&i.to_string(), if i % 2 == 0 { "hot" } else { "cold" }],
            );
        }
        for i in 0..5 {
            unindexed.insert_str(small, &format!("s{i}"), &[&(i * 40).to_string()]);
        }
        assert!(!unindexed.is_indexed());

        let plan = plan_cq(&unindexed, &q, PlanMode::WrittenOrder, None);
        // Small leads unbound: a plain scan of all 5 rows, estimated as
        // before. Big's visit scans the whole relation per binding.
        assert_eq!(plan.steps[0].est_rows, 5);
        assert_eq!(plan.steps[1].est_rows, 200, "scan cost, not a blind 0");

        // The indexed plan for the same query is untouched by the fix:
        // Big('hot') with k bound estimates 100/200 = 0.5 ≈ 1 per probe.
        indexed.build_indexes();
        let plan = plan_cq(&indexed, &q, PlanMode::WrittenOrder, None);
        assert_eq!(plan.steps[1].est_rows, 1);
    }

    #[test]
    fn adaptive_thresholds_scale_cumulative_estimates() {
        let ad = Adaptive::new(2.0);
        assert_eq!(ad.threshold(0), 2, "zero estimates clamp to 1");
        assert_eq!(ad.threshold(10), 20);
        assert_eq!(ad.threshold(u64::MAX), u64::MAX);
        assert_eq!(Adaptive::new(0.25).k, 1.0, "k clamps to at least 1");
        let steps = [
            PlanStep {
                atom: 0,
                est_rows: 5,
                connected: true,
            },
            PlanStep {
                atom: 1,
                est_rows: 0,
                connected: true,
            },
            PlanStep {
                atom: 2,
                est_rows: 3,
                connected: true,
            },
        ];
        assert_eq!(cumulative_estimates(&steps, 1), vec![5, 5, 15]);
        assert_eq!(cumulative_estimates(&steps, 4), vec![20, 20, 60]);
    }

    #[test]
    fn replan_uses_observed_postings_over_whole_relation_statistics() {
        // Correlated skew: `Wide` looks selective on whole-relation
        // statistics (rows / distinct ≈ 2) but every key of `Anchor` is a
        // hot key with 50 rows; `Narrow` looks worse (6 rows per key) but
        // matches almost nothing on Anchor's keys.
        let mut db = Database::new();
        let anchor = db.add_relation("Anchor", &["k"]);
        let wide = db.add_relation("Wide", &["k", "w"]);
        let narrow = db.add_relation("Narrow", &["k", "n"]);
        for i in 0..4 {
            db.insert_str(anchor, &format!("a{i}"), &[&i.to_string()]);
        }
        let mut w = 0;
        for i in 0..4 {
            for j in 0..50 {
                db.insert_str(wide, &format!("w{w}"), &[&i.to_string(), &j.to_string()]);
                w += 1;
            }
        }
        for i in 100..196 {
            db.insert_str(wide, &format!("w{w}"), &[&i.to_string(), "0"]);
            w += 1;
        }
        for i in 200..232 {
            for j in 0..6 {
                db.insert_str(
                    narrow,
                    &format!("n{i}_{j}"),
                    &[&i.to_string(), &j.to_string()],
                );
            }
        }
        db.insert_str(narrow, "n_hit", &["0", "0"]);
        db.build_indexes();

        let q = parse_cq("Q(k) :- Anchor(k), Wide(k, w), Narrow(k, n)", db.schema()).unwrap();
        let costs = AtomCost::compile(&db, &q);
        // Statically, Wide (396 rows / 100 distinct keys ≈ 4 per probe)
        // beats Narrow (193 rows / 33 keys ≈ 6 per probe).
        let plan = plan_cq_with_costs(&db, &q, &costs, PlanMode::CostBased, None);
        assert_eq!(plan.atom_order(), vec![0, 1, 2], "{plan:?}");

        // After executing Anchor, sideways observation knows k ∈ {0..3}:
        // Wide averages 50 postings on those keys, Narrow well under 1.
        let mut obs = Sideways::default();
        let mut bound = BTreeSet::new();
        bound.extend(q.body[0].variables());
        for i in 0..4 {
            let id = db.interner().lookup(&crate::Value::Int(i)).unwrap();
            obs.record(q.body[0].variables().next().unwrap(), id);
        }
        let steps = replan_suffix(&db, &q, &costs, &[1, 2], &bound, &obs);
        let order: Vec<usize> = steps.iter().map(|s| s.atom).collect();
        assert_eq!(order, vec![2, 1], "observed postings must flip the order");
        assert_eq!(steps[0].est_rows, 1, "live estimates clamp to ≥ 1");
        assert_eq!(steps[1].est_rows, 50, "observed mean posting length");

        // Overflowed sets fall back to static statistics bit-for-bit.
        let mut overflowed = Sideways::default();
        let v = q.body[0].variables().next().unwrap();
        for j in 100..=100 + SIDEWAYS_CAP as i64 {
            let id = db.interner().lookup(&crate::Value::Int(j)).unwrap();
            overflowed.record(v, id);
        }
        let fallback = replan_suffix(&db, &q, &costs, &[1, 2], &bound, &overflowed);
        let static_suffix = replan_suffix(&db, &q, &costs, &[1, 2], &bound, &Sideways::default());
        assert_eq!(fallback, static_suffix);
    }

    #[test]
    fn anchored_replans_defer_the_exploded_atom() {
        let db = skewed_db();
        let q = parse_cq("Q(k) :- Big(k, 'hot'), Mid(k, m), Small(k)", db.schema()).unwrap();
        let costs = AtomCost::compile(&db, &q);
        let static_plan = plan_cq_with_costs(&db, &q, &costs, PlanMode::CostBased, None);
        assert_eq!(static_plan.atom_order(), vec![2, 0, 1]);
        // An empty anchor map is the static planner, bit for bit.
        let empty = plan_cq_anchored(&db, &q, &costs, PlanMode::CostBased, None, &BTreeMap::new());
        assert_eq!(empty, static_plan);
        // Anchoring Big at an observed 10_000 rows pushes it last and the
        // recorded estimate carries the floor.
        let anchors: BTreeMap<usize, u64> = [(0, 10_000)].into_iter().collect();
        let plan = plan_cq_anchored(&db, &q, &costs, PlanMode::CostBased, None, &anchors);
        assert_eq!(plan.atom_order(), vec![2, 1, 0], "{plan:?}");
        assert_eq!(plan.steps[2].est_rows, 10_000);
    }
}
