//! Snapshot-isolated reader sessions over a single-writer database.
//!
//! The concurrency model is single-writer / many-snapshot-readers: a
//! [`SessionRegistry`] holds the latest *published* database version
//! stamped with a monotonically increasing **epoch**, readers pin a
//! [`SessionDb`] (an immutable, `Arc`-shared view at one epoch) and keep
//! evaluating against it for as long as they like, and the one
//! [`SnapshotWriter`] — handed out exactly once, deliberately not
//! [`Clone`] — publishes new versions after applying delta batches.
//!
//! Publication is cheap because [`Database`] relation storage is held
//! copy-on-write (see [`Database::shares_relation`]): cloning the writer's
//! working database shares every relation the batch did not touch, and
//! [`PublishStats`] reports exactly how many relations were copied versus
//! shared — a deterministic counter the bench gate replays bit-for-bit.
//!
//! # Determinism contract
//!
//! A pinned [`SessionDb`] is immutable: every query against it returns
//! bit-identical answers *and* bit-identical [`EvalWork`](crate::EvalWork)
//! counters regardless of how far the writer has progressed, which thread
//! pool evaluates it, or what faults the storage layer is injecting. The
//! value interner is part of the snapshot (constants interned by the
//! writer after publication are invisible to the pinned reader), so even
//! dictionary probe counts replay exactly.

use crate::plancache::PlanCache;
use crate::Database;
use provabs_sched::sync::RwLock;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable database snapshot pinned at one epoch.
///
/// Dereferences to [`Database`], so every read-side API — and the
/// [`Evaluator`](crate::Evaluator) builder — works on a session exactly as
/// it does on an owned database. Cloning is cheap (two `Arc` bumps) and
/// pins the same epoch.
#[derive(Debug, Clone)]
pub struct SessionDb {
    epoch: u64,
    db: Arc<Database>,
}

impl SessionDb {
    /// The epoch this session is pinned at: the number of snapshots
    /// published before it (the initial snapshot is epoch 0).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shared snapshot itself, for callers that want to hold the
    /// `Arc` directly.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }
}

impl Deref for SessionDb {
    type Target = Database;

    fn deref(&self) -> &Database {
        &self.db
    }
}

#[derive(Debug)]
struct Published {
    epoch: u64,
    db: Arc<Database>,
}

/// The shared registry readers pin snapshots from.
///
/// Created together with the unique [`SnapshotWriter`] by
/// [`SessionRegistry::shared`]; readers only ever see the `Arc` side, so
/// the type system enforces the single-writer protocol — there is no
/// mutating method on the registry itself.
#[derive(Debug)]
pub struct SessionRegistry {
    current: RwLock<Published>,
    plan_cache: PlanCache,
}

impl SessionRegistry {
    /// Publishes `db` as the epoch-0 snapshot and returns the registry
    /// along with the **only** writer handle. [`SnapshotWriter`] is not
    /// `Clone` and cannot be re-obtained: dropping it freezes the registry
    /// at its last published epoch forever.
    pub fn shared(db: Database) -> (Arc<Self>, SnapshotWriter) {
        let registry = Arc::new(Self {
            current: RwLock::labeled(
                "session.current",
                Published {
                    epoch: 0,
                    db: Arc::new(db),
                },
            ),
            plan_cache: PlanCache::new(),
        });
        let writer = SnapshotWriter {
            registry: Arc::clone(&registry),
        };
        (registry, writer)
    }

    /// Pins the latest published snapshot. The returned [`SessionDb`] is
    /// immutable and stays valid (and bit-identical) however far the
    /// writer advances.
    pub fn pin(&self) -> SessionDb {
        let cur = self.current.read().expect("session registry poisoned");
        SessionDb {
            epoch: cur.epoch,
            db: Arc::clone(&cur.db),
        }
    }

    /// The latest published epoch.
    pub fn epoch(&self) -> u64 {
        self.current
            .read()
            .expect("session registry poisoned")
            .epoch
    }

    /// The registry-wide [`PlanCache`], shared by every session. Bind it
    /// with [`Evaluator::plan_cache`](crate::Evaluator::plan_cache) at the
    /// session's pinned epoch; the writer fences it (via
    /// [`PlanCache::invalidate_at`]) before publishing each new epoch.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }
}

/// Deterministic counters describing one snapshot publication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishStats {
    /// The epoch the new snapshot is stamped with.
    pub epoch: u64,
    /// Relations physically shared with the previous snapshot (untouched
    /// by the batch; publication cost two `Arc` bumps each).
    pub shared_relations: usize,
    /// Relations whose storage was copied because the batch mutated them.
    pub copied_relations: usize,
}

/// The unique writer handle for a [`SessionRegistry`].
///
/// Intentionally not [`Clone`]: the single-writer protocol is enforced by
/// construction, not by a runtime lock. The writer owns its working
/// [`Database`] elsewhere (typically inside a
/// `DurableDatabase`), applies delta batches to it, and calls
/// [`SnapshotWriter::publish`] to make the result visible to new sessions.
#[derive(Debug)]
pub struct SnapshotWriter {
    registry: Arc<SessionRegistry>,
}

impl SnapshotWriter {
    /// The registry this writer publishes into.
    pub fn registry(&self) -> &Arc<SessionRegistry> {
        &self.registry
    }

    /// Publishes the writer's current database state as a new snapshot,
    /// bumping the epoch by exactly 1. Readers pinned at older epochs are
    /// untouched; new [`SessionRegistry::pin`] calls see the new epoch.
    ///
    /// The clone taken here is copy-on-write at relation granularity; the
    /// returned [`PublishStats`] counts shared versus copied relations
    /// against the previously published snapshot (deterministic for a
    /// deterministic delta stream).
    pub fn publish(&mut self, db: &Database) -> PublishStats {
        let snapshot = db.clone();
        let mut cur = self.registry.current.write().expect("registry poisoned");
        let (mut shared, mut copied) = (0usize, 0usize);
        for rel in snapshot.schema().relation_ids() {
            if snapshot.shares_relation(&cur.db, rel) {
                shared += 1;
            } else {
                copied += 1;
            }
        }
        cur.epoch += 1;
        cur.db = Arc::new(snapshot);
        PublishStats {
            epoch: cur.epoch,
            shared_relations: shared,
            copied_relations: copied,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_cq, Evaluator, Value};

    fn seed_db() -> Database {
        let mut db = Database::new();
        let r = db.add_relation("R", &["a", "b"]);
        db.add_relation("S", &["a"]);
        db.insert_str(r, "t1", &["1", "x"]);
        db.insert_str(r, "t2", &["2", "x"]);
        db.build_indexes();
        db
    }

    #[test]
    fn pinned_sessions_survive_writer_progress() {
        let mut db = seed_db();
        let (registry, mut writer) = SessionRegistry::shared(db.clone());
        let pinned = registry.pin();
        assert_eq!(pinned.epoch(), 0);
        let q = parse_cq("q(x) :- R(x, 'x')", pinned.schema()).unwrap();
        let before = Evaluator::new(&pinned).eval_cq(&q);
        let r = db.schema().relation_id("R").unwrap();
        db.insert_str(r, "t3", &["3", "x"]);
        let stats = writer.publish(&db);
        assert_eq!(stats.epoch, 1);
        // The pinned session still answers from epoch 0, bit-for-bit.
        let after = Evaluator::new(&pinned).eval_cq(&q);
        assert_eq!(before, after);
        assert_eq!(pinned.epoch(), 0);
        // A fresh pin sees the new tuple.
        let fresh = registry.pin();
        assert_eq!(fresh.epoch(), 1);
        assert_eq!(fresh.relation_len(r), 3);
        assert_eq!(pinned.relation_len(r), 2);
    }

    #[test]
    fn interner_is_part_of_the_snapshot() {
        // A constant interned by the writer after publication must be
        // invisible to a pinned reader: its dictionary lookup keeps
        // failing, so probe counters replay bit-for-bit.
        let mut db = seed_db();
        let (registry, mut writer) = SessionRegistry::shared(db.clone());
        let pinned = registry.pin();
        let r = db.schema().relation_id("R").unwrap();
        db.insert_str(r, "t3", &["3", "zebra"]);
        writer.publish(&db);
        assert!(pinned.interner().lookup(&Value::str("zebra")).is_none());
        assert!(registry
            .pin()
            .interner()
            .lookup(&Value::str("zebra"))
            .is_some());
    }

    #[test]
    fn publish_counts_shared_and_copied_relations() {
        let mut db = seed_db();
        let (_registry, mut writer) = SessionRegistry::shared(db.clone());
        let r = db.schema().relation_id("R").unwrap();
        db.insert_str(r, "t3", &["3", "y"]);
        let stats = writer.publish(&db);
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.copied_relations, 1, "only R was touched");
        assert_eq!(stats.shared_relations, 1, "S still shares storage");
        // Publishing again without mutating shares everything.
        let stats = writer.publish(&db);
        assert_eq!(stats.epoch, 2);
        assert_eq!(stats.copied_relations, 0);
        assert_eq!(stats.shared_relations, 2);
    }

    #[test]
    fn concurrent_readers_see_only_whole_epochs() {
        // Native-thread smoke test: a writer publishes a few epochs, each
        // adding one tuple, while reader threads repeatedly pin and check
        // the invariant epoch == extra tuples. The *exhaustive* variant —
        // every interleaving of two readers racing the writer, enumerated
        // by the schedule explorer — lives in `tests/sched_session.rs`.
        let db = seed_db();
        let base_len = db.len();
        let (registry, mut writer) = SessionRegistry::shared(db.clone());
        let batches = 8u64;
        std::thread::scope(|scope| {
            let reg = Arc::clone(&registry);
            scope.spawn(move || {
                let mut db = db;
                let r = db.schema().relation_id("R").unwrap();
                for i in 0..batches {
                    db.insert_str(r, &format!("w{i}"), &[&format!("{}", 10 + i), "x"]);
                    writer.publish(&db);
                }
            });
            for _ in 0..3 {
                let reg = Arc::clone(&reg);
                scope.spawn(move || loop {
                    let s = reg.pin();
                    assert_eq!(
                        s.len() as u64,
                        base_len as u64 + s.epoch(),
                        "snapshot at epoch {} must hold exactly its batch's tuples",
                        s.epoch()
                    );
                    if s.epoch() == batches {
                        break;
                    }
                    std::thread::yield_now();
                });
            }
        });
        assert_eq!(registry.epoch(), batches);
    }
}
