//! Provenance-tracking evaluation of CQs and UCQs (Def. 2.2).
//!
//! A CQ evaluated over an abstractly-tagged K-database produces a
//! [`KRelation`]: each output tuple is annotated with an `N[X]` polynomial
//! summing, over all derivations yielding the tuple, the product of the
//! annotations of the derivation's image.
//!
//! There is exactly **one** evaluation pipeline ([`run_engine`]) and it
//! traffics in dictionary ids end-to-end: query constants are resolved to
//! [`ValueId`]s once per evaluation, variable bindings hold ids, index
//! probes hash ids, and owned [`Tuple`]s are materialized only when the
//! accumulated outputs decode at the end. The owned entry points
//! ([`eval_cq`], [`eval_ucq`]) are thin decode shims over the interned
//! ones.
//!
//! The pipeline dispatches on [`Execution`]: the vectorized block engine
//! ([`crate::exec`]) by default, or the scalar backtracking engine in this
//! module — the replay mode whose counters the PR 2–6 gates pin. Prefer the
//! [`Evaluator`](crate::Evaluator) builder over the free functions below;
//! the `*_mode` matrix survives only as `#[deprecated]` shims (all pinned to
//! [`Execution::Scalar`], matching their historical behavior).

use crate::exec::Execution;
use crate::interned::IKRelation;
use crate::plan::{
    cumulative_estimates, plan_cq_anchored, plan_cq_with_costs, replan_suffix, Adaptive, AtomCost,
    PlanMode, PlanTrace, PlanWork, QueryPlan, ReplanWork, Sideways,
};
use crate::vintern::{ValueId, ID_WIDTH, VALUE_MOVE_WIDTH};
use crate::{Cq, Database, Term, Tuple, Ucq, VarId};
use provabs_semiring::{AnnotId, Monomial, Polynomial, ProvStore};
use std::collections::{BTreeMap, HashMap, HashSet};

/// An output K-relation: output tuples with their provenance polynomials.
///
/// Ordered by tuple so iteration is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KRelation {
    tuples: BTreeMap<Tuple, Polynomial>,
}

impl KRelation {
    /// Number of distinct output tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether there are no outputs.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The provenance of `t` (zero if absent).
    pub fn provenance(&self, t: &Tuple) -> Polynomial {
        self.tuples.get(t).cloned().unwrap_or_else(Polynomial::zero)
    }

    /// Iterates over `(output, provenance)` in tuple order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &Polynomial)> {
        self.tuples.iter()
    }

    /// Adds `poly` to the provenance of `t`.
    pub fn add(&mut self, t: Tuple, poly: Polynomial) {
        let entry = self.tuples.entry(t).or_insert_with(Polynomial::zero);
        *entry = entry.add(&poly);
    }

    /// Subtracts `poly` from the provenance of `t`, dropping the output when
    /// its polynomial reaches zero. Returns `false` (leaving `self`
    /// untouched) when the subtraction would underflow — the delta being
    /// merged does not belong to this K-relation.
    pub fn subtract(&mut self, t: &Tuple, poly: &Polynomial) -> bool {
        if poly.is_zero() {
            return true;
        }
        let Some(entry) = self.tuples.get_mut(t) else {
            return false;
        };
        let Some(diff) = entry.checked_sub(poly) else {
            return false;
        };
        if diff.is_zero() {
            self.tuples.remove(t);
        } else {
            *entry = diff;
        }
        true
    }

    /// K-relation subsumption `self ⊆_K other` under the natural order of
    /// `N[X]` (Def. 3.8): every output's polynomial is dominated.
    pub fn contained_in(&self, other: &KRelation) -> bool {
        self.tuples
            .iter()
            .all(|(t, p)| p.nat_leq(&other.provenance(t)))
    }
}

impl FromIterator<(Tuple, Polynomial)> for KRelation {
    fn from_iter<I: IntoIterator<Item = (Tuple, Polynomial)>>(iter: I) -> Self {
        let mut out = KRelation::default();
        for (t, p) in iter {
            out.add(t, p);
        }
        out
    }
}

/// Resource limits for evaluation.
#[derive(Debug, Clone, Copy)]
pub struct EvalLimits {
    /// Stop after this many derivations (total across outputs).
    pub max_derivations: usize,
    /// Stop once this many distinct outputs have been produced. The
    /// evaluator may still add derivations to already-produced outputs.
    pub max_outputs: usize,
}

impl Default for EvalLimits {
    fn default() -> Self {
        Self {
            max_derivations: usize::MAX,
            max_outputs: usize::MAX,
        }
    }
}

/// Work counters of one evaluation: how much of the search space the join
/// engine actually touched. Deterministic for a given database + query, so
/// they make machine-independent perf-gate metrics (unlike wall time).
///
/// `rows_examined` and `derivations` are the PR-2 counters the
/// `BENCH_2.json` gate diffs; their semantics are untouched by the columnar
/// refactor (same plan, same candidate sets, same match rule). The storage
/// counters below were added with the dictionary-encoded engine and feed the
/// `BENCH_4.json` gate: for each probe and each binding/emit move the engine
/// counts both the id bytes it actually trafficked and the bytes the
/// row-oriented owned-`Value` engine it replaced would have hashed or moved
/// on the identical step — the ratio is the machine-independent speedup
/// proxy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalWork {
    /// Candidate rows examined across all atoms (every row the backtracking
    /// join tried to match, whether or not it bound).
    pub rows_examined: u64,
    /// Derivations emitted.
    pub derivations: u64,
    /// Index probes issued. The scalar engine probes once per bound column
    /// per atom visit; the block engine probes each query constant once per
    /// evaluation and each *distinct* variable id once per block per bound
    /// column (sorted-index lookups, not hashes).
    pub probes: u64,
    /// Bytes the probes fed a **hasher**: 4 per hash probe (a [`ValueId`]).
    /// Every scalar probe hashes, so `probe_bytes_id == probes * 4` there;
    /// block-path variable probes gallop a sorted index instead of hashing
    /// (their search work lands in `gallop_steps`), so only the
    /// once-per-evaluation constant probes count here.
    pub probe_bytes_id: u64,
    /// Bytes the same probes would have hashed on the owned path
    /// (discriminant + payload of each probed [`crate::Value`]).
    pub probe_bytes_value: u64,
    /// Bytes moved into variable bindings and output accumulation as ids.
    /// The scalar engine moves 4 bytes per newly bound variable per visited
    /// row; the block engine moves 8 bytes per surviving row (the row id and
    /// its parent pointer — bindings resolve through the block spine, never
    /// gathered). Both move 4 bytes per head variable per derivation.
    pub moved_bytes_id: u64,
    /// Bytes the same moves would have cloned as owned [`crate::Value`]s.
    pub moved_bytes_value: u64,
    /// Blocks the vectorized pipeline emitted downstream (0 under
    /// [`Execution::Scalar`]).
    pub blocks_emitted: u64,
    /// Candidate rows that survived the block engine's Select pass into an
    /// output block (0 under [`Execution::Scalar`]).
    pub selection_survivors: u64,
    /// Comparison steps of the block engine's sorted-merge/galloping
    /// searches — the hash-free counterpart of `probe_bytes_id` (0 under
    /// [`Execution::Scalar`]).
    pub gallop_steps: u64,
    /// Bytes crossing physical-operator boundaries. A tuple-at-a-time
    /// pipeline materializes every Select survivor's intermediate tuple —
    /// the bound columns plus the provenance prefix, 4 bytes each — and
    /// hands it to the next operator; the block pipeline hands a row id
    /// and a parent pointer (8 bytes per survivor) and gathers key and
    /// provenance columns through the block spine only at Materialize.
    /// Like `moved_bytes_value`, the scalar column is an exact replay of
    /// the identical evaluation, not an estimate; `BENCH_7.json` diffs the
    /// two.
    pub boundary_bytes: u64,
    /// Planner counters: queries planned, atoms reordered, estimated rows
    /// (see [`PlanWork`]).
    pub plan: PlanWork,
    /// Adaptive re-planning counters (see [`ReplanWork`]). All zero unless
    /// the evaluation ran with [`Adaptive`] enabled, so adaptivity-off
    /// counter baselines replay bit for bit.
    pub replan: ReplanWork,
}

impl EvalWork {
    /// Accumulates another evaluation's counters.
    pub fn absorb(&mut self, other: &EvalWork) {
        self.rows_examined += other.rows_examined;
        self.derivations += other.derivations;
        self.probes += other.probes;
        self.probe_bytes_id += other.probe_bytes_id;
        self.probe_bytes_value += other.probe_bytes_value;
        self.moved_bytes_id += other.moved_bytes_id;
        self.moved_bytes_value += other.moved_bytes_value;
        self.blocks_emitted += other.blocks_emitted;
        self.selection_survivors += other.selection_survivors;
        self.gallop_steps += other.gallop_steps;
        self.boundary_bytes += other.boundary_bytes;
        self.plan.absorb(&other.plan);
        self.replan.absorb(&other.replan);
    }
}

/// Evaluates a CQ, producing the full annotated output.
pub fn eval_cq(db: &Database, q: &Cq) -> KRelation {
    eval_cq_limited(db, q, EvalLimits::default())
}

/// Evaluates a CQ under [`EvalLimits`].
///
/// The evaluator executes the cost-based [`QueryPlan`] of the query (see
/// [`crate::plan_cq`]), backtracking over candidate rows fetched through
/// per-column hash indexes keyed by [`ValueId`].
pub fn eval_cq_limited(db: &Database, q: &Cq, limits: EvalLimits) -> KRelation {
    eval_cq_counted(db, q, limits).0
}

/// [`eval_cq_limited`] also reporting the [`EvalWork`] counters.
///
/// This is the thin owned boundary over the interned engine: derivations
/// accumulate as [`PolyId`](provabs_semiring::PolyId)s in a throwaway
/// [`ProvStore`] and resolve to owned polynomials only here. Callers that
/// evaluate repeatedly should hold a persistent store and call
/// [`eval_cq_counted_interned`] so the arena's hash-consing and operation
/// memos carry across evaluations.
pub fn eval_cq_counted(db: &Database, q: &Cq, limits: EvalLimits) -> (KRelation, EvalWork) {
    eval_cq_owned_impl(
        db,
        q,
        limits,
        PlanMode::default(),
        Execution::Scalar,
        None,
        None,
    )
}

/// Owned-boundary implementation behind [`eval_cq_counted`], the deprecated
/// `_mode` shim, and [`Evaluator`](crate::Evaluator). `adaptive` arms the
/// mid-join re-planning trigger; `plan_override` executes a caller-supplied
/// plan (a plan-cache hit) instead of planning — the caller guarantees it
/// was produced for this exact database content, query, mode and pivot.
pub(crate) fn eval_cq_owned_impl(
    db: &Database,
    q: &Cq,
    limits: EvalLimits,
    mode: PlanMode,
    exec: Execution,
    adaptive: Option<Adaptive>,
    plan_override: Option<&QueryPlan>,
) -> (KRelation, EvalWork) {
    let mut store = ProvStore::new();
    let (out, work) = run_engine(
        db,
        q,
        limits,
        None,
        &mut store,
        mode,
        exec,
        adaptive,
        plan_override,
    );
    (out.to_krelation(&store), work)
}

/// [`eval_cq_counted`] under an explicit [`PlanMode`].
///
/// The output K-relation of an **unlimited** evaluation is identical for
/// every mode (the join is order-independent); only the work counters move.
/// Under [`EvalLimits`] truncation, *which* outputs survive the cap depends
/// on enumeration order and therefore on the plan — callers replaying
/// checked-in counter baselines pass [`PlanMode::Greedy`].
#[deprecated(note = "use Evaluator::new(db).plan(mode).limits(limits).eval_cq(q)")]
pub fn eval_cq_counted_mode(
    db: &Database,
    q: &Cq,
    limits: EvalLimits,
    mode: PlanMode,
) -> (KRelation, EvalWork) {
    eval_cq_owned_impl(db, q, limits, mode, Execution::Scalar, None, None)
}

/// [`eval_cq_counted`] under an explicit [`PlanMode`], also returning the
/// executed [`QueryPlan`] and the engine's per-step actual row counts — the
/// estimated-versus-actual diagnostic surface of the planner
/// (`bench::planner` logs it; tests pin expected plans through it).
pub fn eval_cq_traced(
    db: &Database,
    q: &Cq,
    limits: EvalLimits,
    mode: PlanMode,
) -> (KRelation, EvalWork, PlanTrace) {
    eval_cq_traced_impl(db, q, limits, mode, Execution::Scalar, None, None)
}

/// Implementation behind [`eval_cq_traced`] and
/// [`Evaluator::eval_cq_traced`](crate::Evaluator::eval_cq_traced).
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_cq_traced_impl(
    db: &Database,
    q: &Cq,
    limits: EvalLimits,
    mode: PlanMode,
    exec: Execution,
    adaptive: Option<Adaptive>,
    plan_override: Option<&QueryPlan>,
) -> (KRelation, EvalWork, PlanTrace) {
    let mut store = ProvStore::new();
    let (out, work, trace) = run_engine_traced(
        db,
        q,
        limits,
        None,
        &mut store,
        mode,
        exec,
        adaptive,
        plan_override,
    );
    (out.to_krelation(&store), work, trace)
}

/// Interned counterpart of [`eval_cq_traced_impl`], behind
/// [`InternedEvaluator::eval_cq_traced`](crate::InternedEvaluator::eval_cq_traced):
/// interned callers (the search engine, `provabsd`) observe per-step
/// est-vs-actual without a decode shim.
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_cq_traced_interned_impl(
    db: &Database,
    q: &Cq,
    limits: EvalLimits,
    store: &mut ProvStore,
    mode: PlanMode,
    exec: Execution,
    adaptive: Option<Adaptive>,
    plan_override: Option<&QueryPlan>,
) -> (IKRelation, EvalWork, PlanTrace) {
    run_engine_traced(
        db,
        q,
        limits,
        None,
        store,
        mode,
        exec,
        adaptive,
        plan_override,
    )
}

/// The interned engine entry point: evaluates a CQ into an
/// [`IKRelation`] whose provenance lives in `store`.
pub fn eval_cq_counted_interned(
    db: &Database,
    q: &Cq,
    limits: EvalLimits,
    store: &mut ProvStore,
) -> (IKRelation, EvalWork) {
    run_engine(
        db,
        q,
        limits,
        None,
        store,
        PlanMode::default(),
        Execution::Scalar,
        None,
        None,
    )
}

/// [`eval_cq_counted_interned`] under an explicit [`PlanMode`].
#[deprecated(note = "use Evaluator::new(db).plan(mode).limits(limits).interned(store).eval_cq(q)")]
pub fn eval_cq_counted_interned_mode(
    db: &Database,
    q: &Cq,
    limits: EvalLimits,
    store: &mut ProvStore,
    mode: PlanMode,
) -> (IKRelation, EvalWork) {
    run_engine(
        db,
        q,
        limits,
        None,
        store,
        mode,
        Execution::Scalar,
        None,
        None,
    )
}

/// Restriction of an evaluation to derivations through a *pivot* atom
/// (semi-naive delta evaluation): the pivot body atom may only match rows
/// whose annotation is in `set`, body atoms *before* the pivot (in the
/// query's original atom order) may only match rows *outside* `set`, and
/// later atoms are unrestricted. Summed over all pivot positions this
/// counts every derivation touching `set` exactly once — the classic
/// delta-rule decomposition.
pub(crate) struct Restriction<'a> {
    /// Original body-atom index acting as the delta atom.
    pub pivot: usize,
    /// The delta annotations.
    pub set: &'a HashSet<AnnotId>,
    /// Precomputed rows of `set` members inside the pivot atom's relation
    /// (an access path so the pivot never scans).
    pub pivot_rows: &'a [usize],
}

pub(crate) fn eval_cq_restricted(
    db: &Database,
    q: &Cq,
    restriction: Restriction<'_>,
    store: &mut ProvStore,
    mode: PlanMode,
    exec: Execution,
) -> (IKRelation, EvalWork) {
    // Delta passes never re-plan adaptively: the pivot's precomputed delta
    // rows are already the exact access path, and keeping the restricted
    // path static preserves the PR 2 delta counter baselines bit for bit.
    run_engine(
        db,
        q,
        EvalLimits::default(),
        Some(restriction),
        store,
        mode,
        exec,
        None,
        None,
    )
}

/// Interned implementation behind the deprecated `_mode` shims and
/// [`InternedEvaluator`](crate::InternedEvaluator).
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_cq_interned_impl(
    db: &Database,
    q: &Cq,
    limits: EvalLimits,
    store: &mut ProvStore,
    mode: PlanMode,
    exec: Execution,
    adaptive: Option<Adaptive>,
    plan_override: Option<&QueryPlan>,
) -> (IKRelation, EvalWork) {
    run_engine(
        db,
        q,
        limits,
        None,
        store,
        mode,
        exec,
        adaptive,
        plan_override,
    )
}

/// One compiled body-atom position: the variable, or the constant resolved
/// against the value dictionary (`id: None` when the constant was never
/// interned — no stored row can match it). `width` carries the owned-path
/// hash cost of the constant for the counterfactual probe counter.
pub(crate) enum Slot {
    Var(VarId),
    Const { id: Option<ValueId>, width: u64 },
}

/// Per-output derivation accumulator of one evaluation, keyed by the
/// bindings of the head's variable positions (head constants are fixed
/// across derivations, so they are re-attached only when the outputs decode
/// once at the end): monomial ids with multiplicities. Outputs intern their
/// *final* polynomial once when the engine finishes, so the arena never
/// retains accumulation prefixes.
pub(crate) type Accum = BTreeMap<Vec<ValueId>, BTreeMap<provabs_semiring::MonoId, u64>>;

#[allow(clippy::too_many_arguments)]
fn run_engine(
    db: &Database,
    q: &Cq,
    limits: EvalLimits,
    restrict: Option<Restriction<'_>>,
    store: &mut ProvStore,
    mode: PlanMode,
    exec: Execution,
    adaptive: Option<Adaptive>,
    plan_override: Option<&QueryPlan>,
) -> (IKRelation, EvalWork) {
    let (out, work, _) = run_engine_traced(
        db,
        q,
        limits,
        restrict,
        store,
        mode,
        exec,
        adaptive,
        plan_override,
    );
    (out, work)
}

#[allow(clippy::too_many_arguments)]
fn run_engine_traced(
    db: &Database,
    q: &Cq,
    limits: EvalLimits,
    restrict: Option<Restriction<'_>>,
    store: &mut ProvStore,
    mode: PlanMode,
    exec: Execution,
    adaptive: Option<Adaptive>,
    plan_override: Option<&QueryPlan>,
) -> (IKRelation, EvalWork, PlanTrace) {
    let empty_trace = || PlanTrace {
        plan: QueryPlan {
            mode,
            pivoted: restrict.as_ref().map(|r| r.pivot),
            steps: Vec::new(),
        },
        actual_rows: Vec::new(),
    };
    if q.body.is_empty() {
        return (IKRelation::default(), EvalWork::default(), empty_trace());
    }
    // Statistics compile once per evaluation (constants resolve to ids
    // here, once — the slot compilation below reuses them); the dead-atom
    // short-circuit and the planner both read them. Short-circuit: an atom
    // whose relation is empty, or whose compiled constant resolves to no
    // id or an empty posting list, can never match, so no derivation
    // exists — whatever atom order would run and wherever that atom sits
    // in it. Without this check a dead atom ordered late still pays full
    // candidate iteration for every atom before it (and the slot
    // compilation it no longer needs).
    let costs = AtomCost::compile(db, q);
    if costs.iter().any(|c| c.dead) {
        return (IKRelation::default(), EvalWork::default(), empty_trace());
    }
    let compiled: Vec<Vec<Slot>> = q
        .body
        .iter()
        .zip(&costs)
        .map(|(atom, cost)| {
            atom.terms
                .iter()
                .enumerate()
                .map(|(col, t)| match t {
                    Term::Var(v) => Slot::Var(*v),
                    Term::Const(c) => Slot::Const {
                        id: cost.const_id(col),
                        width: crate::vintern::hash_width(c),
                    },
                })
                .collect()
        })
        .collect();
    let head_vars: Vec<VarId> = q.head.iter().filter_map(Term::as_var).collect();
    let mut acc = Accum::new();
    // A pivoted evaluation starts from the delta rows: they are the most
    // selective access path by construction; the rest of the body is the
    // planner's to order. A plan-cache hit skips the planning call — the
    // cache key's statistics fingerprint guarantees the cached plan is
    // byte-identical to what planning here would produce, so the hit path
    // and the cold path record identical counters.
    let plan = match plan_override {
        Some(p) => p.clone(),
        None => plan_cq_with_costs(db, q, &costs, mode, restrict.as_ref().map(|r| r.pivot)),
    };
    let order = plan.atom_order();
    let mut work = EvalWork::default();
    work.plan.record(&plan);
    let (mut work, actual_rows) = match exec {
        Execution::Scalar => {
            let thresholds = match adaptive {
                Some(ad) => cumulative_estimates(&plan.steps, 1)
                    .iter()
                    .map(|&c| ad.threshold(c))
                    .collect(),
                None => vec![u64::MAX; order.len()],
            };
            let mut engine = Engine {
                db,
                q,
                compiled,
                head_vars,
                limits,
                derivations: 0,
                work,
                depth_rows: vec![0; order.len()],
                out: &mut acc,
                store,
                order,
                restrict,
                key_buf: Vec::new(),
                costs: &costs,
                adaptive,
                thresholds,
                replanned: vec![false; plan.steps.len()],
                sideways: Sideways::default(),
            };
            let mut bindings: HashMap<VarId, ValueId> = HashMap::new();
            let mut image: Vec<provabs_semiring::AnnotId> = Vec::with_capacity(q.body.len());
            engine.solve(0, &mut bindings, &mut image);
            let actual_rows = std::mem::take(&mut engine.depth_rows);
            let mut work = engine.work;
            work.derivations = engine.derivations as u64;
            (work, actual_rows)
        }
        Execution::Block { block_size } => {
            // The block pipeline compiles its operator tree per plan, so a
            // mis-estimate aborts the attempt deterministically and the
            // whole query restarts under a re-anchored plan: the exploded
            // step's atom keeps its observed cardinality as an estimate
            // floor, deferring it behind atoms still believed cheap. Work
            // counters accumulate across attempts (aborted work was really
            // done); the accumulator and derivation counts reset.
            let n = plan.steps.len();
            let mut attempt_plan = plan.clone();
            let mut anchors: BTreeMap<usize, u64> = BTreeMap::new();
            let mut attempts = 0usize;
            let mut watchdog = adaptive;
            let depth_rows = loop {
                let mut depth_rows = vec![0u64; n];
                let thresholds: Option<Vec<u64>> = watchdog.map(|ad| {
                    cumulative_estimates(&attempt_plan.steps, 1)
                        .iter()
                        .map(|&c| ad.threshold(c))
                        .collect()
                });
                acc.clear();
                let (derivations, aborted) = crate::exec::run_block(
                    db,
                    q,
                    &compiled,
                    &head_vars,
                    limits,
                    restrict.as_ref(),
                    &attempt_plan,
                    store,
                    &mut acc,
                    &mut work,
                    &mut depth_rows,
                    block_size,
                    thresholds.as_deref(),
                );
                let Some(depth) = aborted else {
                    work.derivations = derivations;
                    break depth_rows;
                };
                attempts += 1;
                work.replan.replans_triggered += 1;
                let observed = depth_rows[depth];
                let cums = cumulative_estimates(&attempt_plan.steps, 1);
                let err = observed / cums[depth].max(1);
                work.replan.est_error_max = work.replan.est_error_max.max(err);
                let atom = attempt_plan.steps[depth].atom;
                let floor = anchors.get(&atom).copied().unwrap_or(0).max(observed);
                anchors.insert(atom, floor);
                let next = plan_cq_anchored(
                    db,
                    q,
                    &costs,
                    mode,
                    restrict.as_ref().map(|r| r.pivot),
                    &anchors,
                );
                let moved = next
                    .steps
                    .iter()
                    .zip(&attempt_plan.steps)
                    .filter(|(a, b)| a.atom != b.atom)
                    .count() as u64;
                work.replan.steps_replanned += moved;
                if moved == 0 || attempts > n {
                    // Re-anchoring found no better order (or every atom
                    // has aborted once): finish under the current plan
                    // with the watchdog disarmed.
                    watchdog = None;
                } else {
                    attempt_plan = next;
                }
            };
            (work, depth_rows)
        }
    };
    if adaptive.is_some() {
        // Worst mis-estimate of the *initial* plan, whatever re-planning
        // later did about it. Under block restarts the reported actuals
        // are the final attempt's, so the abort loop above already folded
        // the aborted attempts' errors in.
        let cums = cumulative_estimates(&plan.steps, 1);
        for (d, &actual) in actual_rows.iter().enumerate() {
            let err = actual / cums[d].max(1);
            work.replan.est_error_max = work.replan.est_error_max.max(err);
        }
    }
    let trace = PlanTrace { plan, actual_rows };
    // Decode boundary: each distinct output materializes its owned tuple
    // exactly once, interleaving head constants with the accumulated
    // variable bindings.
    let out = IKRelation::from_map(
        acc.into_iter()
            .map(|(key, terms)| {
                let mut vals = key.iter();
                let tuple: Tuple = q
                    .head
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => c.clone(),
                        Term::Var(_) => db
                            .value(*vals.next().expect("binding per head var"))
                            .clone(),
                    })
                    .collect();
                (tuple, store.intern_mono_terms(terms))
            })
            .collect(),
    );
    (out, work, trace)
}

/// Evaluates a UCQ: the sum of its disjuncts' outputs.
pub fn eval_ucq(db: &Database, u: &Ucq) -> KRelation {
    let mut store = ProvStore::new();
    eval_ucq_interned(db, u, &mut store).to_krelation(&store)
}

/// [`eval_ucq`] against a caller-owned [`ProvStore`]: disjunct outputs move
/// into the sum (no polynomial clones) and the arena memos persist for the
/// caller's next evaluation.
pub fn eval_ucq_interned(db: &Database, u: &Ucq, store: &mut ProvStore) -> IKRelation {
    eval_ucq_interned_impl(db, u, store, PlanMode::default(), Execution::Scalar, None).0
}

/// [`eval_ucq_interned`] under an explicit [`PlanMode`] (each disjunct is
/// planned independently).
#[deprecated(note = "use Evaluator::new(db).plan(mode).interned(store).eval_ucq(u)")]
pub fn eval_ucq_interned_mode(
    db: &Database,
    u: &Ucq,
    store: &mut ProvStore,
    mode: PlanMode,
) -> IKRelation {
    eval_ucq_interned_impl(db, u, store, mode, Execution::Scalar, None).0
}

/// UCQ implementation behind the shims and
/// [`InternedEvaluator`](crate::InternedEvaluator): sums the disjuncts'
/// outputs and work.
pub(crate) fn eval_ucq_interned_impl(
    db: &Database,
    u: &Ucq,
    store: &mut ProvStore,
    mode: PlanMode,
    exec: Execution,
    adaptive: Option<Adaptive>,
) -> (IKRelation, EvalWork) {
    let mut out = IKRelation::default();
    let mut work = EvalWork::default();
    for d in &u.disjuncts {
        let (part, dwork) = run_engine(
            db,
            d,
            EvalLimits::default(),
            None,
            store,
            mode,
            exec,
            adaptive,
            None,
        );
        work.absorb(&dwork);
        out.absorb(store, part);
    }
    (out, work)
}

/// Evaluates a batch of CQs across `workers` scoped threads sharing one
/// database — no cloning, no `unsafe`: [`Database`] is `Send + Sync`
/// (plain `Vec`/`HashMap` columnar storage plus an append-only value
/// dictionary, no interior mutability), so every worker evaluates through
/// the same `&Database`, including its hash indexes and interner. Results
/// come back in input order regardless of which worker produced them.
///
/// Build the indexes *before* fanning out ([`Database::build_indexes`]
/// takes `&mut self`): an unindexed database still evaluates correctly but
/// every bound-column probe degrades to a scan.
///
/// ```
/// use provabs_relational::{eval_cq, eval_cqs_parallel, parse_cq, Database};
///
/// let mut db = Database::new();
/// let r = db.add_relation("R", &["a", "b"]);
/// db.insert_str(r, "t1", &["1", "2"]);
/// db.insert_str(r, "t2", &["2", "3"]);
/// db.build_indexes();
/// let q1 = parse_cq("Q(x) :- R(x, y)", db.schema()).unwrap();
/// let q2 = parse_cq("Q(x, z) :- R(x, y), R(y, z)", db.schema()).unwrap();
///
/// let parallel = eval_cqs_parallel(&db, &[q1.clone(), q2.clone()], 2);
/// assert_eq!(parallel[0], eval_cq(&db, &q1));
/// assert_eq!(parallel[1], eval_cq(&db, &q2));
/// ```
pub fn eval_cqs_parallel(db: &Database, queries: &[Cq], workers: usize) -> Vec<KRelation> {
    let workers = workers.max(1).min(queries.len().max(1));
    if workers <= 1 || queries.len() <= 1 {
        return queries.iter().map(|q| eval_cq(db, q)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<KRelation>> = Vec::new();
    slots.resize_with(queries.len(), || None);
    let slots = std::sync::Mutex::new(slots);
    std::thread::scope(|s| {
        for _ in 0..workers {
            let (next, slots) = (&next, &slots);
            s.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= queries.len() {
                    break;
                }
                let out = eval_cq(db, &queries[i]);
                slots.lock().expect("result lock poisoned")[i] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .expect("result lock poisoned")
        .into_iter()
        .map(|r| r.expect("every query slot filled"))
        .collect()
}

/// A candidate row set: a borrowed posting list (the indexed fast path), an
/// owned row list (scans, delta pivots), or the full relation.
enum Cand<'a> {
    Borrowed(&'a [u32]),
    Owned(Vec<u32>),
    Range(u32),
}

impl Cand<'_> {
    fn len(&self) -> usize {
        match self {
            Cand::Borrowed(s) => s.len(),
            Cand::Owned(v) => v.len(),
            Cand::Range(n) => *n as usize,
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn for_each(&self, mut f: impl FnMut(u32) -> bool) -> bool {
        match self {
            Cand::Borrowed(s) => s.iter().all(|&r| f(r)),
            Cand::Owned(v) => v.iter().all(|&r| f(r)),
            Cand::Range(n) => (0..*n).all(f),
        }
    }
}

struct Engine<'a> {
    db: &'a Database,
    q: &'a Cq,
    /// Per body atom (original order): the dictionary-compiled terms.
    compiled: Vec<Vec<Slot>>,
    /// Head variables in head-position order (the accumulation key shape).
    head_vars: Vec<VarId>,
    limits: EvalLimits,
    derivations: usize,
    work: EvalWork,
    /// Candidate rows examined per plan depth (the per-step "actual" the
    /// trace reports next to the plan's estimates).
    depth_rows: Vec<u64>,
    out: &'a mut Accum,
    store: &'a mut ProvStore,
    order: Vec<usize>,
    restrict: Option<Restriction<'a>>,
    /// Scratch for the output key: reused across derivations, cloned only
    /// when a new output first enters the accumulator.
    key_buf: Vec<ValueId>,
    /// Compiled atom statistics, shared with the planner — suffix re-plans
    /// re-estimate against these without re-probing the dictionary.
    costs: &'a [AtomCost],
    /// Mid-join re-planning configuration; `None` replays the static
    /// engine bit for bit (the thresholds below are all `u64::MAX`).
    adaptive: Option<Adaptive>,
    /// Per-depth trigger thresholds: `k ×` the plan's cumulative estimate
    /// at that depth, re-anchored whenever a re-plan rewrites the suffix.
    thresholds: Vec<u64>,
    /// Depths whose trigger already fired. A shallower re-plan re-arms the
    /// deeper flags (their estimates are fresh), so re-plans per depth are
    /// bounded by the depths above it — never unbounded.
    replanned: Vec<bool>,
    /// Sideways-exported observed bindings (adaptive runs only).
    sideways: Sideways,
}

impl Engine<'_> {
    /// Deterministic mid-join suffix re-plan, fired by the row counter at
    /// `depth` crossing its threshold. Safe exactly here: between candidate
    /// rows at `depth`, no binding from a deeper frame is live, so the
    /// atoms at `order[depth + 1..]` can be reordered freely — frames at or
    /// above `depth` read their atom once on entry and re-read the order
    /// only when they recurse, which always happens after this returns.
    /// The new suffix re-anchors on the observed frontier cardinality
    /// (`depth_rows[depth]`) and estimates with the sideways-observed
    /// postings of every bound variable.
    fn replan_at(&mut self, depth: usize) {
        self.replanned[depth] = true;
        self.work.replan.replans_triggered += 1;
        let suffix_start = depth + 1;
        if suffix_start >= self.order.len() {
            return; // nothing left to reorder
        }
        let mut bound: std::collections::BTreeSet<VarId> = std::collections::BTreeSet::new();
        for &a in &self.order[..suffix_start] {
            bound.extend(self.q.body[a].variables());
        }
        let remaining: Vec<usize> = self.order[suffix_start..].to_vec();
        let steps = replan_suffix(
            self.db,
            self.q,
            self.costs,
            &remaining,
            &bound,
            &self.sideways,
        );
        let moved = steps
            .iter()
            .zip(&remaining)
            .filter(|(s, &old)| s.atom != old)
            .count() as u64;
        self.work.replan.steps_replanned += moved;
        let Some(ad) = self.adaptive else {
            unreachable!("replan_at only fires on adaptive runs");
        };
        let mut cum = self.depth_rows[depth].max(1);
        for (i, step) in steps.iter().enumerate() {
            let d = suffix_start + i;
            self.order[d] = step.atom;
            cum = cum.saturating_mul(step.est_rows.max(1));
            self.thresholds[d] = ad.threshold(cum);
            // Fresh estimates get a fresh trigger; re-plans per depth stay
            // bounded because each firing needs a shallower one to re-arm.
            self.replanned[d] = false;
        }
    }

    fn solve(
        &mut self,
        depth: usize,
        bindings: &mut HashMap<VarId, ValueId>,
        image: &mut Vec<provabs_semiring::AnnotId>,
    ) -> bool {
        if self.derivations >= self.limits.max_derivations {
            return false;
        }
        let db = self.db;
        if depth == self.order.len() {
            // Emit one derivation: the output key is the head variables'
            // bindings — 4 bytes each, where the owned engine cloned a
            // `Value` per head position. The key lands in a scratch buffer
            // and allocates only when the output is new.
            let Engine {
                head_vars, key_buf, ..
            } = self;
            key_buf.clear();
            key_buf.extend(head_vars.iter().map(|v| bindings[v]));
            self.work.moved_bytes_id += ID_WIDTH * self.key_buf.len() as u64;
            self.work.moved_bytes_value += VALUE_MOVE_WIDTH * self.q.head.len() as u64;
            // Materialize projects the head columns out of the tuple it
            // received.
            self.work.boundary_bytes += ID_WIDTH * self.key_buf.len() as u64;
            let is_new = !self.out.contains_key(self.key_buf.as_slice());
            if is_new && self.out.len() >= self.limits.max_outputs {
                return true; // skip new outputs, keep exploring existing ones
            }
            // Hash-consed: a repeated derivation image is an O(1) arena hit.
            // Multiplicities accumulate in the scratch map; the final
            // polynomial is interned once per output after the search.
            let mono = self
                .store
                .intern_monomial(Monomial::from_annots(image.iter().copied()));
            if is_new {
                self.out.insert(self.key_buf.clone(), BTreeMap::new());
            }
            let coeff = self
                .out
                .get_mut(self.key_buf.as_slice())
                .expect("accumulator entry just ensured")
                .entry(mono)
                .or_insert(0);
            *coeff = coeff.saturating_add(1);
            self.derivations += 1;
            return true;
        }
        let orig = self.order[depth];
        let q = self.q;
        let atom = &q.body[orig];
        // Pick the most selective access path among bound positions. For
        // the pivot atom of a restricted evaluation the delta rows are a
        // candidate access path too.
        let mut candidates: Option<Cand<'_>> = None;
        if let Some(r) = &self.restrict {
            if orig == r.pivot {
                candidates = Some(Cand::Owned(
                    r.pivot_rows.iter().map(|&r| r as u32).collect(),
                ));
            }
        }
        for (col, slot) in self.compiled[orig].iter().enumerate() {
            // Probe by id: every bound position hashes 4 bytes, whatever
            // the width of the value it encodes.
            let id: Option<Option<ValueId>> = match slot {
                Slot::Const { id, .. } => Some(*id),
                Slot::Var(v) => bindings.get(v).map(|&b| Some(b)),
            };
            if let Some(id) = id {
                let width = match (slot, id) {
                    (Slot::Const { width, .. }, _) => *width,
                    (_, Some(b)) => db.interner().hash_width(b),
                    _ => unreachable!("bound variables always hold interned ids"),
                };
                let rows = match id {
                    None => Cand::Owned(Vec::new()), // constant outside the domain
                    Some(id) => match db.postings(atom.rel, col, id) {
                        Some(postings) => Cand::Borrowed(postings),
                        None => Cand::Owned(db.scan_matching(atom.rel, col, id)),
                    },
                };
                self.work.probes += 1;
                self.work.probe_bytes_id += ID_WIDTH;
                self.work.probe_bytes_value += width;
                if candidates.as_ref().is_none_or(|c| rows.len() < c.len()) {
                    candidates = Some(rows);
                }
                if candidates.as_ref().is_some_and(Cand::is_empty) {
                    return true;
                }
            }
        }
        let rows = candidates.unwrap_or_else(|| Cand::Range(db.relation_len(atom.rel) as u32));
        let annots = db.tuple_annots(atom.rel);
        // Hoist the column slices once per atom visit: the match loop below
        // runs per candidate row and must not re-resolve the relation.
        let cols: Vec<&[ValueId]> = (0..atom.terms.len())
            .map(|col| db.column(atom.rel, col))
            .collect();
        let mut keep_going = true;
        rows.for_each(|row| {
            let row = row as usize;
            self.work.rows_examined += 1;
            self.depth_rows[depth] += 1;
            if self.adaptive.is_some()
                && self.depth_rows[depth] > self.thresholds[depth]
                && !self.replanned[depth]
            {
                self.replan_at(depth);
            }
            if let Some(r) = &self.restrict {
                // Membership by original atom position: before the pivot
                // only non-delta rows, at the pivot only delta rows.
                let in_set = r.set.contains(&annots[row]);
                match orig.cmp(&r.pivot) {
                    std::cmp::Ordering::Less if in_set => return true,
                    std::cmp::Ordering::Equal if !in_set => return true,
                    _ => {}
                }
            }
            let mut newly_bound: Vec<VarId> = Vec::new();
            for (col, slot) in self.compiled[orig].iter().enumerate() {
                let cell = cols[col][row];
                match slot {
                    Slot::Const { id, .. } => {
                        if *id != Some(cell) {
                            for v in newly_bound.drain(..) {
                                bindings.remove(&v);
                            }
                            return true;
                        }
                    }
                    Slot::Var(v) => match bindings.get(v) {
                        Some(&bound) => {
                            if bound != cell {
                                for v in newly_bound.drain(..) {
                                    bindings.remove(&v);
                                }
                                return true;
                            }
                        }
                        None => {
                            // Binding moves 4 id bytes; the owned engine
                            // cloned the full `Value` here.
                            self.work.moved_bytes_id += ID_WIDTH;
                            self.work.moved_bytes_value += VALUE_MOVE_WIDTH;
                            if self.adaptive.is_some() {
                                self.sideways.record(*v, cell);
                            }
                            bindings.insert(*v, cell);
                            newly_bound.push(*v);
                        }
                    },
                }
            }
            image.push(annots[row]);
            // The tuple-at-a-time operator boundary: the survivor's full
            // intermediate tuple — every bound column plus the provenance
            // prefix — crosses to the next operator.
            self.work.boundary_bytes += ID_WIDTH * (bindings.len() + image.len()) as u64;
            keep_going = self.solve(depth + 1, bindings, image);
            image.pop();
            for v in newly_bound {
                bindings.remove(&v);
            }
            keep_going
        });
        keep_going
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_cq;
    use provabs_semiring::Monomial;

    /// The running-example database of Figure 1.
    pub(crate) fn figure1_db() -> Database {
        let mut db = Database::new();
        let interests = db.add_relation("Interests", &["pid", "interest", "source"]);
        let hobbies = db.add_relation("Hobbies", &["pid", "hobby", "source"]);
        let persons = db.add_relation("Person", &["pid", "name", "age"]);
        db.insert_str(interests, "i1", &["1", "Music", "WikiLeaks"]);
        db.insert_str(interests, "i2", &["2", "Music", "Facebook"]);
        db.insert_str(interests, "i3", &["3", "Music", "LinkedIn"]);
        db.insert_str(interests, "i4", &["1", "Parties", "WikiLeaks"]);
        db.insert_str(interests, "i5", &["2", "Parties", "Facebook"]);
        db.insert_str(interests, "i6", &["4", "Movies", "WikiLeaks"]);
        db.insert_str(hobbies, "h1", &["1", "Dance", "Facebook"]);
        db.insert_str(hobbies, "h2", &["2", "Dance", "LinkedIn"]);
        db.insert_str(hobbies, "h3", &["4", "Dance", "Facebook"]);
        db.insert_str(hobbies, "h4", &["1", "Trips", "Facebook"]);
        db.insert_str(hobbies, "h5", &["2", "Trips", "LinkedIn"]);
        db.insert_str(hobbies, "h6", &["3", "Trips", "WikiLeaks"]);
        db.insert_str(persons, "p1", &["1", "James T", "27"]);
        db.insert_str(persons, "p2", &["2", "Brenda P", "31"]);
        db.build_indexes();
        db
    }

    fn annot(db: &Database, name: &str) -> provabs_semiring::AnnotId {
        db.annotations().get(name).unwrap()
    }

    #[test]
    fn qreal_produces_figure_2a() {
        let db = figure1_db();
        let q = parse_cq(
            "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', src1), Interests(id, 'Music', src2)",
            db.schema(),
        )
        .unwrap();
        let out = eval_cq(&db, &q);
        assert_eq!(out.len(), 2);
        let row1 = out.provenance(&Tuple::parse(&["1"]));
        let expected1 =
            Monomial::from_annots([annot(&db, "p1"), annot(&db, "h1"), annot(&db, "i1")]);
        assert_eq!(row1.coefficient(&expected1), 1);
        assert_eq!(row1.num_monomials(), 1);
        let row2 = out.provenance(&Tuple::parse(&["2"]));
        let expected2 =
            Monomial::from_annots([annot(&db, "p2"), annot(&db, "h2"), annot(&db, "i2")]);
        assert_eq!(row2.coefficient(&expected2), 1);
    }

    #[test]
    fn self_join_squares_annotation() {
        let mut db = Database::new();
        let r = db.add_relation("R", &["a", "b"]);
        db.insert_str(r, "t1", &["1", "1"]);
        db.build_indexes();
        // Q(x) :- R(x, y), R(y, x): t1 joins with itself, provenance t1^2.
        let q = parse_cq("Q(x) :- R(x, y), R(y, x)", db.schema()).unwrap();
        let out = eval_cq(&db, &q);
        let p = out.provenance(&Tuple::parse(&["1"]));
        let t1 = annot(&db, "t1");
        assert_eq!(p.coefficient(&Monomial::from_factors([(t1, 2)])), 1);
    }

    #[test]
    fn multiple_derivations_sum_coefficients() {
        let mut db = Database::new();
        let r = db.add_relation("R", &["a", "b"]);
        let s = db.add_relation("S", &["b"]);
        db.insert_str(r, "r1", &["1", "10"]);
        db.insert_str(s, "s1", &["10"]);
        db.insert_str(s, "s2", &["10"]);
        db.build_indexes();
        // Q(x) :- R(x, y), S(y): two derivations for output (1).
        let q = parse_cq("Q(x) :- R(x, y), S(y)", db.schema()).unwrap();
        let out = eval_cq(&db, &q);
        let p = out.provenance(&Tuple::parse(&["1"]));
        assert_eq!(p.num_monomials(), 2);
    }

    #[test]
    fn constants_filter() {
        let db = figure1_db();
        let q = parse_cq("Q(id) :- Hobbies(id, 'Trips', s)", db.schema()).unwrap();
        let out = eval_cq(&db, &q);
        assert_eq!(out.len(), 3); // ids 1, 2, 3
        assert!(out.provenance(&Tuple::parse(&["4"])).is_zero());
    }

    #[test]
    fn unknown_constants_match_nothing() {
        // 'Knitting' was never interned: the compiled slot resolves to no
        // id and the candidate set is empty without touching an index.
        let db = figure1_db();
        let q = parse_cq("Q(id) :- Hobbies(id, 'Knitting', s)", db.schema()).unwrap();
        let (out, work) = eval_cq_counted(&db, &q, EvalLimits::default());
        assert!(out.is_empty());
        assert_eq!(work.rows_examined, 0);
        // Head constants outside the domain still decode into outputs.
        let q2 = parse_cq("Q(id, 'madeup') :- Hobbies(id, 'Dance', s)", db.schema()).unwrap();
        let out2 = eval_cq(&db, &q2);
        assert_eq!(out2.len(), 3);
        assert!(!out2.provenance(&Tuple::parse(&["1", "madeup"])).is_zero());
    }

    #[test]
    fn dead_constant_atoms_short_circuit_with_zero_probes() {
        // 'Dance' is interned but every Dance row is deleted below, leaving
        // an *empty posting list* (unlike the never-interned case): the
        // engine must conclude emptiness at compile time. Regression: the
        // engine used to iterate every candidate row of the atoms ordered
        // before the dead one.
        let mut db = figure1_db();
        for label in ["h1", "h2", "h3"] {
            let a = db.annotations().get(label).unwrap();
            db.delete(a).unwrap();
        }
        let q = parse_cq(
            "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', src)",
            db.schema(),
        )
        .unwrap();
        for mode in [
            crate::PlanMode::CostBased,
            crate::PlanMode::Greedy,
            crate::PlanMode::WrittenOrder,
        ] {
            for exec in [Execution::Scalar, Execution::default()] {
                let (out, work) = super::eval_cq_owned_impl(
                    &db,
                    &q,
                    EvalLimits::default(),
                    mode,
                    exec,
                    None,
                    None,
                );
                assert!(out.is_empty(), "{mode:?}/{exec:?}");
                assert_eq!(work.rows_examined, 0, "{mode:?}/{exec:?}: examined rows");
                assert_eq!(work.probes, 0, "{mode:?}/{exec:?}: issued index probes");
                assert_eq!(work.plan.queries_planned, 0, "{mode:?}/{exec:?}: planned");
            }
        }
        // The delta path short-circuits identically.
        let deletes: std::collections::HashSet<_> =
            [db.annotations().get("p1").unwrap()].into_iter().collect();
        let (removed, dwork) = crate::eval_cq_retractions(&db, &q, &deletes);
        assert!(removed.is_empty());
        assert_eq!(dwork.rows_examined, 0);
        assert_eq!(dwork.probes, 0);
    }

    #[test]
    fn limits_cap_outputs() {
        let db = figure1_db();
        let q = parse_cq("Q(id) :- Hobbies(id, h, s)", db.schema()).unwrap();
        let out = eval_cq_limited(
            &db,
            &q,
            EvalLimits {
                max_outputs: 2,
                ..Default::default()
            },
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn limits_cap_derivations() {
        let db = figure1_db();
        let q = parse_cq("Q(id) :- Hobbies(id, h, s)", db.schema()).unwrap();
        let out = eval_cq_limited(
            &db,
            &q,
            EvalLimits {
                max_derivations: 1,
                ..Default::default()
            },
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn ucq_sums_disjuncts() {
        let db = figure1_db();
        let u = crate::parse_ucq(
            "Q(id) :- Hobbies(id, 'Dance', s); Q(id) :- Interests(id, 'Music', s)",
            db.schema(),
        )
        .unwrap();
        let out = eval_ucq(&db, &u);
        // id 1 has both a Dance hobby and a Music interest: 2 monomials.
        assert_eq!(out.provenance(&Tuple::parse(&["1"])).num_monomials(), 2);
        // id 4 only dances.
        assert_eq!(out.provenance(&Tuple::parse(&["4"])).num_monomials(), 1);
    }

    #[test]
    fn containment_of_krelations() {
        let db = figure1_db();
        let narrow = parse_cq(
            "Q(id) :- Person(id, n, a), Hobbies(id, 'Dance', s)",
            db.schema(),
        )
        .unwrap();
        let wide = parse_cq("Q(id) :- Person(id, n, a), Hobbies(id, h, s)", db.schema()).unwrap();
        let narrow_out = eval_cq(&db, &narrow);
        let wide_out = eval_cq(&db, &wide);
        assert!(narrow_out.contained_in(&wide_out));
        assert!(!wide_out.contained_in(&narrow_out));
    }

    #[test]
    fn empty_body_produces_nothing() {
        let db = figure1_db();
        let q = Cq::new(vec![], vec![]);
        assert!(eval_cq(&db, &q).is_empty());
    }

    #[test]
    fn probe_work_counters_show_the_id_reduction() {
        let db = figure1_db();
        let q = parse_cq(
            "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', src1), Interests(id, 'Music', src2)",
            db.schema(),
        )
        .unwrap();
        let (_, work) = eval_cq_counted(&db, &q, EvalLimits::default());
        assert!(work.probes > 0);
        assert_eq!(work.probe_bytes_id, work.probes * 4);
        assert!(
            work.probe_bytes_id * 2 <= work.probe_bytes_value,
            "id probes {} vs owned {}",
            work.probe_bytes_id,
            work.probe_bytes_value
        );
        assert!(work.moved_bytes_id * 2 <= work.moved_bytes_value);
        // Deterministic: same database, same query, same counters.
        let (_, again) = eval_cq_counted(&db, &q, EvalLimits::default());
        assert_eq!(work, again);
    }

    #[test]
    fn block_execution_matches_scalar_and_moves_less() {
        let db = figure1_db();
        let queries = [
            "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', src1), Interests(id, 'Music', src2)",
            "Q(a, b) :- Hobbies(a, h, s1), Hobbies(b, h, s2)",
            "Q(id, h) :- Hobbies(id, h, s), Interests(id, i, s2)",
            "Q(id) :- Hobbies(id, h, s)",
        ];
        for (i, text) in queries.iter().enumerate() {
            let q = parse_cq(text, db.schema()).unwrap();
            let (scalar, swork) = super::eval_cq_owned_impl(
                &db,
                &q,
                EvalLimits::default(),
                crate::PlanMode::CostBased,
                Execution::Scalar,
                None,
                None,
            );
            // Scalar replay never touches the block counters (the perf
            // gates bit-diff EvalWork).
            assert_eq!(swork.blocks_emitted, 0, "query {i}");
            assert_eq!(swork.selection_survivors, 0, "query {i}");
            assert_eq!(swork.gallop_steps, 0, "query {i}");
            for block_size in [1, 2, 3, crate::exec::DEFAULT_BLOCK_SIZE] {
                let (block, bwork) = super::eval_cq_owned_impl(
                    &db,
                    &q,
                    EvalLimits::default(),
                    crate::PlanMode::CostBased,
                    Execution::Block { block_size },
                    None,
                    None,
                );
                assert_eq!(block, scalar, "query {i} block_size {block_size}");
                assert_eq!(bwork.derivations, swork.derivations);
                assert!(bwork.blocks_emitted > 0, "query {i}");
            }
        }
    }

    #[test]
    fn traced_evaluation_reports_per_step_actuals() {
        let db = figure1_db();
        let q = parse_cq(
            "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', src1), Interests(id, 'Music', src2)",
            db.schema(),
        )
        .unwrap();
        let (out, work, trace) =
            super::eval_cq_traced(&db, &q, EvalLimits::default(), crate::PlanMode::CostBased);
        assert_eq!(out, eval_cq(&db, &q));
        assert_eq!(trace.plan.steps.len(), q.body.len());
        assert_eq!(trace.actual_rows.len(), q.body.len());
        // Per-step actuals decompose the engine's total exactly.
        assert_eq!(trace.actual_rows.iter().sum::<u64>(), work.rows_examined);
        assert_eq!(work.plan.queries_planned, 1);
        assert_eq!(work.plan.est_rows, trace.plan.est_rows_total());
        // Person (2 rows) beats the 'Dance' posting list (3 rows) and
        // opens the plan.
        assert_eq!(trace.plan.steps[0].atom, 0);
        assert_eq!(trace.actual_rows[0], 2);
    }

    #[test]
    fn database_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
        assert_send_sync::<KRelation>();
    }

    #[test]
    fn parallel_batch_matches_sequential_in_order() {
        let db = figure1_db();
        let queries: Vec<Cq> = [
            "Q(id) :- Hobbies(id, 'Dance', s)",
            "Q(id) :- Interests(id, 'Music', s)",
            "Q(id) :- Person(id, n, a), Hobbies(id, 'Dance', s1), Interests(id, 'Music', s2)",
            "Q(id) :- Hobbies(id, h, s)",
            "Q(x) :- Person(x, n, a)",
        ]
        .iter()
        .map(|q| parse_cq(q, db.schema()).unwrap())
        .collect();
        for workers in [1, 2, 4, 16] {
            let par = eval_cqs_parallel(&db, &queries, workers);
            assert_eq!(par.len(), queries.len());
            for (i, q) in queries.iter().enumerate() {
                assert_eq!(par[i], eval_cq(&db, q), "workers={workers} query={i}");
            }
        }
    }
}
