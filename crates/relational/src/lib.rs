//! Annotated relational layer for the provabs system.
//!
//! Implements the §2.1 preliminaries of *"On Optimizing the Trade-off between
//! Privacy and Utility in Data Provenance"* (SIGMOD 2021): database schemas
//! over a domain of constants, **abstractly-tagged K-databases** (every tuple
//! annotated with a distinct element of the annotation set `X`), unions of
//! conjunctive queries, provenance-tracking query evaluation in `N[X]`
//! (Def. 2.2), and **K-examples** (Def. 2.4) — pairs of output examples and
//! their provenance.
//!
//! # Example
//!
//! ```
//! use provabs_relational::{Database, parse_cq, eval_cq};
//!
//! let mut db = Database::new();
//! let person = db.add_relation("Person", &["pid", "name", "age"]);
//! db.insert_str(person, "p1", &["1", "James T", "27"]);
//! db.insert_str(person, "p2", &["2", "Brenda P", "31"]);
//!
//! let q = parse_cq("Q(id) :- Person(id, name, age)", db.schema()).unwrap();
//! let out = eval_cq(&db, &q);
//! assert_eq!(out.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod database;
mod delta;
mod eval;
mod evaluator;
mod exec;
mod interned;
mod kexample;
pub mod oracle;
mod parser;
pub mod plan;
pub mod plancache;
mod query;
mod schema;
pub mod session;
pub mod storage;
mod tuple;
mod value;
mod vintern;

pub use database::{Database, TupleRef};
pub use delta::{
    apply_delta_with_queries, apply_delta_with_queries_interned, eval_cq_additions,
    eval_cq_additions_interned, eval_cq_retractions, eval_cq_retractions_interned,
    eval_ucq_additions, eval_ucq_retractions, AppliedDelta, Delta, DeltaEvalOutcome, DeltaInsert,
    IDeltaEvalOutcome, KRelationDelta,
};
#[allow(deprecated)]
pub use delta::{
    apply_delta_with_queries_interned_mode, apply_delta_with_queries_mode,
    eval_cq_additions_interned_mode, eval_cq_retractions_interned_mode, eval_ucq_additions_mode,
    eval_ucq_retractions_mode,
};
pub use eval::{
    eval_cq, eval_cq_counted, eval_cq_counted_interned, eval_cq_limited, eval_cq_traced,
    eval_cqs_parallel, eval_ucq, eval_ucq_interned, EvalLimits, EvalWork, KRelation,
};
#[allow(deprecated)]
pub use eval::{eval_cq_counted_interned_mode, eval_cq_counted_mode, eval_ucq_interned_mode};
pub use evaluator::{Evaluator, InternedEvaluator, Updater};
pub use exec::{Execution, DEFAULT_BLOCK_SIZE};
pub use interned::{IKRelation, IKRelationDelta};
pub use kexample::{monomial_connected, ConcreteRow, KExample, KRow};
pub use parser::{parse_cq, parse_ucq, ParseError};
pub use plan::{plan_cq, Adaptive, PlanMode, PlanStep, PlanTrace, PlanWork, QueryPlan, ReplanWork};
pub use plancache::{PlanCache, PlanCacheStats};
pub use query::{Atom, Cq, RelId, Term, Ucq, VarId};
pub use schema::{RelationSchema, Schema};
pub use session::{PublishStats, SessionDb, SessionRegistry, SnapshotWriter};
pub use tuple::Tuple;
pub use value::Value;
pub use vintern::{hash_width, ValueId, ValueInterner, ID_WIDTH, VALUE_MOVE_WIDTH};
