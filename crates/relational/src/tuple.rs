//! Database tuples.

use crate::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// A database tuple: a fixed-arity vector of constants.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tuple(pub Vec<Value>);

impl Tuple {
    /// Builds a tuple from values.
    pub fn new<I: IntoIterator<Item = Value>>(vals: I) -> Self {
        Tuple(vals.into_iter().collect())
    }

    /// Builds a tuple by parsing string literals (see [`Value::parse`]).
    pub fn parse(fields: &[&str]) -> Self {
        Tuple(fields.iter().map(|f| Value::parse(f)).collect())
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Whether two tuples share at least one constant (the edge relation of
    /// the paper's concretization-connectivity graph: "there is an edge
    /// between two tuples if they share a constant").
    ///
    /// This is the owned-value scan for already-decoded tuples (O(n·m)
    /// `Value` comparisons). Connectivity over tuples still *in* a database
    /// should go through [`monomial_connected`](crate::monomial_connected),
    /// which probes sorted interned [`ValueId`](crate::ValueId) sets and
    /// never decodes a value.
    pub fn shares_constant(&self, other: &Tuple) -> bool {
        self.0.iter().any(|v| other.0.contains(v))
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_builds_values() {
        let t = Tuple::parse(&["1", "Dance", "Facebook"]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::Int(1));
        assert_eq!(t[1], Value::str("Dance"));
    }

    #[test]
    fn shares_constant_detects_overlap() {
        let a = Tuple::parse(&["1", "Dance"]);
        let b = Tuple::parse(&["2", "Dance"]);
        let c = Tuple::parse(&["3", "Music"]);
        assert!(a.shares_constant(&b));
        assert!(!a.shares_constant(&c));
    }

    #[test]
    fn display_renders_parenthesized() {
        let t = Tuple::parse(&["1", "x"]);
        assert_eq!(t.to_string(), "(1, 'x')");
    }
}
