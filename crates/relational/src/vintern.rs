//! Dictionary encoding of the constant domain.
//!
//! The columnar storage layer ([`Database`](crate::Database)) does not hold
//! [`Value`]s: every domain constant is interned once into a global,
//! append-only [`ValueInterner`] and referenced everywhere else by its dense
//! [`ValueId`]. Join probes, per-column indexes and variable bindings all
//! traffic in the 4-byte id — hashing and comparing a `ValueId` costs the
//! same whether it encodes a 64-bit integer or a long string — and the owned
//! [`Value`] is materialized only at API boundaries.
//!
//! The interner contains no interior mutability: interning requires
//! `&mut self` (it happens on the database's write path), and every read is
//! a plain slice access, so a `&ValueInterner` — like the `&Database` that
//! owns it — is freely shareable across the parallel search workers
//! (`Send + Sync` holds structurally).

use crate::Value;
use std::collections::HashMap;
use std::fmt;

/// A dense id for an interned domain constant.
///
/// Ids are assigned in first-intern order and never reused; equal ids mean
/// equal values *within the interner that produced them* (mixing ids across
/// databases is a logic error, same as mixing
/// [`PolyId`](provabs_semiring::PolyId)s across arenas).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

/// Bytes a [`ValueId`] feeds a hasher or moves into a binding: the id is a
/// plain `u32` wherever the engine traffics in it.
pub const ID_WIDTH: u64 = 4;

/// Bytes moving one owned [`Value`] costs the row-oriented engine this
/// storage layer replaced: the enum (tag + fat `Arc<str>` pointer) is 24
/// bytes on the 64-bit targets we run on, written as a constant so the
/// bytes-moved counters stay identical on every machine.
pub const VALUE_MOVE_WIDTH: u64 = 24;

/// An append-only dictionary mapping every domain constant to a dense
/// [`ValueId`].
///
/// Owned by the [`Database`](crate::Database); grows on the insert path and
/// is read-only during evaluation.
#[derive(Debug, Default, Clone)]
pub struct ValueInterner {
    values: Vec<Value>,
    /// Per value: the bytes an owned-path hash of it would feed the hasher
    /// (see [`ValueInterner::hash_width`]). Precomputed so the engine's
    /// counterfactual probe-work counter is an O(1) lookup.
    hash_widths: Vec<u32>,
    by_value: HashMap<Value, ValueId>,
}

impl ValueInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `v`, returning its id (existing or fresh).
    pub fn intern(&mut self, v: Value) -> ValueId {
        if let Some(&id) = self.by_value.get(&v) {
            return id;
        }
        let id = ValueId(u32::try_from(self.values.len()).expect("value domain exceeds u32"));
        self.hash_widths.push(hash_width(&v) as u32);
        self.values.push(v.clone());
        self.by_value.insert(v, id);
        id
    }

    /// The id of `v`, if it was ever interned. A `None` means no stored
    /// tuple can contain `v` — the evaluator turns that into an empty
    /// candidate set without touching any index.
    pub fn lookup(&self, v: &Value) -> Option<ValueId> {
        self.by_value.get(v).copied()
    }

    /// The value behind `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn value(&self, id: ValueId) -> &Value {
        &self.values[id.0 as usize]
    }

    /// The owned-path hash cost of `id`'s value (see [`hash_width`]).
    pub fn hash_width(&self, id: ValueId) -> u64 {
        u64::from(self.hash_widths[id.0 as usize])
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing was interned yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for ValueInterner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ValueInterner({} values)", self.values.len())
    }
}

/// Bytes hashing one owned [`Value`] feeds the hasher — the unit of the
/// pre-refactor join-probe work the storage gate diffs against: the 8-byte
/// enum discriminant plus the payload (8 for an integer; the string bytes
/// plus the 1-byte terminator `str`'s `Hash` impl writes).
pub fn hash_width(v: &Value) -> u64 {
    8 + match v {
        Value::Int(_) => 8,
        Value::Str(s) => s.len() as u64 + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut it = ValueInterner::new();
        let a = it.intern(Value::int(1));
        let b = it.intern(Value::str("x"));
        let a2 = it.intern(Value::int(1));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!((a.0, b.0), (0, 1));
        assert_eq!(it.len(), 2);
        assert_eq!(it.value(a), &Value::int(1));
        assert_eq!(it.lookup(&Value::str("x")), Some(b));
        assert_eq!(it.lookup(&Value::str("y")), None);
    }

    #[test]
    fn hash_widths_model_the_owned_path() {
        let mut it = ValueInterner::new();
        let i = it.intern(Value::int(123456789));
        let s = it.intern(Value::str("BUILDING"));
        assert_eq!(it.hash_width(i), 16); // discriminant + i64
        assert_eq!(it.hash_width(s), 8 + 8 + 1); // discriminant + bytes + terminator
        assert!(ID_WIDTH < it.hash_width(i));
    }

    #[test]
    fn interner_is_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ValueInterner>();
    }
}
