//! Conjunctive queries and unions of conjunctive queries.

use crate::{Schema, Value};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A relation identifier within a [`Schema`](crate::Schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelId(pub u16);

/// A query variable identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub u32);

/// A term of a query atom: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A query variable.
    Var(VarId),
    /// A constant of the domain.
    Const(Value),
}

impl Term {
    /// Returns the variable id if this is a variable.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// Whether this term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }
}

/// A relational atom `R(t1, ..., tn)` of a query body.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Atom {
    /// The relation.
    pub rel: RelId,
    /// The terms; length must equal the relation arity.
    pub terms: Vec<Term>,
}

impl Atom {
    /// The variables of this atom (with repeats).
    pub fn variables(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.iter().filter_map(Term::as_var)
    }
}

/// A conjunctive query `Q(u) :- R1(v1), ..., Rl(vl)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Cq {
    /// Head name (purely cosmetic; defaults to `Q`).
    pub head_name: String,
    /// Head terms. Head variables must appear in the body.
    pub head: Vec<Term>,
    /// Body atoms.
    pub body: Vec<Atom>,
}

impl Cq {
    /// Creates a CQ with the default head name `Q`.
    pub fn new(head: Vec<Term>, body: Vec<Atom>) -> Self {
        Cq {
            head_name: "Q".to_owned(),
            head,
            body,
        }
    }

    /// All distinct variables, body first then head, in first-occurrence order.
    pub fn variables(&self) -> Vec<VarId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for t in self
            .body
            .iter()
            .flat_map(|a| a.terms.iter())
            .chain(self.head.iter())
        {
            if let Term::Var(v) = t {
                if seen.insert(*v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// The number of joins as counted by the paper's Table 6: `#atoms − 1`
    /// for a connected query (the number of edges of a spanning tree of the
    /// join graph).
    pub fn num_joins(&self) -> usize {
        self.body.len().saturating_sub(1)
    }

    /// Whether every head variable appears in the body (query safety).
    pub fn is_safe(&self) -> bool {
        let body_vars: HashSet<VarId> = self.body.iter().flat_map(|a| a.variables()).collect();
        self.head
            .iter()
            .filter_map(Term::as_var)
            .all(|v| body_vars.contains(&v))
    }

    /// Whether the join graph is connected: atoms are nodes, with an edge
    /// between two atoms iff they share at least one **variable**.
    ///
    /// The paper's §3.3 *wording* phrases the join graph over relation
    /// names, but its worked examples (Table 3 / Example 3.13: the
    /// double-`Interests` query does not count as connected, keeping the
    /// privacy of `Exabs1` at 2) behave atom-level, so atom-level is the
    /// default here; [`Cq::is_relation_connected`] implements the coarser
    /// relation-level reading.
    ///
    /// Queries with no atoms are vacuously connected; a single atom is
    /// connected.
    pub fn is_connected(&self) -> bool {
        self.is_atom_connected()
    }

    /// Relation-level connectivity (the paper's literal §3.3 wording):
    /// nodes are the distinct relation names `{R1,...,Rm}` with an edge
    /// `(Ri, Rj)` iff some atom of `Ri` shares a variable with some atom of
    /// `Rj`. Weaker than [`Cq::is_connected`]: a ground self-join atom
    /// (e.g. IMDB-Q3's `Person('Kevin Bacon', ...)`) stays connected
    /// through its sibling atom.
    pub fn is_relation_connected(&self) -> bool {
        // Union-find over relation nodes, merged through shared variables.
        let mut rels: Vec<RelId> = self.body.iter().map(|a| a.rel).collect();
        rels.sort_unstable();
        rels.dedup();
        let n = rels.len();
        if n <= 1 {
            return true;
        }
        let idx_of = |r: RelId| rels.binary_search(&r).expect("relation present");
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, i: usize) -> usize {
            if p[i] != i {
                let r = find(p, p[i]);
                p[i] = r;
            }
            p[i]
        }
        let mut var_home: HashMap<VarId, usize> = HashMap::new();
        for atom in &self.body {
            let i = idx_of(atom.rel);
            for v in atom.variables() {
                match var_home.entry(v) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let (a, b) = (find(&mut parent, *e.get()), find(&mut parent, i));
                        parent[a] = b;
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(i);
                    }
                }
            }
        }
        // Every relation must join the component of relation 0 — except
        // that relations with no variables at all can never connect, unless
        // they are the only relation.
        let root = find(&mut parent, 0);
        (1..n).all(|i| find(&mut parent, i) == root)
    }

    /// Atom-level connectivity: atoms are nodes, edges join atoms sharing a
    /// variable. Strictly stronger than [`Cq::is_connected`]; exposed for
    /// analyses that need the finer notion.
    pub fn is_atom_connected(&self) -> bool {
        let n = self.body.len();
        if n <= 1 {
            return true;
        }
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, i: usize) -> usize {
            if p[i] != i {
                let r = find(p, p[i]);
                p[i] = r;
            }
            p[i]
        }
        let mut var_home: HashMap<VarId, usize> = HashMap::new();
        for (i, atom) in self.body.iter().enumerate() {
            for v in atom.variables() {
                match var_home.entry(v) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let (a, b) = (find(&mut parent, *e.get()), find(&mut parent, i));
                        parent[a] = b;
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(i);
                    }
                }
            }
        }
        let root = find(&mut parent, 0);
        (1..n).all(|i| find(&mut parent, i) == root)
    }

    /// Whether the query has at least one variable (used by the paper's
    /// "trivial UCQ" exclusion, §4 orange cell).
    pub fn has_variable(&self) -> bool {
        self.body
            .iter()
            .flat_map(|a| a.terms.iter())
            .chain(self.head.iter())
            .any(|t| !t.is_const())
    }

    /// Renames all variables through `map` (used by canonicalization).
    pub fn rename_vars(&self, map: &HashMap<VarId, VarId>) -> Cq {
        let rn = |t: &Term| match t {
            Term::Var(v) => Term::Var(*map.get(v).unwrap_or(v)),
            c => c.clone(),
        };
        Cq {
            head_name: self.head_name.clone(),
            head: self.head.iter().map(rn).collect(),
            body: self
                .body
                .iter()
                .map(|a| Atom {
                    rel: a.rel,
                    terms: a.terms.iter().map(rn).collect(),
                })
                .collect(),
        }
    }

    /// Renders the query in datalog syntax against `schema`, e.g.
    /// `Q(v0) :- Person(v0, v1, v2), Hobbies(v0, 'Dance', v3)`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> CqDisplay<'a> {
        CqDisplay { cq: self, schema }
    }
}

/// Display adapter for [`Cq`].
pub struct CqDisplay<'a> {
    cq: &'a Cq,
    schema: &'a Schema,
}

impl fmt::Display for CqDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let term = |t: &Term| match t {
            Term::Var(v) => format!("v{}", v.0),
            Term::Const(c) => c.to_string(),
        };
        write!(f, "{}(", self.cq.head_name)?;
        write!(
            f,
            "{}",
            self.cq.head.iter().map(term).collect::<Vec<_>>().join(", ")
        )?;
        write!(f, ") :- ")?;
        for (i, a) in self.cq.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{}({})",
                self.schema.relation_name(a.rel),
                a.terms.iter().map(term).collect::<Vec<_>>().join(", ")
            )?;
        }
        Ok(())
    }
}

/// A union of conjunctive queries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ucq {
    /// The disjuncts. All must share the same head arity.
    pub disjuncts: Vec<Cq>,
}

impl Ucq {
    /// Wraps a single CQ.
    pub fn single(cq: Cq) -> Self {
        Ucq {
            disjuncts: vec![cq],
        }
    }

    /// Whether the UCQ is connected: the paper (§4, orange cell) calls a UCQ
    /// disconnected if it contains a disconnected CQ.
    pub fn is_connected(&self) -> bool {
        self.disjuncts.iter().all(Cq::is_connected)
    }

    /// Whether every disjunct has at least one variable (non-trivial, §4).
    pub fn is_nontrivial(&self) -> bool {
        self.disjuncts.iter().all(Cq::has_variable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }
    fn c(s: &str) -> Term {
        Term::Const(Value::parse(s))
    }

    fn atom(rel: u16, terms: Vec<Term>) -> Atom {
        Atom {
            rel: RelId(rel),
            terms,
        }
    }

    #[test]
    fn connectivity_via_shared_variables() {
        // R(x, 'a'), S(x): connected through x.
        let q = Cq::new(
            vec![v(0)],
            vec![atom(0, vec![v(0), c("a")]), atom(1, vec![v(0)])],
        );
        assert!(q.is_connected());
        // R(x, 'a'), S(y): disconnected (shared constant does not connect).
        let q2 = Cq::new(
            vec![v(0)],
            vec![atom(0, vec![v(0), c("a")]), atom(1, vec![v(1)])],
        );
        assert!(!q2.is_connected());
    }

    #[test]
    fn single_atom_is_connected() {
        let q = Cq::new(vec![v(0)], vec![atom(0, vec![v(0)])]);
        assert!(q.is_connected());
        assert_eq!(q.num_joins(), 0);
    }

    #[test]
    fn safety_requires_head_vars_in_body() {
        let safe = Cq::new(vec![v(0)], vec![atom(0, vec![v(0)])]);
        let unsafe_q = Cq::new(vec![v(9)], vec![atom(0, vec![v(0)])]);
        assert!(safe.is_safe());
        assert!(!unsafe_q.is_safe());
    }

    #[test]
    fn variables_in_first_occurrence_order() {
        let q = Cq::new(
            vec![v(5)],
            vec![atom(0, vec![v(2), v(5)]), atom(1, vec![v(1), v(2)])],
        );
        assert_eq!(q.variables(), vec![VarId(2), VarId(5), VarId(1)]);
    }

    #[test]
    fn has_variable_detects_ground_queries() {
        let ground = Cq::new(vec![c("1")], vec![atom(0, vec![c("1"), c("a")])]);
        assert!(!ground.has_variable());
        let nontrivial = Cq::new(vec![v(0)], vec![atom(0, vec![v(0), c("a")])]);
        assert!(nontrivial.has_variable());
        assert!(!Ucq::single(ground).is_nontrivial());
        assert!(Ucq::single(nontrivial).is_nontrivial());
    }

    #[test]
    fn rename_vars_applies_map() {
        let q = Cq::new(vec![v(0)], vec![atom(0, vec![v(0), v(1)])]);
        let map: HashMap<VarId, VarId> = [(VarId(0), VarId(7))].into_iter().collect();
        let r = q.rename_vars(&map);
        assert_eq!(r.head, vec![v(7)]);
        assert_eq!(r.body[0].terms, vec![v(7), v(1)]);
    }

    #[test]
    fn ucq_connectivity() {
        let conn = Cq::new(vec![v(0)], vec![atom(0, vec![v(0)])]);
        let disc = Cq::new(vec![v(0)], vec![atom(0, vec![v(0)]), atom(1, vec![v(1)])]);
        assert!(Ucq {
            disjuncts: vec![conn.clone()]
        }
        .is_connected());
        assert!(!Ucq {
            disjuncts: vec![conn, disc]
        }
        .is_connected());
    }
}
