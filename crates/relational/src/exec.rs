//! Vectorized block-at-a-time execution: the physical-operator pipeline.
//!
//! The scalar engine in [`eval`](crate::eval) backtracks one candidate row
//! at a time, hashing a [`ValueId`] probe per bound column per visit. This
//! module executes the same [`QueryPlan`](crate::plan::QueryPlan) as a
//! pipeline of physical operators passing fixed-size *blocks* of candidate
//! rows instead of single bindings:
//!
//! * **Scan** — when a plan step has no bound column at all, candidates are
//!   the whole relation (row ids ascending).
//! * **Probe** — bound columns resolve candidate row lists without hashing:
//!   query constants fetch their posting list once per evaluation (the only
//!   hash probes the block path issues), and variable-bound columns gallop a
//!   block of probe ids — sorted and deduplicated per block — through a
//!   sorted `(value, row)` column index. Multiple bound columns intersect
//!   their sorted row lists by sorted-merge with galloping, generalizing the
//!   [`monomial_connected`](crate::monomial_connected) merge probe.
//! * **Select** — a selection pass filters the candidate rows that survive
//!   intra-atom repeated-variable equality and the delta-restriction
//!   membership rule, appending survivors to the output block.
//! * **Materialize** — final blocks resolve head bindings and derivation
//!   images through the block spine and accumulate outputs, with
//!   provenance-arena lookups batched per block: each distinct image interns
//!   once per block, not once per derivation.
//!
//! A block holds up to `block_size` entries; each entry is a candidate row
//! plus a *parent pointer* into the previous step's block, so variable
//! values are never gathered forward level by level — a binding resolves by
//! chasing parent pointers back to the step that bound it and reading the
//! [`ValueId`] column in place. Blocks move 8 bytes per surviving row
//! (the row and its parent pointer) where the scalar engine moves 4 bytes
//! per newly bound variable per visited row.
//!
//! Unlimited evaluations produce bit-identical [`KRelation`]s
//! (crate::KRelation) under either execution; see [`Execution`] for the
//! determinism contract under [`EvalLimits`] truncation.

use crate::eval::{Accum, EvalLimits, EvalWork, Restriction, Slot};
use crate::plan::QueryPlan;
use crate::vintern::{ValueId, ID_WIDTH, VALUE_MOVE_WIDTH};
use crate::{Cq, Database, RelId, VarId};
use provabs_semiring::{AnnotId, MonoId, Monomial, ProvStore};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Default rows per block of the vectorized engine.
pub const DEFAULT_BLOCK_SIZE: usize = 1024;

/// How the join engine executes a [`QueryPlan`](crate::plan::QueryPlan).
///
/// # Determinism contract
///
/// Both executions are fully deterministic for a given database content,
/// query, [`PlanMode`](crate::PlanMode) and limits. An **unlimited**
/// evaluation produces the identical K-relation either way (the join is
/// enumeration-order independent). Under [`EvalLimits`] truncation, *which*
/// outputs survive the cap depends on enumeration order: the block engine
/// enumerates candidates in ascending row order while the scalar engine
/// follows posting-list order (equal until deletions reorder a posting
/// list), so a capped evaluation may keep a different — still deterministic —
/// output subset, exactly as a different `PlanMode` may. Counter baselines
/// recorded under the scalar engine replay bit-identical only under
/// [`Execution::Scalar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Execution {
    /// Vectorized block-at-a-time execution (the default): fixed-size row
    /// blocks with selection vectors, sorted-merge/galloping probes, and
    /// per-block batched provenance interning.
    Block {
        /// Rows per block (clamped to at least 1);
        /// [`DEFAULT_BLOCK_SIZE`] balances locality against spine depth.
        block_size: usize,
    },
    /// The scalar backtracking engine: binds one candidate row at a time.
    /// This is the replay mode that keeps the PR 2–6 counter baselines
    /// (`BENCH_2.json` … `BENCH_6.json`) bit-identical; every legacy
    /// `eval_*` entry point pins it.
    Scalar,
}

impl Default for Execution {
    fn default() -> Self {
        Execution::Block {
            block_size: DEFAULT_BLOCK_SIZE,
        }
    }
}

/// A block of partial derivations at one plan depth: parallel vectors of
/// candidate rows and parent pointers into the previous depth's block.
#[derive(Default)]
struct Block {
    rows: Vec<u32>,
    parent: Vec<u32>,
}

impl Block {
    fn len(&self) -> usize {
        self.rows.len()
    }

    fn clear(&mut self) {
        self.rows.clear();
        self.parent.clear();
    }
}

/// A column regrouped by [`ValueId`]: `keys` ascending, `rows[starts[k] ..
/// starts[k + 1]]` the ascending row ids carrying `keys[k]`. This is the
/// Probe operator's hash-free access path — a block of sorted probe ids
/// merges against `keys` by galloping.
struct SortedCol {
    keys: Vec<ValueId>,
    starts: Vec<u32>,
    rows: Vec<u32>,
}

impl SortedCol {
    fn build(col: &[ValueId]) -> SortedCol {
        let mut pairs: Vec<(ValueId, u32)> = col
            .iter()
            .enumerate()
            .map(|(row, &v)| (v, row as u32))
            .collect();
        pairs.sort_unstable();
        let mut keys: Vec<ValueId> = Vec::new();
        let mut starts: Vec<u32> = Vec::new();
        let mut rows: Vec<u32> = Vec::with_capacity(pairs.len());
        for (v, r) in pairs {
            if keys.last() != Some(&v) {
                keys.push(v);
                starts.push(rows.len() as u32);
            }
            rows.push(r);
        }
        starts.push(rows.len() as u32);
        SortedCol { keys, starts, rows }
    }
}

/// One variable-bound column of a plan step, probed per block.
struct ProbeCol {
    /// `(plan depth, column)` where the probed variable first bound.
    binder: (usize, usize),
    /// The sorted column index of this column.
    index: SortedCol,
}

/// One compiled physical-operator step (a plan step plus its access paths).
struct StepOp {
    rel: RelId,
    /// Candidate rows shared by every parent entry: constant posting lists
    /// (∩ the delta pivot rows), sorted ascending and intersected once per
    /// evaluation. `None` means no constant/pivot access path — candidates
    /// come from variable probes, or a full Scan.
    fixed: Option<Vec<u32>>,
    /// Variable-bound columns, intersected per entry.
    probes: Vec<ProbeCol>,
    /// `(column, earlier column)` pairs carrying the same variable first
    /// bound *at this atom* — the Select operator's intra-atom equality.
    dup_cols: Vec<(usize, usize)>,
    /// Pre-pivot restriction: Select drops rows whose annotation is in the
    /// delta set.
    skip_set: bool,
    /// Variables first bound at this step — the owned-engine counterfactual
    /// move width per surviving row.
    new_vars: u64,
}

/// The compiled pipeline plus everything immutable during execution.
struct Compiled<'a> {
    db: &'a Database,
    q: &'a Cq,
    ops: Vec<StepOp>,
    /// Per head variable: `(plan depth, column)` of its first binding.
    head_binders: Vec<(usize, usize)>,
    /// Per plan depth: the step relation's annotation column.
    annots: Vec<&'a [AnnotId]>,
    limits: EvalLimits,
    block_size: usize,
    set: Option<&'a HashSet<AnnotId>>,
    /// Per-depth adaptive abort thresholds (`None` when adaptivity is off):
    /// the Select counter crossing `thresholds[depth]` aborts the attempt
    /// so the caller can re-plan and restart. Exact row counters only —
    /// the abort point is bit-for-bit deterministic.
    thresholds: Option<&'a [u64]>,
}

/// Mutable execution state: counters, the output accumulator, and the
/// scratch buffers the Materialize operator reuses across derivations.
struct State<'a, 'b> {
    derivations: usize,
    work: &'a mut EvalWork,
    depth_rows: &'a mut [u64],
    out: &'a mut Accum,
    store: &'a mut ProvStore,
    key_buf: Vec<ValueId>,
    image_buf: Vec<AnnotId>,
    /// Per-block monomial memo: each distinct derivation image interns into
    /// the arena once per block.
    mono_cache: HashMap<Vec<AnnotId>, MonoId>,
    /// The plan depth whose adaptive threshold fired, when one did: the
    /// attempt's outputs are partial and the caller must restart.
    aborted: Option<usize>,
    _marker: std::marker::PhantomData<&'b ()>,
}

/// Runs the compiled plan through the block pipeline. Returns the number of
/// derivations emitted and, when `thresholds` is set and a depth's Select
/// counter crossed its threshold, the aborting depth (the attempt's outputs
/// in `out` are then partial — the caller re-plans, clears `out` and
/// restarts). Outputs accumulate into `out`, counters into `work` and
/// `depth_rows`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_block(
    db: &Database,
    q: &Cq,
    compiled_slots: &[Vec<Slot>],
    head_vars: &[VarId],
    limits: EvalLimits,
    restrict: Option<&Restriction<'_>>,
    plan: &QueryPlan,
    store: &mut ProvStore,
    out: &mut Accum,
    work: &mut EvalWork,
    depth_rows: &mut [u64],
    block_size: usize,
    thresholds: Option<&[u64]>,
) -> (u64, Option<usize>) {
    let order = plan.atom_order();
    let Some(c) = compile(
        db,
        q,
        compiled_slots,
        head_vars,
        limits,
        restrict,
        &order,
        block_size,
        work,
        thresholds,
    ) else {
        return (0, None);
    };
    let mut state = State {
        derivations: 0,
        work,
        depth_rows,
        out,
        store,
        key_buf: Vec::with_capacity(head_vars.len()),
        image_buf: Vec::with_capacity(order.len()),
        mono_cache: HashMap::new(),
        aborted: None,
        _marker: std::marker::PhantomData,
    };
    let mut path: Vec<Block> = Vec::new();
    step(&c, &mut state, 0, &mut path);
    (state.derivations as u64, state.aborted)
}

/// Compiles the plan into [`StepOp`]s: resolves binder positions, fetches
/// and intersects constant posting lists (the per-evaluation hash probes),
/// and builds the sorted column indexes the Probe operator gallops against.
/// Returns `None` when a constant access path is provably empty.
#[allow(clippy::too_many_arguments)]
fn compile<'a>(
    db: &'a Database,
    q: &'a Cq,
    compiled_slots: &[Vec<Slot>],
    head_vars: &[VarId],
    limits: EvalLimits,
    restrict: Option<&'a Restriction<'a>>,
    order: &[usize],
    block_size: usize,
    work: &mut EvalWork,
    thresholds: Option<&'a [u64]>,
) -> Option<Compiled<'a>> {
    let mut binder: HashMap<VarId, (usize, usize)> = HashMap::new();
    let mut ops: Vec<StepOp> = Vec::with_capacity(order.len());
    for (depth, &orig) in order.iter().enumerate() {
        let atom = &q.body[orig];
        let rel = atom.rel;
        let mut const_lists: Vec<Vec<u32>> = Vec::new();
        let mut probes: Vec<ProbeCol> = Vec::new();
        let mut dup_cols: Vec<(usize, usize)> = Vec::new();
        let mut new_vars = 0u64;
        for (col, slot) in compiled_slots[orig].iter().enumerate() {
            match slot {
                Slot::Const { id, width } => {
                    // The block path's only hash probes: one posting-list
                    // fetch per query constant per evaluation (the scalar
                    // engine re-probes on every atom visit).
                    work.probes += 1;
                    work.probe_bytes_id += ID_WIDTH;
                    work.probe_bytes_value += width;
                    let Some(id) = *id else {
                        return None; // constant outside the domain
                    };
                    let rows = match db.postings(rel, col, id) {
                        Some(p) => p.to_vec(),
                        None => db.scan_matching(rel, col, id),
                    };
                    const_lists.push(sorted_rows(rows));
                }
                Slot::Var(v) => match binder.get(v) {
                    None => {
                        binder.insert(*v, (depth, col));
                        new_vars += 1;
                    }
                    Some(&(bd, bcol)) if bd == depth => dup_cols.push((col, bcol)),
                    Some(&b) => probes.push(ProbeCol {
                        binder: b,
                        index: SortedCol::build(db.column(rel, col)),
                    }),
                },
            }
        }
        let pivot_rows: Option<Vec<u32>> = restrict.filter(|r| r.pivot == orig).map(|r| {
            // Already ascending (the delta side sorts them) and all members
            // of the delta set by construction — the Equal restriction case
            // needs no Select check.
            r.pivot_rows.iter().map(|&row| row as u32).collect()
        });
        let fixed = intersect_fixed(pivot_rows, const_lists, &mut work.gallop_steps);
        ops.push(StepOp {
            rel,
            fixed,
            probes,
            dup_cols,
            skip_set: restrict.is_some_and(|r| orig < r.pivot),
            new_vars,
        });
    }
    let head_binders = head_vars
        .iter()
        .map(|v| *binder.get(v).expect("head variable bound in body"))
        .collect();
    let annots = ops.iter().map(|op| db.tuple_annots(op.rel)).collect();
    Some(Compiled {
        db,
        q,
        ops,
        head_binders,
        annots,
        limits,
        block_size: block_size.max(1),
        set: restrict.map(|r| r.set),
        thresholds,
    })
}

/// Sorts a candidate row list when index maintenance left it unsorted
/// (deletions rename swap-removed rows in place); freshly built posting
/// lists and scans are already ascending.
fn sorted_rows(mut rows: Vec<u32>) -> Vec<u32> {
    if !rows.is_sorted() {
        rows.sort_unstable();
    }
    rows
}

/// Intersects the per-evaluation fixed candidate lists (delta pivot rows and
/// constant posting lists), smallest first.
fn intersect_fixed(
    pivot: Option<Vec<u32>>,
    mut consts: Vec<Vec<u32>>,
    steps: &mut u64,
) -> Option<Vec<u32>> {
    let mut lists: Vec<Vec<u32>> = pivot.into_iter().collect();
    lists.append(&mut consts);
    if lists.is_empty() {
        return None;
    }
    lists.sort_by_key(Vec::len);
    let mut acc = lists.remove(0);
    let mut scratch = Vec::new();
    for next in &lists {
        gallop_intersect(&acc, next, &mut scratch, steps);
        std::mem::swap(&mut acc, &mut scratch);
    }
    Some(acc)
}

/// First index `i >= lo` with `keys[i] >= target`: exponential gallop from
/// `lo`, then binary search inside the overshoot window.
fn gallop_to<T: Ord + Copy>(keys: &[T], mut lo: usize, target: T, steps: &mut u64) -> usize {
    let mut width = 1usize;
    let mut hi = lo;
    while hi < keys.len() && keys[hi] < target {
        *steps += 1;
        lo = hi + 1;
        hi += width;
        width <<= 1;
    }
    hi = hi.min(keys.len());
    while lo < hi {
        *steps += 1;
        let mid = lo + (hi - lo) / 2;
        if keys[mid] < target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Sorted-merge intersection with galloping: iterate the smaller list,
/// gallop the larger.
fn gallop_intersect(a: &[u32], b: &[u32], out: &mut Vec<u32>, steps: &mut u64) {
    out.clear();
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut pos = 0usize;
    for &x in small {
        pos = gallop_to(large, pos, x, steps);
        if pos >= large.len() {
            break;
        }
        if large[pos] == x {
            out.push(x);
            pos += 1;
        }
    }
}

/// Resolves the probe id of `entry` (an index into the block at
/// `depth - 1`) for a variable first bound at `binder`: chase parent
/// pointers down the spine, then read the binding column in place.
fn resolve_id(
    c: &Compiled<'_>,
    path: &[Block],
    depth: usize,
    binder: (usize, usize),
    entry: usize,
) -> ValueId {
    let (bd, bcol) = binder;
    let mut e = entry;
    let mut lvl = depth - 1;
    while lvl > bd {
        e = path[lvl].parent[e] as usize;
        lvl -= 1;
    }
    let row = path[bd].rows[e] as usize;
    c.db.column(c.ops[bd].rel, bcol)[row]
}

/// One pipeline step: Materialize at the end of the plan, otherwise
/// Scan/Probe/Select the next operator and recurse per emitted block.
/// Returns `false` to stop the whole evaluation (derivation cap).
fn step(c: &Compiled<'_>, s: &mut State<'_, '_>, depth: usize, path: &mut Vec<Block>) -> bool {
    if depth == c.ops.len() {
        return materialize(c, s, path);
    }
    let op = &c.ops[depth];
    let parent_len = if depth == 0 { 1 } else { path[depth - 1].len() };

    // Probe: per variable-bound column, sort the block's probe ids
    // (deduplicating repeats) and resolve each distinct id by galloping the
    // sorted column index — no hashing. `ranges[p][entry]` is the candidate
    // row range of `entry` in probe column `p`.
    let mut ranges: Vec<Vec<(u32, u32)>> = Vec::with_capacity(op.probes.len());
    let mut ids: Vec<(ValueId, u32)> = Vec::new();
    for pc in &op.probes {
        ids.clear();
        for e in 0..parent_len {
            ids.push((resolve_id(c, path, depth, pc.binder, e), e as u32));
        }
        ids.sort_unstable();
        let mut per_entry = vec![(0u32, 0u32); parent_len];
        let keys = &pc.index.keys;
        let mut k = 0usize;
        let mut i = 0usize;
        while i < ids.len() {
            let id = ids[i].0;
            k = gallop_to(keys, k, id, &mut s.work.gallop_steps);
            s.work.probes += 1; // one sorted-index lookup per distinct id
            let range = if k < keys.len() && keys[k] == id {
                (pc.index.starts[k], pc.index.starts[k + 1])
            } else {
                (0, 0)
            };
            while i < ids.len() && ids[i].0 == id {
                per_entry[ids[i].1 as usize] = range;
                i += 1;
            }
        }
        ranges.push(per_entry);
    }

    let annots = c.annots[depth];
    let mut chunk = Block::default();
    let mut slices: Vec<&[u32]> = Vec::new();
    let mut scratch_a: Vec<u32> = Vec::new();
    let mut scratch_b: Vec<u32> = Vec::new();
    let mut all_rows: Vec<u32> = Vec::new();
    // `e` is a parent-entry index shared by every probe column's range
    // vector and the output parent pointers, not an index into one
    // container.
    #[allow(clippy::needless_range_loop)]
    for e in 0..parent_len {
        // Gather this entry's candidate sources: the fixed list plus one
        // sorted row slice per probe column.
        slices.clear();
        if let Some(fixed) = &op.fixed {
            slices.push(fixed.as_slice());
        }
        for (p, pc) in op.probes.iter().enumerate() {
            let (a, b) = ranges[p][e];
            slices.push(&pc.index.rows[a as usize..b as usize]);
        }
        let cand: &[u32] = match slices.len() {
            0 => {
                // Scan: no bound column at all — the whole relation.
                if all_rows.is_empty() {
                    all_rows.extend(0..c.db.relation_len(op.rel) as u32);
                }
                &all_rows
            }
            1 => slices[0],
            _ => {
                // Sorted-merge intersection across all bound columns,
                // smallest slice first.
                slices.sort_by_key(|s| s.len());
                gallop_intersect(
                    slices[0],
                    slices[1],
                    &mut scratch_a,
                    &mut s.work.gallop_steps,
                );
                for next in &slices[2..] {
                    gallop_intersect(&scratch_a, next, &mut scratch_b, &mut s.work.gallop_steps);
                    std::mem::swap(&mut scratch_a, &mut scratch_b);
                }
                &scratch_a
            }
        };
        // Select: restriction membership and intra-atom repeated variables;
        // survivors append to the output block.
        'cand: for &row in cand {
            s.work.rows_examined += 1;
            s.depth_rows[depth] += 1;
            if let Some(th) = c.thresholds {
                if s.depth_rows[depth] > th[depth] {
                    // Adaptive abort: this depth blew its cumulative
                    // estimate by the trigger factor. Stop the whole
                    // attempt — the caller re-plans and restarts.
                    s.aborted = Some(depth);
                    return false;
                }
            }
            if op.skip_set && c.set.is_some_and(|set| set.contains(&annots[row as usize])) {
                continue;
            }
            for &(col, fcol) in &op.dup_cols {
                let r = row as usize;
                if c.db.column(op.rel, col)[r] != c.db.column(op.rel, fcol)[r] {
                    continue 'cand;
                }
            }
            s.work.selection_survivors += 1;
            // 8 bytes per survivor: the row id and its parent pointer. No
            // per-variable gather — bindings resolve through the spine.
            s.work.moved_bytes_id += 8;
            s.work.moved_bytes_value += VALUE_MOVE_WIDTH * op.new_vars;
            s.work.boundary_bytes += 8;
            chunk.rows.push(row);
            chunk.parent.push(e as u32);
            if chunk.len() == c.block_size && !emit(c, s, depth, path, &mut chunk) {
                return false;
            }
        }
    }
    if chunk.len() > 0 && !emit(c, s, depth, path, &mut chunk) {
        return false;
    }
    true
}

/// Pushes a filled block onto the spine and runs the rest of the pipeline
/// over it, reclaiming the buffers afterwards.
fn emit(
    c: &Compiled<'_>,
    s: &mut State<'_, '_>,
    depth: usize,
    path: &mut Vec<Block>,
    chunk: &mut Block,
) -> bool {
    s.work.blocks_emitted += 1;
    path.push(std::mem::take(chunk));
    let keep_going = step(c, s, depth + 1, path);
    *chunk = path.pop().expect("emitted block still on the spine");
    chunk.clear();
    keep_going
}

/// Materialize: resolve each final-block entry's head key and derivation
/// image through the spine and accumulate, interning each distinct image
/// once per block.
fn materialize(c: &Compiled<'_>, s: &mut State<'_, '_>, path: &[Block]) -> bool {
    let last = path.last().expect("non-empty plan");
    s.mono_cache.clear();
    let n = c.ops.len();
    for e in 0..last.len() {
        if s.derivations >= c.limits.max_derivations {
            return false;
        }
        s.key_buf.clear();
        for &(bd, bcol) in &c.head_binders {
            let mut ee = e;
            let mut lvl = n - 1;
            while lvl > bd {
                ee = path[lvl].parent[ee] as usize;
                lvl -= 1;
            }
            let row = path[bd].rows[ee] as usize;
            s.key_buf.push(c.db.column(c.ops[bd].rel, bcol)[row]);
        }
        s.work.moved_bytes_id += ID_WIDTH * s.key_buf.len() as u64;
        s.work.moved_bytes_value += VALUE_MOVE_WIDTH * c.q.head.len() as u64;
        // Late materialization: the head key and the provenance image are
        // the only columns ever gathered through the spine.
        s.work.boundary_bytes += ID_WIDTH * (s.key_buf.len() + n) as u64;
        let is_new = !s.out.contains_key(s.key_buf.as_slice());
        if is_new && s.out.len() >= c.limits.max_outputs {
            continue; // skip new outputs, keep accumulating existing ones
        }
        s.image_buf.clear();
        let mut ee = e;
        for lvl in (0..n).rev() {
            s.image_buf.push(c.annots[lvl][path[lvl].rows[ee] as usize]);
            ee = path[lvl].parent[ee] as usize;
        }
        let mono = match s.mono_cache.get(s.image_buf.as_slice()) {
            Some(&m) => m,
            None => {
                let m = s
                    .store
                    .intern_monomial(Monomial::from_annots(s.image_buf.iter().copied()));
                s.mono_cache.insert(s.image_buf.clone(), m);
                m
            }
        };
        if is_new {
            s.out.insert(s.key_buf.clone(), BTreeMap::new());
        }
        let terms = s
            .out
            .get_mut(s.key_buf.as_slice())
            .expect("accumulator entry just ensured");
        let coeff = terms.entry(mono).or_insert(0);
        *coeff = coeff.saturating_add(1);
        s.derivations += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gallop_to_finds_lower_bounds() {
        let keys = [2u32, 4, 4, 8, 16, 32];
        let mut steps = 0;
        assert_eq!(gallop_to(&keys, 0, 1, &mut steps), 0);
        assert_eq!(gallop_to(&keys, 0, 4, &mut steps), 1);
        assert_eq!(gallop_to(&keys, 0, 5, &mut steps), 3);
        assert_eq!(gallop_to(&keys, 0, 33, &mut steps), 6);
        assert_eq!(gallop_to(&keys, 4, 16, &mut steps), 4);
        assert!(steps > 0);
    }

    #[test]
    fn gallop_intersect_matches_naive() {
        let a = [1u32, 3, 5, 7, 9, 100, 1000];
        let b = [0u32, 3, 4, 7, 10, 99, 100, 101, 1000, 1001];
        let mut out = Vec::new();
        let mut steps = 0;
        gallop_intersect(&a, &b, &mut out, &mut steps);
        assert_eq!(out, vec![3, 7, 100, 1000]);
        gallop_intersect(&b, &a, &mut out, &mut steps);
        assert_eq!(out, vec![3, 7, 100, 1000]);
        gallop_intersect(&a, &[], &mut out, &mut steps);
        assert!(out.is_empty());
    }

    #[test]
    fn sorted_col_groups_rows_by_value() {
        let col = [ValueId(7), ValueId(3), ValueId(7), ValueId(1), ValueId(3)];
        let idx = SortedCol::build(&col);
        assert_eq!(idx.keys, vec![ValueId(1), ValueId(3), ValueId(7)]);
        assert_eq!(idx.starts, vec![0, 1, 3, 5]);
        assert_eq!(idx.rows, vec![3, 1, 4, 0, 2]);
    }
}
