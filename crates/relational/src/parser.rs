//! A small datalog-style parser for CQs and UCQs.
//!
//! Syntax (one CQ):
//!
//! ```text
//! Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', src1)
//! ```
//!
//! * Identifiers starting with a lowercase letter are variables.
//! * Single-quoted strings and integer literals are constants.
//! * Identifiers starting with an uppercase letter outside the head/atom
//!   position are rejected (constants must be quoted to avoid ambiguity with
//!   relation names).
//!
//! A UCQ is a sequence of CQs separated by `;` or newlines.

use crate::{Atom, Cq, Schema, Term, Ucq, Value, VarId};
use std::collections::HashMap;
use std::fmt;

/// Errors produced by the query parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Input did not match the expected grammar.
    Syntax(String),
    /// An atom used a relation name not in the schema.
    UnknownRelation(String),
    /// An atom's arity does not match the schema.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Arity declared in the schema.
        expected: usize,
        /// Arity used in the query text.
        got: usize,
    },
    /// A head variable does not appear in the body.
    UnsafeHead(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax(m) => write!(f, "syntax error: {m}"),
            ParseError::UnknownRelation(r) => write!(f, "unknown relation: {r}"),
            ParseError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for {relation}: expected {expected}, got {got}"
            ),
            ParseError::UnsafeHead(v) => write!(f, "head variable {v} not in body"),
        }
    }
}

impl std::error::Error for ParseError {}

struct Tokenizer<'a> {
    src: &'a str,
    pos: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    LParen,
    RParen,
    Comma,
    Turnstile,
    End,
}

impl<'a> Tokenizer<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, pos: 0 }
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if self.pos >= bytes.len() {
            return Ok(Tok::End);
        }
        let c = bytes[self.pos];
        match c {
            b'(' => {
                self.pos += 1;
                Ok(Tok::LParen)
            }
            b')' => {
                self.pos += 1;
                Ok(Tok::RParen)
            }
            b',' => {
                self.pos += 1;
                Ok(Tok::Comma)
            }
            b':' => {
                if self.src[self.pos..].starts_with(":-") {
                    self.pos += 2;
                    Ok(Tok::Turnstile)
                } else {
                    Err(ParseError::Syntax(format!(
                        "expected ':-' at byte {}",
                        self.pos
                    )))
                }
            }
            b'\'' => {
                let start = self.pos + 1;
                match self.src[start..].find('\'') {
                    Some(end) => {
                        let s = self.src[start..start + end].to_owned();
                        self.pos = start + end + 1;
                        Ok(Tok::Str(s))
                    }
                    None => Err(ParseError::Syntax("unterminated string literal".into())),
                }
            }
            b'-' | b'0'..=b'9' => {
                let start = self.pos;
                self.pos += 1;
                while self.pos < bytes.len() && bytes[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                self.src[start..self.pos]
                    .parse::<i64>()
                    .map(Tok::Int)
                    .map_err(|e| ParseError::Syntax(format!("bad integer: {e}")))
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self.pos < bytes.len()
                    && (bytes[self.pos].is_ascii_alphanumeric() || bytes[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                Ok(Tok::Ident(self.src[start..self.pos].to_owned()))
            }
            c => Err(ParseError::Syntax(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(ParseError::Syntax(format!(
                "expected {want:?}, got {got:?}"
            )))
        }
    }
}

struct CqParser<'a> {
    toks: Tokenizer<'a>,
    schema: &'a Schema,
    vars: HashMap<String, VarId>,
}

impl<'a> CqParser<'a> {
    fn term_from(&mut self, tok: Tok) -> Result<Term, ParseError> {
        match tok {
            Tok::Int(i) => Ok(Term::Const(Value::Int(i))),
            Tok::Str(s) => Ok(Term::Const(Value::str(&s))),
            Tok::Ident(name) => {
                if name.starts_with(|c: char| c.is_ascii_uppercase()) {
                    return Err(ParseError::Syntax(format!(
                        "identifier '{name}' starts uppercase; quote constants or lowercase variables"
                    )));
                }
                let next = VarId(self.vars.len() as u32);
                Ok(Term::Var(*self.vars.entry(name).or_insert(next)))
            }
            t => Err(ParseError::Syntax(format!("expected term, got {t:?}"))),
        }
    }

    fn term_list(&mut self) -> Result<Vec<Term>, ParseError> {
        self.toks.expect(&Tok::LParen)?;
        let mut terms = Vec::new();
        loop {
            let tok = self.toks.next()?;
            if tok == Tok::RParen && terms.is_empty() {
                return Ok(terms);
            }
            terms.push(self.term_from(tok)?);
            match self.toks.next()? {
                Tok::Comma => continue,
                Tok::RParen => return Ok(terms),
                t => {
                    return Err(ParseError::Syntax(format!(
                        "expected ',' or ')', got {t:?}"
                    )))
                }
            }
        }
    }

    fn parse(mut self) -> Result<Cq, ParseError> {
        let head_name = match self.toks.next()? {
            Tok::Ident(n) => n,
            t => return Err(ParseError::Syntax(format!("expected head name, got {t:?}"))),
        };
        let head = self.term_list()?;
        self.toks.expect(&Tok::Turnstile)?;
        let mut body = Vec::new();
        loop {
            let rel_name = match self.toks.next()? {
                Tok::Ident(n) => n,
                t => return Err(ParseError::Syntax(format!("expected relation, got {t:?}"))),
            };
            let rel = self
                .schema
                .relation_id(&rel_name)
                .ok_or_else(|| ParseError::UnknownRelation(rel_name.clone()))?;
            let terms = self.term_list()?;
            if terms.len() != self.schema.arity(rel) {
                return Err(ParseError::ArityMismatch {
                    relation: rel_name,
                    expected: self.schema.arity(rel),
                    got: terms.len(),
                });
            }
            body.push(Atom { rel, terms });
            match self.toks.next()? {
                Tok::Comma => continue,
                Tok::End => break,
                t => {
                    return Err(ParseError::Syntax(format!(
                        "expected ',' or end, got {t:?}"
                    )))
                }
            }
        }
        let cq = Cq {
            head_name,
            head,
            body,
        };
        if !cq.is_safe() {
            let names: HashMap<VarId, String> =
                self.vars.into_iter().map(|(n, v)| (v, n)).collect();
            let bad = cq
                .head
                .iter()
                .filter_map(Term::as_var)
                .find(|v| !cq.body.iter().flat_map(|a| a.variables()).any(|b| b == *v))
                .map(|v| {
                    names
                        .get(&v)
                        .cloned()
                        .unwrap_or_else(|| format!("v{}", v.0))
                })
                .unwrap_or_default();
            return Err(ParseError::UnsafeHead(bad));
        }
        Ok(cq)
    }
}

/// Parses a single conjunctive query against `schema`.
pub fn parse_cq(src: &str, schema: &Schema) -> Result<Cq, ParseError> {
    CqParser {
        toks: Tokenizer::new(src),
        schema,
        vars: HashMap::new(),
    }
    .parse()
}

/// Parses a UCQ: CQs separated by `;`.
pub fn parse_ucq(src: &str, schema: &Schema) -> Result<Ucq, ParseError> {
    let disjuncts = src
        .split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_cq(s, schema))
        .collect::<Result<Vec<_>, _>>()?;
    if disjuncts.is_empty() {
        return Err(ParseError::Syntax("empty UCQ".into()));
    }
    let arity = disjuncts[0].head.len();
    if disjuncts.iter().any(|d| d.head.len() != arity) {
        return Err(ParseError::Syntax(
            "UCQ disjuncts disagree on head arity".into(),
        ));
    }
    Ok(Ucq { disjuncts })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation("Person", &["pid", "name", "age"]);
        s.add_relation("Hobbies", &["pid", "hobby", "source"]);
        s.add_relation("Interests", &["pid", "interest", "source"]);
        s
    }

    #[test]
    fn parses_running_example_query() {
        let s = schema();
        let q = parse_cq(
            "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', src1), Interests(id, 'Music', src2)",
            &s,
        )
        .unwrap();
        assert_eq!(q.body.len(), 3);
        assert_eq!(q.head.len(), 1);
        assert!(q.is_connected());
        assert!(q.is_safe());
        // 'Dance' is a constant, id is shared.
        assert_eq!(q.body[1].terms[1], Term::Const(Value::str("Dance")));
        assert_eq!(q.body[0].terms[0], q.head[0]);
    }

    #[test]
    fn rejects_unknown_relation() {
        let s = schema();
        let e = parse_cq("Q(x) :- Nope(x)", &s).unwrap_err();
        assert_eq!(e, ParseError::UnknownRelation("Nope".into()));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let s = schema();
        let e = parse_cq("Q(x) :- Person(x)", &s).unwrap_err();
        assert!(matches!(
            e,
            ParseError::ArityMismatch {
                expected: 3,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn rejects_unsafe_head() {
        let s = schema();
        let e = parse_cq("Q(zz) :- Person(x, y, z)", &s).unwrap_err();
        assert_eq!(e, ParseError::UnsafeHead("zz".into()));
    }

    #[test]
    fn rejects_uppercase_bareword_constants() {
        let s = schema();
        assert!(parse_cq("Q(x) :- Hobbies(x, Dance, y)", &s).is_err());
    }

    #[test]
    fn parses_integer_constants() {
        let s = schema();
        let q = parse_cq("Q(x) :- Person(x, n, 27)", &s).unwrap();
        assert_eq!(q.body[0].terms[2], Term::Const(Value::Int(27)));
    }

    #[test]
    fn parses_ucq() {
        let s = schema();
        let u = parse_ucq("Q(x) :- Person(x, n, a); Q(x) :- Hobbies(x, h, src)", &s).unwrap();
        assert_eq!(u.disjuncts.len(), 2);
        let err = parse_ucq("Q(x) :- Person(x, n, a); Q(x, y) :- Hobbies(x, y, s)", &s);
        assert!(err.is_err());
    }

    #[test]
    fn roundtrip_display_parses_back() {
        let s = schema();
        let q = parse_cq(
            "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', w)",
            &s,
        )
        .unwrap();
        let shown = q.display(&s).to_string();
        let q2 = parse_cq(&shown, &s).unwrap();
        assert_eq!(q.body.len(), q2.body.len());
        assert!(q2.is_safe());
    }
}
