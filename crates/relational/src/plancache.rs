//! An epoch-keyed, stats-fingerprinted query-plan cache.
//!
//! `provabsd` re-planned every request from scratch even when thousands of
//! sessions issue the same query templates against the same epoch. The
//! [`PlanCache`] memoizes [`QueryPlan`]s under a
//! `(query fingerprint, stats fingerprint)` key with per-epoch version
//! stamps, mirroring the `PrivacyCache` snapshot-sharing model exactly:
//!
//! * **Query fingerprint** — the plan mode plus the query's head and body
//!   structure (relations, constants, variable identities), hashed with
//!   FNV-1a so the key is stable across processes and runs.
//! * **Stats fingerprint** — precisely the statistics the planner reads for
//!   this query (relation row counts, per-variable-column distinct counts,
//!   per-constant resolved posting lengths, the index flag). Two databases
//!   agreeing on these plan the query identically, so a cache hit returns a
//!   plan byte-identical to what a cold plan would compute — hit and miss
//!   paths produce identical results and identical work counters.
//! * **Epoch stamps** — every cached version carries `born`/`dead` epochs.
//!   [`PlanCache::invalidate_at`] **retires** (never evicts) the versions
//!   of every key touching a written relation, for epochs at or after the
//!   committing epoch. A reader pinned to an older snapshot keeps hitting
//!   its versions bit-for-bit; readers at newer epochs re-plan on first
//!   touch. The writer fences the cache *before* publishing the new epoch
//!   (the same ordering the `PrivacyCache` fence uses in `provabsd`), so no
//!   reader can pin the new epoch and still hit a stale plan.
//!
//! Determinism contract: hits, misses and invalidations are pure functions
//! of the operation sequence (no time, no capacity eviction, no RNG), so
//! the service-level counters are bench-gate material like every other
//! counter in the system.

use crate::plan::{plan_cq, PlanMode, QueryPlan};
use crate::{Cq, Database, RelId, Term, Value};
use provabs_sched::sync::atomic::{AtomicU64, Ordering};
use provabs_sched::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Shard count (power of two; routing is a mask on the query fingerprint).
const SHARDS: usize = 16;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A running FNV-1a 64-bit hash — hand-rolled so fingerprints never depend
/// on `RandomState` seeds (and need no new dependency).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// Cache key: what the plan depends on, hashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    query_fp: u64,
    stats_fp: u64,
}

/// One cached plan version: valid for epochs `born <= e < dead`
/// (`dead == u64::MAX` means still live).
#[derive(Debug, Clone)]
struct Stamped {
    born: u64,
    dead: u64,
    plan: Arc<QueryPlan>,
}

/// The relations a cached entry reads, plus its stamped versions.
#[derive(Debug)]
struct Entry {
    rels: Vec<RelId>,
    versions: Vec<Stamped>,
}

/// Monotonic counters of one [`PlanCache`] — surfaced through
/// `provabsd::stats()`. Deterministic for a deterministic op sequence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from a cached version.
    pub hits: u64,
    /// Lookups that planned cold (and inserted the result).
    pub misses: u64,
    /// Plan versions retired by [`PlanCache::invalidate_at`].
    pub invalidations: u64,
}

/// A sharded, epoch-aware cache of [`QueryPlan`]s (see the module docs).
///
/// `Send + Sync`; one cache is shared by every session of a
/// [`SessionRegistry`](crate::SessionRegistry) and consulted through
/// [`Evaluator::plan_cache`](crate::Evaluator::plan_cache).
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<Mutex<HashMap<PlanKey, Entry>>>,
    /// Sorted retirement epochs per relation: the fences a late insert by a
    /// pinned old-epoch reader must not outlive.
    retirements: Mutex<HashMap<RelId, Vec<u64>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self {
            shards: (0..SHARDS)
                .map(|_| Mutex::labeled("plancache.shard", HashMap::new()))
                .collect(),
            retirements: Mutex::labeled("plancache.retirements", HashMap::new()),
            hits: AtomicU64::labeled("plancache.hits", 0),
            misses: AtomicU64::labeled("plancache.misses", 0),
            invalidations: AtomicU64::labeled("plancache.invalidations", 0),
        }
    }
}

/// The version of `vs` visible at `epoch` (max-born wins; overlapping
/// versions hold equal plans — both were computed from the same snapshot
/// statistics).
fn version_at(vs: &[Stamped], epoch: u64) -> Option<Arc<QueryPlan>> {
    vs.iter()
        .filter(|s| s.born <= epoch && epoch < s.dead)
        .max_by_key(|s| s.born)
        .map(|s| Arc::clone(&s.plan))
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total cached plan versions across shards (retired versions included
    /// — invalidation retires, never evicts).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("plan cache shard poisoned")
                    .values()
                    .map(|e| e.versions.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the hit/miss/invalidation counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// The plan for `q` under `mode` as seen at `epoch`: a cached version
    /// when one is valid, otherwise a cold [`plan_cq`] run against `db`
    /// (inserted under the fingerprints, first insert wins under races).
    /// Returns the plan and whether the lookup hit.
    ///
    /// The caller must pass the database its session actually reads — the
    /// stats fingerprint is computed from `db`, which is what guarantees a
    /// hit is byte-identical to the cold plan.
    pub fn lookup_or_plan(
        &self,
        db: &Database,
        q: &Cq,
        mode: PlanMode,
        epoch: u64,
    ) -> (Arc<QueryPlan>, bool) {
        let key = PlanKey {
            query_fp: query_fingerprint(q, mode),
            stats_fp: stats_fingerprint(db, q),
        };
        let shard = &self.shards[(key.query_fp as usize) & (SHARDS - 1)];
        if let Some(plan) = shard
            .lock()
            .expect("plan cache shard poisoned")
            .get(&key)
            .and_then(|e| version_at(&e.versions, epoch))
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (plan, true);
        }
        // Plan outside the lock: planning probes the dictionary and is the
        // expensive part this cache exists to amortize.
        let plan = Arc::new(plan_cq(db, q, mode, None));
        let mut rels: Vec<RelId> = q.body.iter().map(|a| a.rel).collect();
        rels.sort_unstable();
        rels.dedup();
        let dead = self.retirement_after(&rels, epoch);
        let mut shard = shard.lock().expect("plan cache shard poisoned");
        let entry = shard.entry(key).or_insert_with(|| Entry {
            rels,
            versions: Vec::new(),
        });
        // A racing miss may have inserted first; its plan is equal (same
        // fingerprints ⇒ same planner inputs), keep the stored one.
        if let Some(stored) = version_at(&entry.versions, epoch) {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return (stored, false);
        }
        entry.versions.push(Stamped {
            born: epoch,
            dead,
            plan: Arc::clone(&plan),
        });
        self.misses.fetch_add(1, Ordering::Relaxed);
        (plan, false)
    }

    /// Retires, for epochs `>= epoch`, every cached version whose query
    /// reads a relation in `touched`. Nothing is evicted: readers pinned
    /// at older epochs keep hitting their versions bit-for-bit, exactly
    /// like the `PrivacyCache` epoch fence. The writer must call this
    /// **before** publishing `epoch` so no reader pins the new epoch and
    /// hits a stale plan.
    pub fn invalidate_at(&self, touched: &[RelId], epoch: u64) {
        if touched.is_empty() {
            return;
        }
        // Record the fence first: a concurrent insert either sees the
        // retirement (and bounds its own version's lifetime) or publishes
        // before the clamp pass below (which then bounds it).
        {
            let mut ret = self.retirements.lock().expect("retirements poisoned");
            for &rel in touched {
                let rs = ret.entry(rel).or_default();
                if rs.last().copied() != Some(epoch) {
                    rs.push(epoch);
                }
            }
        }
        let mut retired = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("plan cache shard poisoned");
            for entry in shard.values_mut() {
                if !entry.rels.iter().any(|r| touched.contains(r)) {
                    continue;
                }
                for s in &mut entry.versions {
                    if s.born < epoch && s.dead > epoch {
                        s.dead = epoch;
                        retired += 1;
                    }
                }
            }
        }
        self.invalidations.fetch_add(retired, Ordering::Relaxed);
    }

    /// The earliest recorded retirement strictly after `epoch` across
    /// `rels` — the epoch at which a version born at `epoch` stops being
    /// valid. A pinned old-epoch reader inserting after later fences have
    /// been recorded lands its version inside them instead of claiming
    /// liveness forever.
    fn retirement_after(&self, rels: &[RelId], epoch: u64) -> u64 {
        let ret = self.retirements.lock().expect("retirements poisoned");
        let mut dead = u64::MAX;
        for rel in rels {
            if let Some(d) = ret
                .get(rel)
                .and_then(|rs| rs.iter().copied().find(|&r| r > epoch))
            {
                dead = dead.min(d);
            }
        }
        dead
    }
}

fn hash_term(h: &mut Fnv, t: &Term) {
    match t {
        Term::Var(v) => {
            h.byte(0);
            h.u64(v.0 as u64);
        }
        Term::Const(Value::Int(i)) => {
            h.byte(1);
            h.u64(*i as u64);
        }
        Term::Const(Value::Str(s)) => {
            h.byte(2);
            h.u64(s.len() as u64);
            h.bytes(s.as_bytes());
        }
    }
}

/// FNV-1a over the plan-relevant structure of `q` under `mode`: the mode
/// discriminant, head terms, and body atoms (relation ids, arities, terms).
/// The head name is cosmetic and excluded.
fn query_fingerprint(q: &Cq, mode: PlanMode) -> u64 {
    let mut h = Fnv::new();
    h.byte(match mode {
        PlanMode::CostBased => 0,
        PlanMode::Greedy => 1,
        PlanMode::WrittenOrder => 2,
    });
    h.u64(q.head.len() as u64);
    for t in &q.head {
        hash_term(&mut h, t);
    }
    h.u64(q.body.len() as u64);
    for a in &q.body {
        h.u64(a.rel.0 as u64);
        h.u64(a.terms.len() as u64);
        for t in &a.terms {
            hash_term(&mut h, t);
        }
    }
    h.0
}

/// FNV-1a over exactly the statistics `plan_cq` reads for `q`: the index
/// flag, and per body atom its relation row count, each variable column's
/// distinct count, and each constant's resolved posting length (an
/// un-interned constant hashes as a sentinel). Databases agreeing on this
/// fingerprint plan `q` identically — the planner has no other input.
fn stats_fingerprint(db: &Database, q: &Cq) -> u64 {
    let mut h = Fnv::new();
    h.byte(db.is_indexed() as u8);
    for a in &q.body {
        h.u64(db.relation_len(a.rel) as u64);
        for (col, term) in a.terms.iter().enumerate() {
            match term {
                Term::Var(_) => h.u64(db.distinct_count(a.rel, col) as u64),
                Term::Const(c) => match db.interner().lookup(c) {
                    None => h.u64(u64::MAX),
                    Some(id) => h.u64(db.posting_len(a.rel, col, id) as u64),
                },
            }
        }
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_cq, plan_cq};

    fn db() -> Database {
        let mut db = Database::new();
        let r = db.add_relation("R", &["a", "b"]);
        let s = db.add_relation("S", &["b", "c"]);
        for i in 0..30 {
            db.insert_str(r, &format!("r{i}"), &[&i.to_string(), &(i % 5).to_string()]);
            db.insert_str(s, &format!("s{i}"), &[&(i % 5).to_string(), &i.to_string()]);
        }
        db.build_indexes();
        db
    }

    #[test]
    fn hit_returns_the_cold_plan_byte_identical() {
        let db = db();
        let q = parse_cq("Q(a, c) :- R(a, b), S(b, c)", db.schema()).unwrap();
        let cache = PlanCache::new();
        let (cold, hit) = cache.lookup_or_plan(&db, &q, PlanMode::CostBased, 0);
        assert!(!hit);
        assert_eq!(*cold, plan_cq(&db, &q, PlanMode::CostBased, None));
        let (warm, hit) = cache.lookup_or_plan(&db, &q, PlanMode::CostBased, 0);
        assert!(hit);
        assert_eq!(warm, cold);
        assert_eq!(
            cache.stats(),
            PlanCacheStats {
                hits: 1,
                misses: 1,
                invalidations: 0
            }
        );
        // Modes key separately.
        let (_, hit) = cache.lookup_or_plan(&db, &q, PlanMode::WrittenOrder, 0);
        assert!(!hit);
    }

    #[test]
    fn changed_statistics_change_the_key() {
        let mut db = db();
        let q = parse_cq("Q(a, c) :- R(a, b), S(b, c)", db.schema()).unwrap();
        let cache = PlanCache::new();
        cache.lookup_or_plan(&db, &q, PlanMode::CostBased, 0);
        // Touch R's statistics: same query, new stats fingerprint — a cold
        // plan even without any invalidation fence.
        let r = db.schema().relation_id("R").unwrap();
        db.insert_str(r, "fresh", &["99", "99"]);
        db.build_indexes();
        let (plan, hit) = cache.lookup_or_plan(&db, &q, PlanMode::CostBased, 0);
        assert!(!hit);
        assert_eq!(*plan, plan_cq(&db, &q, PlanMode::CostBased, None));
    }

    #[test]
    fn invalidation_retires_only_touching_queries_and_later_epochs() {
        let db = db();
        let r = db.schema().relation_id("R").unwrap();
        let q_r = parse_cq("Q(a) :- R(a, b)", db.schema()).unwrap();
        let q_s = parse_cq("Q(b) :- S(b, c)", db.schema()).unwrap();
        let cache = PlanCache::new();
        cache.lookup_or_plan(&db, &q_r, PlanMode::CostBased, 0);
        cache.lookup_or_plan(&db, &q_s, PlanMode::CostBased, 0);
        cache.invalidate_at(&[r], 1);
        assert_eq!(cache.stats().invalidations, 1, "only the R query retires");
        // The pinned epoch-0 reader keeps hitting both.
        assert!(cache.lookup_or_plan(&db, &q_r, PlanMode::CostBased, 0).1);
        assert!(cache.lookup_or_plan(&db, &q_s, PlanMode::CostBased, 0).1);
        // An epoch-1 reader re-plans the retired query, hits the other.
        assert!(!cache.lookup_or_plan(&db, &q_r, PlanMode::CostBased, 1).1);
        assert!(cache.lookup_or_plan(&db, &q_s, PlanMode::CostBased, 1).1);
        // Both epochs are now fully warm.
        assert!(cache.lookup_or_plan(&db, &q_r, PlanMode::CostBased, 0).1);
        assert!(cache.lookup_or_plan(&db, &q_r, PlanMode::CostBased, 1).1);
        assert_eq!(cache.len(), 3, "retire, never evict");
    }

    #[test]
    fn late_insert_by_pinned_reader_respects_later_fences() {
        let db = db();
        let r = db.schema().relation_id("R").unwrap();
        let q = parse_cq("Q(a) :- R(a, b)", db.schema()).unwrap();
        let cache = PlanCache::new();
        // The fence at epoch 2 is recorded before any epoch-0 insert.
        cache.invalidate_at(&[r], 2);
        let (_, hit) = cache.lookup_or_plan(&db, &q, PlanMode::CostBased, 0);
        assert!(!hit);
        // The late insert is valid at epochs 0 and 1 but dead at 2.
        assert!(cache.lookup_or_plan(&db, &q, PlanMode::CostBased, 1).1);
        assert!(!cache.lookup_or_plan(&db, &q, PlanMode::CostBased, 2).1);
    }

    #[test]
    fn fingerprints_separate_queries_not_cosmetics() {
        let db = db();
        let a = parse_cq("Q(a) :- R(a, b)", db.schema()).unwrap();
        let mut renamed = a.clone();
        renamed.head_name = "Other".into();
        assert_eq!(
            query_fingerprint(&a, PlanMode::CostBased),
            query_fingerprint(&renamed, PlanMode::CostBased),
            "head name is cosmetic"
        );
        let b = parse_cq("Q(a) :- R(a, 3)", db.schema()).unwrap();
        assert_ne!(
            query_fingerprint(&a, PlanMode::CostBased),
            query_fingerprint(&b, PlanMode::CostBased)
        );
    }
}
