//! The [`Evaluator`] builder: one front door for every evaluation variant.
//!
//! Historically each combination of {CQ, UCQ} × {owned, interned} ×
//! {plain, limited, counted, delta-restricted} × {default, explicit
//! [`PlanMode`]} grew its own free function, ending in a
//! `eval_cq_counted_interned_mode`-style matrix. The builder collapses the
//! matrix into configuration:
//!
//! ```
//! use provabs_relational::{parse_cq, Database, Evaluator, Execution, PlanMode};
//!
//! let mut db = Database::new();
//! let r = db.add_relation("R", &["a", "b"]);
//! db.insert_str(r, "t1", &["1", "2"]);
//! db.insert_str(r, "t2", &["2", "3"]);
//! db.build_indexes();
//! let q = parse_cq("Q(x, z) :- R(x, y), R(y, z)", db.schema()).unwrap();
//!
//! let eval = Evaluator::new(&db); // cost-based plan, block execution
//! let (out, work) = eval.eval_cq(&q);
//! assert_eq!(out.len(), 1);
//!
//! // The same evaluation, replayed through the scalar engine: identical
//! // output, scalar counter semantics.
//! let (replay, _) = eval.execution(Execution::Scalar).eval_cq(&q);
//! assert_eq!(replay, out);
//! # let _ = PlanMode::default();
//! ```
//!
//! An evaluator borrows the database immutably, so it cannot drive
//! [`Database::apply_delta`]; the update cycle lives on [`Updater`], which
//! holds only configuration and borrows the database per call:
//!
//! ```
//! use provabs_relational::{parse_cq, Database, Delta, Tuple, Updater};
//!
//! let mut db = Database::new();
//! let r = db.add_relation("R", &["a"]);
//! db.insert_str(r, "t1", &["1"]);
//! db.build_indexes();
//! let q = parse_cq("Q(x) :- R(x)", db.schema()).unwrap();
//! let mut delta = Delta::new();
//! delta.insert(r, "t2", Tuple::parse(&["2"]));
//!
//! let out = Updater::new().apply(&mut db, &delta, std::slice::from_ref(&q));
//! assert_eq!(out.deltas.len(), 1);
//! ```

use crate::delta::{
    apply_delta_impl, apply_delta_owned_impl, eval_delta_side, sum_disjuncts, Delta,
    DeltaEvalOutcome, IDeltaEvalOutcome,
};
use crate::eval::{
    eval_cq_interned_impl, eval_cq_owned_impl, eval_cq_traced_impl, eval_cq_traced_interned_impl,
    eval_ucq_interned_impl, EvalLimits, EvalWork, KRelation,
};
use crate::exec::Execution;
use crate::interned::IKRelation;
use crate::plan::{Adaptive, PlanMode, PlanTrace, QueryPlan};
use crate::plancache::PlanCache;
use crate::{Cq, Database, Ucq};
use provabs_semiring::{AnnotId, ProvStore};
use std::collections::HashSet;

/// A configured evaluation front end over a borrowed [`Database`].
///
/// Construction is free — an `Evaluator` is a [`PlanMode`], an
/// [`Execution`] and [`EvalLimits`] next to a `&Database`; build one per
/// call site or keep one around, as convenient. All configuration methods
/// are chainable and copy the evaluator ([`Evaluator`] is `Copy`).
///
/// Owned results decode provenance into [`KRelation`]s through a throwaway
/// arena per call. Callers evaluating repeatedly should pass a persistent
/// [`ProvStore`] to [`Evaluator::interned`] and traffic in
/// [`IKRelation`]s, so hash-consing and operation memos carry across
/// evaluations.
#[derive(Debug, Clone, Copy)]
pub struct Evaluator<'db> {
    db: &'db Database,
    mode: PlanMode,
    exec: Execution,
    limits: EvalLimits,
    adaptive: Option<Adaptive>,
    cache: Option<(&'db PlanCache, u64)>,
}

impl<'db> Evaluator<'db> {
    /// An evaluator with the default configuration: cost-based planning,
    /// vectorized block execution, no limits, no adaptivity.
    pub fn new(db: &'db Database) -> Self {
        Evaluator {
            db,
            mode: PlanMode::default(),
            exec: Execution::default(),
            limits: EvalLimits::default(),
            adaptive: None,
            cache: None,
        }
    }

    /// Selects the join order policy (see [`PlanMode`]).
    pub fn plan(mut self, mode: PlanMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the physical execution (see [`Execution`]). Harnesses
    /// replaying counter baselines recorded before the block engine pass
    /// [`Execution::Scalar`].
    pub fn execution(mut self, exec: Execution) -> Self {
        self.exec = exec;
        self
    }

    /// Caps derivations and distinct outputs (see [`EvalLimits`]).
    pub fn limits(mut self, limits: EvalLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Enables deterministic mid-join re-planning: when a step's actual
    /// frontier exceeds its cumulative estimate by factor `k` (exact row
    /// counters, never time), the remaining atoms are re-planned against
    /// the observed cardinality and sideways bound-value statistics. `k`
    /// is clamped to ≥ 1.0. [`EvalWork::replan`] reports what happened.
    /// Off by default; with adaptivity off every counter replays the
    /// static baselines bit-for-bit.
    ///
    /// Adaptivity is answer-invisible — it may only change the join
    /// order, never the output:
    ///
    /// ```
    /// use provabs_relational::{parse_cq, Database, Evaluator};
    ///
    /// let mut db = Database::new();
    /// let r = db.add_relation("R", &["a", "b"]);
    /// let s = db.add_relation("S", &["b", "c"]);
    /// // Correlated data the statistics get wrong: S averages ~2 rows
    /// // per key over its 33 distinct keys, but every R row points at
    /// // the one key carrying 32 rows.
    /// for i in 0..8 {
    ///     db.insert_str(r, &format!("r{i}"), &[&format!("{i}"), "7"]);
    /// }
    /// for i in 0..32 {
    ///     db.insert_str(s, &format!("s{i}"), &["7", &format!("{i}")]);
    /// }
    /// for i in 0..32 {
    ///     db.insert_str(s, &format!("cold{i}"), &[&format!("{}", 100 + i), "0"]);
    /// }
    /// db.build_indexes();
    /// let q = parse_cq("Q(x, c) :- R(x, y), S(y, c)", db.schema()).unwrap();
    ///
    /// let (static_out, _) = Evaluator::new(&db).eval_cq(&q);
    /// let (out, work) = Evaluator::new(&db).adaptive(2.0).eval_cq(&q);
    /// assert_eq!(out, static_out); // bit-for-bit, polynomials included
    /// assert_eq!(work.replan.replans_triggered, 1); // the trigger fired
    /// assert!(work.replan.est_error_max >= 2); // and measured the lie
    /// ```
    pub fn adaptive(mut self, k: f64) -> Self {
        self.adaptive = Some(Adaptive::new(k));
        self
    }

    /// Disables mid-join re-planning (the default).
    pub fn adaptive_off(mut self) -> Self {
        self.adaptive = None;
        self
    }

    /// Binds an epoch-keyed [`PlanCache`]: CQ evaluations consult the
    /// cache at `epoch` before planning, and insert on miss. The cached
    /// plan is byte-identical to a cold plan (the stats fingerprint keys
    /// on exactly the statistics the planner reads), so hit and miss
    /// paths produce identical results and counters. UCQ disjuncts are
    /// not cached.
    pub fn plan_cache(mut self, cache: &'db PlanCache, epoch: u64) -> Self {
        self.cache = Some((cache, epoch));
        self
    }

    fn cached_plan(&self, q: &Cq) -> Option<std::sync::Arc<QueryPlan>> {
        let (cache, epoch) = self.cache?;
        Some(cache.lookup_or_plan(self.db, q, self.mode, epoch).0)
    }

    /// The configured plan mode.
    pub fn plan_mode(&self) -> PlanMode {
        self.mode
    }

    /// The configured execution.
    pub fn execution_mode(&self) -> Execution {
        self.exec
    }

    /// Evaluates a CQ, returning the owned K-relation and work counters.
    pub fn eval_cq(&self, q: &Cq) -> (KRelation, EvalWork) {
        let plan = self.cached_plan(q);
        eval_cq_owned_impl(
            self.db,
            q,
            self.limits,
            self.mode,
            self.exec,
            self.adaptive,
            plan.as_deref(),
        )
    }

    /// [`Evaluator::eval_cq`] also returning the executed plan and per-step
    /// actual row counts.
    pub fn eval_cq_traced(&self, q: &Cq) -> (KRelation, EvalWork, PlanTrace) {
        let plan = self.cached_plan(q);
        eval_cq_traced_impl(
            self.db,
            q,
            self.limits,
            self.mode,
            self.exec,
            self.adaptive,
            plan.as_deref(),
        )
    }

    /// Evaluates a UCQ (the sum of its disjuncts, each planned
    /// independently and evaluated without limits).
    pub fn eval_ucq(&self, u: &Ucq) -> (KRelation, EvalWork) {
        let mut store = ProvStore::new();
        let (out, work) =
            eval_ucq_interned_impl(self.db, u, &mut store, self.mode, self.exec, self.adaptive);
        (out.to_krelation(&store), work)
    }

    /// The provenance retracted by deleting the tuples tagged by `deletes`
    /// (evaluate **before** applying the delta).
    pub fn retractions_cq(&self, q: &Cq, deletes: &HashSet<AnnotId>) -> (KRelation, EvalWork) {
        let mut store = ProvStore::new();
        let (out, work) = eval_delta_side(self.db, q, deletes, &mut store, self.mode, self.exec);
        (out.to_krelation(&store), work)
    }

    /// The provenance added by the tuples tagged by `inserts` (evaluate
    /// **after** applying the delta).
    pub fn additions_cq(&self, q: &Cq, inserts: &HashSet<AnnotId>) -> (KRelation, EvalWork) {
        self.retractions_cq(q, inserts)
    }

    /// UCQ retractions: the sum of the disjuncts' retractions.
    pub fn retractions_ucq(&self, u: &Ucq, deletes: &HashSet<AnnotId>) -> (KRelation, EvalWork) {
        let mut store = ProvStore::new();
        let (out, work) = sum_disjuncts(self.db, u, deletes, &mut store, self.mode, self.exec);
        (out.to_krelation(&store), work)
    }

    /// UCQ additions: the sum of the disjuncts' additions.
    pub fn additions_ucq(&self, u: &Ucq, inserts: &HashSet<AnnotId>) -> (KRelation, EvalWork) {
        self.retractions_ucq(u, inserts)
    }

    /// Evaluates a batch of CQs across `workers` scoped threads sharing the
    /// borrowed database (work-stealing, results in input order — the
    /// configured counterpart of [`crate::eval_cqs_parallel`]).
    pub fn eval_batch(&self, queries: &[Cq], workers: usize) -> Vec<(KRelation, EvalWork)> {
        let workers = workers.max(1).min(queries.len().max(1));
        if workers <= 1 || queries.len() <= 1 {
            return queries.iter().map(|q| self.eval_cq(q)).collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut slots: Vec<Option<(KRelation, EvalWork)>> = Vec::new();
        slots.resize_with(queries.len(), || None);
        let slots = std::sync::Mutex::new(slots);
        std::thread::scope(|s| {
            for _ in 0..workers {
                let (next, slots) = (&next, &slots);
                s.spawn(move || loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    let out = self.eval_cq(&queries[i]);
                    slots.lock().expect("result lock poisoned")[i] = Some(out);
                });
            }
        });
        slots
            .into_inner()
            .expect("result lock poisoned")
            .into_iter()
            .map(|r| r.expect("every query slot filled"))
            .collect()
    }

    /// Binds a persistent [`ProvStore`]: results come back as
    /// [`IKRelation`]s whose provenance lives in the store.
    pub fn interned<'s>(&self, store: &'s mut ProvStore) -> InternedEvaluator<'db, 's> {
        InternedEvaluator {
            db: self.db,
            mode: self.mode,
            exec: self.exec,
            limits: self.limits,
            adaptive: self.adaptive,
            cache: self.cache,
            store,
        }
    }

    /// An [`Updater`] carrying this evaluator's plan mode and execution
    /// (the update cycle needs `&mut Database`, which the evaluator's
    /// borrow cannot provide).
    pub fn updater(&self) -> Updater {
        Updater {
            mode: self.mode,
            exec: self.exec,
        }
    }
}

/// An [`Evaluator`] bound to a caller-owned [`ProvStore`]: every result is
/// an [`IKRelation`] interned in that store.
pub struct InternedEvaluator<'db, 's> {
    db: &'db Database,
    mode: PlanMode,
    exec: Execution,
    limits: EvalLimits,
    adaptive: Option<Adaptive>,
    cache: Option<(&'db PlanCache, u64)>,
    store: &'s mut ProvStore,
}

impl InternedEvaluator<'_, '_> {
    fn cached_plan(&self, q: &Cq) -> Option<std::sync::Arc<QueryPlan>> {
        let (cache, epoch) = self.cache?;
        Some(cache.lookup_or_plan(self.db, q, self.mode, epoch).0)
    }

    /// Evaluates a CQ into the bound store.
    pub fn eval_cq(&mut self, q: &Cq) -> (IKRelation, EvalWork) {
        let plan = self.cached_plan(q);
        eval_cq_interned_impl(
            self.db,
            q,
            self.limits,
            self.store,
            self.mode,
            self.exec,
            self.adaptive,
            plan.as_deref(),
        )
    }

    /// [`InternedEvaluator::eval_cq`] also returning the executed plan and
    /// per-step actual row counts, so interned callers (the search engine,
    /// `provabsd`) observe est-vs-actual without decode shims.
    pub fn eval_cq_traced(&mut self, q: &Cq) -> (IKRelation, EvalWork, PlanTrace) {
        let plan = self.cached_plan(q);
        eval_cq_traced_interned_impl(
            self.db,
            q,
            self.limits,
            self.store,
            self.mode,
            self.exec,
            self.adaptive,
            plan.as_deref(),
        )
    }

    /// Evaluates a UCQ into the bound store.
    pub fn eval_ucq(&mut self, u: &Ucq) -> (IKRelation, EvalWork) {
        eval_ucq_interned_impl(self.db, u, self.store, self.mode, self.exec, self.adaptive)
    }

    /// CQ retractions into the bound store (pre-delta database).
    pub fn retractions_cq(&mut self, q: &Cq, deletes: &HashSet<AnnotId>) -> (IKRelation, EvalWork) {
        eval_delta_side(self.db, q, deletes, self.store, self.mode, self.exec)
    }

    /// CQ additions into the bound store (post-delta database).
    pub fn additions_cq(&mut self, q: &Cq, inserts: &HashSet<AnnotId>) -> (IKRelation, EvalWork) {
        eval_delta_side(self.db, q, inserts, self.store, self.mode, self.exec)
    }

    /// UCQ retractions into the bound store (pre-delta database).
    pub fn retractions_ucq(
        &mut self,
        u: &Ucq,
        deletes: &HashSet<AnnotId>,
    ) -> (IKRelation, EvalWork) {
        sum_disjuncts(self.db, u, deletes, self.store, self.mode, self.exec)
    }

    /// UCQ additions into the bound store (post-delta database).
    pub fn additions_ucq(&mut self, u: &Ucq, inserts: &HashSet<AnnotId>) -> (IKRelation, EvalWork) {
        sum_disjuncts(self.db, u, inserts, self.store, self.mode, self.exec)
    }
}

/// The configured incremental-maintenance front end: computes retractions,
/// applies a [`Delta`], computes additions (see
/// [`crate::apply_delta_with_queries`] for the protocol). Holds no database
/// borrow, so it composes with [`Database::apply_delta`]'s `&mut self`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Updater {
    mode: PlanMode,
    exec: Execution,
}

impl Updater {
    /// An updater with the default configuration: cost-based planning,
    /// vectorized block execution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the join order policy.
    pub fn plan(mut self, mode: PlanMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the physical execution.
    pub fn execution(mut self, exec: Execution) -> Self {
        self.exec = exec;
        self
    }

    /// Runs the full cycle against `db`, decoding per-query
    /// [`KRelationDelta`](crate::KRelationDelta)s through a throwaway arena.
    pub fn apply(&self, db: &mut Database, delta: &Delta, queries: &[Cq]) -> DeltaEvalOutcome {
        apply_delta_owned_impl(db, delta, queries, self.mode, self.exec)
    }

    /// Runs the full cycle against `db` with interned results in `store`.
    pub fn apply_interned(
        &self,
        db: &mut Database,
        delta: &Delta,
        queries: &[Cq],
        store: &mut ProvStore,
    ) -> IDeltaEvalOutcome {
        apply_delta_impl(db, delta, queries, store, self.mode, self.exec)
    }

    /// Validated [`Updater::apply`]: a delta that would make
    /// [`Database::apply_delta`] panic — unknown relation, arity mismatch,
    /// a label that already tags a tuple, or one retired by a deletion —
    /// is rejected with a typed
    /// [`StorageError::InvalidDelta`](crate::storage::StorageError) before
    /// anything mutates. The same fail-closed boundary the durable layer
    /// applies before a WAL append, for callers (like the `provabsd`
    /// writer loop) that must never turn a bad request into a panic.
    pub fn try_apply(
        &self,
        db: &mut Database,
        delta: &Delta,
        queries: &[Cq],
    ) -> Result<DeltaEvalOutcome, crate::storage::StorageError> {
        crate::storage::validate_delta(db, delta)?;
        Ok(self.apply(db, delta, queries))
    }

    /// Validated [`Updater::apply_interned`] (see [`Updater::try_apply`]).
    pub fn try_apply_interned(
        &self,
        db: &mut Database,
        delta: &Delta,
        queries: &[Cq],
        store: &mut ProvStore,
    ) -> Result<IDeltaEvalOutcome, crate::storage::StorageError> {
        crate::storage::validate_delta(db, delta)?;
        Ok(self.apply_interned(db, delta, queries, store))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eval_cq, eval_cq_counted, parse_cq, parse_ucq, Tuple};

    fn db() -> Database {
        let mut db = Database::new();
        let r = db.add_relation("R", &["a", "b"]);
        let s = db.add_relation("S", &["b", "c"]);
        for i in 0..30 {
            db.insert_str(r, &format!("r{i}"), &[&i.to_string(), &(i % 5).to_string()]);
            db.insert_str(s, &format!("s{i}"), &[&(i % 5).to_string(), &i.to_string()]);
        }
        db.build_indexes();
        db
    }

    #[test]
    fn builder_matches_legacy_entry_points() {
        let db = db();
        let q = parse_cq("Q(a, c) :- R(a, b), S(b, c)", db.schema()).unwrap();
        let eval = Evaluator::new(&db);
        let (out, _) = eval.eval_cq(&q);
        assert_eq!(out, eval_cq(&db, &q));
        // Scalar replay reproduces the legacy counters bit-for-bit.
        let (sout, swork) = eval.execution(Execution::Scalar).eval_cq(&q);
        let (lout, lwork) = eval_cq_counted(&db, &q, EvalLimits::default());
        assert_eq!(sout, lout);
        assert_eq!(swork, lwork);
    }

    #[test]
    fn try_apply_rejects_bad_deltas_without_panicking() {
        use crate::storage::StorageError;
        use crate::Delta;
        let mut db = db();
        let r = db.schema().relation_id("R").unwrap();
        let q = parse_cq("Q(a, c) :- R(a, b), S(b, c)", db.schema()).unwrap();
        let queries = vec![q];
        // Reusing a live label is a typed error, not a panic, and the
        // database is untouched.
        let before = db.clone();
        let mut bad = Delta::new();
        bad.insert(r, "r0", Tuple::parse(&["99", "99"]));
        let err = Updater::new().try_apply(&mut db, &bad, &queries);
        assert!(matches!(err, Err(StorageError::InvalidDelta(_))));
        assert!(db.same_state(&before));
        // A retired label is rejected too.
        let r0 = db.annotations().get("r0").unwrap();
        let mut del = Delta::new();
        del.delete(r0);
        Updater::new().try_apply(&mut db, &del, &queries).unwrap();
        let err = Updater::new().try_apply(&mut db, &bad, &queries);
        assert!(matches!(err, Err(StorageError::InvalidDelta(_))));
        // A good delta goes through and matches the panicking path.
        let mut good = Delta::new();
        good.insert(r, "fresh", Tuple::parse(&["77", "3"]));
        let mut twin = db.clone();
        let out = Updater::new().try_apply(&mut db, &good, &queries).unwrap();
        let legacy = Updater::new().apply(&mut twin, &good, &queries);
        assert!(db.same_state(&twin));
        assert_eq!(out.deltas, legacy.deltas);
        assert_eq!(out.work, legacy.work);
    }

    #[test]
    fn interned_and_owned_agree() {
        let db = db();
        let u = parse_ucq("Q(a) :- R(a, b), S(b, c); Q(c) :- S(b, c)", db.schema()).unwrap();
        let eval = Evaluator::new(&db);
        let (owned, owork) = eval.eval_ucq(&u);
        let mut store = ProvStore::new();
        let (interned, iwork) = eval.interned(&mut store).eval_ucq(&u);
        assert_eq!(interned.to_krelation(&store), owned);
        assert_eq!(owork, iwork);
    }

    #[test]
    fn batch_matches_single_under_any_parallelism() {
        let db = db();
        let queries: Vec<Cq> = [
            "Q(a, c) :- R(a, b), S(b, c)",
            "Q(a) :- R(a, b)",
            "Q(b) :- S(b, c), R(a, b)",
        ]
        .iter()
        .map(|t| parse_cq(t, db.schema()).unwrap())
        .collect();
        for exec in [Execution::default(), Execution::Scalar] {
            let eval = Evaluator::new(&db).execution(exec);
            let single: Vec<_> = queries.iter().map(|q| eval.eval_cq(q)).collect();
            for workers in [1, 2, 8] {
                let batch = eval.eval_batch(&queries, workers);
                assert_eq!(batch, single, "workers={workers} exec={exec:?}");
            }
        }
    }

    #[test]
    fn updater_runs_the_delta_cycle_under_both_executions() {
        for exec in [Execution::default(), Execution::Scalar] {
            let mut database = db();
            let q = parse_cq("Q(a, c) :- R(a, b), S(b, c)", database.schema()).unwrap();
            let mut cached = eval_cq(&database, &q);
            let r = database.schema().relation_id("R").unwrap();
            let mut delta = Delta::new();
            delta.insert(r, "rx", Tuple::parse(&["99", "3"]));
            delta.delete(database.annotations().get("r7").unwrap());
            let out = Updater::new().execution(exec).apply(
                &mut database,
                &delta,
                std::slice::from_ref(&q),
            );
            assert!(out.deltas[0].merge_into(&mut cached), "exec={exec:?}");
            assert_eq!(cached, eval_cq(&database, &q), "exec={exec:?}");
        }
    }
}
