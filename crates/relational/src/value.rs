//! Constants of the database domain.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A constant of the domain `C`: an integer or an interned string.
///
/// Strings are reference-counted so that cloning tuples and bindings during
/// evaluation is cheap.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Integer constant.
    Int(i64),
    /// String constant.
    Str(Arc<str>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }

    /// Builds an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Parses a raw field literal: anything `i64` accepts becomes
    /// [`Value::Int`], everything else a [`Value::Str`].
    ///
    /// The exact semantics, pinned by unit tests:
    ///
    /// * Integer recognition is precisely `str::parse::<i64>` — an optional
    ///   leading `+` or `-` followed by ASCII digits, no whitespace, no
    ///   separators. Non-canonical spellings **normalize**: `"+5"` and
    ///   `"005"` parse to `Int(5)`, `"-0"` to `Int(0)`.
    /// * Out-of-range digit strings (beyond `i64`) fall back to `Str`, as
    ///   does anything else (`"5 "`, `"1_000"`, `"0x1f"`, `""`).
    /// * [`Display`](std::fmt::Display) renders the canonical decimal form,
    ///   so `parse(&int.to_string())` is the identity on integers, while
    ///   `parse` ∘ `Display` is *not* the identity on textual variants
    ///   (`"+5"` → `Int(5)` → `"5"`), nor on strings (`Display` adds the
    ///   quoting `parse` does not strip: `Str("x")` renders as `'x'`).
    ///
    /// `parse` is the raw-field decoder used by
    /// [`Tuple::parse`](crate::Tuple::parse) and the data generators; the
    /// query parser has its own tokenizer and does **not** route through
    /// it.
    pub fn parse(s: &str) -> Self {
        match s.parse::<i64>() {
            Ok(i) => Value::Int(i),
            Err(_) => Value::str(s),
        }
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the string if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl Serialize for Value {
    fn serialize<S: serde::Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::Int(i) => ser.serialize_i64(*i),
            Value::Str(s) => ser.serialize_str(s),
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: serde::Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        struct V;
        impl serde::de::Visitor<'_> for V {
            type Value = Value;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an integer or a string")
            }
            fn visit_i64<E>(self, v: i64) -> Result<Value, E> {
                Ok(Value::Int(v))
            }
            fn visit_u64<E: serde::de::Error>(self, v: u64) -> Result<Value, E> {
                i64::try_from(v).map(Value::Int).map_err(E::custom)
            }
            fn visit_str<E>(self, v: &str) -> Result<Value, E> {
                Ok(Value::str(v))
            }
        }
        de.deserialize_any(V)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_discriminates_ints() {
        assert_eq!(Value::parse("42"), Value::Int(42));
        assert_eq!(Value::parse("-7"), Value::Int(-7));
        assert_eq!(Value::parse("Dance"), Value::str("Dance"));
    }

    #[test]
    fn parse_normalizes_noncanonical_int_spellings() {
        // Pinned: integer recognition is exactly `str::parse::<i64>`, so
        // sign and leading-zero variants normalize to one canonical Int.
        assert_eq!(Value::parse("+5"), Value::Int(5));
        assert_eq!(Value::parse("-0"), Value::Int(0));
        assert_eq!(Value::parse("005"), Value::Int(5));
        assert_eq!(Value::parse("+0"), Value::Int(0));
        assert_eq!(Value::parse(&i64::MIN.to_string()), Value::Int(i64::MIN));
    }

    #[test]
    fn parse_rejects_near_ints_as_strings() {
        // Out-of-range, whitespace, separators, radix prefixes: all Str.
        assert_eq!(
            Value::parse("9223372036854775808"), // i64::MAX + 1
            Value::str("9223372036854775808")
        );
        assert_eq!(Value::parse(" 5"), Value::str(" 5"));
        assert_eq!(Value::parse("5 "), Value::str("5 "));
        assert_eq!(Value::parse("1_000"), Value::str("1_000"));
        assert_eq!(Value::parse("0x1f"), Value::str("0x1f"));
        assert_eq!(Value::parse(""), Value::str(""));
        assert_eq!(Value::parse("+"), Value::str("+"));
    }

    #[test]
    fn display_then_parse_is_identity_on_canonical_ints_only() {
        for i in [0i64, 5, -5, i64::MAX, i64::MIN] {
            let v = Value::Int(i);
            assert_eq!(Value::parse(&v.to_string()), v);
        }
        // Textual variants normalize (parse ∘ display ∘ parse is stable)...
        assert_eq!(Value::parse("+5").to_string(), "5");
        assert_eq!(Value::parse("-0").to_string(), "0");
        // ...and strings do not round-trip through Display's quoting.
        assert_eq!(
            Value::parse(&Value::str("x").to_string()),
            Value::str("'x'")
        );
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            Value::str("b"),
            Value::Int(2),
            Value::str("a"),
            Value::Int(1),
        ];
        v.sort();
        assert_eq!(v[0], Value::Int(1));
        assert_eq!(v[3], Value::str("b"));
    }

    #[test]
    fn display_quotes_strings() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::str("x").to_string(), "'x'");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_str(), None);
        assert_eq!(Value::str("y").as_str(), Some("y"));
    }
}
