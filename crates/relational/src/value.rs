//! Constants of the database domain.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A constant of the domain `C`: an integer or an interned string.
///
/// Strings are reference-counted so that cloning tuples and bindings during
/// evaluation is cheap.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Integer constant.
    Int(i64),
    /// String constant.
    Str(Arc<str>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }

    /// Builds an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Parses a literal: digits (with optional sign) become [`Value::Int`],
    /// everything else a [`Value::Str`].
    pub fn parse(s: &str) -> Self {
        match s.parse::<i64>() {
            Ok(i) => Value::Int(i),
            Err(_) => Value::str(s),
        }
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the string if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl Serialize for Value {
    fn serialize<S: serde::Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::Int(i) => ser.serialize_i64(*i),
            Value::Str(s) => ser.serialize_str(s),
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: serde::Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        struct V;
        impl serde::de::Visitor<'_> for V {
            type Value = Value;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an integer or a string")
            }
            fn visit_i64<E>(self, v: i64) -> Result<Value, E> {
                Ok(Value::Int(v))
            }
            fn visit_u64<E: serde::de::Error>(self, v: u64) -> Result<Value, E> {
                i64::try_from(v).map(Value::Int).map_err(E::custom)
            }
            fn visit_str<E>(self, v: &str) -> Result<Value, E> {
                Ok(Value::str(v))
            }
        }
        de.deserialize_any(V)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_discriminates_ints() {
        assert_eq!(Value::parse("42"), Value::Int(42));
        assert_eq!(Value::parse("-7"), Value::Int(-7));
        assert_eq!(Value::parse("Dance"), Value::str("Dance"));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            Value::str("b"),
            Value::Int(2),
            Value::str("a"),
            Value::Int(1),
        ];
        v.sort();
        assert_eq!(v[0], Value::Int(1));
        assert_eq!(v[3], Value::str("b"));
    }

    #[test]
    fn display_quotes_strings() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::str("x").to_string(), "'x'");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_str(), None);
        assert_eq!(Value::str("y").as_str(), Some("y"));
    }
}
