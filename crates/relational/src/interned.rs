//! Interned K-relations: the id-trafficking twin of [`KRelation`].
//!
//! The join engine and the delta-maintenance path produce and merge
//! provenance polynomials constantly; owning them means cloning and
//! re-sorting nested vectors on every derivation. An [`IKRelation`] maps
//! output tuples to [`PolyId`]s of a [`ProvStore`] instead: accumulation,
//! subtraction and equality are id operations, memoized at the arena level,
//! and a repeated evaluation over the same database re-derives nothing.
//!
//! The owned [`KRelation`] stays the boundary type — serialization, display
//! and the reverse-engineering layer keep working on owned polynomials via
//! [`IKRelation::to_krelation`] / [`IKRelation::from_krelation`].
//!
//! Ids are relative to one store: mixing an `IKRelation` with a store other
//! than the one that produced it is a logic error (all constructors below
//! take the store explicitly to keep that pairing visible).

use crate::{KRelation, Tuple};
use provabs_semiring::{MonoId, PolyId, ProvStore};
use std::collections::BTreeMap;

/// An output K-relation trafficking in interned provenance.
///
/// Ordered by tuple so iteration is deterministic. Equality compares
/// `PolyId`s, which is polynomial equality exactly when both sides were
/// built against the same [`ProvStore`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IKRelation {
    tuples: BTreeMap<Tuple, PolyId>,
}

impl IKRelation {
    /// Wraps an already-normalized map (crate-internal: the join engine
    /// accumulates derivations in a scratch map and interns each output's
    /// *final* polynomial exactly once — no accumulation prefix is ever
    /// retained by the arena).
    pub(crate) fn from_map(tuples: BTreeMap<Tuple, PolyId>) -> Self {
        debug_assert!(tuples.values().all(|&p| p != ProvStore::ZERO));
        Self { tuples }
    }

    /// Number of distinct output tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether there are no outputs.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The interned provenance of `t` ([`ProvStore::ZERO`] if absent).
    pub fn poly(&self, t: &Tuple) -> PolyId {
        self.tuples.get(t).copied().unwrap_or(ProvStore::ZERO)
    }

    /// Whether `t` has non-zero provenance.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains_key(t)
    }

    /// Iterates over `(output, provenance id)` in tuple order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, PolyId)> {
        self.tuples.iter().map(|(t, &p)| (t, p))
    }

    /// Adds one derivation monomial (coefficient 1) to the provenance of
    /// `t`.
    ///
    /// Each call interns the updated polynomial, so a long run of
    /// single-monomial additions to one tuple retains every accumulation
    /// prefix in the arena. Fine for incremental single additions; bulk
    /// producers (like the join engine) should gather the terms in a
    /// scratch map and intern the final polynomial once via
    /// [`ProvStore::intern_mono_terms`].
    pub fn add_monomial(&mut self, store: &mut ProvStore, t: Tuple, m: MonoId) {
        let entry = self.tuples.entry(t).or_insert(ProvStore::ZERO);
        *entry = store.add_monomial(*entry, m);
    }

    /// Adds `p` to the provenance of `t`.
    pub fn add_poly(&mut self, store: &mut ProvStore, t: Tuple, p: PolyId) {
        if store.is_zero(p) {
            return;
        }
        let entry = self.tuples.entry(t).or_insert(ProvStore::ZERO);
        *entry = store.add(*entry, p);
    }

    /// Subtracts `p` from the provenance of `t`, dropping the output when it
    /// reaches zero. Returns `false` (leaving `self` untouched) when the
    /// subtraction would underflow.
    pub fn subtract(&mut self, store: &mut ProvStore, t: &Tuple, p: PolyId) -> bool {
        if store.is_zero(p) {
            return true;
        }
        let Some(entry) = self.tuples.get_mut(t) else {
            return false;
        };
        let Some(diff) = store.checked_sub(*entry, p) else {
            return false;
        };
        if store.is_zero(diff) {
            self.tuples.remove(t);
        } else {
            *entry = diff;
        }
        true
    }

    /// Merges `other` into `self`, consuming it — tuples move, ids are
    /// `Copy`: no polynomial is cloned (the last-use path of UCQ and
    /// delta-side accumulation).
    pub fn absorb(&mut self, store: &mut ProvStore, other: IKRelation) {
        for (t, p) in other.tuples {
            let entry = self.tuples.entry(t).or_insert(ProvStore::ZERO);
            *entry = store.add(*entry, p);
        }
    }

    /// Re-interns this K-relation into `new_store` — the compaction path
    /// for long-lived maintenance loops. A [`ProvStore`] grows
    /// monotonically, so a caller feeding one arena from an unbounded
    /// update stream should periodically create a fresh store, `rebase`
    /// every maintained K-relation onto it, and drop the old arena (taking
    /// all dead entries — including ids referencing retired annotations —
    /// with it).
    pub fn rebase(&self, old_store: &ProvStore, new_store: &mut ProvStore) -> IKRelation {
        IKRelation {
            tuples: self
                .tuples
                .iter()
                .map(|(t, &p)| (t.clone(), new_store.intern(&old_store.resolve(p))))
                .collect(),
        }
    }

    /// Resolves into an owned [`KRelation`] (the boundary out of the arena).
    pub fn to_krelation(&self, store: &ProvStore) -> KRelation {
        self.tuples
            .iter()
            .map(|(t, &p)| (t.clone(), store.resolve(p)))
            .collect()
    }

    /// Interns an owned [`KRelation`].
    pub fn from_krelation(store: &mut ProvStore, rel: &KRelation) -> IKRelation {
        IKRelation {
            tuples: rel
                .iter()
                .map(|(t, p)| (t.clone(), store.intern(p)))
                .collect(),
        }
    }
}

/// The interned twin of [`KRelationDelta`](crate::KRelationDelta):
/// provenance ids to add and to retract against a maintained
/// [`IKRelation`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IKRelationDelta {
    /// Provenance gained (derivations through inserted tuples).
    pub added: IKRelation,
    /// Provenance lost (derivations through deleted tuples).
    pub removed: IKRelation,
}

impl IKRelationDelta {
    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Merges into a maintained interned K-relation: retractions subtracted
    /// exactly (memoized [`ProvStore::checked_sub`]), additions summed,
    /// zeroed outputs dropped. Returns `false` — with `base` left in an
    /// unspecified but valid state — when a retraction is not contained in
    /// `base`.
    pub fn merge_into(&self, store: &mut ProvStore, base: &mut IKRelation) -> bool {
        for (t, p) in self.removed.iter() {
            if !base.subtract(store, t, p) {
                return false;
            }
        }
        for (t, p) in self.added.iter() {
            base.add_poly(store, t.clone(), p);
        }
        true
    }

    /// Resolves into an owned [`KRelationDelta`](crate::KRelationDelta).
    pub fn to_krelation_delta(&self, store: &ProvStore) -> crate::KRelationDelta {
        crate::KRelationDelta {
            added: self.added.to_krelation(store),
            removed: self.removed.to_krelation(store),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provabs_semiring::{AnnotRegistry, Monomial, Polynomial};

    #[test]
    fn accumulation_matches_owned_krelation() {
        let mut reg = AnnotRegistry::new();
        let (a, b) = (reg.intern("a"), reg.intern("b"));
        let mut store = ProvStore::new();
        let ma = store.intern_monomial(Monomial::from_annots([a]));
        let mb = store.intern_monomial(Monomial::from_annots([b]));
        let t = Tuple::parse(&["1"]);
        let mut ik = IKRelation::default();
        ik.add_monomial(&mut store, t.clone(), ma);
        ik.add_monomial(&mut store, t.clone(), mb);
        ik.add_monomial(&mut store, t.clone(), ma);
        let owned = ik.to_krelation(&store);
        let expected = Polynomial::from_terms([
            (Monomial::from_annots([a]), 2),
            (Monomial::from_annots([b]), 1),
        ]);
        assert_eq!(owned.provenance(&t), expected);
        // Round trip through the boundary lands on the same ids.
        let back = IKRelation::from_krelation(&mut store, &owned);
        assert_eq!(back, ik);
    }

    #[test]
    fn subtract_mirrors_owned_semantics() {
        let mut reg = AnnotRegistry::new();
        let a = reg.intern("a");
        let mut store = ProvStore::new();
        let ma = store.intern_monomial(Monomial::from_annots([a]));
        let t = Tuple::parse(&["1"]);
        let mut ik = IKRelation::default();
        ik.add_monomial(&mut store, t.clone(), ma);
        let pa = store.poly_of_monomial(ma);
        let twice = store.add(pa, pa);
        // Underflow refused, relation untouched.
        assert!(!ik.subtract(&mut store, &t, twice));
        assert_eq!(ik.poly(&t), pa);
        // Exact subtraction drops the output.
        assert!(ik.subtract(&mut store, &t, pa));
        assert!(ik.is_empty());
        assert!(!ik.subtract(&mut store, &t, pa));
    }

    #[test]
    fn rebase_compacts_onto_a_fresh_store() {
        let mut reg = AnnotRegistry::new();
        let (a, b) = (reg.intern("a"), reg.intern("b"));
        let mut old = ProvStore::new();
        let ma = old.intern_monomial(Monomial::from_annots([a]));
        let mb = old.intern_monomial(Monomial::from_annots([b]));
        let t = Tuple::parse(&["1"]);
        let mut ik = IKRelation::default();
        ik.add_monomial(&mut old, t.clone(), ma);
        ik.add_monomial(&mut old, t.clone(), mb);
        // Pollute the old arena with dead values a long stream would leave.
        for i in 0..50 {
            let dead = old.intern_monomial(Monomial::from_annots([reg.intern(&format!("d{i}"))]));
            old.poly_of_monomial(dead);
        }
        let mut fresh = ProvStore::new();
        let rebased = ik.rebase(&old, &mut fresh);
        assert_eq!(rebased.to_krelation(&fresh), ik.to_krelation(&old));
        // The fresh arena holds only the live state, not the dead entries.
        assert!(fresh.num_polynomials() < old.num_polynomials());
    }

    #[test]
    fn absorb_moves_and_merges() {
        let mut reg = AnnotRegistry::new();
        let (a, b) = (reg.intern("a"), reg.intern("b"));
        let mut store = ProvStore::new();
        let ma = store.intern_monomial(Monomial::from_annots([a]));
        let mb = store.intern_monomial(Monomial::from_annots([b]));
        let (t1, t2) = (Tuple::parse(&["1"]), Tuple::parse(&["2"]));
        let mut left = IKRelation::default();
        left.add_monomial(&mut store, t1.clone(), ma);
        let mut right = IKRelation::default();
        right.add_monomial(&mut store, t1.clone(), mb);
        right.add_monomial(&mut store, t2.clone(), mb);
        left.absorb(&mut store, right);
        assert_eq!(left.len(), 2);
        let p1 = store.resolve(left.poly(&t1));
        assert_eq!(p1.num_monomials(), 2);
    }
}
