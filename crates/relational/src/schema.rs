//! Database schemas.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

use crate::query::RelId;

/// The schema of one relation: its name and column names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationSchema {
    /// Relation name (case-sensitive).
    pub name: String,
    /// Column names; the length is the arity.
    pub columns: Vec<String>,
}

impl RelationSchema {
    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// A database schema `S` with relation names `R1..Rn`.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    relations: Vec<RelationSchema>,
    by_name: HashMap<String, RelId>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a relation; returns its id.
    ///
    /// # Panics
    /// Panics if a relation of the same name already exists.
    pub fn add_relation(&mut self, name: &str, columns: &[&str]) -> RelId {
        assert!(
            !self.by_name.contains_key(name),
            "relation {name} already declared"
        );
        let id = RelId(u16::try_from(self.relations.len()).expect("too many relations"));
        self.relations.push(RelationSchema {
            name: name.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
        });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a relation id by name.
    pub fn relation_id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// The schema of relation `id`.
    pub fn relation(&self, id: RelId) -> &RelationSchema {
        &self.relations[id.0 as usize]
    }

    /// The name of relation `id`.
    pub fn relation_name(&self, id: RelId) -> &str {
        &self.relation(id).name
    }

    /// The arity of relation `id`.
    pub fn arity(&self, id: RelId) -> usize {
        self.relation(id).arity()
    }

    /// The number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterates over all relation ids.
    pub fn relation_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.relations.len() as u16).map(RelId)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.relations {
            writeln!(f, "{}({})", r.name, r.columns.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = Schema::new();
        let person = s.add_relation("Person", &["pid", "name", "age"]);
        let hobbies = s.add_relation("Hobbies", &["pid", "hobby", "source"]);
        assert_eq!(s.relation_id("Person"), Some(person));
        assert_eq!(s.relation_id("Hobbies"), Some(hobbies));
        assert_eq!(s.relation_id("Nope"), None);
        assert_eq!(s.arity(person), 3);
        assert_eq!(s.relation_name(hobbies), "Hobbies");
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already declared")]
    fn duplicate_names_panic() {
        let mut s = Schema::new();
        s.add_relation("R", &["a"]);
        s.add_relation("R", &["b"]);
    }

    #[test]
    fn display_lists_relations() {
        let mut s = Schema::new();
        s.add_relation("R", &["a", "b"]);
        assert_eq!(s.to_string(), "R(a, b)\n");
    }
}
