//! Abstractly-tagged K-databases on dictionary-encoded columnar storage.

use crate::vintern::{ValueId, ValueInterner};
use crate::{RelId, Schema, Tuple, Value};
use provabs_semiring::{AnnotId, AnnotRegistry};
use std::collections::HashMap;
use std::sync::Arc;

/// The location of a tuple inside a [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TupleRef {
    /// The relation holding the tuple.
    pub rel: RelId,
    /// Row index within the relation.
    pub row: usize,
}

/// Storage for one relation: one dense [`ValueId`] vector per column, the
/// parallel annotation column, and per-column hash indexes.
///
/// Rows are addressed by position; `annots.len()` is the row count (arity-0
/// relations hold rows with no value columns). Per-column posting lists are
/// keyed by `ValueId` and hold `u32` row numbers — the whole access path
/// hashes and stores 4-byte ids, never owned [`Value`]s.
#[derive(Debug, Default, Clone)]
pub(crate) struct RelationData {
    pub(crate) columns: Vec<Vec<ValueId>>,
    pub(crate) annots: Vec<AnnotId>,
    /// Per-column value index, built lazily by [`Database::build_indexes`].
    pub(crate) indexes: Vec<HashMap<ValueId, Vec<u32>>>,
    /// Version stamp, bumped on every mutation of this relation. Not
    /// logical state (excluded from [`Database::same_state`] and from the
    /// persisted snapshot format): it exists so snapshot publication can
    /// tell which relations a write batch touched without diffing columns.
    pub(crate) generation: u64,
}

impl RelationData {
    fn len(&self) -> usize {
        self.annots.len()
    }
}

/// Copy-on-write access to one relation's storage.
///
/// Relations are held behind [`Arc`] so cloning a [`Database`] for a
/// snapshot shares every untouched relation; the first mutation after a
/// clone copies just that relation ([`Arc::make_mut`]) and bumps its
/// generation stamp. All mutating paths go through here so no shared
/// snapshot can ever observe in-place mutation.
pub(crate) fn data_mut(slot: &mut Arc<RelationData>) -> &mut RelationData {
    let data = Arc::make_mut(slot);
    data.generation = data.generation.wrapping_add(1);
    data
}

/// An **abstractly-tagged K-database** (§2.1): every tuple is annotated with
/// a distinct annotation from the registry.
///
/// The database owns the schema, the columnar tuple storage, the
/// [`ValueInterner`] dictionary-encoding the constant domain, the annotation
/// registry, and per-column hash indexes used by the evaluator. Tuples live
/// as columns of dense [`ValueId`]s; owned [`Tuple`]s/[`Value`]s exist only
/// at the API boundary ([`Database::insert`] encodes, [`Database::tuples`] /
/// [`Database::tuple_by_annot`] decode).
#[derive(Debug, Default, Clone)]
pub struct Database {
    pub(crate) schema: Schema,
    pub(crate) relations: Vec<Arc<RelationData>>,
    pub(crate) values: ValueInterner,
    pub(crate) annots: AnnotRegistry,
    /// Reverse map annotation → tuple location.
    pub(crate) annot_loc: HashMap<AnnotId, TupleRef>,
    /// Annotations whose tuples were deleted. A retired annotation may
    /// never tag again: provenance held from before the deletion (cached
    /// K-relations, abstraction-tree leaves) must keep failing to resolve
    /// instead of silently resolving to an unrelated tuple.
    pub(crate) retired: std::collections::HashSet<AnnotId>,
    pub(crate) indexed: bool,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a relation to the schema.
    pub fn add_relation(&mut self, name: &str, columns: &[&str]) -> RelId {
        let id = self.schema.add_relation(name, columns);
        let mut data = RelationData {
            columns: vec![Vec::new(); columns.len()],
            ..Default::default()
        };
        if self.indexed {
            // Keep the invariant that an indexed database has one index per
            // column of every relation, so later inserts can maintain them.
            data.indexes = vec![HashMap::new(); columns.len()];
        }
        self.relations.push(Arc::new(data));
        id
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The annotation registry.
    pub fn annotations(&self) -> &AnnotRegistry {
        &self.annots
    }

    /// The value dictionary encoding the constant domain.
    pub fn interner(&self) -> &ValueInterner {
        &self.values
    }

    /// Interns a constant into the value dictionary without storing a
    /// tuple — the id-level producer API ([`Database::insert_ids`] consumes
    /// the ids). Generators that emit many tuples sharing categorical
    /// values intern each distinct value once and reuse the id.
    pub fn intern_value(&mut self, v: Value) -> ValueId {
        self.values.intern(v)
    }

    /// Inserts `tuple` into `rel` with annotation label `annot`.
    ///
    /// This is the owned boundary over [`Database::insert_ids`]: each value
    /// is dictionary-encoded and the row is stored columnar.
    ///
    /// # Panics
    /// Panics if the arity mismatches the schema or the annotation label is
    /// already used — live **or retired by [`Database::delete`]**:
    /// annotations are distinct for the database's lifetime (abstract
    /// tagging), so a label never tags two different tuples, even across a
    /// deletion.
    pub fn insert(&mut self, rel: RelId, annot: &str, tuple: Tuple) -> AnnotId {
        assert_eq!(
            tuple.arity(),
            self.schema.arity(rel),
            "arity mismatch inserting into {}",
            self.schema.relation_name(rel)
        );
        let ids: Vec<ValueId> = tuple.0.into_iter().map(|v| self.values.intern(v)).collect();
        self.insert_ids(rel, annot, &ids)
    }

    /// Inserts a row given as already-interned [`ValueId`]s (the direct
    /// producer path: no owned [`Value`] is constructed). Ids must come from
    /// this database's interner ([`Database::intern_value`]).
    ///
    /// # Panics
    /// Panics on arity mismatch or annotation reuse (see
    /// [`Database::insert`]).
    pub fn insert_ids(&mut self, rel: RelId, annot: &str, ids: &[ValueId]) -> AnnotId {
        assert_eq!(
            ids.len(),
            self.schema.arity(rel),
            "arity mismatch inserting into {}",
            self.schema.relation_name(rel)
        );
        let id = self.annots.intern(annot);
        assert!(
            !self.annot_loc.contains_key(&id),
            "annotation {annot} already tags a tuple (abstract tagging requires distinct annotations)"
        );
        assert!(
            !self.retired.contains(&id),
            "annotation {annot} tagged a deleted tuple and may not be reused"
        );
        let data = data_mut(&mut self.relations[rel.0 as usize]);
        let row = data.len();
        let row32 = u32::try_from(row).expect("relation exceeds u32 rows");
        if self.indexed {
            // Incremental maintenance: append the new row to every
            // per-column posting list instead of invalidating the indexes
            // (a full rebuild would degrade every later lookup to a scan
            // until someone called `build_indexes` again).
            for (col, &v) in ids.iter().enumerate() {
                data.indexes[col].entry(v).or_default().push(row32);
            }
        }
        for (col, &v) in ids.iter().enumerate() {
            data.columns[col].push(v);
        }
        data.annots.push(id);
        self.annot_loc.insert(id, TupleRef { rel, row });
        id
    }

    /// Inserts a tuple given as string literals (see [`Tuple::parse`]).
    pub fn insert_str(&mut self, rel: RelId, annot: &str, fields: &[&str]) -> AnnotId {
        self.insert(rel, annot, Tuple::parse(fields))
    }

    /// Deletes the tuple tagged by `annot`, returning its relation and
    /// (decoded) values, or `None` when the annotation tags no tuple.
    ///
    /// Storage stays dense (the relation's last row moves into the freed
    /// slot in every column), and when indexes are built they are maintained
    /// incrementally: the deleted row is unlinked from its posting lists and
    /// the moved row's entries are renamed — no rebuild, no
    /// scan-degradation. Row indexes previously handed out for the moved
    /// row are invalidated; annotations remain the stable way to name a
    /// tuple.
    ///
    /// # Mutation order (pinned for durability)
    ///
    /// The storage layer serializes columns *before* posting lists on pages
    /// (see `storage::snapshot`), so a crash-consistent snapshot of a
    /// mid-delete database must never hold posting lists referencing column
    /// state that no longer exists. This method therefore pins the exact
    /// mutation order: **all posting-list edits (unlink of the deleted row,
    /// rename of the moved row) complete before any column or annotation
    /// vector is touched**. The deleted row's values are read out first
    /// without mutating, so the unlink and the rename see exactly the state
    /// they would have seen under the historical
    /// swap-remove-then-fix-indexes order — posting lists end bit-for-bit
    /// identical — but there is no window in which an index entry points at
    /// a [`ValueId`] the columns no longer hold.
    pub fn delete(&mut self, annot: AnnotId) -> Option<(RelId, Tuple)> {
        let loc = self.annot_loc.remove(&annot)?;
        self.retired.insert(annot);
        let data = data_mut(&mut self.relations[loc.rel.0 as usize]);
        let last = data.len() - 1;
        // Step 1: read the dying row's ids without mutating anything.
        let removed: Vec<ValueId> = data.columns.iter().map(|col| col[loc.row]).collect();
        // Step 2: all posting-list mutations, while the columns still hold
        // both the dying row and (if distinct) the row about to move.
        if self.indexed {
            let (row32, last32) = (loc.row as u32, last as u32);
            for (col, &v) in removed.iter().enumerate() {
                let entry = data.indexes[col]
                    .get_mut(&v)
                    .expect("indexed value present");
                let pos = entry
                    .iter()
                    .position(|&r| r == row32)
                    .expect("row in posting list");
                entry.swap_remove(pos);
                if entry.is_empty() {
                    data.indexes[col].remove(&v);
                }
            }
            if loc.row != last {
                // The last row is about to move into `loc.row`: rename it in
                // every posting list it appears in. Its values are read from
                // row `last`, which the swap-remove below has not touched
                // yet.
                for col in 0..data.columns.len() {
                    let v = data.columns[col][last];
                    let entry = data.indexes[col]
                        .get_mut(&v)
                        .expect("indexed value present");
                    let pos = entry
                        .iter()
                        .position(|&r| r == last32)
                        .expect("moved row in posting list");
                    entry[pos] = row32;
                }
            }
        }
        // Step 3: only now compact the columnar storage.
        for col in &mut data.columns {
            col.swap_remove(loc.row);
        }
        data.annots.swap_remove(loc.row);
        if loc.row != last {
            let moved_annot = data.annots[loc.row];
            self.annot_loc.insert(
                moved_annot,
                TupleRef {
                    rel: loc.rel,
                    row: loc.row,
                },
            );
        }
        let tuple = Tuple::new(removed.iter().map(|&v| self.values.value(v).clone()));
        Some((loc.rel, tuple))
    }

    /// Number of tuples in `rel`.
    pub fn relation_len(&self, rel: RelId) -> usize {
        self.relations[rel.0 as usize].len()
    }

    /// Total number of tuples.
    pub fn len(&self) -> usize {
        self.relations.iter().map(|data| data.len()).sum()
    }

    /// Whether the database has no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The [`ValueId`] column `col` of `rel` — the raw storage the engine
    /// probes and binds.
    pub fn column(&self, rel: RelId, col: usize) -> &[ValueId] {
        &self.relations[rel.0 as usize].columns[col]
    }

    /// The value behind an interned id (the decode boundary).
    pub fn value(&self, id: ValueId) -> &Value {
        self.values.value(id)
    }

    /// Decodes row `row` of `rel` into an owned [`Tuple`].
    ///
    /// Allocates a fresh values vector per call; decode loops should reuse
    /// a buffer through [`Database::decode_row_into`] instead.
    pub fn decode_row(&self, rel: RelId, row: usize) -> Tuple {
        let mut out = Vec::new();
        self.decode_row_into(rel, row, &mut out);
        Tuple::new(out)
    }

    /// Decodes row `row` of `rel` into a reusable buffer (cleared first):
    /// the allocation-free decode path for boundary consumers that walk
    /// many rows.
    pub fn decode_row_into(&self, rel: RelId, row: usize, out: &mut Vec<Value>) {
        out.clear();
        let data = &self.relations[rel.0 as usize];
        out.extend(
            data.columns
                .iter()
                .map(|col| self.values.value(col[row]).clone()),
        );
    }

    /// Materializes the tuples of `rel` as owned values — a decode of the
    /// whole relation, for boundary consumers (tests, exports, displays).
    /// The engine never calls this; it reads [`Database::column`] slices.
    pub fn tuples(&self, rel: RelId) -> Vec<Tuple> {
        (0..self.relation_len(rel))
            .map(|row| self.decode_row(rel, row))
            .collect()
    }

    /// The annotations of `rel`, parallel to [`Database::tuples`].
    pub fn tuple_annots(&self, rel: RelId) -> &[AnnotId] {
        &self.relations[rel.0 as usize].annots
    }

    /// Resolves an annotation to its tuple location, if it tags one.
    pub fn locate(&self, annot: AnnotId) -> Option<TupleRef> {
        self.annot_loc.get(&annot).copied()
    }

    /// Whether `annot` tagged a tuple that was since deleted (a retired
    /// annotation may never tag again).
    pub fn is_retired(&self, annot: AnnotId) -> bool {
        self.retired.contains(&annot)
    }

    /// The (decoded) tuple tagged by `annot`, if any.
    pub fn tuple_by_annot(&self, annot: AnnotId) -> Option<(RelId, Tuple)> {
        self.locate(annot)
            .map(|loc| (loc.rel, self.decode_row(loc.rel, loc.row)))
    }

    /// The distinct [`ValueId`]s of the row at `loc`, sorted — the probe
    /// set of the concretization-connectivity edge relation (two tuples are
    /// connected iff these sets intersect; see
    /// [`monomial_connected`](crate::monomial_connected)).
    pub fn row_value_ids(&self, loc: TupleRef) -> Vec<ValueId> {
        let data = &self.relations[loc.rel.0 as usize];
        let mut ids: Vec<ValueId> = data.columns.iter().map(|col| col[loc.row]).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Builds per-column hash indexes for every relation. Idempotent; called
    /// automatically by the evaluator.
    pub fn build_indexes(&mut self) {
        if self.indexed {
            return;
        }
        for slot in &mut self.relations {
            let data = data_mut(slot);
            let mut idx: Vec<HashMap<ValueId, Vec<u32>>> = vec![HashMap::new(); data.columns.len()];
            for (col, column) in data.columns.iter().enumerate() {
                for (row, &v) in column.iter().enumerate() {
                    idx[col].entry(v).or_default().push(row as u32);
                }
            }
            data.indexes = idx;
        }
        self.indexed = true;
    }

    /// Whether indexes are current.
    pub fn is_indexed(&self) -> bool {
        self.indexed
    }

    /// The version stamp of `rel`'s storage, bumped on every mutation that
    /// touches the relation (insert, delete, index build). Two databases
    /// related by [`Clone`] share relation storage copy-on-write, so equal
    /// generations *plus* shared storage ([`Database::shares_relation`])
    /// certify the relation is untouched since the clone. The stamp is not
    /// logical state: it does not participate in [`Database::same_state`]
    /// and is not persisted.
    pub fn relation_generation(&self, rel: RelId) -> u64 {
        self.relations[rel.0 as usize].generation
    }

    /// Whether `rel`'s storage is physically shared (same allocation)
    /// between `self` and `other` — true for a cloned snapshot until either
    /// side mutates the relation. Used by the session layer to count how
    /// many relations a publish actually copied.
    pub fn shares_relation(&self, other: &Database, rel: RelId) -> bool {
        let i = rel.0 as usize;
        i < self.relations.len()
            && i < other.relations.len()
            && Arc::ptr_eq(&self.relations[i], &other.relations[i])
    }

    /// The posting list of `rel.col = v` when indexes are built (`None`
    /// means "not indexed", **not** "no rows" — an indexed miss returns an
    /// empty slice).
    pub fn postings(&self, rel: RelId, col: usize, v: ValueId) -> Option<&[u32]> {
        if !self.indexed {
            return None;
        }
        Some(
            self.relations[rel.0 as usize].indexes[col]
                .get(&v)
                .map_or(&[][..], Vec::as_slice),
        )
    }

    /// Number of distinct [`ValueId`]s in column `col` of `rel` — a planner
    /// statistic. Read from the index map's size when indexes are built
    /// (O(1), exact under incremental maintenance: inserts and deletes keep
    /// posting lists keyed per live value); counted by a scan otherwise.
    pub fn distinct_count(&self, rel: RelId, col: usize) -> usize {
        let data = &self.relations[rel.0 as usize];
        if self.indexed {
            return data.indexes[col].len();
        }
        data.columns[col]
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len()
    }

    /// Number of rows of `rel` whose column `col` equals `v` — the exact
    /// posting-list length when indexes are built, a scan count otherwise.
    /// A planner statistic: for a single-constant atom this *is* the
    /// candidate-set size the engine will iterate.
    pub fn posting_len(&self, rel: RelId, col: usize, v: ValueId) -> usize {
        match self.postings(rel, col, v) {
            Some(rows) => rows.len(),
            None => self.relations[rel.0 as usize].columns[col]
                .iter()
                .filter(|&&id| id == v)
                .count(),
        }
    }

    /// Scans column `col` of `rel` for rows equal to `v` (the unindexed
    /// fallback; id equality, no decoding).
    pub fn scan_matching(&self, rel: RelId, col: usize, v: ValueId) -> Vec<u32> {
        self.relations[rel.0 as usize].columns[col]
            .iter()
            .enumerate()
            .filter(|&(_, &id)| id == v)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Row indexes of `rel` whose column `col` equals `v`, using the hash
    /// index when built and falling back to a scan otherwise.
    ///
    /// Owned boundary: the value is dictionary-looked-up first — a constant
    /// that was never interned matches nothing. The engine probes by
    /// [`ValueId`] directly ([`Database::postings`]).
    pub fn rows_matching(&self, rel: RelId, col: usize, v: &Value) -> Vec<usize> {
        let Some(id) = self.values.lookup(v) else {
            return Vec::new();
        };
        match self.postings(rel, col, id) {
            Some(rows) => rows.iter().map(|&r| r as usize).collect(),
            None => self
                .scan_matching(rel, col, id)
                .into_iter()
                .map(|r| r as usize)
                .collect(),
        }
    }

    /// Interns an annotation label without tagging a tuple (used for
    /// abstraction-tree inner nodes living in the same label space).
    pub fn intern_label(&mut self, label: &str) -> AnnotId {
        self.annots.intern(label)
    }

    /// Deep structural equality with `other`: schema, columnar tuple
    /// storage, annotation columns, posting lists (contents **and row
    /// order**), interner contents, annotation registry, retirement set,
    /// and the indexed flag must all match bit-for-bit.
    ///
    /// This is the recovery invariant checked by the durability suites: a
    /// database reopened from disk must be `same_state` with the in-memory
    /// oracle that applied the same committed deltas. Plain `==` would be
    /// too weak (it is not derived) and row-set equality too coarse —
    /// posting-list row order is observable through candidate enumeration,
    /// so it must survive persistence exactly.
    pub fn same_state(&self, other: &Database) -> bool {
        if self.schema.len() != other.schema.len()
            || self.relations.len() != other.relations.len()
            || self.indexed != other.indexed
            || self.values.len() != other.values.len()
            || self.annots.len() != other.annots.len()
        {
            return false;
        }
        if self
            .schema
            .relation_ids()
            .any(|rel| self.schema.relation(rel) != other.schema.relation(rel))
        {
            return false;
        }
        if (0..self.values.len() as u32)
            .any(|i| self.values.value(ValueId(i)) != other.values.value(ValueId(i)))
        {
            return false;
        }
        if self
            .annots
            .ids()
            .any(|id| self.annots.name(id) != other.annots.name(id))
        {
            return false;
        }
        if self
            .relations
            .iter()
            .zip(&other.relations)
            .any(|(a, b)| a.columns != b.columns || a.annots != b.annots || a.indexes != b.indexes)
        {
            return false;
        }
        self.annot_loc == other.annot_loc && self.retired == other.retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> (Database, RelId) {
        let mut db = Database::new();
        let r = db.add_relation("R", &["a", "b"]);
        db.insert_str(r, "t1", &["1", "x"]);
        db.insert_str(r, "t2", &["2", "x"]);
        db.insert_str(r, "t3", &["1", "y"]);
        (db, r)
    }

    #[test]
    fn insert_and_locate() {
        let (db, r) = sample_db();
        assert_eq!(db.relation_len(r), 3);
        let t1 = db.annotations().get("t1").unwrap();
        let (rel, tuple) = db.tuple_by_annot(t1).unwrap();
        assert_eq!(rel, r);
        assert_eq!(tuple[0], Value::Int(1));
    }

    #[test]
    fn storage_is_dictionary_encoded() {
        let (db, r) = sample_db();
        // Three rows, two distinct values per column: the interner holds
        // each constant once and the columns reference it by id.
        assert_eq!(db.interner().len(), 4); // 1, 2, 'x', 'y'
        assert_eq!(db.column(r, 0).len(), 3);
        assert_eq!(db.column(r, 0)[0], db.column(r, 0)[2]); // both rows hold 1
        assert_eq!(db.column(r, 1)[0], db.column(r, 1)[1]); // both rows hold 'x'
        assert_eq!(db.value(db.column(r, 1)[2]), &Value::str("y"));
        // Decoding round-trips through the dictionary.
        assert_eq!(db.decode_row(r, 1), Tuple::parse(&["2", "x"]));
        assert_eq!(db.tuples(r)[2], Tuple::parse(&["1", "y"]));
    }

    #[test]
    fn rows_matching_with_and_without_index() {
        let (mut db, r) = sample_db();
        let scan = db.rows_matching(r, 1, &Value::str("x"));
        assert_eq!(scan, vec![0, 1]);
        assert!(db
            .postings(r, 1, db.interner().lookup(&Value::str("x")).unwrap())
            .is_none());
        db.build_indexes();
        let indexed = db.rows_matching(r, 1, &Value::str("x"));
        assert_eq!(indexed, vec![0, 1]);
        assert!(db.rows_matching(r, 0, &Value::Int(9)).is_empty());
        let x = db.interner().lookup(&Value::str("x")).unwrap();
        assert_eq!(db.postings(r, 1, x).unwrap(), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let (mut db, r) = sample_db();
        db.insert_str(r, "bad", &["1"]);
    }

    #[test]
    #[should_panic(expected = "already tags")]
    fn distinct_annotations_enforced() {
        let (mut db, r) = sample_db();
        db.insert_str(r, "t1", &["9", "z"]);
    }

    #[test]
    fn insert_maintains_indexes_incrementally() {
        // Regression: `insert` used to flip `indexed = false`, silently
        // degrading every later `rows_matching` to a full scan.
        let (mut db, r) = sample_db();
        db.build_indexes();
        assert!(db.is_indexed());
        db.insert_str(r, "t4", &["3", "x"]);
        assert!(db.is_indexed(), "insert must not invalidate indexes");
        assert_eq!(db.rows_matching(r, 1, &Value::str("x")), vec![0, 1, 3]);
        assert_eq!(db.rows_matching(r, 0, &Value::Int(3)), vec![3]);
        // A relation added after indexing is maintained too.
        let s = db.add_relation("S", &["a"]);
        db.insert_str(s, "s1", &["7"]);
        assert!(db.is_indexed());
        assert_eq!(db.rows_matching(s, 0, &Value::Int(7)), vec![0]);
    }

    #[test]
    fn insert_ids_equals_owned_insert() {
        let (mut db, r) = sample_db();
        db.build_indexes();
        let one = db.intern_value(Value::int(1));
        let z = db.intern_value(Value::str("z"));
        db.insert_ids(r, "t4", &[one, z]);
        assert_eq!(db.tuples(r)[3], Tuple::parse(&["1", "z"]));
        assert_eq!(db.rows_matching(r, 0, &Value::Int(1)), vec![0, 2, 3]);
        assert_eq!(db.rows_matching(r, 1, &Value::str("z")), vec![3]);
    }

    #[test]
    fn delete_unlinks_and_renames_rows() {
        let (mut db, r) = sample_db();
        db.build_indexes();
        let t1 = db.annotations().get("t1").unwrap();
        let t3 = db.annotations().get("t3").unwrap();
        let (rel, tuple) = db.delete(t1).unwrap();
        assert_eq!(rel, r);
        assert_eq!(tuple, Tuple::parse(&["1", "x"]));
        assert_eq!(db.relation_len(r), 2);
        assert!(db.is_indexed());
        // t3 (previously the last row) moved into row 0; its location and
        // posting lists must follow.
        assert_eq!(db.locate(t3).unwrap().row, 0);
        assert_eq!(db.rows_matching(r, 1, &Value::str("y")), vec![0]);
        assert_eq!(db.rows_matching(r, 1, &Value::str("x")), vec![1]);
        // The annotation no longer resolves; deleting again is a no-op.
        assert!(db.tuple_by_annot(t1).is_none());
        assert!(db.delete(t1).is_none());
        assert!(db.locate(t1).is_none());
    }

    #[test]
    #[should_panic(expected = "may not be reused")]
    fn retired_annotations_never_tag_again() {
        // Reusing a deleted tuple's label would silently re-bind its
        // AnnotId under provenance captured before the deletion.
        let (mut db, r) = sample_db();
        let t1 = db.annotations().get("t1").unwrap();
        db.delete(t1).unwrap();
        db.insert_str(r, "t1", &["5", "z"]);
    }

    #[test]
    fn delete_last_row_needs_no_rename() {
        let (mut db, r) = sample_db();
        db.build_indexes();
        let t3 = db.annotations().get("t3").unwrap();
        db.delete(t3).unwrap();
        assert_eq!(db.relation_len(r), 2);
        assert_eq!(
            db.rows_matching(r, 1, &Value::str("y")),
            Vec::<usize>::new()
        );
        assert_eq!(db.rows_matching(r, 1, &Value::str("x")), vec![0, 1]);
    }

    #[test]
    fn row_value_ids_are_sorted_distinct() {
        let (mut db, r) = sample_db();
        db.insert_str(r, "t4", &["5", "5"]);
        let t4 = db.annotations().get("t4").unwrap();
        let ids = db.row_value_ids(db.locate(t4).unwrap());
        assert_eq!(ids.len(), 1); // repeated constant collapses
        assert_eq!(db.value(ids[0]), &Value::Int(5));
        let t1 = db.annotations().get("t1").unwrap();
        let ids1 = db.row_value_ids(db.locate(t1).unwrap());
        assert!(ids1.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn statistics_are_exact_indexed_or_not() {
        let (mut db, r) = sample_db();
        // Unindexed: scan-counted.
        assert_eq!(db.distinct_count(r, 0), 2); // 1, 2
        assert_eq!(db.distinct_count(r, 1), 2); // x, y
        let x = db.interner().lookup(&Value::str("x")).unwrap();
        assert_eq!(db.posting_len(r, 1, x), 2);
        db.build_indexes();
        assert_eq!(db.distinct_count(r, 0), 2);
        assert_eq!(db.posting_len(r, 1, x), 2);
        // Maintained through incremental insert and delete.
        db.insert_str(r, "t4", &["3", "x"]);
        assert_eq!(db.distinct_count(r, 0), 3);
        assert_eq!(db.posting_len(r, 1, x), 3);
        let t3 = db.annotations().get("t3").unwrap();
        db.delete(t3).unwrap(); // the only 'y' row
        assert_eq!(db.distinct_count(r, 1), 1);
        let y = db.interner().lookup(&Value::str("y")).unwrap();
        assert_eq!(db.posting_len(r, 1, y), 0);
    }

    #[test]
    fn intern_label_does_not_tag() {
        let (mut db, _) = sample_db();
        let fb = db.intern_label("Facebook");
        assert!(db.tuple_by_annot(fb).is_none());
    }

    #[test]
    fn same_state_is_deep_and_order_sensitive() {
        let (mut a, r) = sample_db();
        let (mut b, _) = sample_db();
        assert!(a.same_state(&b));
        a.build_indexes();
        assert!(!a.same_state(&b), "indexed flag must participate");
        b.build_indexes();
        assert!(a.same_state(&b));
        // A delete followed by a re-insert of the same values leaves the
        // tuple multiset equal but the registry/retirement state different.
        let t1 = a.annotations().get("t1").unwrap();
        a.delete(t1).unwrap();
        assert!(!a.same_state(&b));
        let t1b = b.annotations().get("t1").unwrap();
        b.delete(t1b).unwrap();
        assert!(a.same_state(&b));
        a.insert_str(r, "t4", &["1", "x"]);
        assert!(!a.same_state(&b));
        b.insert_str(r, "t4", &["1", "x"]);
        assert!(a.same_state(&b));
    }

    #[test]
    fn clones_share_relation_storage_copy_on_write() {
        let (mut db, r) = sample_db();
        let s = db.add_relation("S", &["a"]);
        db.insert_str(s, "s1", &["7"]);
        let snapshot = db.clone();
        assert!(db.shares_relation(&snapshot, r), "clone shares storage");
        assert!(db.shares_relation(&snapshot, s));
        let gen_r = db.relation_generation(r);
        db.insert_str(r, "t9", &["4", "w"]);
        // The mutated relation detached and bumped its generation; the
        // untouched one still shares its allocation.
        assert!(!db.shares_relation(&snapshot, r));
        assert!(db.shares_relation(&snapshot, s));
        assert_eq!(db.relation_generation(r), gen_r + 1);
        assert_eq!(snapshot.relation_generation(r), gen_r);
        // The snapshot kept the pre-mutation state.
        assert_eq!(snapshot.relation_len(r), 3);
        assert_eq!(db.relation_len(r), 4);
        assert!(snapshot.annotations().get("t9").is_none());
    }

    #[test]
    fn generation_is_not_logical_state() {
        let (mut a, _) = sample_db();
        let (b, _) = sample_db();
        // Bump the stamp without touching storage: the databases stay
        // same_state — generation is bookkeeping, not content.
        super::data_mut(&mut a.relations[0]);
        assert_ne!(a.relations[0].generation, b.relations[0].generation);
        assert!(a.same_state(&b));
    }

    #[test]
    fn delete_mutation_order_matches_historical_posting_state() {
        // The pinned order (postings first, then columns) must produce
        // posting lists bit-for-bit identical to the historical
        // swap-remove-first order. The scenario exercises the tricky case:
        // the moved (last) row shares a value with the deleted row, so the
        // unlink and the rename hit the same posting vector.
        let mut db = Database::new();
        let r = db.add_relation("R", &["a"]);
        db.insert_str(r, "d1", &["7"]);
        db.insert_str(r, "d2", &["8"]);
        db.insert_str(r, "d3", &["7"]); // last row, same value as d1
        db.build_indexes();
        let d1 = db.annotations().get("d1").unwrap();
        db.delete(d1).unwrap();
        let seven = db.interner().lookup(&Value::Int(7)).unwrap();
        // Historical order: unlink swap_removes row 0 from [0, 2] → [2],
        // then rename 2 → 0 in place → [0]. Exact vector, not just set.
        assert_eq!(db.postings(r, 0, seven).unwrap(), &[0]);
        assert_eq!(
            db.tuples(r),
            vec![Tuple::parse(&["7"]), Tuple::parse(&["8"])]
        );
        let d3 = db.annotations().get("d3").unwrap();
        assert_eq!(db.locate(d3).unwrap().row, 0);
    }
}
