//! Abstractly-tagged K-databases.

use crate::{RelId, Schema, Tuple, Value};
use provabs_semiring::{AnnotId, AnnotRegistry};
use std::collections::HashMap;

/// The location of a tuple inside a [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TupleRef {
    /// The relation holding the tuple.
    pub rel: RelId,
    /// Row index within the relation.
    pub row: usize,
}

/// Storage for one relation: tuples plus their annotations.
#[derive(Debug, Default, Clone)]
struct RelationData {
    tuples: Vec<Tuple>,
    annots: Vec<AnnotId>,
    /// Per-column value index, built lazily by [`Database::build_indexes`].
    indexes: Vec<HashMap<Value, Vec<usize>>>,
}

/// An **abstractly-tagged K-database** (§2.1): every tuple is annotated with
/// a distinct annotation from the registry.
///
/// The database owns the schema, the tuples, the annotation registry, and
/// per-column hash indexes used by the evaluator.
#[derive(Debug, Default, Clone)]
pub struct Database {
    schema: Schema,
    relations: Vec<RelationData>,
    annots: AnnotRegistry,
    /// Reverse map annotation → tuple location.
    annot_loc: HashMap<AnnotId, TupleRef>,
    indexed: bool,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a relation to the schema.
    pub fn add_relation(&mut self, name: &str, columns: &[&str]) -> RelId {
        let id = self.schema.add_relation(name, columns);
        self.relations.push(RelationData::default());
        id
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The annotation registry.
    pub fn annotations(&self) -> &AnnotRegistry {
        &self.annots
    }

    /// Inserts `tuple` into `rel` with annotation label `annot`.
    ///
    /// # Panics
    /// Panics if the arity mismatches the schema or the annotation label is
    /// already used (annotations must be distinct — abstract tagging).
    pub fn insert(&mut self, rel: RelId, annot: &str, tuple: Tuple) -> AnnotId {
        assert_eq!(
            tuple.arity(),
            self.schema.arity(rel),
            "arity mismatch inserting into {}",
            self.schema.relation_name(rel)
        );
        let id = self.annots.intern(annot);
        assert!(
            !self.annot_loc.contains_key(&id),
            "annotation {annot} already tags a tuple (abstract tagging requires distinct annotations)"
        );
        let data = &mut self.relations[rel.0 as usize];
        let row = data.tuples.len();
        data.tuples.push(tuple);
        data.annots.push(id);
        self.annot_loc.insert(id, TupleRef { rel, row });
        self.indexed = false;
        id
    }

    /// Inserts a tuple given as string literals (see [`Tuple::parse`]).
    pub fn insert_str(&mut self, rel: RelId, annot: &str, fields: &[&str]) -> AnnotId {
        self.insert(rel, annot, Tuple::parse(fields))
    }

    /// Number of tuples in `rel`.
    pub fn relation_len(&self, rel: RelId) -> usize {
        self.relations[rel.0 as usize].tuples.len()
    }

    /// Total number of tuples.
    pub fn len(&self) -> usize {
        self.relations.iter().map(|r| r.tuples.len()).sum()
    }

    /// Whether the database has no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The tuples of `rel`.
    pub fn tuples(&self, rel: RelId) -> &[Tuple] {
        &self.relations[rel.0 as usize].tuples
    }

    /// The annotations of `rel`, parallel to [`Database::tuples`].
    pub fn tuple_annots(&self, rel: RelId) -> &[AnnotId] {
        &self.relations[rel.0 as usize].annots
    }

    /// Resolves an annotation to its tuple location, if it tags one.
    pub fn locate(&self, annot: AnnotId) -> Option<TupleRef> {
        self.annot_loc.get(&annot).copied()
    }

    /// The tuple tagged by `annot`, if any.
    pub fn tuple_by_annot(&self, annot: AnnotId) -> Option<(RelId, &Tuple)> {
        self.locate(annot)
            .map(|loc| (loc.rel, &self.relations[loc.rel.0 as usize].tuples[loc.row]))
    }

    /// Builds per-column hash indexes for every relation. Idempotent; called
    /// automatically by the evaluator.
    pub fn build_indexes(&mut self) {
        if self.indexed {
            return;
        }
        for (rid, data) in self.relations.iter_mut().enumerate() {
            let arity = self.schema.arity(RelId(rid as u16));
            let mut idx: Vec<HashMap<Value, Vec<usize>>> = vec![HashMap::new(); arity];
            for (row, t) in data.tuples.iter().enumerate() {
                for (col, v) in t.values().iter().enumerate() {
                    idx[col].entry(v.clone()).or_default().push(row);
                }
            }
            data.indexes = idx;
        }
        self.indexed = true;
    }

    /// Whether indexes are current.
    pub fn is_indexed(&self) -> bool {
        self.indexed
    }

    /// Row indexes of `rel` whose column `col` equals `v`, using the hash
    /// index when built and falling back to a scan otherwise.
    pub fn rows_matching(&self, rel: RelId, col: usize, v: &Value) -> Vec<usize> {
        let data = &self.relations[rel.0 as usize];
        if self.indexed {
            data.indexes[col].get(v).cloned().unwrap_or_default()
        } else {
            data.tuples
                .iter()
                .enumerate()
                .filter(|(_, t)| &t[col] == v)
                .map(|(i, _)| i)
                .collect()
        }
    }

    /// Interns an annotation label without tagging a tuple (used for
    /// abstraction-tree inner nodes living in the same label space).
    pub fn intern_label(&mut self, label: &str) -> AnnotId {
        self.annots.intern(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> (Database, RelId) {
        let mut db = Database::new();
        let r = db.add_relation("R", &["a", "b"]);
        db.insert_str(r, "t1", &["1", "x"]);
        db.insert_str(r, "t2", &["2", "x"]);
        db.insert_str(r, "t3", &["1", "y"]);
        (db, r)
    }

    #[test]
    fn insert_and_locate() {
        let (db, r) = sample_db();
        assert_eq!(db.relation_len(r), 3);
        let t1 = db.annotations().get("t1").unwrap();
        let (rel, tuple) = db.tuple_by_annot(t1).unwrap();
        assert_eq!(rel, r);
        assert_eq!(tuple[0], Value::Int(1));
    }

    #[test]
    fn rows_matching_with_and_without_index() {
        let (mut db, r) = sample_db();
        let scan = db.rows_matching(r, 1, &Value::str("x"));
        assert_eq!(scan, vec![0, 1]);
        db.build_indexes();
        let indexed = db.rows_matching(r, 1, &Value::str("x"));
        assert_eq!(indexed, vec![0, 1]);
        assert!(db.rows_matching(r, 0, &Value::Int(9)).is_empty());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let (mut db, r) = sample_db();
        db.insert_str(r, "bad", &["1"]);
    }

    #[test]
    #[should_panic(expected = "already tags")]
    fn distinct_annotations_enforced() {
        let (mut db, r) = sample_db();
        db.insert_str(r, "t1", &["9", "z"]);
    }

    #[test]
    fn intern_label_does_not_tag() {
        let (mut db, _) = sample_db();
        let fb = db.intern_label("Facebook");
        assert!(db.tuple_by_annot(fb).is_none());
    }
}
