//! Abstractly-tagged K-databases.

use crate::{RelId, Schema, Tuple, Value};
use provabs_semiring::{AnnotId, AnnotRegistry};
use std::collections::HashMap;

/// The location of a tuple inside a [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TupleRef {
    /// The relation holding the tuple.
    pub rel: RelId,
    /// Row index within the relation.
    pub row: usize,
}

/// Storage for one relation: tuples plus their annotations.
#[derive(Debug, Default, Clone)]
struct RelationData {
    tuples: Vec<Tuple>,
    annots: Vec<AnnotId>,
    /// Per-column value index, built lazily by [`Database::build_indexes`].
    indexes: Vec<HashMap<Value, Vec<usize>>>,
}

/// An **abstractly-tagged K-database** (§2.1): every tuple is annotated with
/// a distinct annotation from the registry.
///
/// The database owns the schema, the tuples, the annotation registry, and
/// per-column hash indexes used by the evaluator.
#[derive(Debug, Default, Clone)]
pub struct Database {
    schema: Schema,
    relations: Vec<RelationData>,
    annots: AnnotRegistry,
    /// Reverse map annotation → tuple location.
    annot_loc: HashMap<AnnotId, TupleRef>,
    /// Annotations whose tuples were deleted. A retired annotation may
    /// never tag again: provenance held from before the deletion (cached
    /// K-relations, abstraction-tree leaves) must keep failing to resolve
    /// instead of silently resolving to an unrelated tuple.
    retired: std::collections::HashSet<AnnotId>,
    indexed: bool,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a relation to the schema.
    pub fn add_relation(&mut self, name: &str, columns: &[&str]) -> RelId {
        let id = self.schema.add_relation(name, columns);
        let mut data = RelationData::default();
        if self.indexed {
            // Keep the invariant that an indexed database has one index per
            // column of every relation, so later inserts can maintain them.
            data.indexes = vec![HashMap::new(); columns.len()];
        }
        self.relations.push(data);
        id
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The annotation registry.
    pub fn annotations(&self) -> &AnnotRegistry {
        &self.annots
    }

    /// Inserts `tuple` into `rel` with annotation label `annot`.
    ///
    /// # Panics
    /// Panics if the arity mismatches the schema or the annotation label is
    /// already used — live **or retired by [`Database::delete`]**:
    /// annotations are distinct for the database's lifetime (abstract
    /// tagging), so a label never tags two different tuples, even across a
    /// deletion.
    pub fn insert(&mut self, rel: RelId, annot: &str, tuple: Tuple) -> AnnotId {
        assert_eq!(
            tuple.arity(),
            self.schema.arity(rel),
            "arity mismatch inserting into {}",
            self.schema.relation_name(rel)
        );
        let id = self.annots.intern(annot);
        assert!(
            !self.annot_loc.contains_key(&id),
            "annotation {annot} already tags a tuple (abstract tagging requires distinct annotations)"
        );
        assert!(
            !self.retired.contains(&id),
            "annotation {annot} tagged a deleted tuple and may not be reused"
        );
        let data = &mut self.relations[rel.0 as usize];
        let row = data.tuples.len();
        if self.indexed {
            // Incremental maintenance: append the new row to every
            // per-column posting list instead of invalidating the indexes
            // (a full rebuild would degrade every later lookup to a scan
            // until someone called `build_indexes` again).
            for (col, v) in tuple.values().iter().enumerate() {
                data.indexes[col].entry(v.clone()).or_default().push(row);
            }
        }
        data.tuples.push(tuple);
        data.annots.push(id);
        self.annot_loc.insert(id, TupleRef { rel, row });
        id
    }

    /// Inserts a tuple given as string literals (see [`Tuple::parse`]).
    pub fn insert_str(&mut self, rel: RelId, annot: &str, fields: &[&str]) -> AnnotId {
        self.insert(rel, annot, Tuple::parse(fields))
    }

    /// Deletes the tuple tagged by `annot`, returning its relation and
    /// values, or `None` when the annotation tags no tuple.
    ///
    /// Storage stays dense (the relation's last row moves into the freed
    /// slot), and when indexes are built they are maintained incrementally:
    /// the deleted row is unlinked from its posting lists and the moved
    /// row's entries are renamed — no rebuild, no scan-degradation. Row
    /// indexes previously handed out for the moved row are invalidated;
    /// annotations remain the stable way to name a tuple.
    pub fn delete(&mut self, annot: AnnotId) -> Option<(RelId, Tuple)> {
        let loc = self.annot_loc.remove(&annot)?;
        self.retired.insert(annot);
        let data = &mut self.relations[loc.rel.0 as usize];
        let last = data.tuples.len() - 1;
        let removed = data.tuples.swap_remove(loc.row);
        data.annots.swap_remove(loc.row);
        if self.indexed {
            for (col, v) in removed.values().iter().enumerate() {
                let entry = data.indexes[col].get_mut(v).expect("indexed value present");
                let pos = entry
                    .iter()
                    .position(|&r| r == loc.row)
                    .expect("row in posting list");
                entry.swap_remove(pos);
                if entry.is_empty() {
                    data.indexes[col].remove(v);
                }
            }
            if loc.row != last {
                // The previous last row now lives at `loc.row`: rename it in
                // every posting list it appears in.
                let moved = data.tuples[loc.row].clone();
                for (col, v) in moved.values().iter().enumerate() {
                    let entry = data.indexes[col].get_mut(v).expect("indexed value present");
                    let pos = entry
                        .iter()
                        .position(|&r| r == last)
                        .expect("moved row in posting list");
                    entry[pos] = loc.row;
                }
            }
        }
        if loc.row != last {
            let moved_annot = data.annots[loc.row];
            self.annot_loc.insert(
                moved_annot,
                TupleRef {
                    rel: loc.rel,
                    row: loc.row,
                },
            );
        }
        Some((loc.rel, removed))
    }

    /// Number of tuples in `rel`.
    pub fn relation_len(&self, rel: RelId) -> usize {
        self.relations[rel.0 as usize].tuples.len()
    }

    /// Total number of tuples.
    pub fn len(&self) -> usize {
        self.relations.iter().map(|r| r.tuples.len()).sum()
    }

    /// Whether the database has no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The tuples of `rel`.
    pub fn tuples(&self, rel: RelId) -> &[Tuple] {
        &self.relations[rel.0 as usize].tuples
    }

    /// The annotations of `rel`, parallel to [`Database::tuples`].
    pub fn tuple_annots(&self, rel: RelId) -> &[AnnotId] {
        &self.relations[rel.0 as usize].annots
    }

    /// Resolves an annotation to its tuple location, if it tags one.
    pub fn locate(&self, annot: AnnotId) -> Option<TupleRef> {
        self.annot_loc.get(&annot).copied()
    }

    /// The tuple tagged by `annot`, if any.
    pub fn tuple_by_annot(&self, annot: AnnotId) -> Option<(RelId, &Tuple)> {
        self.locate(annot)
            .map(|loc| (loc.rel, &self.relations[loc.rel.0 as usize].tuples[loc.row]))
    }

    /// Builds per-column hash indexes for every relation. Idempotent; called
    /// automatically by the evaluator.
    pub fn build_indexes(&mut self) {
        if self.indexed {
            return;
        }
        for (rid, data) in self.relations.iter_mut().enumerate() {
            let arity = self.schema.arity(RelId(rid as u16));
            let mut idx: Vec<HashMap<Value, Vec<usize>>> = vec![HashMap::new(); arity];
            for (row, t) in data.tuples.iter().enumerate() {
                for (col, v) in t.values().iter().enumerate() {
                    idx[col].entry(v.clone()).or_default().push(row);
                }
            }
            data.indexes = idx;
        }
        self.indexed = true;
    }

    /// Whether indexes are current.
    pub fn is_indexed(&self) -> bool {
        self.indexed
    }

    /// Row indexes of `rel` whose column `col` equals `v`, using the hash
    /// index when built and falling back to a scan otherwise.
    pub fn rows_matching(&self, rel: RelId, col: usize, v: &Value) -> Vec<usize> {
        let data = &self.relations[rel.0 as usize];
        if self.indexed {
            data.indexes[col].get(v).cloned().unwrap_or_default()
        } else {
            data.tuples
                .iter()
                .enumerate()
                .filter(|(_, t)| &t[col] == v)
                .map(|(i, _)| i)
                .collect()
        }
    }

    /// Interns an annotation label without tagging a tuple (used for
    /// abstraction-tree inner nodes living in the same label space).
    pub fn intern_label(&mut self, label: &str) -> AnnotId {
        self.annots.intern(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> (Database, RelId) {
        let mut db = Database::new();
        let r = db.add_relation("R", &["a", "b"]);
        db.insert_str(r, "t1", &["1", "x"]);
        db.insert_str(r, "t2", &["2", "x"]);
        db.insert_str(r, "t3", &["1", "y"]);
        (db, r)
    }

    #[test]
    fn insert_and_locate() {
        let (db, r) = sample_db();
        assert_eq!(db.relation_len(r), 3);
        let t1 = db.annotations().get("t1").unwrap();
        let (rel, tuple) = db.tuple_by_annot(t1).unwrap();
        assert_eq!(rel, r);
        assert_eq!(tuple[0], Value::Int(1));
    }

    #[test]
    fn rows_matching_with_and_without_index() {
        let (mut db, r) = sample_db();
        let scan = db.rows_matching(r, 1, &Value::str("x"));
        assert_eq!(scan, vec![0, 1]);
        db.build_indexes();
        let indexed = db.rows_matching(r, 1, &Value::str("x"));
        assert_eq!(indexed, vec![0, 1]);
        assert!(db.rows_matching(r, 0, &Value::Int(9)).is_empty());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let (mut db, r) = sample_db();
        db.insert_str(r, "bad", &["1"]);
    }

    #[test]
    #[should_panic(expected = "already tags")]
    fn distinct_annotations_enforced() {
        let (mut db, r) = sample_db();
        db.insert_str(r, "t1", &["9", "z"]);
    }

    #[test]
    fn insert_maintains_indexes_incrementally() {
        // Regression: `insert` used to flip `indexed = false`, silently
        // degrading every later `rows_matching` to a full scan.
        let (mut db, r) = sample_db();
        db.build_indexes();
        assert!(db.is_indexed());
        db.insert_str(r, "t4", &["3", "x"]);
        assert!(db.is_indexed(), "insert must not invalidate indexes");
        assert_eq!(db.rows_matching(r, 1, &Value::str("x")), vec![0, 1, 3]);
        assert_eq!(db.rows_matching(r, 0, &Value::Int(3)), vec![3]);
        // A relation added after indexing is maintained too.
        let s = db.add_relation("S", &["a"]);
        db.insert_str(s, "s1", &["7"]);
        assert!(db.is_indexed());
        assert_eq!(db.rows_matching(s, 0, &Value::Int(7)), vec![0]);
    }

    #[test]
    fn delete_unlinks_and_renames_rows() {
        let (mut db, r) = sample_db();
        db.build_indexes();
        let t1 = db.annotations().get("t1").unwrap();
        let t3 = db.annotations().get("t3").unwrap();
        let (rel, tuple) = db.delete(t1).unwrap();
        assert_eq!(rel, r);
        assert_eq!(tuple, Tuple::parse(&["1", "x"]));
        assert_eq!(db.relation_len(r), 2);
        assert!(db.is_indexed());
        // t3 (previously the last row) moved into row 0; its location and
        // posting lists must follow.
        assert_eq!(db.locate(t3).unwrap().row, 0);
        assert_eq!(db.rows_matching(r, 1, &Value::str("y")), vec![0]);
        assert_eq!(db.rows_matching(r, 1, &Value::str("x")), vec![1]);
        // The annotation no longer resolves; deleting again is a no-op.
        assert!(db.tuple_by_annot(t1).is_none());
        assert!(db.delete(t1).is_none());
        assert!(db.locate(t1).is_none());
    }

    #[test]
    #[should_panic(expected = "may not be reused")]
    fn retired_annotations_never_tag_again() {
        // Reusing a deleted tuple's label would silently re-bind its
        // AnnotId under provenance captured before the deletion.
        let (mut db, r) = sample_db();
        let t1 = db.annotations().get("t1").unwrap();
        db.delete(t1).unwrap();
        db.insert_str(r, "t1", &["5", "z"]);
    }

    #[test]
    fn delete_last_row_needs_no_rename() {
        let (mut db, r) = sample_db();
        db.build_indexes();
        let t3 = db.annotations().get("t3").unwrap();
        db.delete(t3).unwrap();
        assert_eq!(db.relation_len(r), 2);
        assert_eq!(
            db.rows_matching(r, 1, &Value::str("y")),
            Vec::<usize>::new()
        );
        assert_eq!(db.rows_matching(r, 1, &Value::str("x")), vec![0, 1]);
    }

    #[test]
    fn intern_label_does_not_tag() {
        let (mut db, _) = sample_db();
        let fb = db.intern_label("Facebook");
        assert!(db.tuple_by_annot(fb).is_none());
    }
}
