//! A deliberately naive reference evaluator over **owned** values.
//!
//! The single production join engine ([`eval_cq`](crate::eval_cq) and
//! friends) traffics in dictionary ids end-to-end. This module keeps a
//! structurally different oracle around for correctness witnesses: it
//! decodes every relation into owned [`Tuple`]s up front, joins by scanning
//! atoms **in textual order** with no indexes, no plan, no interning, and
//! builds provenance with owned [`Polynomial`] arithmetic. Property tests
//! (`tests/storage_prop.rs`) and the `bench::storage` comparison harness
//! assert the engine bit-for-bit equal to it.
//!
//! It is an oracle, not an engine: complexity is the full product of the
//! candidate scans, so call it on small databases only.

use crate::{Cq, Database, KRelation, Term, Tuple, Ucq, Value, VarId};
use provabs_semiring::{AnnotId, Monomial, Polynomial};
use std::collections::HashMap;

/// Evaluates `q` by naive backtracking scans over decoded owned tuples.
pub fn oracle_eval_cq(db: &Database, q: &Cq) -> KRelation {
    let mut out = KRelation::default();
    if q.body.is_empty() {
        return out;
    }
    // Decode the touched relations once (the whole point: this path pays
    // the owned-value costs the columnar engine avoids).
    let mut decoded: HashMap<u16, (Vec<Tuple>, Vec<AnnotId>)> = HashMap::new();
    for atom in &q.body {
        decoded
            .entry(atom.rel.0)
            .or_insert_with(|| (db.tuples(atom.rel), db.tuple_annots(atom.rel).to_vec()));
    }
    let mut bindings: HashMap<VarId, Value> = HashMap::new();
    let mut image: Vec<AnnotId> = Vec::new();
    solve(q, &decoded, 0, &mut bindings, &mut image, &mut out);
    out
}

/// Evaluates a UCQ as the sum of its disjuncts' oracle evaluations.
pub fn oracle_eval_ucq(db: &Database, u: &Ucq) -> KRelation {
    let mut out = KRelation::default();
    for d in &u.disjuncts {
        for (t, p) in oracle_eval_cq(db, d).iter() {
            out.add(t.clone(), p.clone());
        }
    }
    out
}

fn solve(
    q: &Cq,
    decoded: &HashMap<u16, (Vec<Tuple>, Vec<AnnotId>)>,
    depth: usize,
    bindings: &mut HashMap<VarId, Value>,
    image: &mut Vec<AnnotId>,
    out: &mut KRelation,
) {
    if depth == q.body.len() {
        let output: Tuple = q
            .head
            .iter()
            .map(|t| match t {
                Term::Const(c) => c.clone(),
                Term::Var(v) => bindings[v].clone(),
            })
            .collect();
        out.add(
            output,
            Polynomial::from_terms([(Monomial::from_annots(image.iter().copied()), 1)]),
        );
        return;
    }
    let atom = &q.body[depth];
    let (tuples, annots) = &decoded[&atom.rel.0];
    'rows: for (row, tuple) in tuples.iter().enumerate() {
        let mut newly_bound: Vec<VarId> = Vec::new();
        for (col, term) in atom.terms.iter().enumerate() {
            let matched = match term {
                Term::Const(c) => &tuple[col] == c,
                Term::Var(v) => match bindings.get(v) {
                    Some(bound) => bound == &tuple[col],
                    None => {
                        bindings.insert(*v, tuple[col].clone());
                        newly_bound.push(*v);
                        true
                    }
                },
            };
            if !matched {
                for v in newly_bound.drain(..) {
                    bindings.remove(&v);
                }
                continue 'rows;
            }
        }
        image.push(annots[row]);
        solve(q, decoded, depth + 1, bindings, image, out);
        image.pop();
        for v in newly_bound {
            bindings.remove(&v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eval_cq, eval_ucq, parse_cq, parse_ucq};

    fn db() -> Database {
        let mut db = Database::new();
        let r = db.add_relation("R", &["a", "b"]);
        let s = db.add_relation("S", &["b", "c"]);
        db.insert_str(r, "r1", &["1", "10"]);
        db.insert_str(r, "r2", &["2", "10"]);
        db.insert_str(r, "r3", &["1", "1"]);
        db.insert_str(s, "s1", &["10", "100"]);
        db.insert_str(s, "s2", &["10", "200"]);
        db.build_indexes();
        db
    }

    #[test]
    fn oracle_matches_engine_on_joins_and_self_joins() {
        let db = db();
        for text in [
            "Q(a, c) :- R(a, b), S(b, c)",
            "Q(a) :- R(a, a)",
            "Q(a, c) :- R(a, b), R(b, c)",
            "Q(x) :- R(x, y), S(y, 100)",
        ] {
            let q = parse_cq(text, db.schema()).unwrap();
            assert_eq!(oracle_eval_cq(&db, &q), eval_cq(&db, &q), "{text}");
        }
        let u = parse_ucq("Q(a) :- R(a, b); Q(b) :- S(b, c)", db.schema()).unwrap();
        assert_eq!(oracle_eval_ucq(&db, &u), eval_ucq(&db, &u));
    }
}
