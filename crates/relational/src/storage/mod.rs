//! Durable paged storage for annotated databases.
//!
//! The module cut follows the proven vfs / pager / wal shape: a [`Vfs`]
//! trait abstracts the byte store (a real file backend, an in-memory
//! backend for tests, and a fault-injecting decorator), a [`Pager`] reads
//! and writes fixed-size checksummed pages through an LRU-pinned cache, and
//! a [`Wal`] appends checksummed frames with explicit commit markers.
//!
//! On top of those, [`DurableDatabase`] persists a
//! [`Database`](crate::Database) — columnar segments, posting lists, the
//! `ValueInterner`, and annotation columns all serialize as pages — and
//! makes [`Database::apply_delta`](crate::Database::apply_delta) a WAL
//! transaction: one applied delta is one committed WAL transaction, and
//! [`DurableDatabase::open`] recovers to the last committed delta exactly.
//!
//! # Determinism contract
//!
//! Every byte written is a pure function of the database state and the
//! delta stream — no timestamps, no randomness — so page images, WAL
//! frames, and all I/O counters reproduce across runs and machines. The
//! recovery invariant, enforced by the crash-matrix and proptest suites,
//! is: after a crash at *any* write-ordering boundary, the reopened
//! database is bit-for-bit [`Database::same_state`](crate::Database::same_state)
//! with the in-memory oracle that applied the same committed deltas.

mod codec;
mod durable;
mod faulty;
mod pager;
mod snapshot;
mod vfs;
mod wal;

pub use codec::{ByteReader, ByteWriter};
pub use durable::{validate_delta, DurableDatabase, DurableOptions, RecoveryInfo};
pub use faulty::{Fault, FaultyVfs, OpKind, OpRecord};
pub use pager::{Pager, PagerStats, PAGE_PAYLOAD, PAGE_SIZE};
pub use snapshot::{decode_database, decode_delta, encode_database, encode_delta};
pub use vfs::{shared, FileVfs, IoStats, MemVfs, SharedVfs, Vfs};
pub use wal::{Wal, WalStats};

use std::fmt;

/// Errors of the storage layer. Every variant is fail-closed: an error
/// poisons the durable handle and the caller must reopen (recovery replays
/// only committed state, so nothing torn is ever served).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The backing store failed or refused the operation.
    Io(String),
    /// The fault-injecting VFS crashed the process model; all I/O on this
    /// VFS fails until [`FaultyVfs::recover`] is called.
    Crashed,
    /// A page, WAL frame, snapshot, or header failed its checksum or
    /// structural validation. Corrupt state is never served.
    Corrupt(String),
    /// The named file does not exist (e.g. opening a database that was
    /// never created).
    NotFound(String),
    /// The delta cannot be made durable (stale annotation label, arity
    /// mismatch) — rejected *before* any WAL append so the log never holds
    /// a transaction that cannot replay.
    InvalidDelta(String),
    /// The durable handle saw a previous error and refuses further work;
    /// reopen to recover to the last committed state. Carries the
    /// original cause so a health endpoint can report *why* the writer is
    /// down without replaying the failure.
    Poisoned(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(m) => write!(f, "storage I/O error: {m}"),
            StorageError::Crashed => write!(f, "storage crashed (injected fault)"),
            StorageError::Corrupt(m) => write!(f, "storage corruption detected: {m}"),
            StorageError::NotFound(m) => write!(f, "storage file not found: {m}"),
            StorageError::InvalidDelta(m) => write!(f, "delta rejected before WAL append: {m}"),
            StorageError::Poisoned(cause) => {
                write!(
                    f,
                    "durable handle poisoned by a previous error ({cause}); reopen"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Seed of the FNV-1a 64-bit checksum used on pages and WAL frames.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit over `seed` (as 8 LE bytes) followed by `bytes`.
///
/// The seed binds a checksum to its location — a page checksum seeded with
/// the page number fails if a valid page is read back from the wrong slot,
/// and WAL frame checksums are seeded with the transaction id for the same
/// reason. Hand-rolled (like the bench JSON) so the on-disk format has no
/// dependency beyond the standard library.
pub fn checksum64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for b in seed.to_le_bytes().into_iter().chain(bytes.iter().copied()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_seed_and_content_sensitive() {
        let a = checksum64(0, b"hello");
        assert_eq!(a, checksum64(0, b"hello"), "deterministic");
        assert_ne!(a, checksum64(1, b"hello"), "seed participates");
        assert_ne!(a, checksum64(0, b"hellp"), "content participates");
        assert_ne!(checksum64(0, b""), 0, "empty input still mixes the seed");
    }

    #[test]
    fn errors_display_their_cause() {
        assert!(StorageError::Corrupt("page 3".into())
            .to_string()
            .contains("page 3"));
        assert!(StorageError::Poisoned("io".into())
            .to_string()
            .contains("reopen"));
    }
}
