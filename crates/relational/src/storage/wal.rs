//! The write-ahead log: checksummed frames with explicit commit markers.
//!
//! One committed delta is one WAL transaction: its serialized payload is
//! chunked into `DATA` frames, the frames are written and synced, and only
//! then is the `COMMIT` frame written and synced. Replay accepts a
//! transaction iff its commit frame is present and valid, so a crash
//! anywhere before the second sync loses the transaction *wholly* — never
//! partially.
//!
//! # Torn tails vs corruption
//!
//! Frames are appended strictly sequentially, each with a single
//! `write_at`, and the durable image loses unsynced suffixes wholesale
//! (see [`FaultyVfs`](super::FaultyVfs)). Under that model a file that
//! ends mid-frame is a *torn tail* — the expected residue of a crash — and
//! is silently discarded. A frame that is fully present but fails its
//! checksum, declares an impossible length, or breaks the protocol
//! (interleaved transactions, non-ascending ids) cannot be produced by a
//! crash; it is media corruption and replay fails closed with
//! [`StorageError::Corrupt`].

use super::{checksum64, StorageError, Vfs, PAGE_PAYLOAD};

/// Frame kinds.
const FRAME_DATA: u8 = 1;
const FRAME_COMMIT: u8 = 2;

/// Frame header bytes: kind (`u8`) + txn (`u64`) + payload length
/// (`u32`) + checksum (`u64`).
const FRAME_HEADER: usize = 21;

/// Maximum payload bytes per frame (page-sized, for symmetry with the
/// pager's crash granularity).
const MAX_FRAME_PAYLOAD: usize = PAGE_PAYLOAD;

/// Deterministic WAL counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Frames appended (data + commit).
    pub frames_written: u64,
    /// Transactions committed through this handle.
    pub txns_committed: u64,
    /// Payload + header bytes appended.
    pub bytes_written: u64,
}

/// One committed transaction as replay returns it: `(txn id, payload)`.
pub type ReplayedTxn = (u64, Vec<u8>);

/// An append-only write-ahead log over one VFS file.
#[derive(Debug)]
pub struct Wal {
    file: String,
    end: u64,
    stats: WalStats,
}

fn encode_frame(kind: u8, txn: u64, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_PAYLOAD,
        "frame payload too large"
    );
    let mut buf = Vec::with_capacity(FRAME_HEADER + payload.len());
    buf.push(kind);
    buf.extend_from_slice(&txn.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut covered = Vec::with_capacity(13 + payload.len());
    covered.extend_from_slice(&buf[0..13]);
    covered.extend_from_slice(payload);
    buf.extend_from_slice(&checksum64(txn, &covered).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

impl Wal {
    /// Binds a WAL handle to `file` without reading it (fresh logs; use
    /// [`Wal::open_replay`] on existing ones).
    pub fn create(file: impl Into<String>) -> Self {
        Self {
            file: file.into(),
            end: 0,
            stats: WalStats::default(),
        }
    }

    /// The log file name.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// The counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Current valid length of the log in bytes.
    pub fn len(&self) -> u64 {
        self.end
    }

    /// Whether the log holds no frames.
    pub fn is_empty(&self) -> bool {
        self.end == 0
    }

    /// Appends one full transaction: data frames, sync, commit frame,
    /// sync. On `Ok`, the transaction is durable.
    pub fn append_txn(
        &mut self,
        vfs: &mut dyn Vfs,
        txn: u64,
        payload: &[u8],
    ) -> Result<(), StorageError> {
        // At least one data frame even for an empty payload, so commit
        // frames never stand alone.
        let chunks: Vec<&[u8]> = if payload.is_empty() {
            vec![&[]]
        } else {
            payload.chunks(MAX_FRAME_PAYLOAD).collect()
        };
        for chunk in chunks {
            self.append_frame(vfs, FRAME_DATA, txn, chunk)?;
        }
        vfs.sync(&self.file)?;
        self.append_frame(vfs, FRAME_COMMIT, txn, &[])?;
        vfs.sync(&self.file)?;
        self.stats.txns_committed += 1;
        Ok(())
    }

    fn append_frame(
        &mut self,
        vfs: &mut dyn Vfs,
        kind: u8,
        txn: u64,
        payload: &[u8],
    ) -> Result<(), StorageError> {
        let frame = encode_frame(kind, txn, payload);
        vfs.write_at(&self.file, self.end, &frame)?;
        self.end += frame.len() as u64;
        self.stats.frames_written += 1;
        self.stats.bytes_written += frame.len() as u64;
        Ok(())
    }

    /// Truncates the log to empty (the checkpoint epilogue) and syncs.
    pub fn reset(&mut self, vfs: &mut dyn Vfs) -> Result<(), StorageError> {
        vfs.truncate(&self.file, 0)?;
        vfs.sync(&self.file)?;
        self.end = 0;
        Ok(())
    }

    /// Replays `file`: returns the committed transactions in log order and
    /// a handle positioned after the last committed frame. Torn tails
    /// (including uncommitted trailing transactions) are discarded — the
    /// file is truncated back to the valid end, idempotently — while full
    /// frames that fail validation are corruption.
    pub fn open_replay(
        vfs: &mut dyn Vfs,
        file: impl Into<String>,
    ) -> Result<(Self, Vec<ReplayedTxn>), StorageError> {
        let file = file.into();
        let file_len = if vfs.exists(&file) {
            vfs.file_len(&file)?
        } else {
            0
        };
        let mut committed: Vec<ReplayedTxn> = Vec::new();
        let mut pending: Option<(u64, Vec<u8>)> = None;
        let mut pos: u64 = 0;
        let mut valid_end: u64 = 0;
        loop {
            if pos + FRAME_HEADER as u64 > file_len {
                break; // empty or torn-tail header
            }
            let mut header = [0u8; FRAME_HEADER];
            if vfs.read_at(&file, pos, &mut header)? != FRAME_HEADER {
                break;
            }
            let kind = header[0];
            let txn = u64::from_le_bytes(header[1..9].try_into().expect("8 bytes"));
            let len = u32::from_le_bytes(header[9..13].try_into().expect("4 bytes")) as usize;
            let stored = u64::from_le_bytes(header[13..21].try_into().expect("8 bytes"));
            if len > MAX_FRAME_PAYLOAD {
                return Err(StorageError::Corrupt(format!(
                    "WAL frame at {pos} declares impossible length {len}"
                )));
            }
            if pos + (FRAME_HEADER + len) as u64 > file_len {
                break; // torn-tail payload
            }
            let mut payload = vec![0u8; len];
            if vfs.read_at(&file, pos + FRAME_HEADER as u64, &mut payload)? != len {
                break;
            }
            let mut covered = Vec::with_capacity(13 + len);
            covered.extend_from_slice(&header[0..13]);
            covered.extend_from_slice(&payload);
            if checksum64(txn, &covered) != stored {
                return Err(StorageError::Corrupt(format!(
                    "WAL frame at {pos} failed its checksum"
                )));
            }
            match kind {
                FRAME_DATA => match &mut pending {
                    Some((t, buf)) if *t == txn => buf.extend_from_slice(&payload),
                    Some((t, _)) => {
                        return Err(StorageError::Corrupt(format!(
                            "WAL interleaves txn {txn} into uncommitted txn {t}"
                        )))
                    }
                    None => pending = Some((txn, payload)),
                },
                FRAME_COMMIT => {
                    if !payload.is_empty() {
                        return Err(StorageError::Corrupt(
                            "WAL commit frame carries a payload".into(),
                        ));
                    }
                    match pending.take() {
                        Some((t, buf)) if t == txn => {
                            if committed.last().is_some_and(|(last, _)| txn <= *last) {
                                return Err(StorageError::Corrupt(format!(
                                    "WAL txn ids not ascending at txn {txn}"
                                )));
                            }
                            committed.push((txn, buf));
                            valid_end = pos + (FRAME_HEADER + len) as u64;
                        }
                        _ => {
                            return Err(StorageError::Corrupt(format!(
                                "WAL commit for txn {txn} without its data frames"
                            )))
                        }
                    }
                }
                other => {
                    return Err(StorageError::Corrupt(format!(
                        "WAL frame at {pos} has unknown kind {other}"
                    )))
                }
            }
            pos += (FRAME_HEADER + len) as u64;
        }
        // Discard the torn / uncommitted tail so later appends start from
        // a clean boundary. Idempotent: a crash here leaves the same tail
        // for the next replay to discard again.
        if file_len > valid_end && vfs.exists(&file) {
            vfs.truncate(&file, valid_end)?;
            vfs.sync(&file)?;
        }
        Ok((
            Self {
                file,
                end: valid_end,
                stats: WalStats::default(),
            },
            committed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::super::MemVfs;
    use super::*;

    fn payload(n: usize, fill: u8) -> Vec<u8> {
        vec![fill; n]
    }

    #[test]
    fn append_replay_roundtrip_multi_frame() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::create("w");
        let big = payload(MAX_FRAME_PAYLOAD * 2 + 17, 0xab); // 3 data frames
        wal.append_txn(&mut vfs, 1, b"first").unwrap();
        wal.append_txn(&mut vfs, 2, &big).unwrap();
        wal.append_txn(&mut vfs, 3, &[]).unwrap();
        assert_eq!(wal.stats().txns_committed, 3);
        let (reopened, txns) = Wal::open_replay(&mut vfs, "w").unwrap();
        assert_eq!(txns.len(), 3);
        assert_eq!(txns[0], (1, b"first".to_vec()));
        assert_eq!(txns[1], (2, big));
        assert_eq!(txns[2], (3, Vec::new()));
        assert_eq!(reopened.len(), wal.len());
    }

    #[test]
    fn torn_tail_is_silently_discarded_and_truncated() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::create("w");
        wal.append_txn(&mut vfs, 1, b"keep").unwrap();
        let committed_end = wal.len();
        // Simulate a torn append: half a frame of garbage at the tail.
        vfs.write_at("w", committed_end, &[9; 10]).unwrap();
        let (reopened, txns) = Wal::open_replay(&mut vfs, "w").unwrap();
        assert_eq!(txns.len(), 1);
        assert_eq!(reopened.len(), committed_end);
        assert_eq!(vfs.file_len("w").unwrap(), committed_end, "tail truncated");
    }

    #[test]
    fn uncommitted_transaction_is_discarded() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::create("w");
        wal.append_txn(&mut vfs, 1, b"committed").unwrap();
        // Data frames without a commit marker (crash before the second
        // sync — but here fully present in the file).
        wal.append_frame(&mut vfs, FRAME_DATA, 2, b"lost").unwrap();
        let (_, txns) = Wal::open_replay(&mut vfs, "w").unwrap();
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].0, 1);
    }

    #[test]
    fn full_frame_corruption_fails_closed() {
        // A flipped bit in a non-final frame is corruption, not a torn
        // tail: replay must refuse, never silently drop committed data.
        let mut vfs = MemVfs::new();
        let mut wal = Wal::create("w");
        wal.append_txn(&mut vfs, 1, b"aaaa").unwrap();
        wal.append_txn(&mut vfs, 2, b"bbbb").unwrap();
        vfs.corrupt_byte("w", FRAME_HEADER as u64 + 1, 0x01); // payload of txn 1
        assert!(matches!(
            Wal::open_replay(&mut vfs, "w"),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn protocol_violations_fail_closed() {
        // Non-ascending txn ids.
        let mut vfs = MemVfs::new();
        let mut wal = Wal::create("w");
        wal.append_txn(&mut vfs, 2, b"x").unwrap();
        wal.append_txn(&mut vfs, 2, b"y").unwrap();
        assert!(matches!(
            Wal::open_replay(&mut vfs, "w"),
            Err(StorageError::Corrupt(_))
        ));
        // A commit with no data frames.
        let mut vfs = MemVfs::new();
        let mut wal = Wal::create("w");
        wal.append_frame(&mut vfs, FRAME_COMMIT, 1, &[]).unwrap();
        assert!(matches!(
            Wal::open_replay(&mut vfs, "w"),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn replaying_a_missing_log_is_empty() {
        let mut vfs = MemVfs::new();
        let (wal, txns) = Wal::open_replay(&mut vfs, "w").unwrap();
        assert!(txns.is_empty());
        assert!(wal.is_empty());
    }

    #[test]
    fn reset_truncates_and_resyncs() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::create("w");
        wal.append_txn(&mut vfs, 1, b"gone after checkpoint")
            .unwrap();
        wal.reset(&mut vfs).unwrap();
        assert!(wal.is_empty());
        assert_eq!(vfs.file_len("w").unwrap(), 0);
        let (_, txns) = Wal::open_replay(&mut vfs, "w").unwrap();
        assert!(txns.is_empty());
    }
}
