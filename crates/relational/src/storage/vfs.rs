//! The virtual file system boundary of the storage layer.
//!
//! Everything durable goes through the [`Vfs`] trait: the [`Pager`]
//! (pages), the [`Wal`] (frames), and the header protocol of
//! [`DurableDatabase`](super::DurableDatabase). Two backends live here — a
//! real [`FileVfs`] and an in-memory [`MemVfs`] for tests and benches —
//! and a third, the fault-injecting [`FaultyVfs`](super::FaultyVfs), in
//! its own module. All three keep deterministic [`IoStats`] counters, the
//! measurement substrate of the durability perf gate.
//!
//! [`Pager`]: super::Pager
//! [`Wal`]: super::Wal

use super::StorageError;
use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Deterministic I/O counters, kept by every [`Vfs`] implementation.
///
/// These are logical operation counts (one `write_at` call = one write),
/// not OS-level syscall counts — they are a pure function of the workload
/// and therefore reproducible across machines, which is what the
/// durability bench gate diffs.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Number of `read_at` calls.
    pub reads: u64,
    /// Number of `write_at` calls.
    pub writes: u64,
    /// Number of `sync` calls.
    pub syncs: u64,
    /// Total bytes returned by reads.
    pub bytes_read: u64,
    /// Total bytes accepted by writes.
    pub bytes_written: u64,
}

impl IoStats {
    /// The counters accumulated since `earlier` (a snapshot of the same
    /// stream) — how benches isolate the cost of one phase.
    pub fn delta_since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            syncs: self.syncs - earlier.syncs,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
        }
    }
}

/// A minimal virtual file system: named byte files with positional reads
/// and writes, explicit durability (`sync`), and deterministic counters.
///
/// The contract mirrors POSIX closely enough to be honest about crash
/// semantics: a `write_at` is *not* durable until the file is `sync`ed,
/// writes past the end zero-fill the gap, and reads past the end are
/// short. Object-safe on purpose — the engine holds a [`SharedVfs`].
pub trait Vfs: std::fmt::Debug {
    /// Whether `file` exists.
    fn exists(&self, file: &str) -> bool;

    /// The current length of `file` in bytes.
    fn file_len(&self, file: &str) -> Result<u64, StorageError>;

    /// Reads up to `buf.len()` bytes at `offset`, returning the count read
    /// (short at end-of-file, `0` at or past it).
    fn read_at(&mut self, file: &str, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError>;

    /// Writes `data` at `offset`, creating the file and zero-filling any
    /// gap. Not durable until [`Vfs::sync`].
    fn write_at(&mut self, file: &str, offset: u64, data: &[u8]) -> Result<(), StorageError>;

    /// Truncates (or extends with zeros) `file` to `len` bytes, creating
    /// it if missing. Not durable until [`Vfs::sync`].
    fn truncate(&mut self, file: &str, len: u64) -> Result<(), StorageError>;

    /// Makes all prior writes to `file` durable.
    fn sync(&mut self, file: &str) -> Result<(), StorageError>;

    /// Removes `file` if it exists (durable immediately, like an unlinked
    /// name after a directory sync).
    fn delete(&mut self, file: &str) -> Result<(), StorageError>;

    /// The cumulative operation counters.
    fn stats(&self) -> IoStats;
}

/// A shareable, lockable VFS handle: the durable engine and the test
/// harness hold clones of the same `Arc`, so a test can crash, corrupt,
/// or inspect the store the engine is using.
pub type SharedVfs = Arc<Mutex<dyn Vfs + Send>>;

/// Wraps a concrete backend into a [`SharedVfs`].
pub fn shared<V: Vfs + Send + 'static>(vfs: V) -> SharedVfs {
    Arc::new(Mutex::new(vfs))
}

/// The in-memory backend: a map of named byte vectors. Fast, hermetic,
/// and inspectable — the default substrate for tests and benches.
#[derive(Debug, Default)]
pub struct MemVfs {
    files: HashMap<String, Vec<u8>>,
    stats: IoStats,
}

impl MemVfs {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// XORs `mask` into one stored byte — the corruption-injection hook
    /// (checksum tests flip bits in pages and WAL frames on "disk").
    ///
    /// # Panics
    /// Panics if the file or offset does not exist: corrupting nothing
    /// would silently turn a corruption test into a no-op.
    pub fn corrupt_byte(&mut self, file: &str, offset: u64, mask: u8) {
        let data = self.files.get_mut(file).expect("corrupting a missing file");
        let byte = data
            .get_mut(usize::try_from(offset).expect("offset fits usize"))
            .expect("corrupting past end of file");
        *byte ^= mask;
    }

    /// A read-only view of a stored file (test inspection).
    pub fn raw(&self, file: &str) -> Option<&[u8]> {
        self.files.get(file).map(Vec::as_slice)
    }
}

/// Positional read over an in-memory byte vector (shared by [`MemVfs`]
/// and the fault-injecting decorator).
pub(super) fn mem_read_at(data: &[u8], offset: u64, buf: &mut [u8]) -> usize {
    let len = data.len() as u64;
    if offset >= len {
        return 0;
    }
    let start = offset as usize;
    let n = buf.len().min(data.len() - start);
    buf[..n].copy_from_slice(&data[start..start + n]);
    n
}

/// Positional write with zero-fill over an in-memory byte vector.
pub(super) fn mem_write_at(data: &mut Vec<u8>, offset: u64, bytes: &[u8]) {
    let start = usize::try_from(offset).expect("offset fits usize");
    let end = start + bytes.len();
    if data.len() < end {
        data.resize(end, 0);
    }
    data[start..end].copy_from_slice(bytes);
}

impl Vfs for MemVfs {
    fn exists(&self, file: &str) -> bool {
        self.files.contains_key(file)
    }

    fn file_len(&self, file: &str) -> Result<u64, StorageError> {
        self.files
            .get(file)
            .map(|d| d.len() as u64)
            .ok_or_else(|| StorageError::NotFound(file.to_owned()))
    }

    fn read_at(&mut self, file: &str, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        let data = self
            .files
            .get(file)
            .ok_or_else(|| StorageError::NotFound(file.to_owned()))?;
        let n = mem_read_at(data, offset, buf);
        self.stats.reads += 1;
        self.stats.bytes_read += n as u64;
        Ok(n)
    }

    fn write_at(&mut self, file: &str, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        let entry = self.files.entry(file.to_owned()).or_default();
        mem_write_at(entry, offset, data);
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        Ok(())
    }

    fn truncate(&mut self, file: &str, len: u64) -> Result<(), StorageError> {
        let entry = self.files.entry(file.to_owned()).or_default();
        entry.resize(usize::try_from(len).expect("length fits usize"), 0);
        Ok(())
    }

    fn sync(&mut self, file: &str) -> Result<(), StorageError> {
        let _ = file; // everything in memory is as durable as it gets
        self.stats.syncs += 1;
        Ok(())
    }

    fn delete(&mut self, file: &str) -> Result<(), StorageError> {
        self.files.remove(file);
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.stats
    }
}

/// The real backend: files under a root directory, one `std::fs` handle
/// per operation (simple and crash-honest — no process-level buffering
/// hides an unsynced write).
#[derive(Debug)]
pub struct FileVfs {
    root: PathBuf,
    stats: IoStats,
}

impl FileVfs {
    /// A VFS rooted at `root` (created if missing).
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, StorageError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| StorageError::Io(e.to_string()))?;
        Ok(Self {
            root,
            stats: IoStats::default(),
        })
    }

    fn path(&self, file: &str) -> PathBuf {
        self.root.join(file)
    }

    fn open_rw(&self, file: &str) -> Result<std::fs::File, StorageError> {
        std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(self.path(file))
            .map_err(|e| StorageError::Io(format!("{file}: {e}")))
    }
}

impl Vfs for FileVfs {
    fn exists(&self, file: &str) -> bool {
        self.path(file).exists()
    }

    fn file_len(&self, file: &str) -> Result<u64, StorageError> {
        std::fs::metadata(self.path(file))
            .map(|m| m.len())
            .map_err(|_| StorageError::NotFound(file.to_owned()))
    }

    fn read_at(&mut self, file: &str, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        if !self.exists(file) {
            return Err(StorageError::NotFound(file.to_owned()));
        }
        let mut f = self.open_rw(file)?;
        f.seek(SeekFrom::Start(offset))
            .map_err(|e| StorageError::Io(e.to_string()))?;
        let mut total = 0;
        while total < buf.len() {
            let n = f
                .read(&mut buf[total..])
                .map_err(|e| StorageError::Io(e.to_string()))?;
            if n == 0 {
                break;
            }
            total += n;
        }
        self.stats.reads += 1;
        self.stats.bytes_read += total as u64;
        Ok(total)
    }

    fn write_at(&mut self, file: &str, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        let mut f = self.open_rw(file)?;
        f.seek(SeekFrom::Start(offset))
            .map_err(|e| StorageError::Io(e.to_string()))?;
        f.write_all(data)
            .map_err(|e| StorageError::Io(e.to_string()))?;
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        Ok(())
    }

    fn truncate(&mut self, file: &str, len: u64) -> Result<(), StorageError> {
        let f = self.open_rw(file)?;
        f.set_len(len).map_err(|e| StorageError::Io(e.to_string()))
    }

    fn sync(&mut self, file: &str) -> Result<(), StorageError> {
        let f = self.open_rw(file)?;
        f.sync_all().map_err(|e| StorageError::Io(e.to_string()))?;
        self.stats.syncs += 1;
        Ok(())
    }

    fn delete(&mut self, file: &str) -> Result<(), StorageError> {
        match std::fs::remove_file(self.path(file)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StorageError::Io(e.to_string())),
        }
    }

    fn stats(&self) -> IoStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(vfs: &mut dyn Vfs) {
        assert!(!vfs.exists("f"));
        assert!(matches!(
            vfs.read_at("f", 0, &mut [0; 4]),
            Err(StorageError::NotFound(_))
        ));
        vfs.write_at("f", 0, b"hello").unwrap();
        vfs.write_at("f", 8, b"world").unwrap(); // gap zero-fills
        assert_eq!(vfs.file_len("f").unwrap(), 13);
        let mut buf = [0u8; 13];
        assert_eq!(vfs.read_at("f", 0, &mut buf).unwrap(), 13);
        assert_eq!(&buf[..5], b"hello");
        assert_eq!(&buf[5..8], &[0, 0, 0]);
        assert_eq!(&buf[8..], b"world");
        // Short read at the tail, empty read past it.
        let mut tail = [0u8; 8];
        assert_eq!(vfs.read_at("f", 10, &mut tail).unwrap(), 3);
        assert_eq!(vfs.read_at("f", 99, &mut tail).unwrap(), 0);
        vfs.truncate("f", 5).unwrap();
        assert_eq!(vfs.file_len("f").unwrap(), 5);
        vfs.sync("f").unwrap();
        vfs.delete("f").unwrap();
        assert!(!vfs.exists("f"));
        let stats = vfs.stats();
        assert_eq!(stats.writes, 2);
        assert_eq!(stats.bytes_written, 10);
        assert!(stats.reads >= 3 && stats.syncs == 1);
    }

    #[test]
    fn mem_vfs_semantics() {
        let mut vfs = MemVfs::new();
        exercise(&mut vfs);
    }

    #[test]
    fn file_vfs_semantics() {
        let dir = std::env::temp_dir().join(format!("provabs-vfs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut vfs = FileVfs::new(&dir).unwrap();
        exercise(&mut vfs);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_corruption_hook_flips_exactly_one_bit_pattern() {
        let mut vfs = MemVfs::new();
        vfs.write_at("f", 0, &[0b1010_1010]).unwrap();
        vfs.corrupt_byte("f", 0, 0b0000_0001);
        assert_eq!(vfs.raw("f").unwrap(), &[0b1010_1011]);
    }

    #[test]
    fn stats_delta_isolates_a_phase() {
        let mut vfs = MemVfs::new();
        vfs.write_at("f", 0, b"abc").unwrap();
        let before = vfs.stats();
        vfs.read_at("f", 0, &mut [0; 3]).unwrap();
        let d = vfs.stats().delta_since(&before);
        assert_eq!((d.reads, d.writes, d.bytes_read), (1, 0, 3));
    }

    #[test]
    fn shared_handle_coerces_and_locks() {
        let handle: SharedVfs = shared(MemVfs::new());
        handle.lock().unwrap().write_at("f", 0, b"x").unwrap();
        assert_eq!(handle.lock().unwrap().file_len("f").unwrap(), 1);
    }
}
