//! Fixed-size checksummed pages with an LRU-pinned cache.
//!
//! Every durable structure except the WAL lives in 4 KiB pages. A page
//! carries its payload length, its own page number (so a page read back
//! from the wrong slot fails), and an FNV-1a checksum seeded with the page
//! number covering the header and payload; the zero padding is verified on
//! read, so *any* flipped bit in a page is detected. One page is written
//! with exactly one `write_at`, which makes page boundaries the crash
//! granularity the fault-injection suite sweeps.

use super::{checksum64, StorageError, Vfs};
use std::collections::{HashMap, HashSet};

/// Size of one page on disk.
pub const PAGE_SIZE: usize = 4096;

/// Bytes of page header: payload length (`u32`), page-number echo
/// (`u32`), checksum (`u64`).
const PAGE_HEADER: usize = 16;

/// Usable payload bytes per page.
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - PAGE_HEADER;

/// Deterministic pager counters (cache behaviour + physical page I/O).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PagerStats {
    /// Pages physically read from the VFS.
    pub pages_read: u64,
    /// Pages physically written to the VFS.
    pub pages_written: u64,
    /// Reads served from the cache.
    pub cache_hits: u64,
    /// Reads that missed the cache.
    pub cache_misses: u64,
    /// Cached pages evicted to respect the capacity.
    pub evictions: u64,
}

#[derive(Debug)]
struct CacheEntry {
    payload: Vec<u8>,
    stamp: u64,
}

/// A page-granular view of one VFS file, with checksums and an LRU cache
/// whose pinned pages are never evicted.
#[derive(Debug)]
pub struct Pager {
    file: String,
    capacity: usize,
    cache: HashMap<u32, CacheEntry>,
    pinned: HashSet<u32>,
    tick: u64,
    stats: PagerStats,
}

fn encode_page(page: u32, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= PAGE_PAYLOAD,
        "page payload exceeds {PAGE_PAYLOAD} bytes"
    );
    let mut buf = vec![0u8; PAGE_SIZE];
    buf[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    buf[4..8].copy_from_slice(&page.to_le_bytes());
    buf[PAGE_HEADER..PAGE_HEADER + payload.len()].copy_from_slice(payload);
    let mut covered = Vec::with_capacity(8 + payload.len());
    covered.extend_from_slice(&buf[0..8]);
    covered.extend_from_slice(payload);
    let sum = checksum64(u64::from(page), &covered);
    buf[8..16].copy_from_slice(&sum.to_le_bytes());
    buf
}

fn decode_page(page: u32, buf: &[u8]) -> Result<Vec<u8>, StorageError> {
    if buf.len() != PAGE_SIZE {
        return Err(StorageError::Corrupt(format!(
            "short page {page}: {} of {PAGE_SIZE} bytes",
            buf.len()
        )));
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    let echo = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let stored = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    if len > PAGE_PAYLOAD {
        return Err(StorageError::Corrupt(format!(
            "page {page} declares impossible payload length {len}"
        )));
    }
    if echo != page {
        return Err(StorageError::Corrupt(format!(
            "page {page} carries page number {echo}"
        )));
    }
    let payload = &buf[PAGE_HEADER..PAGE_HEADER + len];
    let mut covered = Vec::with_capacity(8 + len);
    covered.extend_from_slice(&buf[0..8]);
    covered.extend_from_slice(payload);
    if checksum64(u64::from(page), &covered) != stored {
        return Err(StorageError::Corrupt(format!(
            "page {page} checksum mismatch"
        )));
    }
    if buf[PAGE_HEADER + len..].iter().any(|&b| b != 0) {
        return Err(StorageError::Corrupt(format!(
            "page {page} has non-zero padding"
        )));
    }
    Ok(payload.to_vec())
}

impl Pager {
    /// A pager over `file`, caching at most `capacity` pages (minimum 1).
    pub fn new(file: impl Into<String>, capacity: usize) -> Self {
        Self {
            file: file.into(),
            capacity: capacity.max(1),
            cache: HashMap::new(),
            pinned: HashSet::new(),
            tick: 0,
            stats: PagerStats::default(),
        }
    }

    /// The file this pager pages.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// The counters.
    pub fn stats(&self) -> PagerStats {
        self.stats
    }

    /// Pins `page`: it stays cached until [`Pager::unpin`].
    pub fn pin(&mut self, page: u32) {
        self.pinned.insert(page);
    }

    /// Unpins `page`.
    pub fn unpin(&mut self, page: u32) {
        self.pinned.remove(&page);
    }

    fn touch(&mut self, page: u32) {
        self.tick += 1;
        if let Some(e) = self.cache.get_mut(&page) {
            e.stamp = self.tick;
        }
    }

    fn evict_to_capacity(&mut self) {
        while self.cache.len() > self.capacity {
            // Oldest unpinned page goes; ties cannot happen (stamps are
            // unique). If everything is pinned, the cache grows — pins are
            // a correctness promise, capacity a performance target.
            let victim = self
                .cache
                .iter()
                .filter(|(p, _)| !self.pinned.contains(p))
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&p, _)| p);
            match victim {
                Some(p) => {
                    self.cache.remove(&p);
                    self.stats.evictions += 1;
                }
                None => break,
            }
        }
    }

    /// Reads `page`, from cache or (verified) from the VFS.
    pub fn read_page(&mut self, vfs: &mut dyn Vfs, page: u32) -> Result<Vec<u8>, StorageError> {
        if self.cache.contains_key(&page) {
            self.stats.cache_hits += 1;
            self.touch(page);
            return Ok(self.cache[&page].payload.clone());
        }
        self.stats.cache_misses += 1;
        let mut buf = vec![0u8; PAGE_SIZE];
        let n = vfs.read_at(&self.file, page as u64 * PAGE_SIZE as u64, &mut buf)?;
        if n != PAGE_SIZE {
            return Err(StorageError::Corrupt(format!(
                "short page {page}: {n} of {PAGE_SIZE} bytes"
            )));
        }
        let payload = decode_page(page, &buf)?;
        self.stats.pages_read += 1;
        self.tick += 1;
        self.cache.insert(
            page,
            CacheEntry {
                payload: payload.clone(),
                stamp: self.tick,
            },
        );
        self.evict_to_capacity();
        Ok(payload)
    }

    /// Writes `payload` as `page` — exactly one VFS write (the crash
    /// granularity) — and refreshes the cache.
    ///
    /// # Panics
    /// Panics if `payload` exceeds [`PAGE_PAYLOAD`] (a caller bug, not a
    /// recoverable storage condition).
    pub fn write_page(
        &mut self,
        vfs: &mut dyn Vfs,
        page: u32,
        payload: &[u8],
    ) -> Result<(), StorageError> {
        let buf = encode_page(page, payload);
        vfs.write_at(&self.file, page as u64 * PAGE_SIZE as u64, &buf)?;
        self.stats.pages_written += 1;
        self.tick += 1;
        self.cache.insert(
            page,
            CacheEntry {
                payload: payload.to_vec(),
                stamp: self.tick,
            },
        );
        self.evict_to_capacity();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::MemVfs;
    use super::*;

    #[test]
    fn roundtrip_and_cache_counters() {
        let mut vfs = MemVfs::new();
        let mut pager = Pager::new("p", 8);
        pager.write_page(&mut vfs, 0, b"alpha").unwrap();
        pager.write_page(&mut vfs, 3, b"").unwrap(); // empty payload is legal
        assert_eq!(pager.read_page(&mut vfs, 0).unwrap(), b"alpha");
        assert_eq!(pager.stats().cache_hits, 1, "write populated the cache");
        let mut cold = Pager::new("p", 8);
        assert_eq!(cold.read_page(&mut vfs, 0).unwrap(), b"alpha");
        assert_eq!(cold.read_page(&mut vfs, 3).unwrap(), b"");
        assert_eq!(cold.stats().pages_read, 2);
        assert_eq!(cold.stats().cache_misses, 2);
    }

    #[test]
    fn lru_evicts_oldest_unpinned() {
        let mut vfs = MemVfs::new();
        let mut pager = Pager::new("p", 2);
        for page in 0..3 {
            pager.write_page(&mut vfs, page, &[page as u8]).unwrap();
        }
        assert_eq!(pager.stats().evictions, 1); // page 0 evicted
        let mut reads = Pager::new("p", 2);
        reads.pin(0);
        reads.read_page(&mut vfs, 0).unwrap();
        reads.read_page(&mut vfs, 1).unwrap();
        reads.read_page(&mut vfs, 2).unwrap(); // would evict 0, but it's pinned
        assert_eq!(reads.read_page(&mut vfs, 0).unwrap(), &[0]);
        assert_eq!(
            reads.stats().pages_read,
            3,
            "pinned page 0 never left the cache"
        );
        reads.unpin(0);
        reads.read_page(&mut vfs, 1).unwrap(); // 0 is now the LRU victim
        reads.read_page(&mut vfs, 2).unwrap();
        reads.read_page(&mut vfs, 0).unwrap();
        assert!(reads.stats().pages_read > 3, "unpinned page was evicted");
    }

    #[test]
    fn every_flipped_bit_is_detected() {
        let mut vfs = MemVfs::new();
        let mut pager = Pager::new("p", 4);
        pager.write_page(&mut vfs, 1, b"payload-bytes").unwrap();
        let page_start = PAGE_SIZE as u64;
        for offset in [0u64, 4, 8, 16, 20, PAGE_SIZE as u64 - 1] {
            let mut vfs2 = MemVfs::new();
            let mut w = Pager::new("p", 4);
            w.write_page(&mut vfs2, 1, b"payload-bytes").unwrap();
            vfs2.corrupt_byte("p", page_start + offset, 0x40);
            let mut r = Pager::new("p", 4);
            assert!(
                matches!(r.read_page(&mut vfs2, 1), Err(StorageError::Corrupt(_))),
                "flip at page offset {offset} must be detected"
            );
        }
        // The intact copy still reads fine.
        let mut r = Pager::new("p", 4);
        assert_eq!(r.read_page(&mut vfs, 1).unwrap(), b"payload-bytes");
    }

    #[test]
    fn wrong_slot_and_short_pages_fail_closed() {
        let mut vfs = MemVfs::new();
        let mut pager = Pager::new("p", 4);
        pager.write_page(&mut vfs, 0, b"zero").unwrap();
        // A valid page 0 image copied into slot 2 fails the echo check.
        let mut image = vec![0u8; PAGE_SIZE];
        vfs.read_at("p", 0, &mut image).unwrap();
        vfs.write_at("p", 2 * PAGE_SIZE as u64, &image).unwrap();
        let mut r = Pager::new("p", 4);
        assert!(matches!(
            r.read_page(&mut vfs, 2),
            Err(StorageError::Corrupt(_))
        ));
        // A truncated final page is a short read.
        vfs.truncate("p", (3 * PAGE_SIZE - 100) as u64).unwrap();
        assert!(matches!(
            r.read_page(&mut vfs, 2),
            Err(StorageError::Corrupt(_))
        ));
    }
}
