//! Little-endian byte codec shared by the snapshot, WAL, and header
//! formats (and by `provabs-core`'s persisted search state).
//!
//! Hand-rolled on purpose: the on-disk format depends on nothing beyond
//! the standard library, every integer is fixed-width little-endian, and
//! the reader is fail-closed — any out-of-bounds read or malformed string
//! is a [`StorageError::Corrupt`], never a panic or a partial value.

use super::StorageError;

/// An append-only byte writer for the storage formats.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string (`u32` byte length + bytes).
    pub fn str(&mut self, s: &str) {
        self.u32(u32::try_from(s.len()).expect("string exceeds u32 bytes"));
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes with no length prefix.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A fail-closed cursor over encoded bytes.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(StorageError::Corrupt(format!(
                "truncated read of {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            ))),
        }
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32` little-endian.
    pub fn u32(&mut self) -> Result<u32, StorageError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a `u64` little-endian.
    pub fn u64(&mut self) -> Result<u64, StorageError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads an `i64` little-endian.
    pub fn i64(&mut self) -> Result<i64, StorageError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, StorageError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::Corrupt("invalid UTF-8 in stored string".into()))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        self.take(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the whole buffer was consumed — trailing garbage after
    /// a decoded structure is corruption, not slack.
    pub fn expect_end(&self) -> Result<(), StorageError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StorageError::Corrupt(format!(
                "{} trailing bytes after decoded structure",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.i64(i64::MIN);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), i64::MIN);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes(3).unwrap(), &[1, 2, 3]);
        r.expect_end().unwrap();
    }

    #[test]
    fn reads_fail_closed() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(r.u32(), Err(StorageError::Corrupt(_))));
        // A huge string length must not allocate or wrap around.
        let mut w = ByteWriter::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.str(), Err(StorageError::Corrupt(_))));
        // Invalid UTF-8 is corruption, not a panic.
        let mut w = ByteWriter::new();
        w.u32(2);
        w.bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.str(), Err(StorageError::Corrupt(_))));
        // Trailing bytes are flagged.
        let r = ByteReader::new(&[0]);
        assert!(r.expect_end().is_err());
    }
}
