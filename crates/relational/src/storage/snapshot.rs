//! Byte codecs for whole databases (checkpoints) and deltas (WAL
//! transaction payloads).
//!
//! The snapshot pins an exact on-page order: schema, annotation registry,
//! retirement set, value interner, then per relation the **columns before
//! the posting lists** — the order [`Database::delete`](crate::Database::delete)
//! pins its in-memory mutations against — and finally the annotation
//! columns and index flag. Posting lists persist their row vectors
//! *verbatim* (contents and order): row order inside a posting list is
//! observable through candidate enumeration and is path-dependent under
//! swap-remove deletes, so rebuilding indexes on open would not be
//! bit-for-bit recovery.
//!
//! Decoding is fail-closed and validating: beyond the page/frame
//! checksums underneath, every id is range-checked, every annotation tags
//! at most one live tuple, and every posting entry is cross-checked
//! against the column it indexes — a snapshot that decodes is a snapshot
//! whose invariants hold.

use super::codec::{ByteReader, ByteWriter};
use super::StorageError;
use crate::database::{data_mut, RelationData};
use crate::vintern::ValueId;
use crate::{Database, Delta, RelId, Tuple, TupleRef, Value};
use provabs_semiring::AnnotId;
use std::collections::HashMap;
use std::sync::Arc;

const SNAP_MAGIC: u32 = 0x5053_4e50; // "PSNP"
const DELTA_MAGIC: u32 = 0x5044_4c54; // "PDLT"
const FORMAT_VERSION: u32 = 1;

const TAG_INT: u8 = 0;
const TAG_STR: u8 = 1;

/// Caps an untrusted element count so pre-allocation never exceeds what
/// the remaining input could actually encode (≥ 4 bytes per element) — a
/// flipped count field must surface as [`StorageError::Corrupt`], not as
/// an allocation abort.
fn bounded_cap(n: usize, remaining: usize) -> usize {
    n.min(remaining / 4)
}

fn write_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Int(i) => {
            w.u8(TAG_INT);
            w.i64(*i);
        }
        Value::Str(s) => {
            w.u8(TAG_STR);
            w.str(s);
        }
    }
}

fn read_value(r: &mut ByteReader<'_>) -> Result<Value, StorageError> {
    match r.u8()? {
        TAG_INT => Ok(Value::Int(r.i64()?)),
        TAG_STR => Ok(Value::str(&r.str()?)),
        tag => Err(StorageError::Corrupt(format!("unknown value tag {tag}"))),
    }
}

/// Serializes the full state of `db` deterministically (no hash-map
/// iteration order leaks: posting lists are emitted sorted by key).
pub fn encode_database(db: &Database) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(SNAP_MAGIC);
    w.u32(FORMAT_VERSION);
    // Schema, in relation-id order.
    w.u32(db.schema.len() as u32);
    for rel in db.schema.relation_ids() {
        let rs = db.schema.relation(rel);
        w.str(&rs.name);
        w.u32(rs.columns.len() as u32);
        for c in &rs.columns {
            w.str(c);
        }
    }
    // Annotation registry, in id order.
    w.u32(db.annots.len() as u32);
    for id in db.annots.ids() {
        w.str(db.annots.name(id));
    }
    // Retirement set, sorted.
    let mut retired: Vec<u32> = db.retired.iter().map(|a| a.0).collect();
    retired.sort_unstable();
    w.u32(retired.len() as u32);
    for a in retired {
        w.u32(a);
    }
    // Value interner, in id order.
    w.u32(db.values.len() as u32);
    for i in 0..db.values.len() as u32 {
        write_value(&mut w, db.values.value(ValueId(i)));
    }
    // Relations: columns first, then annotations.
    for data in &db.relations {
        w.u64(data.annots.len() as u64);
        for col in &data.columns {
            for &v in col {
                w.u32(v.0);
            }
        }
        for &a in &data.annots {
            w.u32(a.0);
        }
    }
    // Posting lists, after every column of every relation.
    w.u8(u8::from(db.indexed));
    if db.indexed {
        for data in &db.relations {
            for idx in &data.indexes {
                let mut keys: Vec<ValueId> = idx.keys().copied().collect();
                keys.sort_unstable();
                w.u32(keys.len() as u32);
                for k in keys {
                    let rows = &idx[&k];
                    w.u32(k.0);
                    w.u32(rows.len() as u32);
                    for &row in rows {
                        w.u32(row);
                    }
                }
            }
        }
    }
    w.into_bytes()
}

/// Decodes and validates a snapshot produced by [`encode_database`].
pub fn decode_database(bytes: &[u8]) -> Result<Database, StorageError> {
    let mut r = ByteReader::new(bytes);
    if r.u32()? != SNAP_MAGIC {
        return Err(StorageError::Corrupt("snapshot magic mismatch".into()));
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(StorageError::Corrupt(format!(
            "unsupported snapshot format version {version}"
        )));
    }
    let mut db = Database::new();
    // Schema. Rebuilding through the public path reproduces dense ids.
    let nrels = r.u32()? as usize;
    for _ in 0..nrels {
        let name = r.str()?;
        let ncols = r.u32()? as usize;
        let cols: Vec<String> = (0..ncols).map(|_| r.str()).collect::<Result<_, _>>()?;
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        db.schema.add_relation(&name, &col_refs);
        db.relations.push(Arc::new(RelationData {
            columns: vec![Vec::new(); ncols],
            ..Default::default()
        }));
    }
    // Annotation registry: labels must be distinct, ids dense.
    let nannots = r.u32()? as usize;
    for i in 0..nannots {
        let label = r.str()?;
        let id = db.annots.intern(&label);
        if id.0 as usize != i {
            return Err(StorageError::Corrupt(format!(
                "duplicate annotation label '{label}' in snapshot"
            )));
        }
    }
    // Retirement set.
    let nretired = r.u32()? as usize;
    for _ in 0..nretired {
        let a = r.u32()?;
        if a as usize >= nannots {
            return Err(StorageError::Corrupt(format!(
                "retired annotation {a} out of range"
            )));
        }
        db.retired.insert(AnnotId(a));
    }
    // Value interner: values must be distinct, ids dense.
    let nvalues = r.u32()? as usize;
    for i in 0..nvalues {
        let v = read_value(&mut r)?;
        let id = db.values.intern(v);
        if id.0 as usize != i {
            return Err(StorageError::Corrupt(
                "duplicate interned value in snapshot".into(),
            ));
        }
    }
    // Relations.
    for rel_idx in 0..nrels {
        let nrows = usize::try_from(r.u64()?)
            .map_err(|_| StorageError::Corrupt("row count exceeds usize".into()))?;
        let ncols = db.relations[rel_idx].columns.len();
        let rel = RelId(rel_idx as u16);
        for col in 0..ncols {
            let mut column = Vec::with_capacity(bounded_cap(nrows, r.remaining()));
            for _ in 0..nrows {
                let v = r.u32()?;
                if v as usize >= nvalues {
                    return Err(StorageError::Corrupt(format!(
                        "value id {v} out of range in relation {rel_idx} column {col}"
                    )));
                }
                column.push(ValueId(v));
            }
            data_mut(&mut db.relations[rel_idx]).columns[col] = column;
        }
        let mut annots = Vec::with_capacity(bounded_cap(nrows, r.remaining()));
        for row in 0..nrows {
            let a = r.u32()?;
            if a as usize >= nannots {
                return Err(StorageError::Corrupt(format!(
                    "annotation id {a} out of range in relation {rel_idx}"
                )));
            }
            let id = AnnotId(a);
            if db.retired.contains(&id) {
                return Err(StorageError::Corrupt(format!(
                    "retired annotation {a} tags a live tuple"
                )));
            }
            if db.annot_loc.insert(id, TupleRef { rel, row }).is_some() {
                return Err(StorageError::Corrupt(format!(
                    "annotation {a} tags two tuples in snapshot"
                )));
            }
            annots.push(id);
        }
        data_mut(&mut db.relations[rel_idx]).annots = annots;
    }
    // Posting lists, cross-checked against the columns they index.
    let indexed = match r.u8()? {
        0 => false,
        1 => true,
        other => {
            return Err(StorageError::Corrupt(format!(
                "indexed flag has impossible value {other}"
            )))
        }
    };
    db.indexed = indexed;
    if indexed {
        for rel_idx in 0..nrels {
            let ncols = db.relations[rel_idx].columns.len();
            let nrows = db.relations[rel_idx].annots.len();
            let mut indexes = Vec::with_capacity(ncols);
            for col in 0..ncols {
                let nkeys = r.u32()? as usize;
                let mut idx: HashMap<ValueId, Vec<u32>> =
                    HashMap::with_capacity(bounded_cap(nkeys, r.remaining()));
                let mut total = 0usize;
                for _ in 0..nkeys {
                    let key = ValueId(r.u32()?);
                    let count = r.u32()? as usize;
                    if count == 0 {
                        return Err(StorageError::Corrupt("empty posting list persisted".into()));
                    }
                    let mut rows = Vec::with_capacity(bounded_cap(count, r.remaining()));
                    for _ in 0..count {
                        let row = r.u32()?;
                        if row as usize >= nrows {
                            return Err(StorageError::Corrupt(format!(
                                "posting row {row} out of range in relation {rel_idx}"
                            )));
                        }
                        if db.relations[rel_idx].columns[col][row as usize] != key {
                            return Err(StorageError::Corrupt(format!(
                                "posting list of relation {rel_idx} column {col} \
                                 disagrees with the column at row {row}"
                            )));
                        }
                        rows.push(row);
                    }
                    total += count;
                    if idx.insert(key, rows).is_some() {
                        return Err(StorageError::Corrupt(
                            "duplicate posting key in snapshot".into(),
                        ));
                    }
                }
                if total != nrows {
                    return Err(StorageError::Corrupt(format!(
                        "posting lists of relation {rel_idx} column {col} cover \
                         {total} of {nrows} rows"
                    )));
                }
                indexes.push(idx);
            }
            data_mut(&mut db.relations[rel_idx]).indexes = indexes;
        }
    }
    r.expect_end()?;
    Ok(db)
}

/// Serializes a [`Delta`] as a WAL transaction payload.
pub fn encode_delta(delta: &Delta) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(DELTA_MAGIC);
    w.u32(delta.inserts.len() as u32);
    for ins in &delta.inserts {
        w.u32(u32::from(ins.rel.0));
        w.str(&ins.label);
        w.u32(ins.tuple.arity() as u32);
        for i in 0..ins.tuple.arity() {
            write_value(&mut w, &ins.tuple[i]);
        }
    }
    w.u32(delta.deletes.len() as u32);
    for a in &delta.deletes {
        w.u32(a.0);
    }
    w.into_bytes()
}

/// Decodes a WAL transaction payload back into a [`Delta`]. Structural
/// only: referential checks (relation ids, arities, label freshness)
/// happen against the live database in the durability layer.
pub fn decode_delta(bytes: &[u8]) -> Result<Delta, StorageError> {
    let mut r = ByteReader::new(bytes);
    if r.u32()? != DELTA_MAGIC {
        return Err(StorageError::Corrupt("delta magic mismatch".into()));
    }
    let mut delta = Delta::new();
    let ninserts = r.u32()? as usize;
    for _ in 0..ninserts {
        let rel = r.u32()?;
        let rel = u16::try_from(rel)
            .map_err(|_| StorageError::Corrupt(format!("relation id {rel} out of range")))?;
        let label = r.str()?;
        let arity = r.u32()? as usize;
        let values: Vec<Value> = (0..arity)
            .map(|_| read_value(&mut r))
            .collect::<Result<_, _>>()?;
        delta.insert(RelId(rel), label, Tuple::new(values));
    }
    let ndeletes = r.u32()? as usize;
    for _ in 0..ndeletes {
        delta.delete(AnnotId(r.u32()?));
    }
    r.expect_end()?;
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_db(indexed: bool) -> Database {
        let mut db = Database::new();
        let r = db.add_relation("R", &["a", "b"]);
        let s = db.add_relation("S", &["b"]);
        db.insert_str(r, "r1", &["1", "x"]);
        db.insert_str(r, "r2", &["2", "x"]);
        db.insert_str(r, "r3", &["1", "y"]);
        db.insert_str(s, "s1", &["x"]);
        if indexed {
            db.build_indexes();
        }
        // A delete makes the posting-list row order path-dependent and
        // populates the retirement set.
        let r1 = db.annotations().get("r1").unwrap();
        db.delete(r1).unwrap();
        db
    }

    #[test]
    fn database_roundtrips_bit_for_bit() {
        for indexed in [false, true] {
            let db = build_db(indexed);
            let decoded = decode_database(&encode_database(&db)).unwrap();
            assert!(db.same_state(&decoded), "indexed={indexed}");
            // Encoding is deterministic (no hash-order leaks).
            assert_eq!(encode_database(&db), encode_database(&decoded));
        }
    }

    #[test]
    fn empty_database_roundtrips() {
        let db = Database::new();
        let decoded = decode_database(&encode_database(&db)).unwrap();
        assert!(db.same_state(&decoded));
    }

    #[test]
    fn delta_roundtrips() {
        let mut delta = Delta::new();
        delta.insert(RelId(0), "u1", Tuple::parse(&["7", "seven"]));
        delta.insert(RelId(3), "u2", Tuple::new(Vec::new()));
        delta.delete(AnnotId(42));
        let decoded = decode_delta(&encode_delta(&delta)).unwrap();
        assert_eq!(delta, decoded);
    }

    #[test]
    fn byte_flips_anywhere_fail_closed() {
        let db = build_db(true);
        let bytes = encode_database(&db);
        // Every single-byte flip must either be detected or decode to the
        // identical state (a flip can land in redundant length slack).
        // Stronger: here we assert detection-or-equality across a spread
        // of offsets covering every section.
        let step = (bytes.len() / 97).max(1);
        for pos in (0..bytes.len()).step_by(step) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x04;
            match decode_database(&bad) {
                Err(StorageError::Corrupt(_)) => {}
                Err(other) => panic!("unexpected error at {pos}: {other}"),
                Ok(decoded) => assert!(
                    !decoded.same_state(&db),
                    "flip at byte {pos} silently decoded to the same state"
                ),
            }
        }
        let truncated = &bytes[..bytes.len() - 1];
        assert!(matches!(
            decode_database(truncated),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn validation_rejects_cross_referential_lies() {
        let db = build_db(true);
        let good = encode_database(&db);
        assert!(decode_database(&good).is_ok());
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(decode_database(&bad).is_err());
        // Future version.
        let mut bad = good;
        bad[4] = 99;
        assert!(decode_database(&bad).is_err());
    }
}
