//! Fault injection at the VFS boundary.
//!
//! [`FaultyVfs`] models a process + disk pair: every write lands in a
//! *volatile* image (the OS page cache), and only [`Vfs::sync`] copies a
//! file's volatile image to its *durable* image (the platter). An injected
//! crash makes every subsequent operation fail with
//! [`StorageError::Crashed`] until [`FaultyVfs::recover`] is called — at
//! which point the volatile image is discarded and the durable image is
//! what a restarted process sees. Unsynced writes therefore vanish
//! wholesale, exactly the fsync-barrier contract the WAL protocol is
//! designed against.
//!
//! Faults are keyed by deterministic operation sequence numbers (the k-th
//! mutating op, the k-th sync), so a test can first dry-run a workload
//! fault-free, read the [`OpRecord`] log to locate every write-ordering
//! boundary, and then re-run it once per boundary with a crash injected
//! exactly there — the crash-matrix suite does precisely this.

use super::vfs::{mem_read_at, mem_write_at};
use super::{IoStats, StorageError, Vfs};
use std::collections::HashMap;

/// One injected fault, keyed by operation sequence number.
///
/// Mutating operations (`write_at`, `truncate`) share one sequence; syncs
/// have their own. Most faults crash the process model; the exceptions
/// are [`Fault::DropSync`], which models an fsync that reports success
/// without persisting — observable only when a later crash discards the
/// volatile image — and the *transient* [`Fault::FailWrite`] /
/// [`Fault::FailSync`] pair, which fail exactly one operation with
/// [`StorageError::Io`] and leave the VFS healthy (the kernel returned
/// `EIO` once; a retry loop above can reopen and carry on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Crash before the k-th mutating operation applies at all.
    CrashBeforeWrite(u64),
    /// The k-th mutating operation fails with [`StorageError::Io`] and
    /// does not apply, but the process stays up — a transient write
    /// error. The sequence number is consumed.
    FailWrite(u64),
    /// The k-th sync fails with [`StorageError::Io`] and persists
    /// nothing, but the process stays up — a transient fsync error.
    FailSync(u64),
    /// The k-th mutating operation persists only its first `keep` bytes to
    /// the volatile image, then the process crashes — a torn page / torn
    /// frame. On a truncate this degenerates to [`Fault::CrashBeforeWrite`].
    TornWrite {
        /// Mutating-operation sequence number.
        write: u64,
        /// Bytes of the write that land before the crash.
        keep: usize,
    },
    /// Crash before the k-th sync copies anything to the durable image.
    CrashBeforeSync(u64),
    /// The k-th sync returns `Ok` but persists nothing (a lying fsync).
    DropSync(u64),
}

/// What kind of mutating operation an [`OpRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A positional write.
    Write,
    /// A truncate (or extend).
    Truncate,
    /// A sync.
    Sync,
}

/// One logged operation of a workload — the dry run's map of every
/// write-ordering boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Sequence number within its class (mutating ops and syncs count
    /// separately, matching the [`Fault`] keys).
    pub seq: u64,
    /// File the operation targeted.
    pub file: String,
    /// Operation kind.
    pub kind: OpKind,
    /// Write offset (0 for truncate/sync).
    pub offset: u64,
    /// Bytes written, or the new length for a truncate (0 for sync).
    pub len: u64,
}

/// The fault-injecting in-memory VFS (volatile + durable images per
/// file). With no faults armed it behaves exactly like
/// [`MemVfs`](super::MemVfs) plus an operation log.
#[derive(Debug, Default)]
pub struct FaultyVfs {
    volatile: HashMap<String, Vec<u8>>,
    durable: HashMap<String, Vec<u8>>,
    crashed: bool,
    write_seq: u64,
    sync_seq: u64,
    faults: Vec<Fault>,
    log: Vec<OpRecord>,
    stats: IoStats,
}

impl FaultyVfs {
    /// A fault-free instance (dry runs, oracle twins).
    pub fn new() -> Self {
        Self::default()
    }

    /// An instance with `faults` armed.
    pub fn with_faults(faults: Vec<Fault>) -> Self {
        Self {
            faults,
            ..Self::default()
        }
    }

    /// Whether an injected crash has fired (all I/O fails until
    /// [`FaultyVfs::recover`]).
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Restarts the process model: the volatile image is discarded, the
    /// durable image becomes visible, pending faults are disarmed. This is
    /// the moment a real deployment would re-exec and call
    /// [`DurableDatabase::open`](super::DurableDatabase::open).
    pub fn recover(&mut self) {
        self.volatile = self.durable.clone();
        self.crashed = false;
        self.faults.clear();
    }

    /// The operation log (sequence numbers match the [`Fault`] keys).
    pub fn op_log(&self) -> &[OpRecord] {
        &self.log
    }

    /// Mutating operations issued so far (the exclusive upper bound of
    /// valid [`Fault::CrashBeforeWrite`] keys for a completed workload).
    pub fn write_count(&self) -> u64 {
        self.write_seq
    }

    /// Syncs issued so far.
    pub fn sync_count(&self) -> u64 {
        self.sync_seq
    }

    /// XORs `mask` into one byte of **both** images — media corruption,
    /// as opposed to a crash (see [`MemVfs::corrupt_byte`]).
    ///
    /// # Panics
    /// Panics if the durable image lacks the file or offset.
    ///
    /// [`MemVfs::corrupt_byte`]: super::MemVfs::corrupt_byte
    pub fn corrupt_byte(&mut self, file: &str, offset: u64, mask: u8) {
        let pos = usize::try_from(offset).expect("offset fits usize");
        for image in [&mut self.durable, &mut self.volatile] {
            let data = image.get_mut(file).expect("corrupting a missing file");
            *data.get_mut(pos).expect("corrupting past end of file") ^= mask;
        }
    }

    /// The durable image of `file` (what survives a crash), for test
    /// inspection.
    pub fn durable_image(&self, file: &str) -> Option<&[u8]> {
        self.durable.get(file).map(Vec::as_slice)
    }

    fn check_alive(&self) -> Result<(), StorageError> {
        if self.crashed {
            Err(StorageError::Crashed)
        } else {
            Ok(())
        }
    }

    /// Consumes one mutating-op sequence number; returns how many bytes of
    /// the operation may apply (`None` = all of it).
    fn arm_write(&mut self, full: usize) -> Result<Option<usize>, StorageError> {
        let seq = self.write_seq;
        self.write_seq += 1;
        for f in &self.faults {
            match *f {
                Fault::CrashBeforeWrite(k) if k == seq => {
                    self.crashed = true;
                    return Err(StorageError::Crashed);
                }
                Fault::TornWrite { write, keep } if write == seq => {
                    self.crashed = true;
                    return Ok(Some(keep.min(full)));
                }
                Fault::FailWrite(k) if k == seq => {
                    return Err(StorageError::Io(format!(
                        "injected transient failure of write {seq}"
                    )));
                }
                _ => {}
            }
        }
        Ok(None)
    }
}

impl Vfs for FaultyVfs {
    fn exists(&self, file: &str) -> bool {
        self.volatile.contains_key(file)
    }

    fn file_len(&self, file: &str) -> Result<u64, StorageError> {
        self.check_alive()?;
        self.volatile
            .get(file)
            .map(|d| d.len() as u64)
            .ok_or_else(|| StorageError::NotFound(file.to_owned()))
    }

    fn read_at(&mut self, file: &str, offset: u64, buf: &mut [u8]) -> Result<usize, StorageError> {
        self.check_alive()?;
        let data = self
            .volatile
            .get(file)
            .ok_or_else(|| StorageError::NotFound(file.to_owned()))?;
        let n = mem_read_at(data, offset, buf);
        self.stats.reads += 1;
        self.stats.bytes_read += n as u64;
        Ok(n)
    }

    fn write_at(&mut self, file: &str, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        self.check_alive()?;
        let seq = self.write_seq;
        match self.arm_write(data.len())? {
            Some(keep) => {
                // Torn: a prefix lands in the volatile image, then the
                // crash fires. Whether it ever becomes durable depends on
                // a later sync that will never come.
                let entry = self.volatile.entry(file.to_owned()).or_default();
                mem_write_at(entry, offset, &data[..keep]);
                Err(StorageError::Crashed)
            }
            None => {
                let entry = self.volatile.entry(file.to_owned()).or_default();
                mem_write_at(entry, offset, data);
                self.stats.writes += 1;
                self.stats.bytes_written += data.len() as u64;
                self.log.push(OpRecord {
                    seq,
                    file: file.to_owned(),
                    kind: OpKind::Write,
                    offset,
                    len: data.len() as u64,
                });
                Ok(())
            }
        }
    }

    fn truncate(&mut self, file: &str, len: u64) -> Result<(), StorageError> {
        self.check_alive()?;
        let seq = self.write_seq;
        // A torn truncate degenerates to crash-before: length changes are
        // atomic in the model.
        if self.arm_write(0)?.is_some() {
            return Err(StorageError::Crashed);
        }
        let entry = self.volatile.entry(file.to_owned()).or_default();
        entry.resize(usize::try_from(len).expect("length fits usize"), 0);
        self.log.push(OpRecord {
            seq,
            file: file.to_owned(),
            kind: OpKind::Truncate,
            offset: 0,
            len,
        });
        Ok(())
    }

    fn sync(&mut self, file: &str) -> Result<(), StorageError> {
        self.check_alive()?;
        let seq = self.sync_seq;
        self.sync_seq += 1;
        let mut drop_sync = false;
        for f in &self.faults {
            match *f {
                Fault::CrashBeforeSync(k) if k == seq => {
                    self.crashed = true;
                    return Err(StorageError::Crashed);
                }
                Fault::DropSync(k) if k == seq => drop_sync = true,
                Fault::FailSync(k) if k == seq => {
                    return Err(StorageError::Io(format!(
                        "injected transient failure of sync {seq}"
                    )));
                }
                _ => {}
            }
        }
        self.stats.syncs += 1;
        self.log.push(OpRecord {
            seq,
            file: file.to_owned(),
            kind: OpKind::Sync,
            offset: 0,
            len: 0,
        });
        if !drop_sync {
            match self.volatile.get(file) {
                Some(data) => {
                    self.durable.insert(file.to_owned(), data.clone());
                }
                None => {
                    self.durable.remove(file);
                }
            }
        }
        Ok(())
    }

    fn delete(&mut self, file: &str) -> Result<(), StorageError> {
        self.check_alive()?;
        self.volatile.remove(file);
        self.durable.remove(file);
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynced_writes_vanish_on_crash() {
        let mut vfs = FaultyVfs::with_faults(vec![Fault::CrashBeforeWrite(2)]);
        vfs.write_at("f", 0, b"aa").unwrap(); // write 0
        vfs.sync("f").unwrap(); // sync 0: "aa" durable
        vfs.write_at("f", 2, b"bb").unwrap(); // write 1: volatile only
        assert_eq!(vfs.file_len("f").unwrap(), 4);
        assert!(matches!(
            vfs.write_at("f", 4, b"cc"),
            Err(StorageError::Crashed)
        ));
        assert!(vfs.crashed());
        assert!(matches!(vfs.file_len("f"), Err(StorageError::Crashed)));
        vfs.recover();
        // Only the synced prefix survived; the unsynced "bb" is gone.
        assert_eq!(vfs.file_len("f").unwrap(), 2);
        assert_eq!(vfs.durable_image("f").unwrap(), b"aa");
    }

    #[test]
    fn torn_write_keeps_a_prefix() {
        let mut vfs = FaultyVfs::with_faults(vec![Fault::TornWrite { write: 0, keep: 3 }]);
        assert!(vfs.write_at("f", 0, b"abcdef").is_err());
        vfs.recover();
        // The torn prefix was never synced, so after recovery the durable
        // image has no file at all.
        assert!(vfs.durable_image("f").is_none());
        // With a sync between, the torn prefix of a *second* write can
        // survive on top of durable data.
        let mut vfs = FaultyVfs::with_faults(vec![Fault::TornWrite { write: 1, keep: 2 }]);
        vfs.write_at("f", 0, b"xxxx").unwrap();
        vfs.sync("f").unwrap();
        assert!(vfs.write_at("f", 0, b"abcd").is_err());
        vfs.recover();
        assert_eq!(vfs.durable_image("f").unwrap(), b"xxxx");
    }

    #[test]
    fn dropped_sync_lies() {
        let mut vfs = FaultyVfs::with_faults(vec![Fault::DropSync(0), Fault::CrashBeforeWrite(1)]);
        vfs.write_at("f", 0, b"data").unwrap();
        vfs.sync("f").unwrap(); // reports Ok, persists nothing
        assert!(vfs.write_at("f", 4, b"more").is_err());
        vfs.recover();
        assert!(vfs.durable_image("f").is_none(), "the fsync lied");
    }

    #[test]
    fn crash_before_sync_loses_the_batch() {
        let mut vfs = FaultyVfs::with_faults(vec![Fault::CrashBeforeSync(1)]);
        vfs.write_at("f", 0, b"one").unwrap();
        vfs.sync("f").unwrap();
        vfs.write_at("f", 3, b"two").unwrap();
        assert!(vfs.sync("f").is_err());
        vfs.recover();
        assert_eq!(vfs.durable_image("f").unwrap(), b"one");
    }

    #[test]
    fn op_log_locates_boundaries() {
        let mut vfs = FaultyVfs::new();
        vfs.write_at("a", 0, b"12").unwrap();
        vfs.truncate("a", 1).unwrap();
        vfs.sync("a").unwrap();
        assert_eq!(vfs.write_count(), 2);
        assert_eq!(vfs.sync_count(), 1);
        let log = vfs.op_log();
        assert_eq!(log.len(), 3);
        assert_eq!((log[0].seq, log[0].kind), (0, OpKind::Write));
        assert_eq!((log[1].seq, log[1].kind), (1, OpKind::Truncate));
        assert_eq!((log[2].seq, log[2].kind), (0, OpKind::Sync));
    }

    #[test]
    fn transient_failures_do_not_crash() {
        let mut vfs = FaultyVfs::with_faults(vec![Fault::FailWrite(1), Fault::FailSync(1)]);
        vfs.write_at("f", 0, b"aa").unwrap(); // write 0
        assert!(matches!(
            vfs.write_at("f", 2, b"bb"), // write 1: transient EIO
            Err(StorageError::Io(_))
        ));
        assert!(!vfs.crashed(), "transient failure leaves the process up");
        // The failed write did not apply, and the next one succeeds.
        assert_eq!(vfs.file_len("f").unwrap(), 2);
        vfs.write_at("f", 2, b"bb").unwrap(); // write 2
        vfs.sync("f").unwrap(); // sync 0
        assert!(matches!(vfs.sync("f"), Err(StorageError::Io(_)))); // sync 1
        assert!(!vfs.crashed());
        vfs.sync("f").unwrap(); // sync 2
        assert_eq!(vfs.durable_image("f").unwrap(), b"aabb");
    }

    #[test]
    fn failed_sync_persists_nothing() {
        let mut vfs = FaultyVfs::with_faults(vec![Fault::FailSync(0), Fault::CrashBeforeWrite(1)]);
        vfs.write_at("f", 0, b"data").unwrap();
        assert!(vfs.sync("f").is_err()); // transient: durable image untouched
        assert!(!vfs.crashed());
        assert!(vfs.write_at("f", 4, b"more").is_err()); // now crash
        vfs.recover();
        assert!(
            vfs.durable_image("f").is_none(),
            "a failed sync must not have persisted the volatile image"
        );
    }

    #[test]
    fn recovery_disarms_pending_faults() {
        let mut vfs = FaultyVfs::with_faults(vec![Fault::CrashBeforeWrite(0)]);
        assert!(vfs.write_at("f", 0, b"x").is_err());
        vfs.recover();
        vfs.write_at("f", 0, b"x").unwrap();
        vfs.sync("f").unwrap();
        assert_eq!(vfs.durable_image("f").unwrap(), b"x");
    }
}
