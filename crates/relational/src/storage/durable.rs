//! The durable database: snapshots + WAL + recovery.
//!
//! # File layout
//!
//! A database named `base` owns four files:
//!
//! * `base.db` — one header page: magic, format version, which snapshot
//!   file is active, the epoch, how many transactions the active snapshot
//!   embodies, and the snapshot's page count and byte length.
//! * `base.snap0` / `base.snap1` — double-buffered full snapshots, written
//!   as checksummed pages ([`encode_database`](super::encode_database)).
//! * `base.wal` — the write-ahead log ([`Wal`](super::Wal)).
//!
//! # Commit protocol (one applied delta = one WAL transaction)
//!
//! [`DurableDatabase::apply_delta`] validates the delta against the live
//! state (fail-closed: nothing unreplayable ever enters the log), appends
//! its serialized form as WAL data frames, syncs, appends the commit
//! marker, syncs again, and only then applies the delta in memory. A crash
//! before the commit-marker sync loses the whole transaction; after it,
//! recovery replays it exactly.
//!
//! # Checkpoint protocol
//!
//! [`DurableDatabase::checkpoint`] writes a fresh snapshot into the
//! *inactive* snapshot file, syncs it, then flips the header (new active
//! file, bumped epoch, transaction watermark) with a single page write +
//! sync — the atomic commit point — and finally truncates the WAL. A crash
//! between the header flip and the WAL truncate is benign: replay skips
//! transactions at or below the header watermark.
//!
//! # Recovery invariant
//!
//! [`DurableDatabase::open`] = decode the active snapshot, replay every
//! committed WAL transaction above the watermark, in order. The resulting
//! state is bit-for-bit [`Database::same_state`] with an in-memory oracle
//! that applied the same committed deltas — the property the crash-matrix
//! and proptest suites enforce at every injected crash point.

use super::codec::{ByteReader, ByteWriter};
use super::snapshot::{decode_database, decode_delta, encode_database, encode_delta};
use super::{Pager, PagerStats, SharedVfs, StorageError, Wal, WalStats, PAGE_PAYLOAD};
use crate::{AppliedDelta, Database, Delta};
use std::collections::HashSet;

const HEADER_MAGIC: u32 = 0x5044_4248; // "PDBH"
const FORMAT_VERSION: u32 = 1;

/// Tuning knobs for a [`DurableDatabase`].
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// Page-cache capacity of each pager.
    pub cache_pages: usize,
    /// Checkpoint automatically after this many WAL transactions
    /// (`0` = only on explicit [`DurableDatabase::checkpoint`] calls).
    pub checkpoint_every: u64,
}

impl Default for DurableOptions {
    fn default() -> Self {
        Self {
            cache_pages: 64,
            checkpoint_every: 0,
        }
    }
}

/// What [`DurableDatabase::open`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Transactions embodied by the snapshot that was decoded.
    pub snapshot_txns: u64,
    /// Committed WAL transactions replayed on top of it.
    pub replayed_txns: u64,
    /// Total committed transactions now live (`snapshot + replayed`).
    pub committed_txns: u64,
}

#[derive(Debug, Clone, Copy)]
struct Header {
    active_snap: u8,
    epoch: u64,
    applied_txns: u64,
    snap_pages: u32,
    snap_bytes: u64,
}

fn encode_header(h: &Header) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(HEADER_MAGIC);
    w.u32(FORMAT_VERSION);
    w.u8(h.active_snap);
    w.u64(h.epoch);
    w.u64(h.applied_txns);
    w.u32(h.snap_pages);
    w.u64(h.snap_bytes);
    w.into_bytes()
}

fn decode_header(bytes: &[u8]) -> Result<Header, StorageError> {
    let mut r = ByteReader::new(bytes);
    if r.u32()? != HEADER_MAGIC {
        return Err(StorageError::Corrupt("header magic mismatch".into()));
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(StorageError::Corrupt(format!(
            "unsupported database format version {version}"
        )));
    }
    let active_snap = r.u8()?;
    if active_snap > 1 {
        return Err(StorageError::Corrupt(format!(
            "active snapshot index {active_snap} out of range"
        )));
    }
    let h = Header {
        active_snap,
        epoch: r.u64()?,
        applied_txns: r.u64()?,
        snap_pages: r.u32()?,
        snap_bytes: r.u64()?,
    };
    r.expect_end()?;
    Ok(h)
}

/// A [`Database`] with durable paged storage and write-ahead logging.
///
/// All mutation flows through [`DurableDatabase::apply_delta`]; reads go
/// through [`DurableDatabase::db`]. Any storage error poisons the handle
/// (every later call fails with [`StorageError::Poisoned`]) — the durable
/// truth is then whatever [`DurableDatabase::open`] recovers.
#[derive(Debug)]
pub struct DurableDatabase {
    vfs: SharedVfs,
    db: Database,
    opts: DurableOptions,
    header_pager: Pager,
    snap_pagers: [Pager; 2],
    wal: Wal,
    active_snap: u8,
    epoch: u64,
    applied_txns: u64,
    wal_txns: u64,
    poisoned: Option<String>,
}

fn header_file(base: &str) -> String {
    format!("{base}.db")
}
fn snap_file(base: &str, which: u8) -> String {
    format!("{base}.snap{which}")
}
fn wal_file(base: &str) -> String {
    format!("{base}.wal")
}

/// Rejects anything [`Database::apply_delta`] would panic on, so the WAL
/// never holds a transaction that cannot replay: bad relation ids, arity
/// mismatches, reused (live or retired) annotation labels — including
/// duplicates within the batch itself.
///
/// Public because the non-durable update path wants the same fail-closed
/// boundary: [`Updater::try_apply`](crate::Updater::try_apply) validates
/// through here so a bad delta is a typed error, never a panic.
pub fn validate_delta(db: &Database, delta: &Delta) -> Result<(), StorageError> {
    let mut batch_labels: HashSet<&str> = HashSet::new();
    for ins in &delta.inserts {
        if usize::from(ins.rel.0) >= db.schema().len() {
            return Err(StorageError::InvalidDelta(format!(
                "unknown relation id {}",
                ins.rel.0
            )));
        }
        if ins.tuple.arity() != db.schema().arity(ins.rel) {
            return Err(StorageError::InvalidDelta(format!(
                "arity {} tuple for {}",
                ins.tuple.arity(),
                db.schema().relation_name(ins.rel)
            )));
        }
        if !batch_labels.insert(&ins.label) {
            return Err(StorageError::InvalidDelta(format!(
                "label '{}' inserted twice in one delta",
                ins.label
            )));
        }
        if let Some(id) = db.annotations().get(&ins.label) {
            if db.locate(id).is_some() {
                return Err(StorageError::InvalidDelta(format!(
                    "label '{}' already tags a tuple",
                    ins.label
                )));
            }
            if db.is_retired(id) {
                return Err(StorageError::InvalidDelta(format!(
                    "label '{}' tagged a deleted tuple and may not be reused",
                    ins.label
                )));
            }
        }
    }
    Ok(())
}

impl DurableDatabase {
    /// Creates a fresh durable database at `base` from `db`, overwriting
    /// any previous one: writes the initial checkpoint and an empty WAL.
    pub fn create(
        vfs: SharedVfs,
        base: &str,
        db: Database,
        opts: DurableOptions,
    ) -> Result<Self, StorageError> {
        {
            let mut v = lock(&vfs)?;
            for f in [
                header_file(base),
                snap_file(base, 0),
                snap_file(base, 1),
                wal_file(base),
            ] {
                v.delete(&f)?;
            }
        }
        let mut this = Self {
            vfs,
            db,
            opts,
            header_pager: Pager::new(header_file(base), 1),
            snap_pagers: [
                Pager::new(snap_file(base, 0), opts.cache_pages),
                Pager::new(snap_file(base, 1), opts.cache_pages),
            ],
            wal: Wal::create(wal_file(base)),
            active_snap: 1, // first checkpoint flips to 0
            epoch: 0,
            applied_txns: 0,
            wal_txns: 0,
            poisoned: None,
        };
        this.checkpoint()?;
        Ok(this)
    }

    /// Opens the durable database at `base`, recovering to the last
    /// committed delta: active snapshot + committed WAL suffix.
    pub fn open(
        vfs: SharedVfs,
        base: &str,
        opts: DurableOptions,
    ) -> Result<(Self, RecoveryInfo), StorageError> {
        let mut header_pager = Pager::new(header_file(base), 1);
        let mut snap_pagers = [
            Pager::new(snap_file(base, 0), opts.cache_pages),
            Pager::new(snap_file(base, 1), opts.cache_pages),
        ];
        let (header, db, wal, replayed);
        {
            let mut v = lock(&vfs)?;
            if !v.exists(&header_file(base)) {
                return Err(StorageError::NotFound(header_file(base)));
            }
            header = decode_header(&header_pager.read_page(&mut *v, 0)?)?;
            // Reassemble the active snapshot from its pages. The header
            // pins both the page count and the exact byte length, so a
            // truncated or padded snapshot file cannot slip through.
            let pager = &mut snap_pagers[usize::from(header.active_snap)];
            let mut bytes = Vec::with_capacity(header.snap_bytes as usize);
            for page in 0..header.snap_pages {
                bytes.extend_from_slice(&pager.read_page(&mut *v, page)?);
            }
            if bytes.len() as u64 != header.snap_bytes {
                return Err(StorageError::Corrupt(format!(
                    "snapshot reassembled to {} bytes, header pins {}",
                    bytes.len(),
                    header.snap_bytes
                )));
            }
            let mut recovered = decode_database(&bytes)?;
            // Replay the committed WAL suffix above the snapshot
            // watermark, in order, contiguously.
            let (w, txns) = Wal::open_replay(&mut *v, wal_file(base))?;
            let mut applied = header.applied_txns;
            let mut count = 0u64;
            for (txn, payload) in txns {
                if txn <= header.applied_txns {
                    continue; // pre-checkpoint residue (crash before WAL truncate)
                }
                if txn != applied + 1 {
                    return Err(StorageError::Corrupt(format!(
                        "WAL transaction gap: expected {}, found {txn}",
                        applied + 1
                    )));
                }
                let delta = decode_delta(&payload)?;
                validate_delta(&recovered, &delta).map_err(|e| {
                    StorageError::Corrupt(format!(
                        "committed WAL transaction {txn} unreplayable: {e}"
                    ))
                })?;
                recovered.apply_delta(&delta);
                applied += 1;
                count += 1;
            }
            db = recovered;
            wal = w;
            replayed = count;
        }
        let applied_txns = header.applied_txns + replayed;
        let info = RecoveryInfo {
            snapshot_txns: header.applied_txns,
            replayed_txns: replayed,
            committed_txns: applied_txns,
        };
        Ok((
            Self {
                vfs,
                db,
                opts,
                header_pager,
                snap_pagers,
                wal,
                active_snap: header.active_snap,
                epoch: header.epoch,
                applied_txns,
                wal_txns: replayed,
                poisoned: None,
            },
            info,
        ))
    }

    /// The live database (read access).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Consumes the handle, returning the in-memory database.
    pub fn into_database(self) -> Database {
        self.db
    }

    /// Committed transactions so far.
    pub fn committed_txns(&self) -> u64 {
        self.applied_txns
    }

    /// Whether a prior error poisoned this handle.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// The error that poisoned this handle, if any — what a service
    /// health endpoint reports while serving reads in degraded mode.
    pub fn poison_cause(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Builds the in-memory indexes (see [`Database::build_indexes`]).
    /// Like all in-memory state they become durable at the next
    /// checkpoint.
    pub fn build_indexes(&mut self) {
        self.db.build_indexes();
    }

    /// Aggregated pager counters (header + both snapshot files).
    pub fn pager_stats(&self) -> PagerStats {
        let mut total = PagerStats::default();
        for p in [
            &self.header_pager,
            &self.snap_pagers[0],
            &self.snap_pagers[1],
        ] {
            let s = p.stats();
            total.pages_read += s.pages_read;
            total.pages_written += s.pages_written;
            total.cache_hits += s.cache_hits;
            total.cache_misses += s.cache_misses;
            total.evictions += s.evictions;
        }
        total
    }

    /// WAL counters.
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// Applies `delta` as one WAL transaction: validate, log, sync,
    /// commit-mark, sync, then apply in memory (and auto-checkpoint if
    /// configured). On `Ok` the delta is durable; on `Err` nothing of it
    /// is, and I/O errors poison the handle.
    pub fn apply_delta(&mut self, delta: &Delta) -> Result<AppliedDelta, StorageError> {
        if let Some(cause) = &self.poisoned {
            return Err(StorageError::Poisoned(cause.clone()));
        }
        // Validation failures reject cleanly without poisoning: durable
        // state is untouched and the handle remains usable.
        validate_delta(&self.db, delta)?;
        let txn = self.applied_txns + 1;
        let payload = encode_delta(delta);
        let logged = match lock(&self.vfs) {
            Ok(mut v) => self.wal.append_txn(&mut *v, txn, &payload),
            Err(e) => Err(e),
        };
        if let Err(e) = logged {
            return Err(self.poison(e));
        }
        // Durable. The in-memory apply cannot fail (the delta was
        // validated against exactly this state).
        let applied = self.db.apply_delta(delta);
        self.applied_txns = txn;
        self.wal_txns += 1;
        if self.opts.checkpoint_every > 0 && self.wal_txns >= self.opts.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(applied)
    }

    /// Writes a full snapshot to the inactive file, flips the header, and
    /// truncates the WAL (see the module docs for the crash analysis).
    pub fn checkpoint(&mut self) -> Result<(), StorageError> {
        if let Some(cause) = &self.poisoned {
            return Err(StorageError::Poisoned(cause.clone()));
        }
        let target = 1 - self.active_snap;
        if let Err(e) = self.checkpoint_inner(target) {
            return Err(self.poison(e));
        }
        self.active_snap = target;
        self.epoch += 1;
        self.wal_txns = 0;
        Ok(())
    }

    fn checkpoint_inner(&mut self, target: u8) -> Result<(), StorageError> {
        let bytes = encode_database(&self.db);
        let pages: Vec<&[u8]> = bytes.chunks(PAGE_PAYLOAD).collect();
        let snap_name = self.snap_pagers[usize::from(target)].file().to_owned();
        let header_name = self.header_pager.file().to_owned();
        let mut v = lock(&self.vfs)?;
        let pager = &mut self.snap_pagers[usize::from(target)];
        for (i, chunk) in pages.iter().enumerate() {
            pager.write_page(&mut *v, i as u32, chunk)?;
        }
        // Drop stale pages beyond the new snapshot so the file length
        // matches what the header will claim.
        v.truncate(&snap_name, pages.len() as u64 * super::PAGE_SIZE as u64)?;
        v.sync(&snap_name)?;
        // The atomic commit point: one header page write + sync.
        let header = Header {
            active_snap: target,
            epoch: self.epoch + 1,
            applied_txns: self.applied_txns,
            snap_pages: pages.len() as u32,
            snap_bytes: bytes.len() as u64,
        };
        self.header_pager
            .write_page(&mut *v, 0, &encode_header(&header))?;
        v.sync(&header_name)?;
        // Epilogue: the WAL is now fully embodied by the snapshot.
        self.wal.reset(&mut *v)?;
        Ok(())
    }

    fn poison(&mut self, e: StorageError) -> StorageError {
        if !matches!(e, StorageError::InvalidDelta(_)) {
            self.poisoned = Some(e.to_string());
        }
        e
    }
}

fn lock(
    vfs: &SharedVfs,
) -> Result<std::sync::MutexGuard<'_, dyn super::Vfs + Send + 'static>, StorageError> {
    vfs.lock()
        .map_err(|_| StorageError::Io("VFS lock poisoned".into()))
}

#[cfg(test)]
mod tests {
    use super::super::{shared, MemVfs};
    use super::*;
    use crate::{Tuple, Value};

    fn seed_db() -> Database {
        let mut db = Database::new();
        let r = db.add_relation("R", &["a", "b"]);
        db.insert_str(r, "r1", &["1", "x"]);
        db.insert_str(r, "r2", &["2", "y"]);
        db.build_indexes();
        db
    }

    fn delta_ins(db: &Database, label: &str, a: &str, b: &str) -> Delta {
        let r = db.schema().relation_id("R").unwrap();
        let mut d = Delta::new();
        d.insert(r, label, Tuple::parse(&[a, b]));
        d
    }

    #[test]
    fn create_apply_reopen_recovers_exactly() {
        let vfs = shared(MemVfs::new());
        let mut ddb =
            DurableDatabase::create(vfs.clone(), "t", seed_db(), DurableOptions::default())
                .unwrap();
        ddb.apply_delta(&delta_ins(ddb.db(), "r3", "3", "z"))
            .unwrap();
        let mut d = Delta::new();
        d.delete(ddb.db().annotations().get("r1").unwrap());
        ddb.apply_delta(&d).unwrap();
        assert_eq!(ddb.committed_txns(), 2);
        let live = ddb.db().clone();
        drop(ddb);
        let (re, info) = DurableDatabase::open(vfs, "t", DurableOptions::default()).unwrap();
        assert_eq!(
            info,
            RecoveryInfo {
                snapshot_txns: 0,
                replayed_txns: 2,
                committed_txns: 2
            }
        );
        assert!(re.db().same_state(&live));
    }

    #[test]
    fn checkpoint_moves_the_watermark_and_empties_the_wal() {
        let vfs = shared(MemVfs::new());
        let mut ddb =
            DurableDatabase::create(vfs.clone(), "t", seed_db(), DurableOptions::default())
                .unwrap();
        ddb.apply_delta(&delta_ins(ddb.db(), "r3", "3", "z"))
            .unwrap();
        ddb.checkpoint().unwrap();
        ddb.apply_delta(&delta_ins(ddb.db(), "r4", "4", "w"))
            .unwrap();
        let live = ddb.db().clone();
        drop(ddb);
        let (re, info) = DurableDatabase::open(vfs, "t", DurableOptions::default()).unwrap();
        assert_eq!(
            info,
            RecoveryInfo {
                snapshot_txns: 1,
                replayed_txns: 1,
                committed_txns: 2
            }
        );
        assert!(re.db().same_state(&live));
    }

    #[test]
    fn auto_checkpoint_triggers_on_threshold() {
        let vfs = shared(MemVfs::new());
        let opts = DurableOptions {
            checkpoint_every: 2,
            ..DurableOptions::default()
        };
        let mut ddb = DurableDatabase::create(vfs.clone(), "t", seed_db(), opts).unwrap();
        ddb.apply_delta(&delta_ins(ddb.db(), "r3", "3", "z"))
            .unwrap();
        ddb.apply_delta(&delta_ins(ddb.db(), "r4", "4", "w"))
            .unwrap();
        drop(ddb);
        let (_, info) = DurableDatabase::open(vfs, "t", opts).unwrap();
        assert_eq!(info.snapshot_txns, 2, "second delta checkpointed");
        assert_eq!(info.replayed_txns, 0);
    }

    #[test]
    fn invalid_deltas_reject_cleanly_before_the_wal() {
        let vfs = shared(MemVfs::new());
        let mut ddb =
            DurableDatabase::create(vfs.clone(), "t", seed_db(), DurableOptions::default())
                .unwrap();
        // Live label reuse.
        assert!(matches!(
            ddb.apply_delta(&delta_ins(ddb.db(), "r1", "9", "q")),
            Err(StorageError::InvalidDelta(_))
        ));
        // Retired label reuse.
        let mut d = Delta::new();
        d.delete(ddb.db().annotations().get("r2").unwrap());
        ddb.apply_delta(&d).unwrap();
        assert!(matches!(
            ddb.apply_delta(&delta_ins(ddb.db(), "r2", "9", "q")),
            Err(StorageError::InvalidDelta(_))
        ));
        // Arity mismatch.
        let r = ddb.db().schema().relation_id("R").unwrap();
        let mut d = Delta::new();
        d.insert(r, "bad", Tuple::new(vec![Value::int(1)]));
        assert!(matches!(
            ddb.apply_delta(&d),
            Err(StorageError::InvalidDelta(_))
        ));
        // Duplicate label within one batch.
        let mut d = Delta::new();
        d.insert(r, "dup", Tuple::parse(&["1", "1"]));
        d.insert(r, "dup", Tuple::parse(&["2", "2"]));
        assert!(matches!(
            ddb.apply_delta(&d),
            Err(StorageError::InvalidDelta(_))
        ));
        assert!(!ddb.is_poisoned(), "validation failures must not poison");
        // The handle still works and the log replays cleanly.
        ddb.apply_delta(&delta_ins(ddb.db(), "ok", "5", "v"))
            .unwrap();
        let live = ddb.db().clone();
        drop(ddb);
        let (re, _) = DurableDatabase::open(vfs, "t", DurableOptions::default()).unwrap();
        assert!(re.db().same_state(&live));
    }

    #[test]
    fn opening_nothing_is_not_found() {
        let vfs = shared(MemVfs::new());
        assert!(matches!(
            DurableDatabase::open(vfs, "absent", DurableOptions::default()),
            Err(StorageError::NotFound(_))
        ));
    }

    #[test]
    fn create_overwrites_previous_database() {
        let vfs = shared(MemVfs::new());
        let mut ddb =
            DurableDatabase::create(vfs.clone(), "t", seed_db(), DurableOptions::default())
                .unwrap();
        ddb.apply_delta(&delta_ins(ddb.db(), "r3", "3", "z"))
            .unwrap();
        drop(ddb);
        let fresh =
            DurableDatabase::create(vfs.clone(), "t", Database::new(), DurableOptions::default())
                .unwrap();
        let live = fresh.db().clone();
        drop(fresh);
        let (re, info) = DurableDatabase::open(vfs, "t", DurableOptions::default()).unwrap();
        assert_eq!(info.committed_txns, 0);
        assert!(re.db().same_state(&live));
        assert!(re.db().is_empty());
    }
}
