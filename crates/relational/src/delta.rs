//! Incremental view maintenance for provenance-annotated CQ results.
//!
//! A [`Delta`] is a batch of tuple insertions and deletions against a
//! [`Database`]. Instead of re-evaluating a query from scratch after every
//! update, the delta rules of semi-naive evaluation recompute only the
//! derivations that *touch* an affected row: for each body atom, join the
//! delta rows against the rest of the query. The result is a
//! [`KRelationDelta`] — provenance polynomials to add and to retract — whose
//! merge into a cached [`KRelation`] is bit-for-bit equal to full
//! re-evaluation on the updated database.
//!
//! The decomposition is exact in `N[X]`, not just set-semantics: a
//! derivation whose image contains `k ≥ 1` affected rows is produced by
//! exactly one pivot position (the first affected atom), so coefficients —
//! and therefore polynomials — match full re-evaluation term for term.
//!
//! # Protocol
//!
//! Retractions are measured on the database *before* the delta applies,
//! additions *after*; [`apply_delta_with_queries`] drives the full cycle:
//!
//! ```
//! use provabs_relational::{
//!     apply_delta_with_queries, eval_cq, parse_cq, Database, Delta, Tuple,
//! };
//!
//! let mut db = Database::new();
//! let r = db.add_relation("R", &["a", "b"]);
//! let s = db.add_relation("S", &["b"]);
//! db.insert_str(r, "r1", &["1", "10"]);
//! db.insert_str(s, "s1", &["10"]);
//! db.build_indexes();
//! let q = parse_cq("Q(x) :- R(x, y), S(y)", db.schema()).unwrap();
//! let mut cached = eval_cq(&db, &q);
//!
//! let mut delta = Delta::new();
//! delta.insert(s, "s2", Tuple::parse(&["10"]));
//! delta.delete(db.annotations().get("r1").unwrap());
//! let out = apply_delta_with_queries(&mut db, &delta, std::slice::from_ref(&q));
//!
//! assert!(out.deltas[0].merge_into(&mut cached));
//! assert_eq!(cached, eval_cq(&db, &q)); // bit-for-bit equal to re-eval
//! ```

use crate::eval::{eval_cq_restricted, EvalWork, Restriction};
use crate::exec::Execution;
use crate::interned::{IKRelation, IKRelationDelta};
use crate::plan::PlanMode;
use crate::{Cq, Database, KRelation, RelId, Tuple, Ucq};
use provabs_semiring::{AnnotId, ProvStore};
use std::collections::HashSet;

/// One tuple insertion of a [`Delta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaInsert {
    /// Target relation.
    pub rel: RelId,
    /// Annotation label of the new tuple (must be globally fresh — abstract
    /// tagging requires distinct annotations).
    pub label: String,
    /// The tuple values.
    pub tuple: Tuple,
}

/// A batched update: insertions plus deletions (by annotation — the stable
/// name of a tuple in an abstractly-tagged K-database).
///
/// Deletions are applied before insertions, so a delta may not delete a
/// tuple it inserts itself.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    /// Tuples to insert.
    pub inserts: Vec<DeltaInsert>,
    /// Annotations whose tuples are deleted (unknown annotations are
    /// skipped).
    pub deletes: Vec<AnnotId>,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues an insertion.
    pub fn insert(&mut self, rel: RelId, label: impl Into<String>, tuple: Tuple) {
        self.inserts.push(DeltaInsert {
            rel,
            label: label.into(),
            tuple,
        });
    }

    /// Queues a deletion.
    pub fn delete(&mut self, annot: AnnotId) {
        self.deletes.push(annot);
    }

    /// Total number of queued changes.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Whether no changes are queued.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// What [`Database::apply_delta`] actually changed.
#[derive(Debug, Clone, Default)]
pub struct AppliedDelta {
    /// Annotations of the inserted tuples, in insertion order.
    pub inserted: Vec<AnnotId>,
    /// Annotations whose tuples were removed (requested deletions that
    /// tagged nothing are omitted).
    pub deleted: Vec<AnnotId>,
    /// Relations the delta actually changed (sorted, deduplicated) — the
    /// invalidation set for statistics-keyed caches like the
    /// [`PlanCache`](crate::PlanCache).
    pub rels: Vec<crate::RelId>,
}

impl AppliedDelta {
    /// Every annotation the delta touched — the invalidation set for
    /// provenance-aware caches.
    pub fn touched(&self) -> impl Iterator<Item = AnnotId> + '_ {
        self.deleted.iter().chain(self.inserted.iter()).copied()
    }
}

impl Database {
    /// Applies `delta`: deletions first (unknown annotations skipped), then
    /// insertions. Indexes are maintained incrementally throughout — an
    /// indexed database stays indexed. All maintenance happens at
    /// [`ValueId`](crate::ValueId) granularity on the columnar storage:
    /// inserts dictionary-encode the new row and append it to every
    /// posting list, deletes swap-remove each column and rename the moved
    /// row's postings — no owned `Value` is hashed either way.
    ///
    /// # Panics
    /// Panics if an insertion reuses a live annotation label or mismatches
    /// the schema arity (as [`Database::insert`] does).
    pub fn apply_delta(&mut self, delta: &Delta) -> AppliedDelta {
        let mut applied = AppliedDelta::default();
        for &a in &delta.deletes {
            if let Some((rel, _)) = self.delete(a) {
                applied.deleted.push(a);
                applied.rels.push(rel);
            }
        }
        for ins in &delta.inserts {
            applied
                .inserted
                .push(self.insert(ins.rel, &ins.label, ins.tuple.clone()));
            applied.rels.push(ins.rel);
        }
        applied.rels.sort_unstable();
        applied.rels.dedup();
        applied
    }
}

/// The change a delta induces on a query's [`KRelation`]: provenance to add
/// and provenance to retract. Both sides are plain K-relations, so the
/// delta composes (retractions and additions each sum across batches).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KRelationDelta {
    /// Provenance gained (derivations through inserted tuples).
    pub added: KRelation,
    /// Provenance lost (derivations through deleted tuples).
    pub removed: KRelation,
}

impl KRelationDelta {
    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Merges into a cached K-relation: retractions subtracted exactly,
    /// additions summed, zeroed outputs dropped. Returns `false` — with
    /// `base` left in an unspecified but valid state — when a retraction is
    /// not contained in `base`, i.e. the cache does not correspond to the
    /// pre-delta database.
    pub fn merge_into(&self, base: &mut KRelation) -> bool {
        for (t, p) in self.removed.iter() {
            if !base.subtract(t, p) {
                return false;
            }
        }
        for (t, p) in self.added.iter() {
            base.add(t.clone(), p.clone());
        }
        true
    }
}

/// Sums the restricted evaluations over every pivot position whose relation
/// holds affected rows. The parts *move* into the sum (interned ids, no
/// polynomial clones).
pub(crate) fn eval_delta_side(
    db: &Database,
    q: &Cq,
    set: &HashSet<AnnotId>,
    store: &mut ProvStore,
    mode: PlanMode,
    exec: Execution,
) -> (IKRelation, EvalWork) {
    let mut out = IKRelation::default();
    let mut work = EvalWork::default();
    if set.is_empty() || q.body.is_empty() {
        return (out, work);
    }
    // Rows of affected tuples, grouped per relation (sorted for
    // deterministic traversal).
    let mut rows_by_rel: std::collections::HashMap<RelId, Vec<usize>> =
        std::collections::HashMap::new();
    for &a in set {
        if let Some(loc) = db.locate(a) {
            rows_by_rel.entry(loc.rel).or_default().push(loc.row);
        }
    }
    for rows in rows_by_rel.values_mut() {
        rows.sort_unstable();
    }
    for pivot in 0..q.body.len() {
        let Some(pivot_rows) = rows_by_rel.get(&q.body[pivot].rel) else {
            continue;
        };
        let (part, w) = eval_cq_restricted(
            db,
            q,
            Restriction {
                pivot,
                set,
                pivot_rows,
            },
            store,
            mode,
            exec,
        );
        work.absorb(&w);
        out.absorb(store, part);
    }
    (out, work)
}

/// The provenance retracted by deleting the tuples tagged by `deletes`.
/// Must be evaluated on the database **before** the delta applies.
pub fn eval_cq_retractions(
    db: &Database,
    q: &Cq,
    deletes: &HashSet<AnnotId>,
) -> (KRelation, EvalWork) {
    let mut store = ProvStore::new();
    let (out, work) = eval_delta_side(
        db,
        q,
        deletes,
        &mut store,
        PlanMode::default(),
        Execution::Scalar,
    );
    (out.to_krelation(&store), work)
}

/// The provenance added by the tuples tagged by `inserts`. Must be
/// evaluated on the database **after** the delta applies.
pub fn eval_cq_additions(
    db: &Database,
    q: &Cq,
    inserts: &HashSet<AnnotId>,
) -> (KRelation, EvalWork) {
    let mut store = ProvStore::new();
    let (out, work) = eval_delta_side(
        db,
        q,
        inserts,
        &mut store,
        PlanMode::default(),
        Execution::Scalar,
    );
    (out.to_krelation(&store), work)
}

/// [`eval_cq_retractions`] trafficking in interned ids against a persistent
/// store (the maintained-cache fast path).
pub fn eval_cq_retractions_interned(
    db: &Database,
    q: &Cq,
    deletes: &HashSet<AnnotId>,
    store: &mut ProvStore,
) -> (IKRelation, EvalWork) {
    eval_delta_side(
        db,
        q,
        deletes,
        store,
        PlanMode::default(),
        Execution::Scalar,
    )
}

/// [`eval_cq_retractions_interned`] under an explicit [`PlanMode`] (each
/// pivot pass plans the body with the pivot leading).
#[deprecated(note = "use Evaluator::new(db).plan(mode).interned(store).retractions_cq(q, deletes)")]
pub fn eval_cq_retractions_interned_mode(
    db: &Database,
    q: &Cq,
    deletes: &HashSet<AnnotId>,
    store: &mut ProvStore,
    mode: PlanMode,
) -> (IKRelation, EvalWork) {
    eval_delta_side(db, q, deletes, store, mode, Execution::Scalar)
}

/// [`eval_cq_additions`] trafficking in interned ids against a persistent
/// store (the maintained-cache fast path).
pub fn eval_cq_additions_interned(
    db: &Database,
    q: &Cq,
    inserts: &HashSet<AnnotId>,
    store: &mut ProvStore,
) -> (IKRelation, EvalWork) {
    eval_delta_side(
        db,
        q,
        inserts,
        store,
        PlanMode::default(),
        Execution::Scalar,
    )
}

/// [`eval_cq_additions_interned`] under an explicit [`PlanMode`].
#[deprecated(note = "use Evaluator::new(db).plan(mode).interned(store).additions_cq(q, inserts)")]
pub fn eval_cq_additions_interned_mode(
    db: &Database,
    q: &Cq,
    inserts: &HashSet<AnnotId>,
    store: &mut ProvStore,
    mode: PlanMode,
) -> (IKRelation, EvalWork) {
    eval_delta_side(db, q, inserts, store, mode, Execution::Scalar)
}

/// UCQ retractions: the sum of the disjuncts' retractions.
pub fn eval_ucq_retractions(
    db: &Database,
    u: &Ucq,
    deletes: &HashSet<AnnotId>,
) -> (KRelation, EvalWork) {
    let mut store = ProvStore::new();
    let (out, work) = sum_disjuncts(
        db,
        u,
        deletes,
        &mut store,
        PlanMode::default(),
        Execution::Scalar,
    );
    (out.to_krelation(&store), work)
}

/// [`eval_ucq_retractions`] under an explicit [`PlanMode`].
#[deprecated(note = "use Evaluator::new(db).plan(mode).retractions_ucq(u, deletes)")]
pub fn eval_ucq_retractions_mode(
    db: &Database,
    u: &Ucq,
    deletes: &HashSet<AnnotId>,
    mode: PlanMode,
) -> (KRelation, EvalWork) {
    let mut store = ProvStore::new();
    let (out, work) = sum_disjuncts(db, u, deletes, &mut store, mode, Execution::Scalar);
    (out.to_krelation(&store), work)
}

/// UCQ additions: the sum of the disjuncts' additions.
pub fn eval_ucq_additions(
    db: &Database,
    u: &Ucq,
    inserts: &HashSet<AnnotId>,
) -> (KRelation, EvalWork) {
    let mut store = ProvStore::new();
    let (out, work) = sum_disjuncts(
        db,
        u,
        inserts,
        &mut store,
        PlanMode::default(),
        Execution::Scalar,
    );
    (out.to_krelation(&store), work)
}

/// [`eval_ucq_additions`] under an explicit [`PlanMode`].
#[deprecated(note = "use Evaluator::new(db).plan(mode).additions_ucq(u, inserts)")]
pub fn eval_ucq_additions_mode(
    db: &Database,
    u: &Ucq,
    inserts: &HashSet<AnnotId>,
    mode: PlanMode,
) -> (KRelation, EvalWork) {
    let mut store = ProvStore::new();
    let (out, work) = sum_disjuncts(db, u, inserts, &mut store, mode, Execution::Scalar);
    (out.to_krelation(&store), work)
}

pub(crate) fn sum_disjuncts(
    db: &Database,
    u: &Ucq,
    set: &HashSet<AnnotId>,
    store: &mut ProvStore,
    mode: PlanMode,
    exec: Execution,
) -> (IKRelation, EvalWork) {
    let mut out = IKRelation::default();
    let mut work = EvalWork::default();
    for d in &u.disjuncts {
        let (part, w) = eval_delta_side(db, d, set, store, mode, exec);
        work.absorb(&w);
        out.absorb(store, part);
    }
    (out, work)
}

/// The full incremental-maintenance cycle of one batch against a set of
/// cached query results.
#[derive(Debug)]
pub struct DeltaEvalOutcome {
    /// Per input query (same order): the change to merge into its cached
    /// K-relation.
    pub deltas: Vec<KRelationDelta>,
    /// What the database actually changed (invalidation set).
    pub applied: AppliedDelta,
    /// Evaluation work spent on all retraction + addition passes combined —
    /// compare against the [`EvalWork`](crate::EvalWork) of re-evaluating
    /// every query to quantify the savings.
    pub work: EvalWork,
}

/// Computes retractions for every query, applies the delta to `db`, then
/// computes additions — returning per-query [`KRelationDelta`]s whose merge
/// into pre-delta cached results reproduces full re-evaluation exactly.
///
/// A thin owned boundary over [`apply_delta_with_queries_interned`]: callers
/// maintaining caches across many batches should hold a persistent
/// [`ProvStore`] and traffic in [`IKRelationDelta`]s instead, so repeated
/// derivations and merges stay O(1) arena hits.
pub fn apply_delta_with_queries(
    db: &mut Database,
    delta: &Delta,
    queries: &[Cq],
) -> DeltaEvalOutcome {
    apply_delta_owned_impl(db, delta, queries, PlanMode::default(), Execution::Scalar)
}

/// Owned-boundary implementation behind [`apply_delta_with_queries`], its
/// deprecated `_mode` shim, and [`Updater`](crate::Updater).
pub(crate) fn apply_delta_owned_impl(
    db: &mut Database,
    delta: &Delta,
    queries: &[Cq],
    mode: PlanMode,
    exec: Execution,
) -> DeltaEvalOutcome {
    let mut store = ProvStore::new();
    let out = apply_delta_impl(db, delta, queries, &mut store, mode, exec);
    DeltaEvalOutcome {
        deltas: out
            .deltas
            .iter()
            .map(|d| d.to_krelation_delta(&store))
            .collect(),
        applied: out.applied,
        work: out.work,
    }
}

/// [`apply_delta_with_queries`] under an explicit [`PlanMode`] — every
/// retraction and addition pass plans its pivot-restricted body with `mode`
/// (harnesses replaying checked-in counter baselines pass
/// [`PlanMode::Greedy`]).
#[deprecated(note = "use Updater::new().plan(mode).apply(db, delta, queries)")]
pub fn apply_delta_with_queries_mode(
    db: &mut Database,
    delta: &Delta,
    queries: &[Cq],
    mode: PlanMode,
) -> DeltaEvalOutcome {
    apply_delta_owned_impl(db, delta, queries, mode, Execution::Scalar)
}

/// The interned full incremental-maintenance cycle (see
/// [`DeltaEvalOutcome`] for the owned twin).
#[derive(Debug)]
pub struct IDeltaEvalOutcome {
    /// Per input query (same order): the interned change to merge into its
    /// maintained [`IKRelation`].
    pub deltas: Vec<IKRelationDelta>,
    /// What the database actually changed (invalidation set).
    pub applied: AppliedDelta,
    /// Evaluation work spent on all retraction + addition passes combined.
    pub work: EvalWork,
}

/// [`apply_delta_with_queries`] trafficking in interned ids against a
/// caller-owned persistent [`ProvStore`].
pub fn apply_delta_with_queries_interned(
    db: &mut Database,
    delta: &Delta,
    queries: &[Cq],
    store: &mut ProvStore,
) -> IDeltaEvalOutcome {
    apply_delta_impl(
        db,
        delta,
        queries,
        store,
        PlanMode::default(),
        Execution::Scalar,
    )
}

/// [`apply_delta_with_queries_interned`] under an explicit [`PlanMode`].
#[deprecated(note = "use Updater::new().plan(mode).apply_interned(db, delta, queries, store)")]
pub fn apply_delta_with_queries_interned_mode(
    db: &mut Database,
    delta: &Delta,
    queries: &[Cq],
    store: &mut ProvStore,
    mode: PlanMode,
) -> IDeltaEvalOutcome {
    apply_delta_impl(db, delta, queries, store, mode, Execution::Scalar)
}

/// The interned full-cycle implementation every shim and
/// [`Updater`](crate::Updater) routes through.
pub(crate) fn apply_delta_impl(
    db: &mut Database,
    delta: &Delta,
    queries: &[Cq],
    store: &mut ProvStore,
    mode: PlanMode,
    exec: Execution,
) -> IDeltaEvalOutcome {
    let deletes: HashSet<AnnotId> = delta
        .deletes
        .iter()
        .copied()
        .filter(|&a| db.locate(a).is_some())
        .collect();
    let mut work = EvalWork::default();
    let mut removed_parts = Vec::with_capacity(queries.len());
    for q in queries {
        let (removed, w) = eval_delta_side(db, q, &deletes, store, mode, exec);
        work.absorb(&w);
        removed_parts.push(removed);
    }
    let applied = db.apply_delta(delta);
    let inserts: HashSet<AnnotId> = applied.inserted.iter().copied().collect();
    let deltas = queries
        .iter()
        .zip(removed_parts)
        .map(|(q, removed)| {
            let (added, w) = eval_delta_side(db, q, &inserts, store, mode, exec);
            work.absorb(&w);
            IKRelationDelta { added, removed }
        })
        .collect();
    IDeltaEvalOutcome {
        deltas,
        applied,
        work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eval_cq, eval_cq_counted, eval_ucq, parse_cq, parse_ucq, EvalLimits};

    fn triangle_db() -> (Database, RelId, RelId) {
        let mut db = Database::new();
        let r = db.add_relation("R", &["a", "b"]);
        let s = db.add_relation("S", &["b", "c"]);
        db.insert_str(r, "r1", &["1", "10"]);
        db.insert_str(r, "r2", &["2", "10"]);
        db.insert_str(r, "r3", &["1", "20"]);
        db.insert_str(s, "s1", &["10", "100"]);
        db.insert_str(s, "s2", &["20", "100"]);
        db.insert_str(s, "s3", &["10", "200"]);
        db.build_indexes();
        (db, r, s)
    }

    fn assert_delta_matches_reeval(db: &mut Database, delta: &Delta, texts: &[&str]) {
        let queries: Vec<Cq> = texts
            .iter()
            .map(|t| parse_cq(t, db.schema()).unwrap())
            .collect();
        let mut cached: Vec<KRelation> = queries.iter().map(|q| eval_cq(db, q)).collect();
        let out = apply_delta_with_queries(db, delta, &queries);
        for ((q, cache), d) in queries.iter().zip(&mut cached).zip(&out.deltas) {
            assert!(d.merge_into(cache), "retraction underflow");
            assert_eq!(*cache, eval_cq(db, q), "delta merge != re-eval for {q:?}");
        }
    }

    #[test]
    fn insert_only_delta_matches_reeval() {
        let (mut db, r, s) = triangle_db();
        let mut delta = Delta::new();
        delta.insert(r, "r4", Tuple::parse(&["3", "20"]));
        delta.insert(s, "s4", Tuple::parse(&["20", "300"]));
        assert_delta_matches_reeval(
            &mut db,
            &delta,
            &["Q(a, c) :- R(a, b), S(b, c)", "Q(a) :- R(a, b)"],
        );
    }

    #[test]
    fn delete_only_delta_matches_reeval() {
        let (mut db, _, _) = triangle_db();
        let mut delta = Delta::new();
        delta.delete(db.annotations().get("r1").unwrap());
        delta.delete(db.annotations().get("s3").unwrap());
        assert_delta_matches_reeval(
            &mut db,
            &delta,
            &["Q(a, c) :- R(a, b), S(b, c)", "Q(b) :- S(b, c)"],
        );
    }

    #[test]
    fn mixed_delta_matches_reeval_including_self_join() {
        let (mut db, r, s) = triangle_db();
        let mut delta = Delta::new();
        delta.delete(db.annotations().get("r2").unwrap());
        delta.insert(r, "r4", Tuple::parse(&["10", "10"]));
        delta.insert(s, "s4", Tuple::parse(&["10", "10"]));
        assert_delta_matches_reeval(
            &mut db,
            &delta,
            &[
                // Self-join: the delta decomposition must count mixed
                // old/new images exactly once per derivation.
                "Q(a, c) :- R(a, b), R(b, c)",
                "Q(a) :- R(a, a)",
                "Q(a, c) :- R(a, b), S(b, c)",
            ],
        );
    }

    #[test]
    fn repeated_batches_keep_caches_exact() {
        let (mut db, r, s) = triangle_db();
        let q = parse_cq("Q(a, c) :- R(a, b), S(b, c)", db.schema()).unwrap();
        let mut cached = eval_cq(&db, &q);
        for step in 0..6 {
            let mut delta = Delta::new();
            delta.insert(
                r,
                format!("ri{step}"),
                Tuple::parse(&[&step.to_string(), "10"]),
            );
            if step % 2 == 0 {
                delta.insert(
                    s,
                    format!("si{step}"),
                    Tuple::parse(&["10", &step.to_string()]),
                );
            }
            if step >= 2 {
                // Delete a tuple inserted two steps ago.
                delta.delete(db.annotations().get(&format!("ri{}", step - 2)).unwrap());
            }
            let out = apply_delta_with_queries(&mut db, &delta, std::slice::from_ref(&q));
            assert!(out.deltas[0].merge_into(&mut cached));
            assert_eq!(cached, eval_cq(&db, &q), "step {step}");
        }
    }

    #[test]
    fn delta_work_is_below_reeval_work() {
        // A delta touching one row of a large relation must explore far
        // fewer rows than re-evaluating the join from scratch.
        let mut db = Database::new();
        let r = db.add_relation("R", &["a", "b"]);
        let s = db.add_relation("S", &["b", "c"]);
        for i in 0..300 {
            db.insert_str(
                r,
                &format!("r{i}"),
                &[&i.to_string(), &(i % 20).to_string()],
            );
            db.insert_str(
                s,
                &format!("s{i}"),
                &[&(i % 20).to_string(), &i.to_string()],
            );
        }
        db.build_indexes();
        let q = parse_cq("Q(a, c) :- R(a, b), S(b, c)", db.schema()).unwrap();
        let mut cached = eval_cq(&db, &q);
        let mut delta = Delta::new();
        delta.insert(r, "rx", Tuple::parse(&["999", "3"]));
        delta.delete(db.annotations().get("s7").unwrap());
        let out = apply_delta_with_queries(&mut db, &delta, std::slice::from_ref(&q));
        assert!(out.deltas[0].merge_into(&mut cached));
        let (full, full_work) = eval_cq_counted(&db, &q, EvalLimits::default());
        assert_eq!(cached, full);
        assert!(
            out.work.rows_examined < full_work.rows_examined / 2,
            "delta {} vs full {}",
            out.work.rows_examined,
            full_work.rows_examined
        );
        assert!(out.work.derivations < full_work.derivations);
    }

    #[test]
    fn ucq_delta_matches_reeval() {
        let (mut db, r, _) = triangle_db();
        let u = parse_ucq("Q(a) :- R(a, b), S(b, c); Q(b) :- S(b, c)", db.schema()).unwrap();
        let mut cached = eval_ucq(&db, &u);
        let mut delta = Delta::new();
        delta.insert(r, "r4", Tuple::parse(&["5", "20"]));
        delta.delete(db.annotations().get("s1").unwrap());
        let deletes: HashSet<AnnotId> = delta
            .deletes
            .iter()
            .copied()
            .filter(|&a| db.locate(a).is_some())
            .collect();
        let (removed, _) = eval_ucq_retractions(&db, &u, &deletes);
        let applied = db.apply_delta(&delta);
        let inserts: HashSet<AnnotId> = applied.inserted.iter().copied().collect();
        let (added, _) = eval_ucq_additions(&db, &u, &inserts);
        let d = KRelationDelta { added, removed };
        assert!(d.merge_into(&mut cached));
        assert_eq!(cached, eval_ucq(&db, &u));
    }

    #[test]
    fn merge_rejects_foreign_retractions() {
        let (db, _, _) = triangle_db();
        let q = parse_cq("Q(a, c) :- R(a, b), S(b, c)", db.schema()).unwrap();
        let out = eval_cq(&db, &q);
        let d = KRelationDelta {
            added: KRelation::default(),
            removed: out.clone(),
        };
        let mut empty = KRelation::default();
        assert!(!d.merge_into(&mut empty));
        let mut full = out;
        assert!(d.merge_into(&mut full));
        assert!(full.is_empty());
    }

    #[test]
    fn applied_delta_reports_touched_annotations() {
        let (mut db, r, _) = triangle_db();
        let ghost = db.intern_label("ghost");
        let mut delta = Delta::new();
        delta.insert(r, "r4", Tuple::parse(&["9", "9"]));
        delta.delete(db.annotations().get("r1").unwrap());
        delta.delete(ghost); // tags nothing: skipped
        let applied = db.apply_delta(&delta);
        assert_eq!(applied.inserted.len(), 1);
        assert_eq!(applied.deleted.len(), 1);
        assert_eq!(applied.touched().count(), 2);
        assert!(db.is_indexed(), "apply_delta must keep indexes current");
    }

    #[test]
    fn empty_delta_is_a_noop() {
        let (mut db, _, _) = triangle_db();
        let q = parse_cq("Q(a, c) :- R(a, b), S(b, c)", db.schema()).unwrap();
        let before = eval_cq(&db, &q);
        let out = apply_delta_with_queries(&mut db, &Delta::new(), std::slice::from_ref(&q));
        assert!(out.deltas[0].is_empty());
        assert_eq!(out.work, EvalWork::default());
        assert_eq!(eval_cq(&db, &q), before);
    }
}
