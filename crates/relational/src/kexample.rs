//! K-examples (Def. 2.4): output examples together with their provenance.

use crate::{Database, KRelation, RelId, Tuple};
use provabs_semiring::{AnnotId, AnnotRegistry, Monomial};
use serde::{Deserialize, Serialize};

/// One row of a K-example: an output tuple and one provenance monomial.
///
/// Polynomials with several monomials are normalized into one row per
/// monomial (each monomial of `O(t)` must be matched by a consistent query
/// independently under the natural order of `N[X]`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KRow {
    /// The output tuple.
    pub output: Tuple,
    /// Its provenance monomial.
    pub monomial: Monomial,
}

/// A K-example: a subset of the (hidden) query's results with provenance.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KExample {
    /// The rows, in presentation order.
    pub rows: Vec<KRow>,
}

impl KExample {
    /// Builds a K-example from `(output, monomial)` pairs.
    pub fn new<I: IntoIterator<Item = (Tuple, Monomial)>>(rows: I) -> Self {
        KExample {
            rows: rows
                .into_iter()
                .map(|(output, monomial)| KRow { output, monomial })
                .collect(),
        }
    }

    /// Extracts the first `max_rows` rows from an evaluated K-relation,
    /// taking each output's first monomial (deterministic: outputs and
    /// monomials are ordered).
    pub fn from_krelation(out: &KRelation, max_rows: usize) -> Self {
        KExample {
            rows: out
                .iter()
                .filter_map(|(t, p)| {
                    p.terms().first().map(|(m, _)| KRow {
                        output: t.clone(),
                        monomial: m.clone(),
                    })
                })
                .take(max_rows)
                .collect(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the example has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// `Var(Ex)`: the distinct annotations appearing in the provenance.
    pub fn variables(&self) -> Vec<AnnotId> {
        let mut v: Vec<AnnotId> = self
            .rows
            .iter()
            .flat_map(|r| r.monomial.support())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Total number of annotation **occurrences** (degrees summed); the
    /// domain size of occurrence-level abstraction functions.
    pub fn num_occurrences(&self) -> usize {
        self.rows.iter().map(|r| r.monomial.degree() as usize).sum()
    }

    /// Resolves every occurrence against `db`, yielding [`ConcreteRow`]s.
    ///
    /// Returns `None` if some annotation does not tag a tuple of `db`.
    pub fn resolve(&self, db: &Database) -> Option<Vec<ConcreteRow>> {
        self.rows
            .iter()
            .map(|r| ConcreteRow::resolve(db, &r.output, &r.monomial.occurrences()))
            .collect()
    }

    /// Renders the K-example as the paper's two-column table.
    pub fn to_string_with(&self, reg: &AnnotRegistry) -> String {
        self.rows
            .iter()
            .map(|r| format!("{}  |  {}", r.output, r.monomial.to_string_with(reg)))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// A K-example row with every annotation occurrence resolved to its tuple.
///
/// This is the input shape of the reverse-engineering algorithms: the query
/// atoms must map bijectively onto `occurrences`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcreteRow {
    /// The output tuple.
    pub output: Tuple,
    /// The resolved occurrences: annotation, owning relation, tuple values.
    pub occurrences: Vec<(AnnotId, RelId, Tuple)>,
}

impl ConcreteRow {
    /// Resolves an occurrence list against `db` (the decode boundary:
    /// columnar rows materialize into owned tuples here).
    pub fn resolve(db: &Database, output: &Tuple, occs: &[AnnotId]) -> Option<ConcreteRow> {
        let occurrences = occs
            .iter()
            .map(|&a| db.tuple_by_annot(a).map(|(rel, t)| (a, rel, t)))
            .collect::<Option<Vec<_>>>()?;
        Some(ConcreteRow {
            output: output.clone(),
            occurrences,
        })
    }

    /// Whether the row's tuples form a connected graph under the
    /// shares-a-constant relation (§4.1, "Concretizations connectivity").
    pub fn is_connected(&self) -> bool {
        let n = self.occurrences.len();
        if n <= 1 {
            return true;
        }
        let mut reached = vec![false; n];
        let mut stack = vec![0usize];
        reached[0] = true;
        while let Some(i) = stack.pop() {
            for (j, r) in reached.iter_mut().enumerate() {
                if !*r
                    && self.occurrences[i]
                        .2
                        .shares_constant(&self.occurrences[j].2)
                {
                    *r = true;
                    stack.push(j);
                }
            }
        }
        reached.into_iter().all(|r| r)
    }
}

/// Whether the monomial given by `occs` is connected in `db` (tuples are
/// nodes; edges join tuples sharing a constant).
///
/// Annotations that do not tag tuples of `db` make the monomial disconnected
/// (they cannot join anything), unless it is a single occurrence.
///
/// Runs entirely on interned storage: each occurrence's row collapses to its
/// sorted distinct [`ValueId`](crate::ValueId) set once, and the edge test
/// is a merge probe of two sorted id lists — no tuple is decoded and no
/// `Value` is compared, unlike the owned
/// [`Tuple::shares_constant`] scan ([`ConcreteRow::is_connected`] keeps the
/// owned path for already-resolved rows; a regression test pins both to the
/// same connectivity graph).
pub fn monomial_connected(db: &Database, occs: &[AnnotId]) -> bool {
    if occs.len() <= 1 {
        return true;
    }
    let Some(locs) = occs
        .iter()
        .map(|&a| db.locate(a))
        .collect::<Option<Vec<_>>>()
    else {
        return false;
    };
    // Sorted distinct value-id sets per occurrence; edges via merge probe.
    let id_sets: Vec<Vec<crate::ValueId>> = locs.iter().map(|&loc| db.row_value_ids(loc)).collect();
    let share = |a: &[crate::ValueId], b: &[crate::ValueId]| -> bool {
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    };
    let n = id_sets.len();
    let mut reached = vec![false; n];
    let mut stack = vec![0usize];
    reached[0] = true;
    while let Some(i) = stack.pop() {
        for j in 0..n {
            if !reached[j] && share(&id_sets[i], &id_sets[j]) {
                reached[j] = true;
                stack.push(j);
            }
        }
    }
    reached.into_iter().all(|r| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_cq;
    use crate::parse_cq;

    fn figure1_db() -> Database {
        // Reuse the eval test fixture through a local copy.
        let mut db = Database::new();
        let interests = db.add_relation("Interests", &["pid", "interest", "source"]);
        let hobbies = db.add_relation("Hobbies", &["pid", "hobby", "source"]);
        let persons = db.add_relation("Person", &["pid", "name", "age"]);
        for (a, f) in [
            ("i1", ["1", "Music", "WikiLeaks"]),
            ("i2", ["2", "Music", "Facebook"]),
            ("i3", ["3", "Music", "LinkedIn"]),
            ("i4", ["1", "Parties", "WikiLeaks"]),
            ("i5", ["2", "Parties", "Facebook"]),
            ("i6", ["4", "Movies", "WikiLeaks"]),
        ] {
            db.insert_str(interests, a, &f);
        }
        for (a, f) in [
            ("h1", ["1", "Dance", "Facebook"]),
            ("h2", ["2", "Dance", "LinkedIn"]),
            ("h3", ["4", "Dance", "Facebook"]),
            ("h4", ["1", "Trips", "Facebook"]),
            ("h5", ["2", "Trips", "LinkedIn"]),
            ("h6", ["3", "Trips", "WikiLeaks"]),
        ] {
            db.insert_str(hobbies, a, &f);
        }
        db.insert_str(persons, "p1", &["1", "James T", "27"]);
        db.insert_str(persons, "p2", &["2", "Brenda P", "31"]);
        db.build_indexes();
        db
    }

    #[test]
    fn kexample_from_query_output() {
        let db = figure1_db();
        let q = parse_cq(
            "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', s1), Interests(id, 'Music', s2)",
            db.schema(),
        )
        .unwrap();
        let ex = KExample::from_krelation(&eval_cq(&db, &q), 10);
        assert_eq!(ex.len(), 2);
        assert_eq!(ex.variables().len(), 6);
        assert_eq!(ex.num_occurrences(), 6);
    }

    #[test]
    fn resolve_and_connectivity() {
        let db = figure1_db();
        let a = |n: &str| db.annotations().get(n).unwrap();
        // p1, h1, i1 all mention pid 1 — connected.
        assert!(monomial_connected(&db, &[a("p1"), a("h1"), a("i1")]));
        // p1 (pid 1, 'James T', 27) and h3 (pid 4, Dance, Facebook): no shared
        // constant, and i6 (pid 4) bridges only h3 — p1 stays disconnected.
        assert!(!monomial_connected(&db, &[a("p1"), a("h3")]));
        assert!(!monomial_connected(&db, &[a("p1"), a("h3"), a("i6")]));
        // h3 and i6 share pid 4 — connected.
        assert!(monomial_connected(&db, &[a("h3"), a("i6")]));
        // Single occurrences are trivially connected.
        assert!(monomial_connected(&db, &[a("p1")]));
    }

    #[test]
    fn interned_connectivity_graph_matches_value_scan() {
        // Regression for the ValueId fast path: for every pair and a sweep
        // of triples of annotations, the interned merge-probe connectivity
        // must agree with the owned value-scan connectivity
        // (ConcreteRow::is_connected over decoded tuples).
        let db = figure1_db();
        let annots: Vec<_> = [
            "i1", "i2", "i3", "i4", "i5", "i6", "h1", "h2", "h3", "h4", "h5", "h6", "p1", "p2",
        ]
        .iter()
        .map(|n| db.annotations().get(n).unwrap())
        .collect();
        let value_based = |occs: &[provabs_semiring::AnnotId]| -> bool {
            ConcreteRow::resolve(&db, &Tuple::new([]), occs)
                .map(|r| r.is_connected())
                .unwrap_or(false)
        };
        for (i, &a) in annots.iter().enumerate() {
            for &b in &annots[i + 1..] {
                assert_eq!(
                    monomial_connected(&db, &[a, b]),
                    value_based(&[a, b]),
                    "pair connectivity diverged"
                );
            }
        }
        for (i, &a) in annots.iter().enumerate() {
            for (j, &b) in annots.iter().enumerate().skip(i + 1) {
                for &c in &annots[j + 1..] {
                    assert_eq!(
                        monomial_connected(&db, &[a, b, c]),
                        value_based(&[a, b, c]),
                        "triple connectivity diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn resolve_fails_for_unknown_annotation() {
        let mut db = figure1_db();
        let ghost = db.intern_label("ghost");
        let ex = KExample::new([(Tuple::parse(&["1"]), Monomial::from_annots([ghost]))]);
        assert!(ex.resolve(&db).is_none());
    }

    #[test]
    fn render_matches_table_shape() {
        let db = figure1_db();
        let a = |n: &str| db.annotations().get(n).unwrap();
        let ex = KExample::new([(
            Tuple::parse(&["1"]),
            Monomial::from_annots([a("p1"), a("h1"), a("i1")]),
        )]);
        let s = ex.to_string_with(db.annotations());
        assert!(s.contains("(1)"));
        assert!(s.contains("i1*h1*p1") || s.contains("p1*h1*i1"));
    }
}
