//! Property tests for the dictionary-encoded columnar storage layer: the
//! single interned evaluation path must be bit-for-bit equal to the naive
//! owned-value reference evaluator (`provabs_relational::oracle`) — for
//! random databases over a mixed int/string domain, random CQs and UCQs,
//! and random insert/delete streams — and the incrementally-maintained
//! per-column indexes must always hold exactly what a decoded scan finds.
//!
//! Each proptest case draws one seed; everything else derives from it
//! through the deterministic `TestRng`, so failures reproduce exactly.

use proptest::prelude::*;
use proptest::TestRng;
use provabs_relational::oracle::{oracle_eval_cq, oracle_eval_ucq};
use provabs_relational::{
    apply_delta_with_queries, eval_cq, eval_cq_counted, eval_ucq, Atom, Cq, Database, Delta,
    EvalLimits, KRelation, RelId, Term, Tuple, Ucq, Value, VarId,
};
use std::collections::HashSet;

fn pick(rng: &mut TestRng, n: usize) -> usize {
    assert!(n > 0);
    (rng.next_u64() % n as u64) as usize
}

/// A mixed int/string domain, small enough that joins actually happen and
/// string/id width differences are exercised.
fn rand_value(rng: &mut TestRng) -> Value {
    match pick(rng, 7) {
        0..=3 => Value::Int(pick(rng, 4) as i64),
        4 => Value::str("a"),
        5 => Value::str("longer-string-value"),
        _ => Value::str("bb"),
    }
}

fn rand_tuple(rng: &mut TestRng, arity: usize) -> Tuple {
    (0..arity).map(|_| rand_value(rng)).collect()
}

/// A random database over R(a,b), S(b,c), T(c).
fn rand_db(rng: &mut TestRng) -> (Database, Vec<(RelId, usize)>) {
    let mut db = Database::new();
    let r = db.add_relation("R", &["a", "b"]);
    let s = db.add_relation("S", &["b", "c"]);
    let t = db.add_relation("T", &["c"]);
    let rels = vec![(r, 2), (s, 2), (t, 1)];
    let mut label = 0usize;
    for &(rel, arity) in &rels {
        for _ in 0..(3 + pick(rng, 8)) {
            db.insert(rel, &format!("t{label}"), rand_tuple(rng, arity));
            label += 1;
        }
    }
    db.build_indexes();
    (db, rels)
}

/// A random CQ over the fixed schema (1–3 atoms; head = non-empty subset of
/// the body's variables). Mirrors `delta_prop.rs`.
fn rand_cq(rng: &mut TestRng, rels: &[(RelId, usize)]) -> Cq {
    loop {
        let num_atoms = 1 + pick(rng, 3);
        let body: Vec<Atom> = (0..num_atoms)
            .map(|_| {
                let (rel, arity) = rels[pick(rng, rels.len())];
                let terms = (0..arity)
                    .map(|_| {
                        if pick(rng, 4) == 0 {
                            Term::Const(rand_value(rng))
                        } else {
                            Term::Var(VarId(pick(rng, 4) as u32))
                        }
                    })
                    .collect();
                Atom { rel, terms }
            })
            .collect();
        let mut vars: Vec<VarId> = body
            .iter()
            .flat_map(|a| a.terms.iter())
            .filter_map(|t| match t {
                Term::Var(v) => Some(*v),
                Term::Const(_) => None,
            })
            .collect();
        vars.sort_unstable_by_key(|v| v.0);
        vars.dedup();
        if vars.is_empty() {
            continue; // constant-only body: draw again
        }
        let head_len = 1 + pick(rng, vars.len().min(2));
        let head = (0..head_len)
            .map(|_| Term::Var(vars[pick(rng, vars.len())]))
            .collect();
        return Cq::new(head, body);
    }
}

fn rand_delta(
    rng: &mut TestRng,
    db: &Database,
    rels: &[(RelId, usize)],
    fresh: &mut usize,
) -> Delta {
    let mut delta = Delta::new();
    let mut dying: HashSet<_> = HashSet::new();
    for _ in 0..(1 + pick(rng, 6)) {
        let insert = pick(rng, 2) == 0;
        let (rel, arity) = rels[pick(rng, rels.len())];
        if insert || db.relation_len(rel) == 0 {
            delta.insert(rel, format!("u{fresh}"), rand_tuple(rng, arity));
            *fresh += 1;
        } else {
            let annots = db.tuple_annots(rel);
            let a = annots[pick(rng, annots.len())];
            if dying.insert(a) {
                delta.delete(a);
            }
        }
    }
    delta
}

/// Every posting list must hold exactly the rows a decoded owned-value scan
/// finds — sorted check via set equality on positions.
fn assert_index_contents_exact(db: &Database, rels: &[(RelId, usize)]) {
    for &(rel, arity) in rels {
        let decoded = db.tuples(rel);
        for col in 0..arity {
            // Probe every value that appears anywhere in the database plus
            // a couple of misses.
            let mut domain: Vec<Value> = decoded.iter().map(|t| t[col].clone()).collect();
            domain.push(Value::Int(-999));
            domain.push(Value::str("never-stored"));
            domain.sort();
            domain.dedup();
            for v in &domain {
                let mut indexed = db.rows_matching(rel, col, v);
                indexed.sort_unstable();
                let scanned: Vec<usize> = decoded
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| &t[col] == v)
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(
                    indexed, scanned,
                    "index of {rel:?}.{col} diverged from a decoded scan at {v}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Columnar-interned evaluation == naive owned-value oracle, and the
    /// storage work counters always show the id-width reduction.
    #[test]
    fn columnar_eval_equals_owned_oracle(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed);
        let (db, rels) = rand_db(&mut rng);
        for _ in 0..4 {
            let q = rand_cq(&mut rng, &rels);
            let (out, work) = eval_cq_counted(&db, &q, EvalLimits::default());
            prop_assert_eq!(&out, &oracle_eval_cq(&db, &q), "engine != oracle, seed {}", seed);
            prop_assert_eq!(work.probe_bytes_id, work.probes * 4);
            prop_assert!(
                work.probes == 0 || work.probe_bytes_id < work.probe_bytes_value,
                "id probes must be narrower than owned probes (seed {})", seed
            );
        }
        let u = Ucq { disjuncts: (0..2).map(|_| rand_cq(&mut rng, &rels)).collect() };
        prop_assert_eq!(eval_ucq(&db, &u), oracle_eval_ucq(&db, &u));
    }

    /// Delta maintenance over columnar storage == oracle re-evaluation on
    /// the updated database, with exact index contents after every batch.
    #[test]
    fn delta_stream_tracks_oracle_and_indexes_stay_exact(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed.wrapping_add(0x00c0_ffee));
        let (mut db, rels) = rand_db(&mut rng);
        let queries: Vec<Cq> = (0..2).map(|_| rand_cq(&mut rng, &rels)).collect();
        let mut cached: Vec<KRelation> = queries.iter().map(|q| eval_cq(&db, q)).collect();
        let mut fresh = 0usize;
        for batch in 0..4 {
            let delta = rand_delta(&mut rng, &db, &rels, &mut fresh);
            let out = apply_delta_with_queries(&mut db, &delta, &queries);
            prop_assert!(db.is_indexed(), "indexes must survive the delta");
            assert_index_contents_exact(&db, &rels);
            for ((q, cache), d) in queries.iter().zip(&mut cached).zip(&out.deltas) {
                prop_assert!(
                    d.merge_into(cache),
                    "retraction underflow at batch {batch} for {q:?}"
                );
                prop_assert_eq!(
                    &*cache,
                    &oracle_eval_cq(&db, q),
                    "delta merge != oracle re-eval at batch {}, seed {}",
                    batch,
                    seed
                );
            }
        }
    }

    /// Unindexed evaluation (scan fallback) equals indexed evaluation
    /// equals the oracle — the access path must never change results.
    #[test]
    fn access_paths_agree(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed.wrapping_add(0x5ca1_ab1e));
        // Build the same database twice with the same draws: one indexed,
        // one left unindexed.
        let (indexed, rels) = rand_db(&mut rng);
        let mut unindexed = Database::new();
        let r = unindexed.add_relation("R", &["a", "b"]);
        let s = unindexed.add_relation("S", &["b", "c"]);
        let t = unindexed.add_relation("T", &["c"]);
        let mut label = 0usize;
        for &(rel, _) in &[(r, 2), (s, 2), (t, 1)] {
            for row in indexed.tuples(rel) {
                unindexed.insert(rel, &format!("t{label}"), row);
                label += 1;
            }
        }
        for _ in 0..3 {
            let q = rand_cq(&mut rng, &rels);
            let via_index = eval_cq(&indexed, &q);
            let via_scan = eval_cq(&unindexed, &q);
            prop_assert_eq!(&via_index, &via_scan, "seed {}", seed);
            prop_assert_eq!(&via_index, &oracle_eval_cq(&indexed, &q));
        }
    }
}
