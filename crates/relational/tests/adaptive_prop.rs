//! Property tests pinning adaptive execution down: for random mixed
//! int/string databases, random CQs/UCQs and random delta streams, an
//! evaluation with the mid-join re-plan trigger armed must be bit-for-bit
//! equal — tuples *and* provenance polynomials — to the static plan and to
//! the structurally independent naive oracle, under every [`PlanMode`] and
//! every execution engine (scalar, block size 1, block size 1024). The
//! epoch-keyed [`PlanCache`] must be equally invisible: after a churn
//! stream with publication fences, the cache-hit path must replay the cold
//! path exactly, answers and work counters alike.
//!
//! Each proptest case draws one seed; everything else derives from it
//! through the deterministic `TestRng`, so failures reproduce exactly.

use proptest::prelude::*;
use proptest::TestRng;
use provabs_relational::oracle::{oracle_eval_cq, oracle_eval_ucq};
use provabs_relational::{
    Atom, Cq, Database, Delta, Evaluator, Execution, PlanCache, PlanMode, RelId, SessionRegistry,
    Term, Tuple, Ucq, Value, VarId,
};
use provabs_semiring::ProvStore;

const MODES: [PlanMode; 3] = [
    PlanMode::CostBased,
    PlanMode::Greedy,
    PlanMode::WrittenOrder,
];

const ENGINES: [Execution; 3] = [
    Execution::Scalar,
    Execution::Block { block_size: 1 },
    Execution::Block { block_size: 1024 },
];

/// Trigger factors swept per case: 1.0 fires on the slightest
/// mis-estimate, 2.0 is the default, 1e18 effectively never fires (the
/// armed-but-silent path must also replay the static baseline).
const FACTORS: [f64; 3] = [1.0, 2.0, 1e18];

fn pick(rng: &mut TestRng, n: usize) -> usize {
    assert!(n > 0);
    (rng.next_u64() % n as u64) as usize
}

/// A mixed int/string domain, small enough that joins actually happen.
fn rand_value(rng: &mut TestRng) -> Value {
    match pick(rng, 7) {
        0..=3 => Value::Int(pick(rng, 4) as i64),
        4 => Value::str("a"),
        5 => Value::str("longer-string-value"),
        _ => Value::str("bb"),
    }
}

fn rand_tuple(rng: &mut TestRng, arity: usize) -> Tuple {
    (0..arity).map(|_| rand_value(rng)).collect()
}

/// A random database over R(a,b), S(b,c), T(c). Relations may come out
/// empty (a case the re-planner must survive).
fn rand_db(rng: &mut TestRng) -> (Database, Vec<(RelId, usize)>) {
    let mut db = Database::new();
    let r = db.add_relation("R", &["a", "b"]);
    let s = db.add_relation("S", &["b", "c"]);
    let t = db.add_relation("T", &["c"]);
    let rels = vec![(r, 2), (s, 2), (t, 1)];
    let mut label = 0usize;
    for &(rel, arity) in &rels {
        for _ in 0..pick(rng, 10) {
            db.insert(rel, &format!("t{label}"), rand_tuple(rng, arity));
            label += 1;
        }
    }
    db.build_indexes();
    (db, rels)
}

/// A random CQ (1–4 atoms); only a fully ground body is redrawn, because a
/// safe head needs a variable.
fn rand_cq(rng: &mut TestRng, rels: &[(RelId, usize)]) -> Cq {
    loop {
        let num_atoms = 1 + pick(rng, 4);
        let body: Vec<Atom> = (0..num_atoms)
            .map(|_| {
                let (rel, arity) = rels[pick(rng, rels.len())];
                let terms = (0..arity)
                    .map(|_| {
                        if pick(rng, 3) == 0 {
                            Term::Const(rand_value(rng))
                        } else {
                            Term::Var(VarId(pick(rng, 4) as u32))
                        }
                    })
                    .collect();
                Atom { rel, terms }
            })
            .collect();
        let mut vars: Vec<VarId> = body
            .iter()
            .flat_map(|a| a.terms.iter())
            .filter_map(|t| match t {
                Term::Var(v) => Some(*v),
                Term::Const(_) => None,
            })
            .collect();
        vars.sort_unstable_by_key(|v| v.0);
        vars.dedup();
        if vars.is_empty() {
            continue; // fully ground body: no safe head exists
        }
        let head_len = 1 + pick(rng, vars.len().min(2));
        let head = (0..head_len)
            .map(|_| Term::Var(vars[pick(rng, vars.len())]))
            .collect();
        return Cq::new(head, body);
    }
}

fn rand_delta(
    rng: &mut TestRng,
    db: &Database,
    rels: &[(RelId, usize)],
    fresh: &mut usize,
) -> Delta {
    let mut delta = Delta::new();
    let mut dying: std::collections::HashSet<_> = std::collections::HashSet::new();
    for _ in 0..(1 + pick(rng, 6)) {
        let insert = pick(rng, 2) == 0;
        let (rel, arity) = rels[pick(rng, rels.len())];
        if insert || db.relation_len(rel) == 0 {
            delta.insert(rel, format!("u{fresh}"), rand_tuple(rng, arity));
            *fresh += 1;
        } else {
            let annots = db.tuple_annots(rel);
            let a = annots[pick(rng, annots.len())];
            if dying.insert(a) {
                delta.delete(a);
            }
        }
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Adaptivity is answer-invisible: with the trigger armed at any
    /// factor, under every plan mode and execution engine, the K-relation
    /// — tuples and provenance polynomials — is bit-for-bit the static
    /// plan's and the naive oracle's. The silent factor must also replay
    /// the static work counters exactly (arming the trigger costs no
    /// visible work when it never fires).
    #[test]
    fn adaptive_eval_is_invisible_across_modes_and_engines(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed);
        let (db, rels) = rand_db(&mut rng);
        for _ in 0..3 {
            let q = rand_cq(&mut rng, &rels);
            let oracle = oracle_eval_cq(&db, &q);
            for mode in MODES {
                for exec in ENGINES {
                    let (static_out, static_work) =
                        Evaluator::new(&db).plan(mode).execution(exec).eval_cq(&q);
                    prop_assert_eq!(
                        &static_out, &oracle,
                        "static {:?}/{:?} != oracle, seed {}, query {:?}", mode, exec, seed, q
                    );
                    for k in FACTORS {
                        let (out, work) = Evaluator::new(&db)
                            .plan(mode)
                            .execution(exec)
                            .adaptive(k)
                            .eval_cq(&q);
                        prop_assert_eq!(
                            &out, &static_out,
                            "adaptive(k={}) {:?}/{:?} != static, seed {}, query {:?}",
                            k, mode, exec, seed, q
                        );
                        if k == 1e18 {
                            prop_assert_eq!(work.replan.replans_triggered, 0);
                            prop_assert_eq!(
                                work.rows_examined, static_work.rows_examined,
                                "silent trigger changed the work, {:?}/{:?} seed {}", mode, exec, seed
                            );
                        }
                    }
                }
            }
        }
    }

    /// UCQ evaluation with the trigger armed matches the oracle too (each
    /// disjunct re-plans independently).
    #[test]
    fn adaptive_ucq_eval_matches_oracle(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed.wrapping_add(0xada9_71fe));
        let (db, rels) = rand_db(&mut rng);
        let u = Ucq {
            disjuncts: (0..1 + pick(&mut rng, 3)).map(|_| rand_cq(&mut rng, &rels)).collect(),
        };
        let oracle = oracle_eval_ucq(&db, &u);
        for mode in MODES {
            for exec in ENGINES {
                let mut store = ProvStore::new();
                let out = Evaluator::new(&db)
                    .plan(mode)
                    .execution(exec)
                    .adaptive(1.0)
                    .interned(&mut store)
                    .eval_ucq(&u)
                    .0
                    .to_krelation(&store);
                prop_assert_eq!(&out, &oracle, "{:?}/{:?} != oracle, seed {}", mode, exec, seed);
            }
        }
    }

    /// The plan cache is execution-invisible: after a churn stream with
    /// publication fences (exactly the writer protocol `provabsd` runs),
    /// the cache-hit path replays the cold path bit-for-bit — answers and
    /// every work counter — at every epoch, under every plan mode.
    #[test]
    fn cache_hit_path_replays_cold_path_across_churn(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed.wrapping_add(0x91a5_cace));
        let (db0, rels) = rand_db(&mut rng);
        let queries: Vec<Cq> = (0..3).map(|_| rand_cq(&mut rng, &rels)).collect();
        let mut db = db0.clone();
        let (registry, mut writer) = SessionRegistry::shared(db0);
        let mut fresh = 0usize;
        for _ in 0..4 {
            let session = registry.pin();
            let epoch = session.epoch();
            for (qi, q) in queries.iter().enumerate() {
                for mode in MODES {
                    let cold = Evaluator::new(&session).plan(mode).eval_cq(q);
                    // First cache-bound evaluation plans cold and inserts;
                    // the second must be answered from the cached version.
                    let first = Evaluator::new(&session)
                        .plan(mode)
                        .plan_cache(registry.plan_cache(), epoch)
                        .eval_cq(q);
                    let hit = Evaluator::new(&session)
                        .plan(mode)
                        .plan_cache(registry.plan_cache(), epoch)
                        .eval_cq(q);
                    prop_assert_eq!(
                        &first, &cold,
                        "insert path != cold path at epoch {}, {:?}, query {}, seed {}",
                        epoch, mode, qi, seed
                    );
                    prop_assert_eq!(
                        &hit, &cold,
                        "hit path != cold path at epoch {}, {:?}, query {}, seed {}",
                        epoch, mode, qi, seed
                    );
                }
            }
            // The writer protocol: apply churn, fence the plan cache for
            // the touched relations, then publish the next epoch.
            let delta = rand_delta(&mut rng, &db, &rels, &mut fresh);
            let applied = db.apply_delta(&delta);
            registry
                .plan_cache()
                .invalidate_at(&applied.rels, registry.epoch() + 1);
            writer.publish(&db);
        }
        let stats = registry.plan_cache().stats();
        prop_assert!(stats.hits >= stats.misses, "second lookups must hit: {:?}", stats);
    }

    /// A standalone cache behaves identically on a plain database: binding
    /// [`PlanCache`] at a fixed epoch never changes an answer, and
    /// repeated evaluation is answered from the cache.
    #[test]
    fn standalone_cache_is_invisible(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed.wrapping_add(0x0cac_4e00));
        let (db, rels) = rand_db(&mut rng);
        let cache = PlanCache::new();
        for _ in 0..3 {
            let q = rand_cq(&mut rng, &rels);
            let oracle = oracle_eval_cq(&db, &q);
            for mode in MODES {
                for _ in 0..2 {
                    let (out, _) = Evaluator::new(&db)
                        .plan(mode)
                        .plan_cache(&cache, 0)
                        .eval_cq(&q);
                    prop_assert_eq!(&out, &oracle, "{:?}, seed {}", mode, seed);
                }
            }
        }
    }
}
