//! Model-checked session scenarios: readers racing a live writer, swept
//! across every schedule the explorer enumerates.
//!
//! These are the exhaustive variants of the native-thread smoke test in
//! `session.rs` — instead of hoping the OS scheduler happens to produce the
//! bad interleaving, the `provabs-sched` explorer enumerates all of them
//! (sleep-set reduced, unbounded preemptions) and asserts the snapshot
//! invariants in each. The mutant tests seed the two publication-ordering
//! bugs the harness exists to catch and require the sweep to find them.

use provabs_relational::{parse_cq, Database, Evaluator, PlanMode, SessionRegistry};
use provabs_sched as sched;
use sched::sync::atomic::{AtomicU64, Ordering};
use sched::sync::{Arc, Mutex};
use sched::Config;

fn seed_db() -> Database {
    let mut db = Database::new();
    let r = db.add_relation("R", &["a", "b"]);
    db.add_relation("S", &["a"]);
    db.insert_str(r, "t1", &["1", "x"]);
    db.insert_str(r, "t2", &["2", "x"]);
    db.build_indexes();
    db
}

/// The tentpole sweep: two readers race one writer publishing two epochs.
/// In **every** schedule, every pinned snapshot satisfies
/// `len == base + epoch` — `pin()` can never observe a half-published
/// epoch, because epoch and database are swapped under one write lock.
#[test]
fn publication_sweep_two_readers_one_writer_is_exhaustive() {
    fn body() {
        let db = seed_db();
        let base = db.len() as u64;
        let (registry, mut writer) = SessionRegistry::shared(db.clone());
        let mut wdb = db;
        let w = sched::thread::spawn(move || {
            let r = wdb.schema().relation_id("R").unwrap();
            for i in 0..2u64 {
                wdb.insert_str(r, &format!("w{i}"), &[&format!("{}", 10 + i), "x"]);
                writer.publish(&wdb);
            }
        });
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let reg = Arc::clone(&registry);
                sched::thread::spawn(move || {
                    let s = reg.pin();
                    assert_eq!(
                        s.len() as u64,
                        base + s.epoch(),
                        "snapshot at epoch {} must hold exactly its batch's tuples",
                        s.epoch()
                    );
                })
            })
            .collect();
        for h in readers {
            h.join().unwrap();
        }
        w.join().unwrap();
        assert_eq!(registry.epoch(), 2);
    }
    let outcome = sched::explore_with(Config::unbounded(), body);
    outcome.expect_clean();
    assert!(outcome.complete, "sweep must be exhaustive: {outcome:?}");
    assert!(outcome.schedules >= 4, "outcome: {outcome:?}");
    assert!(
        outcome.lock_cycle().is_none(),
        "session locks must be cycle-free: {:?}",
        outcome.lock_edges
    );
    // Schedule counts are deterministic — the exact count for this scenario
    // is additionally pinned by `bench_gate --bench sched` (BENCH_10.json).
    let again = sched::explore_with(Config::unbounded(), body);
    assert_eq!(outcome.schedules, again.schedules);
    assert_eq!(outcome.pruned, again.pruned);
    assert_eq!(outcome.decisions, again.decisions);
}

/// A pinned reader replays its epoch bit-for-bit in every schedule: the
/// same query evaluated before and after the writer publishes returns
/// identical answers, however the publication interleaves with the reads.
#[test]
fn pinned_reader_replays_epoch_bit_for_bit_in_every_schedule() {
    let outcome = sched::explore_with(Config::unbounded(), || {
        let db = seed_db();
        let (registry, mut writer) = SessionRegistry::shared(db.clone());
        let pinned = registry.pin();
        let q = parse_cq("q(x) :- R(x, 'x')", pinned.schema()).unwrap();
        let before = Evaluator::new(&pinned).eval_cq(&q);
        let mut wdb = db;
        let w = sched::thread::spawn(move || {
            let r = wdb.schema().relation_id("R").unwrap();
            wdb.insert_str(r, "t3", &["3", "x"]);
            writer.publish(&wdb);
        });
        // However far the writer has progressed in this schedule, the
        // pinned epoch-0 session answers bit-identically.
        let after = Evaluator::new(&pinned).eval_cq(&q);
        assert_eq!(before, after, "pinned snapshot must replay bit-for-bit");
        assert_eq!(pinned.epoch(), 0);
        w.join().unwrap();
        let fresh = registry.pin();
        assert_eq!(fresh.epoch(), 1);
    });
    outcome.expect_clean();
    assert!(outcome.complete);
}

/// Shared scenario for the plan-cache fence tests: the cache is warmed at
/// epoch 0 on a query over `S`, then the writer logically touches `S` and
/// publishes epoch 1 while a reader pins and probes. `fence_first` selects
/// the correct protocol (retire, then publish) or the seeded mutant
/// (publish, then retire).
fn plan_cache_fence_scenario(fence_first: bool) {
    let db = seed_db();
    let s_rel = db.schema().relation_id("S").unwrap();
    let (registry, mut writer) = SessionRegistry::shared(db.clone());
    let q = parse_cq("q(a) :- S(a)", db.schema()).unwrap();
    // Warm the cache before the race: epoch-0 version born.
    let (_, hit) = registry
        .plan_cache()
        .lookup_or_plan(&db, &q, PlanMode::CostBased, 0);
    assert!(!hit, "warm-up must plan cold");
    let reg_w = Arc::clone(&registry);
    let wdb = db.clone();
    let w = sched::thread::spawn(move || {
        if fence_first {
            reg_w.plan_cache().invalidate_at(&[s_rel], 1);
            writer.publish(&wdb);
        } else {
            writer.publish(&wdb);
            reg_w.plan_cache().invalidate_at(&[s_rel], 1);
        }
    });
    // The racing reader: whatever epoch it pins, a touched query at the
    // *new* epoch must re-plan — the fence happens-before publication.
    let session = registry.pin();
    let (_, hit) =
        registry
            .plan_cache()
            .lookup_or_plan(&session, &q, PlanMode::CostBased, session.epoch());
    if session.epoch() >= 1 {
        assert!(!hit, "stale plan served at fenced epoch 1");
    } else {
        assert!(hit, "epoch-0 reader must keep hitting its version");
    }
    w.join().unwrap();
}

/// Correct protocol: `invalidate_at` **before** `publish`. No schedule can
/// pin epoch 1 and still hit the stale epoch-0 plan.
#[test]
fn fenced_plan_cache_never_serves_stale_plan() {
    let outcome = sched::explore_with(Config::unbounded(), || plan_cache_fence_scenario(true));
    outcome.expect_clean();
    assert!(outcome.complete, "sweep must be exhaustive: {outcome:?}");
    assert!(
        outcome.lock_cycle().is_none(),
        "plan cache locks must be cycle-free: {:?}",
        outcome.lock_edges
    );
}

/// Seeded mutant: the writer publishes first and fences afterwards. Some
/// schedule pins epoch 1 in the window and hits the stale plan — the sweep
/// MUST catch it and hand back a replayable schedule.
#[test]
fn mutant_dropped_plan_cache_fence_is_caught() {
    let body = || plan_cache_fence_scenario(false);
    let outcome = sched::explore_with(Config::unbounded(), body);
    let v = outcome
        .violation
        .expect("dropped fence must be caught by the sweep");
    assert!(
        v.message.contains("stale plan"),
        "unexpected violation: {}",
        v.message
    );
    // The failing schedule replays byte-for-byte from its seed.
    let parsed = sched::Schedule::from_seed(&v.schedule.seed()).expect("seed parses");
    let replayed = sched::replay(&parsed, body);
    assert_eq!(replayed.trace, v.trace);
    assert_eq!(replayed.message.as_deref(), Some(v.message.as_str()));
}

/// A minimal model of the *other* publication-ordering bug: a registry
/// whose epoch counter and database live in separate cells. Staging the
/// data before publishing the epoch keeps the reader invariant
/// `len >= epoch`; the mutant publishes the epoch first.
fn torn_registry_scenario(publish_before_stage: bool) {
    let epoch = Arc::new(AtomicU64::labeled("torn.epoch", 0));
    let len = Arc::new(Mutex::labeled("torn.len", 0u64));
    let (e2, l2) = (Arc::clone(&epoch), Arc::clone(&len));
    let w = sched::thread::spawn(move || {
        if publish_before_stage {
            e2.store(1, Ordering::SeqCst);
            *l2.lock().expect("len") = 1;
        } else {
            *l2.lock().expect("len") = 1;
            e2.store(1, Ordering::SeqCst);
        }
    });
    let e = epoch.load(Ordering::SeqCst);
    let l = *len.lock().expect("len");
    assert!(
        l >= e,
        "half-published epoch observed: epoch {e} but only {l} staged"
    );
    w.join().unwrap();
}

/// Stage-then-publish keeps the invariant in every schedule.
#[test]
fn staged_publication_is_never_half_observed() {
    let outcome = sched::explore_with(Config::unbounded(), || torn_registry_scenario(false));
    outcome.expect_clean();
    assert!(outcome.complete);
}

/// Seeded mutant: publishing the epoch before staging the data is caught.
#[test]
fn mutant_publish_before_stage_is_caught() {
    let outcome = sched::explore_with(Config::unbounded(), || torn_registry_scenario(true));
    let v = outcome
        .violation
        .expect("publish-before-stage must be caught");
    assert!(
        v.message.contains("half-published"),
        "unexpected violation: {}",
        v.message
    );
}
