//! Differential properties for the vectorized block engine: for random
//! mixed int/string databases, random CQs/UCQs (constant-only atoms and
//! empty postings included) and random delta streams, evaluation under
//! [`Execution::Block`] — at block sizes down to 1, where every selection
//! vector degenerates to a single row — must be bit-for-bit equal, tuples
//! *and* provenance polynomials, to [`Execution::Scalar`] and to the
//! structurally independent naive oracle (`provabs_relational::oracle`).
//! Batch evaluation must return the same results at any worker count.
//!
//! Each proptest case draws one seed; everything else derives from it
//! through the deterministic `TestRng`, so failures reproduce exactly.

use proptest::prelude::*;
use proptest::TestRng;
use provabs_relational::oracle::{oracle_eval_cq, oracle_eval_ucq};
use provabs_relational::{
    Atom, Cq, Database, Delta, Evaluator, Execution, KRelationDelta, PlanMode, RelId, Term, Tuple,
    Ucq, Updater, Value, VarId, DEFAULT_BLOCK_SIZE,
};
use provabs_semiring::ProvStore;
use std::collections::HashSet;

const MODES: [PlanMode; 3] = [
    PlanMode::CostBased,
    PlanMode::Greedy,
    PlanMode::WrittenOrder,
];

/// Block sizes 1–3 force chunked emission on even the smallest databases;
/// the default exercises the single-block fast path.
const BLOCK_SIZES: [usize; 4] = [1, 2, 3, DEFAULT_BLOCK_SIZE];

fn pick(rng: &mut TestRng, n: usize) -> usize {
    assert!(n > 0);
    (rng.next_u64() % n as u64) as usize
}

/// A mixed int/string domain, small enough that joins actually happen.
fn rand_value(rng: &mut TestRng) -> Value {
    match pick(rng, 7) {
        0..=3 => Value::Int(pick(rng, 4) as i64),
        4 => Value::str("a"),
        5 => Value::str("longer-string-value"),
        _ => Value::str("bb"),
    }
}

fn rand_tuple(rng: &mut TestRng, arity: usize) -> Tuple {
    (0..arity).map(|_| rand_value(rng)).collect()
}

/// A random database over R(a,b), S(b,c), T(c). Relations may come out
/// empty, and constants may miss every posting list (the probe paths the
/// block engine must survive).
fn rand_db(rng: &mut TestRng) -> (Database, Vec<(RelId, usize)>) {
    let mut db = Database::new();
    let r = db.add_relation("R", &["a", "b"]);
    let s = db.add_relation("S", &["b", "c"]);
    let t = db.add_relation("T", &["c"]);
    let rels = vec![(r, 2), (s, 2), (t, 1)];
    let mut label = 0usize;
    for &(rel, arity) in &rels {
        for _ in 0..pick(rng, 10) {
            db.insert(rel, &format!("t{label}"), rand_tuple(rng, arity));
            label += 1;
        }
    }
    db.build_indexes();
    (db, rels)
}

/// A random CQ (1–4 atoms). Constant-only atoms are allowed — the block
/// pipeline must handle steps that bind no new variables; only a fully
/// ground body is redrawn, because a safe head needs a variable.
fn rand_cq(rng: &mut TestRng, rels: &[(RelId, usize)]) -> Cq {
    loop {
        let num_atoms = 1 + pick(rng, 4);
        let body: Vec<Atom> = (0..num_atoms)
            .map(|_| {
                let (rel, arity) = rels[pick(rng, rels.len())];
                let terms = (0..arity)
                    .map(|_| {
                        if pick(rng, 3) == 0 {
                            Term::Const(rand_value(rng))
                        } else {
                            Term::Var(VarId(pick(rng, 4) as u32))
                        }
                    })
                    .collect();
                Atom { rel, terms }
            })
            .collect();
        let mut vars: Vec<VarId> = body
            .iter()
            .flat_map(|a| a.terms.iter())
            .filter_map(|t| match t {
                Term::Var(v) => Some(*v),
                Term::Const(_) => None,
            })
            .collect();
        vars.sort_unstable_by_key(|v| v.0);
        vars.dedup();
        if vars.is_empty() {
            continue; // fully ground body: no safe head exists
        }
        let head_len = 1 + pick(rng, vars.len().min(2));
        let head = (0..head_len)
            .map(|_| Term::Var(vars[pick(rng, vars.len())]))
            .collect();
        return Cq::new(head, body);
    }
}

fn rand_delta(
    rng: &mut TestRng,
    db: &Database,
    rels: &[(RelId, usize)],
    fresh: &mut usize,
) -> Delta {
    let mut delta = Delta::new();
    let mut dying: HashSet<_> = HashSet::new();
    for _ in 0..(1 + pick(rng, 6)) {
        let insert = pick(rng, 2) == 0;
        let (rel, arity) = rels[pick(rng, rels.len())];
        if insert || db.relation_len(rel) == 0 {
            delta.insert(rel, format!("u{fresh}"), rand_tuple(rng, arity));
            *fresh += 1;
        } else {
            let annots = db.tuple_annots(rel);
            let a = annots[pick(rng, annots.len())];
            if dying.insert(a) {
                delta.delete(a);
            }
        }
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// CQ evaluation: block at every size == scalar == oracle, under every
    /// plan mode, owned and interned, with the scalar replay keeping the
    /// vectorized counters at exactly zero.
    #[test]
    fn block_cq_eval_matches_scalar_and_oracle(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed);
        let (db, rels) = rand_db(&mut rng);
        for _ in 0..3 {
            let q = rand_cq(&mut rng, &rels);
            let oracle = oracle_eval_cq(&db, &q);
            for mode in MODES {
                let scalar = Evaluator::new(&db).plan(mode).execution(Execution::Scalar);
                let (want, scalar_work) = scalar.eval_cq(&q);
                prop_assert_eq!(&want, &oracle, "scalar {:?} != oracle, seed {}", mode, seed);
                prop_assert_eq!(scalar_work.blocks_emitted, 0);
                prop_assert_eq!(scalar_work.selection_survivors, 0);
                prop_assert_eq!(scalar_work.gallop_steps, 0);
                let mut store = ProvStore::new();
                let (iwant, _) = scalar.interned(&mut store).eval_cq(&q);
                prop_assert_eq!(&iwant.to_krelation(&store), &oracle);
                for bs in BLOCK_SIZES {
                    let block = Evaluator::new(&db)
                        .plan(mode)
                        .execution(Execution::Block { block_size: bs });
                    let (got, work) = block.eval_cq(&q);
                    prop_assert_eq!(
                        &got, &want,
                        "block(bs={}) != scalar under {:?}, seed {}, query {:?}", bs, mode, seed, q
                    );
                    prop_assert_eq!(
                        work.derivations, scalar_work.derivations,
                        "derivation count moved at bs={} under {:?}, seed {}", bs, mode, seed
                    );
                    let (igot, _) = block.interned(&mut store).eval_cq(&q);
                    prop_assert_eq!(
                        &igot.to_krelation(&store), &want,
                        "interned block(bs={}) != scalar under {:?}, seed {}", bs, mode, seed
                    );
                }
            }
        }
    }

    /// UCQ evaluation (disjunct provenance summed) agrees across engines
    /// and with the oracle at every block size.
    #[test]
    fn block_ucq_eval_matches_scalar_and_oracle(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed.wrapping_add(0x0b10_c4ed));
        let (db, rels) = rand_db(&mut rng);
        let u = Ucq {
            disjuncts: (0..1 + pick(&mut rng, 3)).map(|_| rand_cq(&mut rng, &rels)).collect(),
        };
        let oracle = oracle_eval_ucq(&db, &u);
        for mode in MODES {
            let (want, _) = Evaluator::new(&db)
                .plan(mode)
                .execution(Execution::Scalar)
                .eval_ucq(&u);
            prop_assert_eq!(&want, &oracle, "scalar UCQ {:?} != oracle, seed {}", mode, seed);
            for bs in BLOCK_SIZES {
                let (got, _) = Evaluator::new(&db)
                    .plan(mode)
                    .execution(Execution::Block { block_size: bs })
                    .eval_ucq(&u);
                prop_assert_eq!(
                    &got, &want,
                    "block UCQ(bs={}) != scalar under {:?}, seed {}", bs, mode, seed
                );
            }
        }
    }

    /// Random delta streams: the cache maintained by the block engine's
    /// restricted passes equals the scalar-maintained cache and the
    /// oracle's re-evaluation after every batch.
    #[test]
    fn block_delta_streams_match_scalar_and_oracle(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed.wrapping_add(0xb10c_de17));
        let (db0, rels) = rand_db(&mut rng);
        let queries: Vec<Cq> = (0..2).map(|_| rand_cq(&mut rng, &rels)).collect();
        let mode = MODES[pick(&mut rng, MODES.len())];
        let bs = BLOCK_SIZES[pick(&mut rng, BLOCK_SIZES.len())];
        let execs = [Execution::Scalar, Execution::Block { block_size: bs }];
        let mut dbs: Vec<Database> = execs.iter().map(|_| db0.clone()).collect();
        let mut caches: Vec<Vec<_>> = execs
            .iter()
            .zip(&dbs)
            .map(|(&exec, db)| {
                queries
                    .iter()
                    .map(|q| Evaluator::new(db).plan(mode).execution(exec).eval_cq(q).0)
                    .collect()
            })
            .collect();
        let mut fresh = 0usize;
        for batch in 0..4 {
            let delta = rand_delta(&mut rng, &dbs[0], &rels, &mut fresh);
            for ((&exec, db), cached) in execs.iter().zip(&mut dbs).zip(&mut caches) {
                let out = Updater::new().plan(mode).execution(exec).apply(db, &delta, &queries);
                for ((q, cache), d) in queries.iter().zip(cached.iter_mut()).zip(&out.deltas) {
                    prop_assert!(
                        d.merge_into(cache),
                        "retraction underflow at batch {} under {:?}/{:?} for {:?}",
                        batch, mode, exec, q
                    );
                    prop_assert_eq!(
                        &*cache,
                        &oracle_eval_cq(db, q),
                        "delta merge != oracle at batch {} under {:?}/{:?} (bs={}), seed {}",
                        batch, mode, exec, bs, seed
                    );
                }
            }
            prop_assert_eq!(&caches[0], &caches[1], "engines diverged at batch {}", batch);
        }
    }

    /// The UCQ delta cycle (retractions before, additions after the batch
    /// applies) agrees across engines at every block size.
    #[test]
    fn block_ucq_delta_cycle_matches_scalar(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed.wrapping_add(0x5e1e_c7ed));
        let (db, rels) = rand_db(&mut rng);
        let u = Ucq {
            disjuncts: (0..1 + pick(&mut rng, 2)).map(|_| rand_cq(&mut rng, &rels)).collect(),
        };
        let oracle = oracle_eval_ucq(&db, &u);
        let mut fresh = 0usize;
        let delta = rand_delta(&mut rng, &db, &rels, &mut fresh);
        let mode = MODES[pick(&mut rng, MODES.len())];
        for bs in BLOCK_SIZES {
            for exec in [Execution::Scalar, Execution::Block { block_size: bs }] {
                let mut db = db.clone();
                let mut cached = oracle.clone();
                let eval = Evaluator::new(&db).plan(mode).execution(exec);
                let deletes: HashSet<_> = delta
                    .deletes
                    .iter()
                    .copied()
                    .filter(|&a| db.locate(a).is_some())
                    .collect();
                let (removed, _) = eval.retractions_ucq(&u, &deletes);
                let applied = db.apply_delta(&delta);
                let inserts: HashSet<_> = applied.inserted.iter().copied().collect();
                let (added, _) = Evaluator::new(&db)
                    .plan(mode)
                    .execution(exec)
                    .additions_ucq(&u, &inserts);
                let d = KRelationDelta { added, removed };
                prop_assert!(d.merge_into(&mut cached), "underflow under {:?}/{:?}", mode, exec);
                prop_assert_eq!(
                    &cached,
                    &oracle_eval_ucq(&db, &u),
                    "UCQ delta merge != oracle under {:?}/{:?} (bs={}), seed {}",
                    mode, exec, bs, seed
                );
            }
        }
    }

    /// Batch evaluation returns the identical results — outputs and work
    /// counters — at parallelism 1, 2, and 8, under both engines.
    #[test]
    fn batch_eval_is_parallelism_invariant(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed.wrapping_add(0x9a7a_11e1));
        let (db, rels) = rand_db(&mut rng);
        let queries: Vec<Cq> = (0..3).map(|_| rand_cq(&mut rng, &rels)).collect();
        let mode = MODES[pick(&mut rng, MODES.len())];
        for exec in [Execution::Scalar, Execution::default()] {
            let eval = Evaluator::new(&db).plan(mode).execution(exec);
            let reference: Vec<_> = queries.iter().map(|q| eval.eval_cq(q)).collect();
            for workers in [1usize, 2, 8] {
                let batch = eval.eval_batch(&queries, workers);
                prop_assert_eq!(
                    &batch, &reference,
                    "batch moved at parallelism {} under {:?}/{:?}, seed {}",
                    workers, mode, exec, seed
                );
            }
        }
    }
}
