//! Property test: applying a random update stream through delta evaluation
//! is bit-for-bit equal to full re-evaluation on the resulting database —
//! for random conjunctive queries and random UCQs, across random schemas,
//! databases, and insert/delete mixes.
//!
//! Each proptest case draws one seed; everything else (schema sizes, rows,
//! queries, stream) derives from it through the deterministic `TestRng`, so
//! failures reproduce exactly.

use proptest::prelude::*;
use proptest::TestRng;
use provabs_relational::{
    apply_delta_with_queries, apply_delta_with_queries_interned, eval_cq, eval_cq_counted_interned,
    eval_ucq, eval_ucq_additions, eval_ucq_retractions, Atom, Cq, Database, Delta, EvalLimits,
    IKRelation, KRelation, KRelationDelta, RelId, Term, Tuple, Ucq, Value, VarId,
};
use provabs_semiring::ProvStore;
use std::collections::HashSet;

fn pick(rng: &mut TestRng, n: usize) -> usize {
    assert!(n > 0);
    (rng.next_u64() % n as u64) as usize
}

/// Values come from a tiny domain so joins actually happen.
fn rand_value(rng: &mut TestRng) -> Value {
    Value::Int(pick(rng, 5) as i64)
}

fn rand_tuple(rng: &mut TestRng, arity: usize) -> Tuple {
    (0..arity).map(|_| rand_value(rng)).collect()
}

/// A random database over R(a,b), S(b,c), T(c).
fn rand_db(rng: &mut TestRng) -> (Database, Vec<(RelId, usize)>) {
    let mut db = Database::new();
    let r = db.add_relation("R", &["a", "b"]);
    let s = db.add_relation("S", &["b", "c"]);
    let t = db.add_relation("T", &["c"]);
    let rels = vec![(r, 2), (s, 2), (t, 1)];
    let mut label = 0usize;
    for &(rel, arity) in &rels {
        for _ in 0..(3 + pick(rng, 10)) {
            db.insert(rel, &format!("t{label}"), rand_tuple(rng, arity));
            label += 1;
        }
    }
    db.build_indexes();
    (db, rels)
}

/// A random CQ over the fixed schema: 1–3 atoms, terms drawn from a small
/// variable pool and the value domain, head = a non-empty subset of the
/// body's variables (so evaluation is defined).
fn rand_cq(rng: &mut TestRng, rels: &[(RelId, usize)]) -> Cq {
    loop {
        let num_atoms = 1 + pick(rng, 3);
        let body: Vec<Atom> = (0..num_atoms)
            .map(|_| {
                let (rel, arity) = rels[pick(rng, rels.len())];
                let terms = (0..arity)
                    .map(|_| {
                        if pick(rng, 4) == 0 {
                            Term::Const(rand_value(rng))
                        } else {
                            Term::Var(VarId(pick(rng, 4) as u32))
                        }
                    })
                    .collect();
                Atom { rel, terms }
            })
            .collect();
        let mut vars: Vec<VarId> = body
            .iter()
            .flat_map(|a| a.terms.iter())
            .filter_map(|t| match t {
                Term::Var(v) => Some(*v),
                Term::Const(_) => None,
            })
            .collect();
        vars.sort_unstable_by_key(|v| v.0);
        vars.dedup();
        if vars.is_empty() {
            continue; // constant-only body: draw again
        }
        let head_len = 1 + pick(rng, vars.len().min(2));
        let head = (0..head_len)
            .map(|_| Term::Var(vars[pick(rng, vars.len())]))
            .collect();
        return Cq::new(head, body);
    }
}

/// A random batch: inserts column-drawn from the value domain, deletes of
/// random live tuples.
fn rand_delta(
    rng: &mut TestRng,
    db: &Database,
    rels: &[(RelId, usize)],
    fresh: &mut usize,
) -> Delta {
    let mut delta = Delta::new();
    let mut dying: HashSet<_> = HashSet::new();
    for _ in 0..(1 + pick(rng, 6)) {
        let insert = pick(rng, 2) == 0;
        let (rel, arity) = rels[pick(rng, rels.len())];
        if insert || db.relation_len(rel) == 0 {
            delta.insert(rel, format!("u{fresh}"), rand_tuple(rng, arity));
            *fresh += 1;
        } else {
            let annots = db.tuple_annots(rel);
            let a = annots[pick(rng, annots.len())];
            if dying.insert(a) {
                delta.delete(a);
            }
        }
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn delta_stream_equals_full_reeval_for_random_cqs(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed);
        let (mut db, rels) = rand_db(&mut rng);
        let queries: Vec<Cq> = (0..3).map(|_| rand_cq(&mut rng, &rels)).collect();
        let mut cached: Vec<KRelation> = queries.iter().map(|q| eval_cq(&db, q)).collect();
        let mut fresh = 0usize;
        for batch in 0..4 {
            let delta = rand_delta(&mut rng, &db, &rels, &mut fresh);
            let out = apply_delta_with_queries(&mut db, &delta, &queries);
            prop_assert!(db.is_indexed(), "indexes must survive the delta");
            for ((q, cache), d) in queries.iter().zip(&mut cached).zip(&out.deltas) {
                prop_assert!(
                    d.merge_into(cache),
                    "retraction underflow at batch {batch} for {q:?}"
                );
                prop_assert_eq!(
                    &*cache,
                    &eval_cq(&db, q),
                    "delta merge != re-eval at batch {}, seed {}",
                    batch,
                    seed
                );
            }
        }
    }

    /// The fully interned maintenance loop — persistent [`ProvStore`],
    /// [`IKRelation`] caches, id-level merges — stays bit-for-bit equal to
    /// owned full re-evaluation across a random update stream.
    #[test]
    fn interned_delta_stream_equals_owned_reeval(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed.wrapping_add(0x51ed_270b));
        let (mut db, rels) = rand_db(&mut rng);
        let queries: Vec<Cq> = (0..3).map(|_| rand_cq(&mut rng, &rels)).collect();
        let mut store = ProvStore::new();
        let mut cached: Vec<IKRelation> = queries
            .iter()
            .map(|q| eval_cq_counted_interned(&db, q, EvalLimits::default(), &mut store).0)
            .collect();
        let mut fresh = 0usize;
        for batch in 0..4 {
            let delta = rand_delta(&mut rng, &db, &rels, &mut fresh);
            let out = apply_delta_with_queries_interned(&mut db, &delta, &queries, &mut store);
            for ((q, cache), d) in queries.iter().zip(&mut cached).zip(&out.deltas) {
                prop_assert!(
                    d.merge_into(&mut store, cache),
                    "retraction underflow at batch {batch} for {q:?}"
                );
                prop_assert_eq!(
                    &cache.to_krelation(&store),
                    &eval_cq(&db, q),
                    "interned delta merge != owned re-eval at batch {}, seed {}",
                    batch,
                    seed
                );
            }
        }
    }

    #[test]
    fn delta_stream_equals_full_reeval_for_random_ucqs(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed.wrapping_add(0x9e37_79b9));
        let (mut db, rels) = rand_db(&mut rng);
        let u = Ucq {
            disjuncts: (0..2).map(|_| rand_cq(&mut rng, &rels)).collect(),
        };
        let mut cached = eval_ucq(&db, &u);
        let mut fresh = 0usize;
        for batch in 0..3 {
            let delta = rand_delta(&mut rng, &db, &rels, &mut fresh);
            let deletes: HashSet<_> = delta
                .deletes
                .iter()
                .copied()
                .filter(|&a| db.locate(a).is_some())
                .collect();
            let (removed, _) = eval_ucq_retractions(&db, &u, &deletes);
            let applied = db.apply_delta(&delta);
            let inserts: HashSet<_> = applied.inserted.iter().copied().collect();
            let (added, _) = eval_ucq_additions(&db, &u, &inserts);
            let d = KRelationDelta { added, removed };
            prop_assert!(d.merge_into(&mut cached), "underflow at batch {batch}");
            prop_assert_eq!(
                &cached,
                &eval_ucq(&db, &u),
                "UCQ delta merge != re-eval at batch {}, seed {}",
                batch,
                seed
            );
        }
    }
}
