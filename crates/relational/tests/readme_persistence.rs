//! Pins the README "Durable storage & crash recovery" quickstart so the
//! documented snippet cannot rot.

use provabs_relational::storage::{shared, DurableDatabase, DurableOptions, MemVfs};
use provabs_relational::{Database, Delta};

#[test]
fn readme_persistence_quickstart() {
    let vfs = shared(MemVfs::new()); // or FileVfs::new("some/dir")?
    let mut db = Database::new();
    let r = db.add_relation("R", &["a", "b"]);
    db.insert_str(r, "t1", &["1", "x"]);

    // Persist, mutate transactionally, checkpoint.
    let mut ddb =
        DurableDatabase::create(vfs.clone(), "mydb", db, DurableOptions::default()).unwrap();
    let mut delta = Delta::new();
    delta.insert(r, "t2", provabs_relational::Tuple::parse(&["2", "y"]));
    ddb.apply_delta(&delta).unwrap(); // WAL-committed before it's acknowledged
    ddb.checkpoint().unwrap(); // fold the WAL tail into the snapshot

    // A "restarted process": recover from the files alone.
    let (re, info) = DurableDatabase::open(vfs, "mydb", DurableOptions::default()).unwrap();
    assert_eq!(info.committed_txns, 1);
    assert_eq!(re.db().len(), 2);
}
