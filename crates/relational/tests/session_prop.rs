//! Property tests for the session/epoch layer: a writer thread applies a
//! random delta stream and publishes an epoch per batch while reader
//! threads race it, pinning sessions at whatever epoch they catch. Every
//! pinned session must answer random CQs and UCQs **bit-for-bit** like an
//! oracle database holding exactly that epoch's prefix — same tuples, same
//! provenance, same [`EvalWork`] counters — under all three [`PlanMode`]s,
//! both [`Execution`] engines, and batch parallelism 1/2/8. That is the
//! determinism contract of `SessionDb`: concurrent writer progress, thread
//! count, and engine choice are all invisible to a pinned snapshot.
//!
//! Each proptest case draws one seed; everything else derives from it
//! through the deterministic `TestRng`, so failures reproduce exactly.

use proptest::prelude::*;
use proptest::TestRng;
use provabs_relational::{
    Atom, Cq, Database, Delta, EvalWork, Evaluator, Execution, KRelation, PlanMode, RelId,
    SessionDb, SessionRegistry, Term, Tuple, Ucq, Value, VarId,
};
use std::collections::HashSet;
use std::sync::Arc;

const MODES: [PlanMode; 3] = [
    PlanMode::CostBased,
    PlanMode::Greedy,
    PlanMode::WrittenOrder,
];
const ENGINES: [Execution; 2] = [Execution::Block { block_size: 4 }, Execution::Scalar];
const WORKERS: [usize; 3] = [1, 2, 8];

fn pick(rng: &mut TestRng, n: usize) -> usize {
    assert!(n > 0);
    (rng.next_u64() % n as u64) as usize
}

/// A mixed int/string domain, small enough that joins actually happen.
fn rand_value(rng: &mut TestRng) -> Value {
    match pick(rng, 6) {
        0..=3 => Value::Int(pick(rng, 4) as i64),
        4 => Value::str("a"),
        _ => Value::str("bb"),
    }
}

fn rand_tuple(rng: &mut TestRng, arity: usize) -> Tuple {
    (0..arity).map(|_| rand_value(rng)).collect()
}

/// A random database over R(a,b), S(b,c), T(c); relations may be empty.
fn rand_db(rng: &mut TestRng) -> (Database, Vec<(RelId, usize)>) {
    let mut db = Database::new();
    let r = db.add_relation("R", &["a", "b"]);
    let s = db.add_relation("S", &["b", "c"]);
    let t = db.add_relation("T", &["c"]);
    let rels = vec![(r, 2), (s, 2), (t, 1)];
    let mut label = 0usize;
    for &(rel, arity) in &rels {
        for _ in 0..pick(rng, 8) {
            db.insert(rel, &format!("t{label}"), rand_tuple(rng, arity));
            label += 1;
        }
    }
    db.build_indexes();
    (db, rels)
}

/// A random safe CQ (1–3 atoms, redrawn while the body is fully ground).
fn rand_cq(rng: &mut TestRng, rels: &[(RelId, usize)]) -> Cq {
    loop {
        let num_atoms = 1 + pick(rng, 3);
        let body: Vec<Atom> = (0..num_atoms)
            .map(|_| {
                let (rel, arity) = rels[pick(rng, rels.len())];
                let terms = (0..arity)
                    .map(|_| {
                        if pick(rng, 3) == 0 {
                            Term::Const(rand_value(rng))
                        } else {
                            Term::Var(VarId(pick(rng, 4) as u32))
                        }
                    })
                    .collect();
                Atom { rel, terms }
            })
            .collect();
        let mut vars: Vec<VarId> = body
            .iter()
            .flat_map(|a| a.terms.iter())
            .filter_map(|t| match t {
                Term::Var(v) => Some(*v),
                Term::Const(_) => None,
            })
            .collect();
        vars.sort_unstable_by_key(|v| v.0);
        vars.dedup();
        if vars.is_empty() {
            continue;
        }
        let head = (0..1 + pick(rng, vars.len().min(2)))
            .map(|_| Term::Var(vars[pick(rng, vars.len())]))
            .collect();
        return Cq::new(head, body);
    }
}

fn rand_delta(
    rng: &mut TestRng,
    db: &Database,
    rels: &[(RelId, usize)],
    fresh: &mut usize,
) -> Delta {
    let mut delta = Delta::new();
    let mut dying: HashSet<_> = HashSet::new();
    for _ in 0..(1 + pick(rng, 5)) {
        let insert = pick(rng, 2) == 0;
        let (rel, arity) = rels[pick(rng, rels.len())];
        if insert || db.relation_len(rel) == 0 {
            delta.insert(rel, format!("u{fresh}"), rand_tuple(rng, arity));
            *fresh += 1;
        } else {
            let annots = db.tuple_annots(rel);
            let a = annots[pick(rng, annots.len())];
            if dying.insert(a) {
                delta.delete(a);
            }
        }
    }
    delta
}

/// One evaluation fingerprint: answers + work counters.
fn fingerprint(db: &Database, q: &Cq, mode: PlanMode, exec: Execution) -> (KRelation, EvalWork) {
    Evaluator::new(db).plan(mode).execution(exec).eval_cq(q)
}

/// Asserts the pinned session is bit-for-bit its epoch's oracle across
/// every mode × engine × worker-count combination.
fn validate_session(s: &SessionDb, oracle: &Database, queries: &[Cq], u: &Ucq) {
    let k = s.epoch();
    assert!(
        s.database().same_state(oracle),
        "pinned epoch {k} is not its oracle's state"
    );
    for q in queries {
        for mode in MODES {
            for exec in ENGINES {
                let want = fingerprint(oracle, q, mode, exec);
                let got = fingerprint(s, q, mode, exec);
                assert_eq!(
                    got.0, want.0,
                    "answers at epoch {k} under {mode:?}/{exec:?}"
                );
                assert_eq!(got.1, want.1, "work at epoch {k} under {mode:?}/{exec:?}");
            }
        }
    }
    for mode in MODES {
        let (want_u, want_w) = Evaluator::new(oracle).plan(mode).eval_ucq(u);
        let (got_u, got_w) = Evaluator::new(s).plan(mode).eval_ucq(u);
        assert_eq!(got_u, want_u, "UCQ answers at epoch {k} under {mode:?}");
        assert_eq!(got_w, want_w, "UCQ work at epoch {k} under {mode:?}");
    }
    // Batch evaluation must be thread-count invariant on the snapshot.
    let want_batch = Evaluator::new(oracle).eval_batch(queries, 1);
    for workers in WORKERS {
        let got_batch = Evaluator::new(s).eval_batch(queries, workers);
        assert_eq!(
            got_batch, want_batch,
            "batch at epoch {k} with {workers} workers"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Writer thread + racing readers: every pinned epoch replays its
    /// oracle bit-for-bit whatever the interleaving.
    #[test]
    fn racing_readers_replay_their_pinned_epoch(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed);
        let (db0, rels) = rand_db(&mut rng);
        let queries: Vec<Cq> = (0..3).map(|_| rand_cq(&mut rng, &rels)).collect();
        let u = Ucq { disjuncts: (0..1 + pick(&mut rng, 2)).map(|_| rand_cq(&mut rng, &rels)).collect() };

        // Pre-draw the stream and its oracle prefixes.
        let mut fresh = 0usize;
        let mut oracle = db0.clone();
        let mut oracles = vec![oracle.clone()];
        let mut deltas = Vec::new();
        for _ in 0..4 {
            let d = rand_delta(&mut rng, &oracle, &rels, &mut fresh);
            oracle.apply_delta(&d);
            deltas.push(d);
            oracles.push(oracle.clone());
        }
        let last = deltas.len() as u64;

        let (registry, mut writer) = SessionRegistry::shared(db0.clone());
        std::thread::scope(|scope| {
            let reg = Arc::clone(&registry);
            let deltas = &deltas;
            scope.spawn(move || {
                let mut db = db0;
                for d in deltas {
                    db.apply_delta(d);
                    writer.publish(&db);
                }
            });
            for _ in 0..2 {
                let reg = Arc::clone(&reg);
                let (oracles, queries, u) = (&oracles, &queries, &u);
                scope.spawn(move || loop {
                    let s = reg.pin();
                    let k = s.epoch();
                    validate_session(&s, &oracles[k as usize], queries, u);
                    if k == last {
                        break;
                    }
                    std::thread::yield_now();
                });
            }
        });
        // The stream fully published; the final epoch is the full oracle.
        prop_assert_eq!(registry.epoch(), last);
        validate_session(&registry.pin(), oracles.last().unwrap(), &queries, &u);
    }
}
