//! The crash matrix: recovery must be exact at *every* write-ordering
//! boundary of the durability protocol.
//!
//! Strategy (see `storage::faulty`): a workload is first dry-run fault-free
//! against a [`FaultyVfs`] to enumerate every mutating operation and every
//! fsync it performs. The matrix then re-runs the workload once per
//! boundary with a fault injected exactly there — crash before the write,
//! a torn write keeping only a prefix, crash before the sync, and a lying
//! fsync followed by a crash — simulates the restart, reopens, and asserts
//! the recovered database bit-for-bit equal
//! ([`Database::same_state`]) to an in-memory oracle that applied exactly
//! the acknowledged transactions, with identical query results under every
//! [`PlanMode`].
//!
//! Both an insert-heavy and a delete-heavy workload go through the full
//! matrix: deletions exercise the swap-remove posting maintenance whose
//! row order is path-dependent and must survive persistence verbatim.

use provabs_relational::oracle::oracle_eval_cq;
use provabs_relational::storage::{
    encode_delta, DurableDatabase, DurableOptions, Fault, FaultyVfs, MemVfs, OpKind, OpRecord,
    RecoveryInfo, SharedVfs, StorageError, Vfs,
};
use provabs_relational::{parse_cq, Database, Delta, Evaluator, PlanMode, Tuple, Value};
use std::sync::{Arc, Mutex};

const BASE: &str = "crash";

fn opts() -> DurableOptions {
    DurableOptions {
        cache_pages: 4,
        checkpoint_every: 0,
    }
}

/// One scripted mutation, resolved against the live database when its
/// transaction is built (so the same script drives the durable run and the
/// in-memory oracle identically).
#[derive(Clone, Copy)]
enum Op {
    /// Insert `(relation, label, fields)`.
    Ins(&'static str, &'static str, &'static [&'static str]),
    /// Delete the tuple tagged `label`.
    Del(&'static str),
}

#[derive(Clone, Copy)]
enum Step {
    /// One delta = one WAL transaction.
    Txn(&'static [Op]),
    /// An explicit checkpoint (snapshot + header flip + WAL truncate).
    Checkpoint,
}

fn seed_db() -> Database {
    let mut db = Database::new();
    let r = db.add_relation("R", &["a", "b"]);
    let s = db.add_relation("S", &["b", "c"]);
    db.insert_str(r, "r1", &["1", "10"]);
    db.insert_str(r, "r2", &["2", "10"]);
    db.insert_str(r, "r3", &["1", "30"]);
    db.insert_str(r, "r4", &["3", "10"]);
    db.insert_str(r, "r5", &["4", "30"]);
    db.insert_str(r, "r6", &["5", "10"]);
    db.insert_str(s, "s1", &["10", "100"]);
    db.insert_str(s, "s2", &["30", "200"]);
    db.insert_str(s, "s3", &["10", "300"]);
    db.insert_str(s, "s4", &["30", "100"]);
    db.build_indexes();
    db
}

const INSERT_HEAVY: &[Step] = &[
    Step::Txn(&[
        Op::Ins("R", "i1", &["6", "30"]),
        Op::Ins("S", "i2", &["30", "7"]),
    ]),
    Step::Txn(&[Op::Ins("R", "i3", &["7", "10"])]),
    Step::Checkpoint,
    Step::Txn(&[
        Op::Ins("S", "i4", &["10", "8"]),
        Op::Ins("R", "i5", &["8", "30"]),
    ]),
    Step::Txn(&[Op::Del("r2"), Op::Ins("R", "i6", &["9", "10"])]),
    Step::Txn(&[Op::Ins("S", "i7", &["30", "9"])]),
];

const DELETE_HEAVY: &[Step] = &[
    Step::Txn(&[Op::Del("r1")]),
    Step::Txn(&[Op::Del("r4"), Op::Del("s2")]),
    Step::Checkpoint,
    Step::Txn(&[Op::Del("r2"), Op::Ins("R", "n1", &["9", "10"])]),
    Step::Txn(&[Op::Del("r6")]),
    Step::Checkpoint,
    Step::Txn(&[Op::Del("n1"), Op::Del("s3")]),
];

fn build_delta(db: &Database, ops: &[Op]) -> Delta {
    let mut d = Delta::new();
    for op in ops {
        match *op {
            Op::Ins(rel, label, fields) => {
                let r = db.schema().relation_id(rel).unwrap();
                d.insert(r, label, Tuple::parse(fields));
            }
            Op::Del(label) => d.delete(db.annotations().get(label).unwrap()),
        }
    }
    d
}

struct Outcome {
    /// Whether `DurableDatabase::create` returned `Ok`.
    created: bool,
    /// Transactions acknowledged (`apply_delta` returned `Ok`) before the
    /// crash — every one of them must survive recovery, and for pure
    /// crashes nothing more may.
    ok_txns: u64,
}

fn run_steps(vfs: SharedVfs, steps: &[Step]) -> Outcome {
    let mut ddb = match DurableDatabase::create(vfs, BASE, seed_db(), opts()) {
        Ok(d) => d,
        Err(_) => {
            return Outcome {
                created: false,
                ok_txns: 0,
            }
        }
    };
    let mut ok_txns = 0;
    for step in steps {
        let committed = match step {
            Step::Txn(ops) => {
                let delta = build_delta(ddb.db(), ops);
                ddb.apply_delta(&delta).map(|_| true)
            }
            Step::Checkpoint => ddb.checkpoint().map(|_| false),
        };
        match committed {
            Ok(true) => ok_txns += 1,
            Ok(false) => {}
            Err(_) => break,
        }
    }
    Outcome {
        created: true,
        ok_txns,
    }
}

/// The oracle: the seed plus the first `k` scripted transactions applied
/// purely in memory.
fn oracle_at(steps: &[Step], k: u64) -> Database {
    let mut db = seed_db();
    let mut applied = 0;
    for step in steps {
        if applied == k {
            break;
        }
        if let Step::Txn(ops) = step {
            let delta = build_delta(&db, ops);
            db.apply_delta(&delta);
            applied += 1;
        }
    }
    assert_eq!(applied, k, "oracle asked for more txns than the script has");
    db
}

/// Bit-for-bit state equality plus query equivalence under every plan mode.
fn assert_matches_oracle(recovered: &Database, oracle: &Database, ctx: &str) {
    assert!(
        recovered.same_state(oracle),
        "recovered state != oracle ({ctx})"
    );
    let q = parse_cq("Q(a, c) :- R(a, b), S(b, c)", oracle.schema()).unwrap();
    let want = oracle_eval_cq(oracle, &q);
    for mode in [
        PlanMode::CostBased,
        PlanMode::Greedy,
        PlanMode::WrittenOrder,
    ] {
        let (got, _) = Evaluator::new(recovered).plan(mode).eval_cq(&q);
        assert_eq!(got, want, "recovered eval under {mode:?} != oracle ({ctx})");
    }
}

fn faulty_pair(faults: Vec<Fault>) -> (Arc<Mutex<FaultyVfs>>, SharedVfs) {
    let faulty = Arc::new(Mutex::new(FaultyVfs::with_faults(faults)));
    let vfs: SharedVfs = faulty.clone();
    (faulty, vfs)
}

/// Runs the workload with `faults` armed, simulates the restart, reopens,
/// and checks the recovery invariant. `pure_crash` distinguishes faults
/// that only lose unsynced data (recovery must succeed and report exactly
/// the acknowledged transactions) from lying-fsync scenarios (where
/// fail-closed corruption detection is also acceptable — the durable image
/// genuinely diverged from every acknowledgement).
fn crash_and_check(steps: &[Step], faults: Vec<Fault>, pure_crash: bool, ctx: &str) {
    let (faulty, vfs) = faulty_pair(faults);
    let out = run_steps(vfs.clone(), steps);
    faulty.lock().unwrap().recover();
    match DurableDatabase::open(vfs, BASE, opts()) {
        Ok((re, info)) => {
            if pure_crash && out.created {
                assert_eq!(
                    info.committed_txns, out.ok_txns,
                    "committed != acknowledged ({ctx})"
                );
            }
            let oracle = oracle_at(steps, info.committed_txns);
            assert_matches_oracle(re.db(), &oracle, ctx);
        }
        // The crash predated the very first header commit: the database
        // never existed durably, and creation was never acknowledged.
        Err(StorageError::NotFound(_)) if !out.created => {}
        // A dropped fsync can leave a snapshot the header vouches for but
        // the platter never got (detected as corruption, or as a missing
        // snapshot file when the lie swallowed the file wholesale);
        // failing closed instead of serving wrong data is the contract.
        Err(StorageError::Corrupt(_) | StorageError::NotFound(_)) if !pure_crash => {}
        Err(e) => panic!("recovery failed ({ctx}): {e}"),
    }
}

/// Dry-runs `steps` fault-free and returns the boundary map.
fn dry_run(steps: &[Step]) -> (u64, u64, Vec<OpRecord>) {
    let (faulty, vfs) = faulty_pair(Vec::new());
    let out = run_steps(vfs, steps);
    assert!(out.created, "dry run must complete");
    let g = faulty.lock().unwrap();
    (g.write_count(), g.sync_count(), g.op_log().to_vec())
}

/// The full matrix: every mutating op gets a crash-before and (when it has
/// at least two bytes) a torn-prefix variant; every fsync gets a
/// crash-before and a lying-fsync-then-crash variant.
fn exhaustive_matrix(steps: &[Step]) {
    let (writes, syncs, log) = dry_run(steps);
    for w in 0..writes {
        crash_and_check(
            steps,
            vec![Fault::CrashBeforeWrite(w)],
            true,
            &format!("crash before mutating op {w}"),
        );
        if let Some(rec) = log
            .iter()
            .find(|r| r.kind == OpKind::Write && r.seq == w && r.len >= 2)
        {
            crash_and_check(
                steps,
                vec![Fault::TornWrite {
                    write: w,
                    keep: (rec.len / 2) as usize,
                }],
                true,
                &format!("torn write {w} ({} of {} bytes)", rec.len / 2, rec.len),
            );
        }
    }
    for s in 0..syncs {
        crash_and_check(
            steps,
            vec![Fault::CrashBeforeSync(s)],
            true,
            &format!("crash before sync {s}"),
        );
        crash_and_check(
            steps,
            vec![Fault::DropSync(s)],
            false,
            &format!("lying fsync {s} then end-of-run crash"),
        );
    }
}

#[test]
fn exhaustive_insert_heavy_crash_matrix() {
    exhaustive_matrix(INSERT_HEAVY);
}

#[test]
fn exhaustive_delete_heavy_crash_matrix() {
    exhaustive_matrix(DELETE_HEAVY);
}

// ---------------------------------------------------------------------------
// The five named protocol boundaries, pinned individually with their
// expected committed counts (the matrix above also visits each of them).
// ---------------------------------------------------------------------------

/// Writes to the WAL file, in order (data frame, commit frame, data frame,
/// commit frame, ...; `Wal::reset` shows up as a truncate, not a write).
fn wal_writes(log: &[OpRecord]) -> Vec<OpRecord> {
    log.iter()
        .filter(|r| r.kind == OpKind::Write && r.file.ends_with(".wal"))
        .cloned()
        .collect()
}

fn crash_expect(steps: &[Step], faults: Vec<Fault>, want_committed: u64, ctx: &str) {
    let (faulty, vfs) = faulty_pair(faults);
    run_steps(vfs.clone(), steps);
    faulty.lock().unwrap().recover();
    let (re, info) =
        DurableDatabase::open(vfs, BASE, opts()).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    assert_eq!(info.committed_txns, want_committed, "{ctx}");
    assert_matches_oracle(re.db(), &oracle_at(steps, want_committed), ctx);
}

#[test]
fn crash_point_pre_wal_append() {
    let (_, _, log) = dry_run(INSERT_HEAVY);
    let first = wal_writes(&log)[0].seq;
    crash_expect(
        INSERT_HEAVY,
        vec![Fault::CrashBeforeWrite(first)],
        0,
        "crash before txn 1's first data frame",
    );
}

#[test]
fn crash_point_mid_frame() {
    let (_, _, log) = dry_run(INSERT_HEAVY);
    let data = &wal_writes(&log)[0];
    crash_expect(
        INSERT_HEAVY,
        vec![Fault::TornWrite {
            write: data.seq,
            keep: (data.len / 2) as usize,
        }],
        0,
        "torn data frame of txn 1",
    );
}

#[test]
fn crash_point_post_append_pre_commit_marker() {
    let (_, _, log) = dry_run(INSERT_HEAVY);
    // Data frames are synced before the commit frame is written, so this
    // crash leaves a durable, fully-checksummed, *uncommitted* transaction
    // in the log — recovery must discard it wholesale.
    let commit = wal_writes(&log)[1].seq;
    crash_expect(
        INSERT_HEAVY,
        vec![Fault::CrashBeforeWrite(commit)],
        0,
        "crash after txn 1's data sync, before its commit marker",
    );
}

#[test]
fn crash_point_post_commit_pre_checkpoint() {
    let (_, _, log) = dry_run(INSERT_HEAVY);
    // The mid-script checkpoint targets the inactive snapshot file
    // (`.snap1`; creation checkpointed into `.snap0`), so its first write
    // is the boundary right after two committed transactions.
    let first_snap1 = log
        .iter()
        .find(|r| r.kind == OpKind::Write && r.file.ends_with(".snap1"))
        .unwrap()
        .seq;
    crash_expect(
        INSERT_HEAVY,
        vec![Fault::CrashBeforeWrite(first_snap1)],
        2,
        "crash after two committed txns, before their checkpoint",
    );
}

#[test]
fn crash_point_mid_checkpoint() {
    let (_, _, log) = dry_run(INSERT_HEAVY);
    let snap1 = log
        .iter()
        .find(|r| r.kind == OpKind::Write && r.file.ends_with(".snap1"))
        .unwrap();
    // Torn snapshot page, lost snapshot sync, and crash before the header
    // flip: in every case the inactive file takes the damage and the two
    // committed transactions replay from the still-active side.
    crash_expect(
        INSERT_HEAVY,
        vec![Fault::TornWrite {
            write: snap1.seq,
            keep: (snap1.len / 2) as usize,
        }],
        2,
        "torn snapshot page mid-checkpoint",
    );
    let snap1_sync = log
        .iter()
        .find(|r| r.kind == OpKind::Sync && r.file.ends_with(".snap1"))
        .unwrap()
        .seq;
    crash_expect(
        INSERT_HEAVY,
        vec![Fault::CrashBeforeSync(snap1_sync)],
        2,
        "crash before the snapshot sync mid-checkpoint",
    );
    let header_flip = log
        .iter()
        .filter(|r| r.kind == OpKind::Write && r.file.ends_with(".db"))
        .nth(1)
        .unwrap()
        .seq;
    crash_expect(
        INSERT_HEAVY,
        vec![Fault::CrashBeforeWrite(header_flip)],
        2,
        "crash after the snapshot sync, before the header flip",
    );
}

/// Regression for the delete mutation-order hazard: a crash at any write
/// of a checkpoint that follows swap-remove deletions must recover posting
/// lists in their exact historical (path-dependent) row order — compared
/// verbatim, not as sets.
#[test]
fn torn_checkpoint_after_delete_preserves_posting_order() {
    const STEPS: &[Step] = &[
        Step::Txn(&[Op::Del("r1")]),
        Step::Txn(&[Op::Del("r4")]),
        Step::Checkpoint,
    ];
    let (_, _, log) = dry_run(STEPS);
    let oracle = oracle_at(STEPS, 2);
    let snap_writes: Vec<OpRecord> = log
        .iter()
        .filter(|r| r.kind == OpKind::Write && r.file.ends_with(".snap1"))
        .cloned()
        .collect();
    assert!(!snap_writes.is_empty());
    for rec in &snap_writes {
        for faults in [
            vec![Fault::CrashBeforeWrite(rec.seq)],
            vec![Fault::TornWrite {
                write: rec.seq,
                keep: (rec.len / 2) as usize,
            }],
        ] {
            let (faulty, vfs) = faulty_pair(faults);
            run_steps(vfs.clone(), STEPS);
            faulty.lock().unwrap().recover();
            let (re, info) = DurableDatabase::open(vfs, BASE, opts()).unwrap();
            assert_eq!(info.committed_txns, 2, "both deletes were acknowledged");
            assert_matches_oracle(re.db(), &oracle, "checkpoint crash after deletes");
            // The explicit posting-order check `same_state` already
            // implies, spelled out against the oracle's swap-remove
            // history for the collision-heavy column.
            let r = oracle.schema().relation_id("R").unwrap();
            for v in [Value::Int(10), Value::Int(30)] {
                assert_eq!(
                    re.db().rows_matching(r, 1, &v),
                    oracle.rows_matching(r, 1, &v),
                    "posting row order diverged from the in-memory history at {v}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Media corruption (as opposed to crashes): flipped bits anywhere in the
// durable image must be detected, never served.
// ---------------------------------------------------------------------------

/// Runs the insert-heavy workload to completion (checkpoint + WAL tail)
/// and returns the durable bytes of every database file.
fn durable_files() -> Vec<(String, Vec<u8>)> {
    let (faulty, vfs) = faulty_pair(Vec::new());
    let out = run_steps(vfs, INSERT_HEAVY);
    assert!(out.created && out.ok_txns == 5);
    let g = faulty.lock().unwrap();
    ["db", "snap0", "snap1", "wal"]
        .iter()
        .filter_map(|ext| {
            let name = format!("{BASE}.{ext}");
            g.durable_image(&name).map(|b| (name.clone(), b.to_vec()))
        })
        .collect()
}

fn reopen_with_flip(
    files: &[(String, Vec<u8>)],
    file: &str,
    offset: u64,
) -> Result<(DurableDatabase, RecoveryInfo), StorageError> {
    let mut mem = MemVfs::new();
    for (name, bytes) in files {
        mem.write_at(name, 0, bytes).unwrap();
    }
    mem.corrupt_byte(file, offset, 0x40);
    DurableDatabase::open(provabs_relational::storage::shared(mem), BASE, opts())
}

/// Every flipped bit in the header page or the active snapshot pages is a
/// hard `Corrupt` — the pager's seeded checksums plus the zero-padding
/// check leave no blind spots.
#[test]
fn flipped_bits_in_pages_fail_closed() {
    let files = durable_files();
    for name in [format!("{BASE}.db"), format!("{BASE}.snap1")] {
        let len = files
            .iter()
            .find(|(f, _)| *f == name)
            .map(|(_, b)| b.len() as u64)
            .unwrap();
        assert!(len > 0);
        for offset in (0..len).step_by(7) {
            match reopen_with_flip(&files, &name, offset) {
                Err(StorageError::Corrupt(_)) => {}
                other => panic!("flip at {name}:{offset} not detected: {other:?}"),
            }
        }
    }
}

/// Flipped bits in WAL frames are detected as corruption everywhere except
/// inside a frame-length field, where an absurd length is indistinguishable
/// from a torn tail; even there recovery must stay consistent — it may
/// only lose a committed suffix, never serve a wrong state.
#[test]
fn flipped_bits_in_wal_frames_fail_closed() {
    let files = durable_files();
    let name = format!("{BASE}.wal");
    let wal_len = files
        .iter()
        .find(|(f, _)| *f == name)
        .map(|(_, b)| b.len() as u64)
        .unwrap();
    // Reconstruct the frame layout analytically: the WAL holds the three
    // post-checkpoint transactions, each as one data frame (21-byte header
    // + payload) and one commit frame (21-byte header, no payload). The
    // length field occupies bytes 9..13 of each frame header.
    let mut len_fields = Vec::new();
    let mut at = 0u64;
    for k in [3u64, 4, 5] {
        let payload = encode_delta(&delta_of_txn(k)).len() as u64;
        len_fields.push(at + 9..at + 13); // data frame
        at += 21 + payload;
        len_fields.push(at + 9..at + 13); // commit frame
        at += 21;
    }
    assert_eq!(at, wal_len, "analytic frame layout must match the file");
    let mut corrupt_detected = 0u64;
    for offset in 0..wal_len {
        let in_len_field = len_fields.iter().any(|r| r.contains(&offset));
        match reopen_with_flip(&files, &name, offset) {
            Err(StorageError::Corrupt(_)) => corrupt_detected += 1,
            Ok((re, info)) if in_len_field => {
                // Torn-tail misread: a committed suffix was dropped, but
                // what remains must still be exactly the oracle prefix.
                assert!(info.committed_txns < 5, "flip at {offset} went unnoticed");
                assert_matches_oracle(
                    re.db(),
                    &oracle_at(INSERT_HEAVY, info.committed_txns),
                    &format!("torn-tail misread at {offset}"),
                );
            }
            other => panic!("flip at {name}:{offset} not detected: {other:?}"),
        }
    }
    assert!(
        corrupt_detected > wal_len * 3 / 4,
        "checksums should catch the overwhelming majority of flips"
    );
}

/// The delta of scripted transaction `k` (1-based), for analytic WAL
/// layout reconstruction.
fn delta_of_txn(k: u64) -> Delta {
    let db = oracle_at(INSERT_HEAVY, k - 1);
    let mut seen = 0;
    for step in INSERT_HEAVY {
        if let Step::Txn(ops) = step {
            seen += 1;
            if seen == k {
                return build_delta(&db, ops);
            }
        }
    }
    panic!("no txn {k} in the script");
}
