//! Property tests for the durable storage layer: after persisting a random
//! delta stream over a random mixed int/string database — with a crash
//! injected at a random write-ordering boundary — the reopened database
//! must be bit-for-bit [`Database::same_state`] with an in-memory oracle
//! that applied exactly the acknowledged transactions, and must evaluate
//! random conjunctive queries identically to the naive owned-value oracle
//! under every [`PlanMode`].
//!
//! Generators mirror `storage_prop.rs`; each proptest case draws one seed
//! and derives everything (database, stream, checkpoint placement, the
//! crash point itself) from the deterministic `TestRng`, so failures
//! reproduce exactly.

use proptest::prelude::*;
use proptest::TestRng;
use provabs_relational::oracle::oracle_eval_cq;
use provabs_relational::storage::{
    DurableDatabase, DurableOptions, Fault, FaultyVfs, OpKind, OpRecord, SharedVfs, StorageError,
};
use provabs_relational::{
    Atom, Cq, Database, Delta, Evaluator, PlanMode, RelId, Term, Tuple, Value, VarId,
};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

const BASE: &str = "prop";

fn opts() -> DurableOptions {
    DurableOptions {
        cache_pages: 4,
        checkpoint_every: 0,
    }
}

fn pick(rng: &mut TestRng, n: usize) -> usize {
    assert!(n > 0);
    (rng.next_u64() % n as u64) as usize
}

/// A mixed int/string domain, small enough that joins actually happen and
/// string/id width differences are exercised.
fn rand_value(rng: &mut TestRng) -> Value {
    match pick(rng, 7) {
        0..=3 => Value::Int(pick(rng, 4) as i64),
        4 => Value::str("a"),
        5 => Value::str("longer-string-value"),
        _ => Value::str("bb"),
    }
}

fn rand_tuple(rng: &mut TestRng, arity: usize) -> Tuple {
    (0..arity).map(|_| rand_value(rng)).collect()
}

/// A random database over R(a,b), S(b,c), T(c).
fn rand_db(rng: &mut TestRng) -> (Database, Vec<(RelId, usize)>) {
    let mut db = Database::new();
    let r = db.add_relation("R", &["a", "b"]);
    let s = db.add_relation("S", &["b", "c"]);
    let t = db.add_relation("T", &["c"]);
    let rels = vec![(r, 2), (s, 2), (t, 1)];
    let mut label = 0usize;
    for &(rel, arity) in &rels {
        for _ in 0..(3 + pick(rng, 8)) {
            db.insert(rel, &format!("t{label}"), rand_tuple(rng, arity));
            label += 1;
        }
    }
    db.build_indexes();
    (db, rels)
}

/// A random CQ over the fixed schema (1–3 atoms; head = non-empty subset of
/// the body's variables). Mirrors `storage_prop.rs`.
fn rand_cq(rng: &mut TestRng, rels: &[(RelId, usize)]) -> Cq {
    loop {
        let num_atoms = 1 + pick(rng, 3);
        let body: Vec<Atom> = (0..num_atoms)
            .map(|_| {
                let (rel, arity) = rels[pick(rng, rels.len())];
                let terms = (0..arity)
                    .map(|_| {
                        if pick(rng, 4) == 0 {
                            Term::Const(rand_value(rng))
                        } else {
                            Term::Var(VarId(pick(rng, 4) as u32))
                        }
                    })
                    .collect();
                Atom { rel, terms }
            })
            .collect();
        let mut vars: Vec<VarId> = body
            .iter()
            .flat_map(|a| a.terms.iter())
            .filter_map(|t| match t {
                Term::Var(v) => Some(*v),
                Term::Const(_) => None,
            })
            .collect();
        vars.sort_unstable_by_key(|v| v.0);
        vars.dedup();
        if vars.is_empty() {
            continue; // constant-only body: draw again
        }
        let head_len = 1 + pick(rng, vars.len().min(2));
        let head = (0..head_len)
            .map(|_| Term::Var(vars[pick(rng, vars.len())]))
            .collect();
        return Cq::new(head, body);
    }
}

fn rand_delta(
    rng: &mut TestRng,
    db: &Database,
    rels: &[(RelId, usize)],
    fresh: &mut usize,
) -> Delta {
    let mut delta = Delta::new();
    let mut dying: HashSet<_> = HashSet::new();
    for _ in 0..(1 + pick(rng, 6)) {
        let insert = pick(rng, 2) == 0;
        let (rel, arity) = rels[pick(rng, rels.len())];
        if insert || db.relation_len(rel) == 0 {
            delta.insert(rel, format!("u{fresh}"), rand_tuple(rng, arity));
            *fresh += 1;
        } else {
            let annots = db.tuple_annots(rel);
            let a = annots[pick(rng, annots.len())];
            if dying.insert(a) {
                delta.delete(a);
            }
        }
    }
    delta
}

enum StreamOp {
    Txn(Delta),
    Checkpoint,
}

/// Draws a random stream of transactions with checkpoints sprinkled in,
/// evolving `twin` alongside so every delta is valid against the state it
/// will meet (fresh labels, deletions of live tuples only).
fn rand_stream(rng: &mut TestRng, twin: &mut Database, rels: &[(RelId, usize)]) -> Vec<StreamOp> {
    let mut ops = Vec::new();
    let mut fresh = 0usize;
    for _ in 0..(3 + pick(rng, 5)) {
        if pick(rng, 5) == 0 {
            ops.push(StreamOp::Checkpoint);
        } else {
            let delta = rand_delta(rng, twin, rels, &mut fresh);
            twin.apply_delta(&delta);
            ops.push(StreamOp::Txn(delta));
        }
    }
    ops
}

/// Replays the stream against a durable database, stopping at the first
/// storage error (the injected crash). Returns `None` if creation itself
/// crashed, otherwise the number of acknowledged transactions.
fn run_stream(vfs: SharedVfs, seed: &Database, ops: &[StreamOp]) -> Option<u64> {
    let mut ddb = DurableDatabase::create(vfs, BASE, seed.clone(), opts()).ok()?;
    let mut acked = 0;
    for op in ops {
        let committed = match op {
            StreamOp::Txn(delta) => ddb.apply_delta(delta).map(|_| true),
            StreamOp::Checkpoint => ddb.checkpoint().map(|_| false),
        };
        match committed {
            Ok(true) => acked += 1,
            Ok(false) => {}
            Err(_) => break,
        }
    }
    Some(acked)
}

/// The seed plus the first `k` transactions of the stream, in memory.
fn oracle_at(seed: &Database, ops: &[StreamOp], k: u64) -> Database {
    let mut db = seed.clone();
    let mut applied = 0;
    for op in ops {
        if applied == k {
            break;
        }
        if let StreamOp::Txn(delta) = op {
            db.apply_delta(delta);
            applied += 1;
        }
    }
    assert_eq!(applied, k);
    db
}

fn faulty_pair(faults: Vec<Fault>) -> (Arc<Mutex<FaultyVfs>>, SharedVfs) {
    let faulty = Arc::new(Mutex::new(FaultyVfs::with_faults(faults)));
    let vfs: SharedVfs = faulty.clone();
    (faulty, vfs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Clean shutdown and reopen: the recovered database equals the live
    /// one bit for bit and answers random queries exactly like the naive
    /// oracle, under every plan mode.
    #[test]
    fn clean_reopen_is_bit_for_bit(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed);
        let (db, rels) = rand_db(&mut rng);
        let mut twin = db.clone();
        let ops = rand_stream(&mut rng, &mut twin, &rels);
        let txns = ops.iter().filter(|o| matches!(o, StreamOp::Txn(_))).count() as u64;

        let (_, vfs) = faulty_pair(Vec::new());
        prop_assert_eq!(run_stream(vfs.clone(), &db, &ops), Some(txns));
        let (re, info) = DurableDatabase::open(vfs, BASE, opts()).unwrap();
        prop_assert_eq!(info.committed_txns, txns);
        prop_assert!(re.db().same_state(&twin), "clean reopen != live state, seed {}", seed);
        for _ in 0..2 {
            let q = rand_cq(&mut rng, &rels);
            let want = oracle_eval_cq(&twin, &q);
            for mode in [PlanMode::CostBased, PlanMode::Greedy, PlanMode::WrittenOrder] {
                let (got, _) = Evaluator::new(re.db()).plan(mode).eval_cq(&q);
                prop_assert_eq!(&got, &want, "mode {:?} != oracle, seed {}", mode, seed);
            }
        }
    }

    /// Crash at a random write-ordering boundary: recovery lands exactly on
    /// the acknowledged prefix of the stream and evaluates like the oracle.
    #[test]
    fn crash_at_random_boundary_recovers_the_acknowledged_prefix(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed.wrapping_add(0xd15c_0b07));
        let (db, rels) = rand_db(&mut rng);
        let mut twin = db.clone();
        let ops = rand_stream(&mut rng, &mut twin, &rels);
        let txns = ops.iter().filter(|o| matches!(o, StreamOp::Txn(_))).count() as u64;

        // Dry-run to map the boundaries, then aim a random crash at one.
        let (faulty, vfs) = faulty_pair(Vec::new());
        prop_assert_eq!(run_stream(vfs, &db, &ops), Some(txns));
        let (writes, syncs, log) = {
            let g = faulty.lock().unwrap();
            (g.write_count(), g.sync_count(), g.op_log().to_vec())
        };
        let fault = match pick(&mut rng, 3) {
            0 => Fault::CrashBeforeWrite(pick(&mut rng, writes as usize) as u64),
            1 => {
                let writes_only: Vec<&OpRecord> =
                    log.iter().filter(|r| r.kind == OpKind::Write).collect();
                let rec = writes_only[pick(&mut rng, writes_only.len())];
                Fault::TornWrite { write: rec.seq, keep: (rec.len / 2) as usize }
            }
            _ => Fault::CrashBeforeSync(pick(&mut rng, syncs as usize) as u64),
        };

        let (faulty, vfs) = faulty_pair(vec![fault]);
        let acked = run_stream(vfs.clone(), &db, &ops);
        faulty.lock().unwrap().recover();
        match (DurableDatabase::open(vfs, BASE, opts()), acked) {
            (Ok((re, info)), acked) => {
                if let Some(acked) = acked {
                    prop_assert_eq!(
                        info.committed_txns, acked,
                        "recovered txns != acknowledged, fault {:?}, seed {}", fault, seed
                    );
                }
                let oracle = oracle_at(&db, &ops, info.committed_txns);
                prop_assert!(
                    re.db().same_state(&oracle),
                    "recovered state != oracle at {} txns, fault {:?}, seed {}",
                    info.committed_txns, fault, seed
                );
                for _ in 0..2 {
                    let q = rand_cq(&mut rng, &rels);
                    let want = oracle_eval_cq(&oracle, &q);
                    for mode in [PlanMode::CostBased, PlanMode::Greedy, PlanMode::WrittenOrder] {
                        let (got, _) = Evaluator::new(re.db()).plan(mode).eval_cq(&q);
                        prop_assert_eq!(
                            &got, &want,
                            "mode {:?} != oracle, fault {:?}, seed {}", mode, fault, seed
                        );
                    }
                }
            }
            // The crash predated the first durable header commit: the
            // database never existed and creation was never acknowledged.
            (Err(StorageError::NotFound(_)), None) => {}
            (Err(e), acked) => {
                panic!("recovery failed (fault {fault:?}, acked {acked:?}, seed {seed}): {e}");
            }
        }
    }
}
