//! Property tests pinning the cost-based query planner down: for random
//! mixed int/string databases, random CQs/UCQs and random delta streams,
//! evaluation under every [`PlanMode`] must be bit-for-bit equal — tuples
//! *and* provenance polynomials — to written-order evaluation and to the
//! structurally independent naive oracle (`provabs_relational::oracle`).
//! The plan itself must always be a valid permutation of the body and
//! identical across repeated planning (content determinism).
//!
//! Each proptest case draws one seed; everything else derives from it
//! through the deterministic `TestRng`, so failures reproduce exactly.

use proptest::prelude::*;
use proptest::TestRng;
use provabs_relational::oracle::{oracle_eval_cq, oracle_eval_ucq};
use provabs_relational::{
    plan_cq, Atom, Cq, Database, Delta, Evaluator, KRelation, KRelationDelta, PlanMode, RelId,
    Term, Tuple, Ucq, Updater, Value, VarId,
};
use provabs_semiring::ProvStore;
use std::collections::HashSet;

const MODES: [PlanMode; 3] = [
    PlanMode::CostBased,
    PlanMode::Greedy,
    PlanMode::WrittenOrder,
];

fn pick(rng: &mut TestRng, n: usize) -> usize {
    assert!(n > 0);
    (rng.next_u64() % n as u64) as usize
}

/// A mixed int/string domain, small enough that joins actually happen.
fn rand_value(rng: &mut TestRng) -> Value {
    match pick(rng, 7) {
        0..=3 => Value::Int(pick(rng, 4) as i64),
        4 => Value::str("a"),
        5 => Value::str("longer-string-value"),
        _ => Value::str("bb"),
    }
}

fn rand_tuple(rng: &mut TestRng, arity: usize) -> Tuple {
    (0..arity).map(|_| rand_value(rng)).collect()
}

/// A random database over R(a,b), S(b,c), T(c). Relations may come out
/// empty (a case the planner must survive).
fn rand_db(rng: &mut TestRng) -> (Database, Vec<(RelId, usize)>) {
    let mut db = Database::new();
    let r = db.add_relation("R", &["a", "b"]);
    let s = db.add_relation("S", &["b", "c"]);
    let t = db.add_relation("T", &["c"]);
    let rels = vec![(r, 2), (s, 2), (t, 1)];
    let mut label = 0usize;
    for &(rel, arity) in &rels {
        for _ in 0..pick(rng, 10) {
            db.insert(rel, &format!("t{label}"), rand_tuple(rng, arity));
            label += 1;
        }
    }
    db.build_indexes();
    (db, rels)
}

/// A random CQ (1–4 atoms). Unlike the storage properties, constant-only
/// *atoms* are allowed (the planner must order them too); only a fully
/// ground body is redrawn, because a safe head needs a variable.
fn rand_cq(rng: &mut TestRng, rels: &[(RelId, usize)]) -> Cq {
    loop {
        let num_atoms = 1 + pick(rng, 4);
        let body: Vec<Atom> = (0..num_atoms)
            .map(|_| {
                let (rel, arity) = rels[pick(rng, rels.len())];
                let terms = (0..arity)
                    .map(|_| {
                        if pick(rng, 3) == 0 {
                            Term::Const(rand_value(rng))
                        } else {
                            Term::Var(VarId(pick(rng, 4) as u32))
                        }
                    })
                    .collect();
                Atom { rel, terms }
            })
            .collect();
        let mut vars: Vec<VarId> = body
            .iter()
            .flat_map(|a| a.terms.iter())
            .filter_map(|t| match t {
                Term::Var(v) => Some(*v),
                Term::Const(_) => None,
            })
            .collect();
        vars.sort_unstable_by_key(|v| v.0);
        vars.dedup();
        if vars.is_empty() {
            continue; // fully ground body: no safe head exists
        }
        let head_len = 1 + pick(rng, vars.len().min(2));
        let head = (0..head_len)
            .map(|_| Term::Var(vars[pick(rng, vars.len())]))
            .collect();
        return Cq::new(head, body);
    }
}

fn rand_delta(
    rng: &mut TestRng,
    db: &Database,
    rels: &[(RelId, usize)],
    fresh: &mut usize,
) -> Delta {
    let mut delta = Delta::new();
    let mut dying: HashSet<_> = HashSet::new();
    for _ in 0..(1 + pick(rng, 6)) {
        let insert = pick(rng, 2) == 0;
        let (rel, arity) = rels[pick(rng, rels.len())];
        if insert || db.relation_len(rel) == 0 {
            delta.insert(rel, format!("u{fresh}"), rand_tuple(rng, arity));
            *fresh += 1;
        } else {
            let annots = db.tuple_annots(rel);
            let a = annots[pick(rng, annots.len())];
            if dying.insert(a) {
                delta.delete(a);
            }
        }
    }
    delta
}

/// The plan must visit every atom exactly once, and planning twice must
/// yield the identical plan (content determinism).
fn assert_plan_valid(db: &Database, q: &Cq, mode: PlanMode) {
    let plan = plan_cq(db, q, mode, None);
    let mut order = plan.atom_order();
    assert_eq!(plan_cq(db, q, mode, None), plan, "plan not deterministic");
    order.sort_unstable();
    assert_eq!(order, (0..q.body.len()).collect::<Vec<_>>(), "{mode:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every plan mode produces the identical K-relation — tuples and
    /// provenance polynomials — and matches the naive oracle.
    #[test]
    fn planned_cq_eval_is_mode_invariant_and_matches_oracle(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed);
        let (db, rels) = rand_db(&mut rng);
        for _ in 0..4 {
            let q = rand_cq(&mut rng, &rels);
            let oracle = oracle_eval_cq(&db, &q);
            for mode in MODES {
                assert_plan_valid(&db, &q, mode);
                let (out, work) = Evaluator::new(&db).plan(mode).eval_cq(&q);
                prop_assert_eq!(
                    &out, &oracle,
                    "{:?} != oracle, seed {}, query {:?}", mode, seed, q
                );
                // A dead-constant body short-circuits before planning;
                // otherwise exactly one plan is recorded.
                prop_assert!(work.plan.queries_planned <= 1);
                if work.rows_examined > 0 {
                    prop_assert_eq!(work.plan.queries_planned, 1);
                }
            }
        }
    }

    /// UCQ evaluation is mode-invariant too (each disjunct planned
    /// independently), including the summed provenance — and so is the UCQ
    /// delta cycle (retractions before, additions after the batch applies).
    #[test]
    fn planned_ucq_eval_and_delta_are_mode_invariant(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed.wrapping_add(0xdead_beef));
        let (db, rels) = rand_db(&mut rng);
        let u = Ucq { disjuncts: (0..1 + pick(&mut rng, 3)).map(|_| rand_cq(&mut rng, &rels)).collect() };
        let oracle = oracle_eval_ucq(&db, &u);
        for mode in MODES {
            let mut store = ProvStore::new();
            let out = Evaluator::new(&db)
                .plan(mode)
                .interned(&mut store)
                .eval_ucq(&u)
                .0
                .to_krelation(&store);
            prop_assert_eq!(&out, &oracle, "{:?} != oracle, seed {}", mode, seed);
        }
        let mut fresh = 0usize;
        let delta = rand_delta(&mut rng, &db, &rels, &mut fresh);
        for mode in MODES {
            let mut db = db.clone();
            let mut cached = oracle.clone();
            let deletes: HashSet<_> = delta
                .deletes
                .iter()
                .copied()
                .filter(|&a| db.locate(a).is_some())
                .collect();
            let (removed, _) = Evaluator::new(&db).plan(mode).retractions_ucq(&u, &deletes);
            let applied = db.apply_delta(&delta);
            let inserts: HashSet<_> = applied.inserted.iter().copied().collect();
            let (added, _) = Evaluator::new(&db).plan(mode).additions_ucq(&u, &inserts);
            let d = KRelationDelta { added, removed };
            prop_assert!(d.merge_into(&mut cached), "underflow under {:?}", mode);
            prop_assert_eq!(
                &cached,
                &oracle_eval_ucq(&db, &u),
                "UCQ delta merge != oracle under {:?}, seed {}", mode, seed
            );
        }
    }

    /// Random delta streams: the maintained cache under every plan mode is
    /// bit-for-bit equal to the oracle's re-evaluation after every batch.
    #[test]
    fn planned_delta_streams_match_oracle(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::for_case(seed.wrapping_add(0x01a1_1e70));
        let (db0, rels) = rand_db(&mut rng);
        let queries: Vec<Cq> = (0..2).map(|_| rand_cq(&mut rng, &rels)).collect();
        // One database clone per mode: each replays the same batches.
        let mut dbs: Vec<Database> = MODES.iter().map(|_| db0.clone()).collect();
        let mut caches: Vec<Vec<KRelation>> = MODES
            .iter()
            .zip(&dbs)
            .map(|(&mode, db)| {
                queries
                    .iter()
                    .map(|q| Evaluator::new(db).plan(mode).eval_cq(q).0)
                    .collect()
            })
            .collect();
        let mut fresh = 0usize;
        for batch in 0..4 {
            // Draw the batch once against the first clone (all clones hold
            // identical content, so the delta applies to every one).
            let delta = rand_delta(&mut rng, &dbs[0], &rels, &mut fresh);
            for ((&mode, db), cached) in MODES.iter().zip(&mut dbs).zip(&mut caches) {
                let out = Updater::new().plan(mode).apply(db, &delta, &queries);
                for ((q, cache), d) in queries.iter().zip(cached.iter_mut()).zip(&out.deltas) {
                    prop_assert!(
                        d.merge_into(cache),
                        "retraction underflow at batch {} under {:?} for {:?}", batch, mode, q
                    );
                    prop_assert_eq!(
                        &*cache,
                        &oracle_eval_cq(db, q),
                        "delta merge != oracle at batch {} under {:?}, seed {}", batch, mode, seed
                    );
                }
            }
        }
    }
}
