//! Constructing abstraction trees.

use crate::{AbstractionTree, NodeId};
use provabs_semiring::AnnotId;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Incremental builder for [`AbstractionTree`]s.
///
/// Nodes are addressed by their (unique) labels; the root is fixed at
/// construction and children are attached with [`TreeBuilder::add_child`].
#[derive(Debug)]
pub struct TreeBuilder {
    labels: Vec<AnnotId>,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    by_label: HashMap<AnnotId, NodeId>,
}

impl TreeBuilder {
    /// Starts a tree with the given root label.
    pub fn new(root_label: AnnotId) -> Self {
        Self {
            labels: vec![root_label],
            parent: vec![None],
            children: vec![Vec::new()],
            by_label: [(root_label, NodeId(0))].into_iter().collect(),
        }
    }

    /// Attaches `child` under `parent` (both given by label).
    ///
    /// # Panics
    /// Panics if `parent` is unknown or `child` already exists (labels are
    /// unique, Def. 2.6).
    pub fn add_child(&mut self, parent: AnnotId, child: AnnotId) -> NodeId {
        let p = *self
            .by_label
            .get(&parent)
            .unwrap_or_else(|| panic!("unknown parent label {parent}"));
        assert!(
            !self.by_label.contains_key(&child),
            "label {child} already in tree"
        );
        let id = NodeId(self.labels.len() as u32);
        self.labels.push(child);
        self.parent.push(Some(p));
        self.children.push(Vec::new());
        self.children[p.idx()].push(id);
        self.by_label.insert(child, id);
        id
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether only the root exists.
    pub fn is_empty(&self) -> bool {
        self.labels.len() == 1
    }

    /// Finalizes the tree, computing depths, leaf counts and leaf spans.
    pub fn build(self) -> AbstractionTree {
        AbstractionTree::finalize(self.labels, self.parent, self.children, self.by_label)
    }
}

/// Specification for [`balanced_tree`].
#[derive(Debug, Clone)]
pub struct BalancedTreeSpec {
    /// Height of the tree: every leaf sits at this depth (root = 0). Must be
    /// at least 1.
    pub height: u32,
    /// Shuffle seed; the same seed reproduces the same tree.
    pub seed: u64,
    /// Whether to shuffle the leaves before partitioning (the paper's TPC-H
    /// tree divides tuples "randomly ... into subcategories evenly").
    pub shuffle: bool,
}

impl Default for BalancedTreeSpec {
    fn default() -> Self {
        Self {
            height: 5,
            seed: 0,
            shuffle: true,
        }
    }
}

/// Builds a balanced abstraction tree over `leaves`: all leaves at depth
/// `spec.height`, inner nodes splitting their leaf set into nearly equal
/// parts with a uniform branching factor per level.
///
/// `make_label` must return a fresh unique label for every inner node (e.g.
/// interning `"cat_17"` into the database registry).
///
/// This mirrors the paper's §5.1 TPC-H tree: "a single relation 'lineitem',
/// randomly divided into subcategories evenly throughout the tree".
///
/// # Panics
/// Panics if `leaves` is empty or `spec.height == 0`.
pub fn balanced_tree(
    leaves: &[AnnotId],
    spec: &BalancedTreeSpec,
    mut make_label: impl FnMut() -> AnnotId,
) -> AbstractionTree {
    assert!(!leaves.is_empty(), "balanced_tree needs at least one leaf");
    assert!(spec.height >= 1, "height must be >= 1");
    let mut order: Vec<AnnotId> = leaves.to_vec();
    if spec.shuffle {
        let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
        order.shuffle(&mut rng);
    }
    let root = make_label();
    let mut b = TreeBuilder::new(root);
    // The branching factor: with `height` levels below the root we need
    // roughly n^(1/height) children per node to place all leaves at the
    // bottom level.
    let n = order.len() as f64;
    let branch = n.powf(1.0 / f64::from(spec.height)).ceil().max(2.0) as usize;
    build_level(&mut b, root, &order, spec.height, branch, &mut make_label);
    b.build()
}

fn build_level(
    b: &mut TreeBuilder,
    parent: AnnotId,
    leaves: &[AnnotId],
    levels_left: u32,
    branch: usize,
    make_label: &mut impl FnMut() -> AnnotId,
) {
    if levels_left == 1 {
        for &leaf in leaves {
            b.add_child(parent, leaf);
        }
        return;
    }
    // Split into at most `branch` nearly equal chunks. Chains of unary inner
    // nodes are used when there are fewer leaves than levels, keeping all
    // leaves at uniform depth.
    let chunks = branch.min(leaves.len()).max(1);
    let per = leaves.len().div_ceil(chunks);
    for chunk in leaves.chunks(per.max(1)) {
        let inner = make_label();
        b.add_child(parent, inner);
        build_level(b, inner, chunk, levels_left - 1, branch, make_label);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provabs_semiring::AnnotRegistry;

    fn mk_leaves(reg: &mut AnnotRegistry, n: usize) -> Vec<AnnotId> {
        (0..n).map(|i| reg.intern(&format!("leaf{i}"))).collect()
    }

    #[test]
    fn balanced_tree_places_all_leaves_at_height() {
        let mut reg = AnnotRegistry::new();
        let leaves = mk_leaves(&mut reg, 100);
        let mut counter = 0u32;
        let mut reg2 = reg.clone();
        let t = balanced_tree(
            &leaves,
            &BalancedTreeSpec {
                height: 3,
                seed: 7,
                shuffle: true,
            },
            || {
                counter += 1;
                reg2.intern(&format!("inner{counter}"))
            },
        );
        assert_eq!(t.num_leaves(), 100);
        assert_eq!(t.height(), 3);
        for &leaf in t.leaves() {
            let node = t.node_by_label(leaf).unwrap();
            assert_eq!(t.depth(node), 3);
        }
        assert_eq!(t.leaf_count(t.root()), 100);
    }

    #[test]
    fn balanced_tree_is_deterministic_per_seed() {
        let mut reg = AnnotRegistry::new();
        let leaves = mk_leaves(&mut reg, 40);
        let build = |seed: u64| {
            let mut c = 0u32;
            let mut r = reg.clone();
            let t = balanced_tree(
                &leaves,
                &BalancedTreeSpec {
                    height: 2,
                    seed,
                    shuffle: true,
                },
                || {
                    c += 1;
                    r.intern(&format!("n{c}"))
                },
            );
            t.leaves().to_vec()
        };
        assert_eq!(build(3), build(3));
        assert_ne!(build(3), build(4));
    }

    #[test]
    fn height_one_is_a_star() {
        let mut reg = AnnotRegistry::new();
        let leaves = mk_leaves(&mut reg, 5);
        let mut r = reg.clone();
        let t = balanced_tree(
            &leaves,
            &BalancedTreeSpec {
                height: 1,
                seed: 0,
                shuffle: false,
            },
            || r.intern("root"),
        );
        assert_eq!(t.height(), 1);
        assert_eq!(t.num_nodes(), 6);
        assert_eq!(t.children(t.root()).len(), 5);
    }

    #[test]
    fn tall_tree_on_few_leaves_uses_unary_chains() {
        let mut reg = AnnotRegistry::new();
        let leaves = mk_leaves(&mut reg, 2);
        let mut c = 0u32;
        let mut r = reg.clone();
        let t = balanced_tree(
            &leaves,
            &BalancedTreeSpec {
                height: 4,
                seed: 0,
                shuffle: false,
            },
            || {
                c += 1;
                r.intern(&format!("n{c}"))
            },
        );
        assert_eq!(t.num_leaves(), 2);
        assert_eq!(t.height(), 4);
        for &leaf in t.leaves() {
            assert_eq!(t.depth(t.node_by_label(leaf).unwrap()), 4);
        }
    }

    #[test]
    #[should_panic(expected = "already in tree")]
    fn duplicate_labels_rejected() {
        let mut reg = AnnotRegistry::new();
        let a = reg.intern("a");
        let b = reg.intern("b");
        let mut builder = TreeBuilder::new(a);
        builder.add_child(a, b);
        builder.add_child(a, b);
    }
}
