//! The abstraction-tree data structure.

use provabs_relational::Database;
use provabs_semiring::{AnnotId, AnnotRegistry};
use std::collections::HashMap;

/// A node of an [`AbstractionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

/// An abstraction tree `T` (Def. 2.6): a rooted tree with unique labels.
///
/// Leaves carry annotations of database tuples; each node `v` abstracts the
/// leaves `L_T(v)` of its subtree. Built through [`TreeBuilder`](crate::TreeBuilder);
/// immutable afterwards, with precomputed depths, leaf counts, and a DFS
/// leaf order giving every node a contiguous leaf slice.
#[derive(Debug, Clone)]
pub struct AbstractionTree {
    pub(crate) labels: Vec<AnnotId>,
    pub(crate) parent: Vec<Option<NodeId>>,
    pub(crate) children: Vec<Vec<NodeId>>,
    pub(crate) by_label: HashMap<AnnotId, NodeId>,
    /// Depth from the root (root = 0).
    depth: Vec<u32>,
    /// `|L_T(v)|` per node.
    leaf_count: Vec<u64>,
    /// Leaves in DFS order; each node owns the slice `leaf_span[v]`.
    leaf_order: Vec<AnnotId>,
    leaf_span: Vec<(u32, u32)>,
    height: u32,
}

impl AbstractionTree {
    pub(crate) fn finalize(
        labels: Vec<AnnotId>,
        parent: Vec<Option<NodeId>>,
        children: Vec<Vec<NodeId>>,
        by_label: HashMap<AnnotId, NodeId>,
    ) -> Self {
        let n = labels.len();
        let mut depth = vec![0u32; n];
        let mut leaf_count = vec![0u64; n];
        let mut leaf_order = Vec::new();
        let mut leaf_span = vec![(0u32, 0u32); n];
        // Iterative DFS computing depth (preorder) and leaf data (postorder).
        let root = NodeId(0);
        let mut stack: Vec<(NodeId, bool)> = vec![(root, false)];
        while let Some((node, processed)) = stack.pop() {
            if processed {
                let i = node.idx();
                if children[i].is_empty() {
                    leaf_span[i] = (leaf_order.len() as u32, leaf_order.len() as u32 + 1);
                    leaf_order.push(labels[i]);
                    leaf_count[i] = 1;
                } else {
                    let start = leaf_span[children[i][0].idx()].0;
                    let end = leaf_span[children[i][children[i].len() - 1].idx()].1;
                    leaf_span[i] = (start, end);
                    leaf_count[i] = children[i].iter().map(|c| leaf_count[c.idx()]).sum();
                }
            } else {
                stack.push((node, true));
                let i = node.idx();
                for &c in children[i].iter().rev() {
                    depth[c.idx()] = depth[i] + 1;
                    stack.push((c, false));
                }
            }
        }
        let height = depth.iter().copied().max().unwrap_or(0);
        Self {
            labels,
            parent,
            children,
            by_label,
            depth,
            leaf_count,
            leaf_order,
            leaf_span,
            height,
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes `|V_T|`.
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of leaves `|L_T|`.
    pub fn num_leaves(&self) -> usize {
        self.leaf_order.len()
    }

    /// The height: maximum depth of a leaf (root = depth 0).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The label of `v`.
    pub fn label(&self, v: NodeId) -> AnnotId {
        self.labels[v.idx()]
    }

    /// Looks up the node labeled `label`.
    pub fn node_by_label(&self, label: AnnotId) -> Option<NodeId> {
        self.by_label.get(&label).copied()
    }

    /// The parent of `v` (`None` for the root).
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.idx()]
    }

    /// The children of `v`.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.idx()]
    }

    /// Whether `v` is a leaf.
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children[v.idx()].is_empty()
    }

    /// Depth of `v` (root = 0).
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v.idx()]
    }

    /// `|L_T(v)|` — number of leaves under `v` (1 for a leaf).
    pub fn leaf_count(&self, v: NodeId) -> u64 {
        self.leaf_count[v.idx()]
    }

    /// `L_T(v)` — the leaf labels under `v`, as a contiguous slice.
    pub fn leaves_under(&self, v: NodeId) -> &[AnnotId] {
        let (s, e) = self.leaf_span[v.idx()];
        &self.leaf_order[s as usize..e as usize]
    }

    /// All leaf labels `L_T`.
    pub fn leaves(&self) -> &[AnnotId] {
        &self.leaf_order
    }

    /// The proper ancestors of `v`, nearest first, ending at the root.
    pub fn ancestors(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.depth(v) as usize);
        let mut cur = self.parent(v);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent(p);
        }
        out
    }

    /// Whether `v ≤_T u`: `v` is a descendant of `u` or `v == u`.
    pub fn is_descendant_or_self(&self, v: NodeId, u: NodeId) -> bool {
        let mut cur = Some(v);
        while let Some(c) = cur {
            if c == u {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// The ancestor of `leaf` exactly `edges` levels up (0 = the leaf
    /// itself). `None` if the chain is shorter.
    pub fn ancestor_at(&self, leaf: NodeId, edges: u32) -> Option<NodeId> {
        let mut cur = leaf;
        for _ in 0..edges {
            cur = self.parent(cur)?;
        }
        Some(cur)
    }

    /// Number of tree edges between `leaf` and its ancestor `anc`
    /// (`anc` must be an ancestor-or-self of `leaf`).
    pub fn edges_between(&self, leaf: NodeId, anc: NodeId) -> u32 {
        debug_assert!(self.is_descendant_or_self(leaf, anc));
        self.depth(leaf) - self.depth(anc)
    }

    /// Compatibility with a K-database (Def. 2.6):
    /// `(V_T \ L_T) ∩ annotations(D) = ∅` — no inner label tags a tuple.
    pub fn compatible_with(&self, db: &Database) -> bool {
        (0..self.labels.len())
            .all(|i| self.children[i].is_empty() || db.locate(self.labels[i]).is_none())
    }

    /// Renders an indented outline with labels from `reg` (for debugging and
    /// examples).
    pub fn to_string_with(&self, reg: &AnnotRegistry) -> String {
        let mut out = String::new();
        let mut stack = vec![(self.root(), 0usize)];
        while let Some((v, ind)) = stack.pop() {
            out.push_str(&"  ".repeat(ind));
            out.push_str(reg.name(self.label(v)));
            out.push('\n');
            for &c in self.children(v).iter().rev() {
                stack.push((c, ind + 1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeBuilder;

    /// Builds the Figure 3 tree; returns (tree, registry).
    pub(crate) fn figure3_tree() -> (AbstractionTree, AnnotRegistry) {
        let mut reg = AnnotRegistry::new();
        let l = |reg: &mut AnnotRegistry, n: &str| reg.intern(n);
        let root = l(&mut reg, "*");
        let wiki = l(&mut reg, "WikiLeaks");
        let social = l(&mut reg, "SocialNetwork");
        let linkedin = l(&mut reg, "LinkedIn");
        let facebook = l(&mut reg, "Facebook");
        let mut b = TreeBuilder::new(root);
        b.add_child(root, wiki);
        b.add_child(root, social);
        for n in ["i6", "i4", "i1", "h6"] {
            let leaf = l(&mut reg, n);
            b.add_child(wiki, leaf);
        }
        b.add_child(social, linkedin);
        b.add_child(social, facebook);
        for n in ["i3", "h5", "h2"] {
            let leaf = l(&mut reg, n);
            b.add_child(linkedin, leaf);
        }
        for n in ["i5", "i2", "h4", "h3", "h1"] {
            let leaf = l(&mut reg, n);
            b.add_child(facebook, leaf);
        }
        (b.build(), reg)
    }

    #[test]
    fn figure3_leaf_counts() {
        let (t, reg) = figure3_tree();
        let node = |n: &str| t.node_by_label(reg.get(n).unwrap()).unwrap();
        assert_eq!(t.num_leaves(), 12);
        assert_eq!(t.num_nodes(), 17);
        assert_eq!(t.leaf_count(node("Facebook")), 5);
        assert_eq!(t.leaf_count(node("LinkedIn")), 3);
        assert_eq!(t.leaf_count(node("WikiLeaks")), 4);
        assert_eq!(t.leaf_count(node("SocialNetwork")), 8);
        assert_eq!(t.leaf_count(t.root()), 12);
        assert_eq!(t.leaf_count(node("h1")), 1);
    }

    #[test]
    fn figure3_structure_queries() {
        let (t, reg) = figure3_tree();
        let node = |n: &str| t.node_by_label(reg.get(n).unwrap()).unwrap();
        let h1 = node("h1");
        assert_eq!(t.depth(h1), 3);
        assert_eq!(t.height(), 3);
        assert!(t.is_leaf(h1));
        assert!(!t.is_leaf(node("Facebook")));
        assert_eq!(
            t.ancestors(h1),
            vec![node("Facebook"), node("SocialNetwork"), t.root()]
        );
        assert!(t.is_descendant_or_self(h1, node("SocialNetwork")));
        assert!(!t.is_descendant_or_self(h1, node("WikiLeaks")));
        assert_eq!(t.ancestor_at(h1, 1), Some(node("Facebook")));
        assert_eq!(t.ancestor_at(h1, 4), None);
        assert_eq!(t.edges_between(h1, node("SocialNetwork")), 2);
    }

    #[test]
    fn leaves_under_are_contiguous_and_complete() {
        let (t, reg) = figure3_tree();
        let node = |n: &str| t.node_by_label(reg.get(n).unwrap()).unwrap();
        let fb_leaves: Vec<&str> = t
            .leaves_under(node("Facebook"))
            .iter()
            .map(|&a| reg.name(a))
            .collect();
        assert_eq!(fb_leaves, vec!["i5", "i2", "h4", "h3", "h1"]);
        assert_eq!(t.leaves_under(t.root()).len(), 12);
        let h1 = node("h1");
        assert_eq!(t.leaves_under(h1), &[reg.get("h1").unwrap()]);
    }

    #[test]
    fn compatibility_with_database() {
        let (t, mut reg) = figure3_tree();
        // Compatible: database annotations h1.. are leaves, inner labels untagged.
        let mut db = Database::new();
        let r = db.add_relation("Hobbies", &["pid", "hobby", "source"]);
        // Intern the same labels into the db registry in the same order as reg.
        for i in 0..reg.len() {
            let name = reg.name(provabs_semiring::AnnotId(i as u32)).to_owned();
            db.intern_label(&name);
        }
        db.insert_str(r, "h1_tuple_alias", &["1", "Dance", "Facebook"]);
        assert!(t.compatible_with(&db));
        // Incompatible: tag a tuple with an inner label.
        let mut db2 = Database::new();
        let r2 = db2.add_relation("R", &["a"]);
        for i in 0..reg.len() {
            let name = reg.name(provabs_semiring::AnnotId(i as u32)).to_owned();
            db2.intern_label(&name);
        }
        let fb = reg.intern("Facebook");
        assert_eq!(db2.intern_label("Facebook"), fb); // same id space by construction
        db2.insert(r2, "Facebook", provabs_relational::Tuple::parse(&["1"]));
        assert!(!t.compatible_with(&db2));
    }

    #[test]
    fn outline_rendering() {
        let (t, reg) = figure3_tree();
        let s = t.to_string_with(&reg);
        assert!(s.starts_with("*\n  WikiLeaks\n"));
        assert!(s.contains("\n      h1\n"));
    }
}
