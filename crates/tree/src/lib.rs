//! Provenance abstraction trees (§2.2 of the paper).
//!
//! An [`AbstractionTree`] is a rooted labeled tree whose leaves are tuple
//! annotations of a K-database and whose inner nodes are abstractions
//! (generalizations) of the leaves of their subtrees. A tree is *compatible*
//! with a K-database if no inner label tags a database tuple (Def. 2.6).
//!
//! The tree supports the query operations the privacy algorithms need in
//! O(1)/O(chain): leaf counts `|L_T(v)|`, contiguous leaf slices `L_T(v)`,
//! ancestor chains, depths, and label lookups.
//!
//! # Example — the Figure 3 tree of the paper
//!
//! ```
//! use provabs_semiring::AnnotRegistry;
//! use provabs_tree::TreeBuilder;
//!
//! let mut reg = AnnotRegistry::new();
//! let mut ids = |names: &[&str]| names.iter().map(|n| reg.intern(n)).collect::<Vec<_>>();
//! let labels = ids(&["*", "WikiLeaks", "SocialNetwork", "LinkedIn", "Facebook",
//!                    "i6", "i4", "i1", "h6", "i3", "h5", "h2", "i5", "i2", "h4", "h3", "h1"]);
//! let mut b = TreeBuilder::new(labels[0]);
//! b.add_child(labels[0], labels[1]);   // * -> WikiLeaks
//! b.add_child(labels[0], labels[2]);   // * -> SocialNetwork
//! for leaf in &labels[5..9] { b.add_child(labels[1], *leaf); }   // WikiLeaks leaves
//! b.add_child(labels[2], labels[3]);   // SocialNetwork -> LinkedIn
//! b.add_child(labels[2], labels[4]);   // SocialNetwork -> Facebook
//! for leaf in &labels[9..12] { b.add_child(labels[3], *leaf); }  // LinkedIn leaves
//! for leaf in &labels[12..] { b.add_child(labels[4], *leaf); }   // Facebook leaves
//! let tree = b.build();
//! let fb = tree.node_by_label(labels[4]).unwrap();
//! assert_eq!(tree.leaf_count(fb), 5);
//! assert_eq!(tree.num_leaves(), 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod tree;

pub use builder::{balanced_tree, BalancedTreeSpec, TreeBuilder};
pub use tree::{AbstractionTree, NodeId};
