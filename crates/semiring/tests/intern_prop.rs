//! Property-based tests: every [`ProvStore`] operation is bit-for-bit equal
//! to the owned [`Polynomial`] reference implementation on random inputs,
//! and interning is canonical (equal values ⇔ equal ids).

use proptest::prelude::*;
use provabs_semiring::{AnnotId, Monomial, Polynomial, ProvStore, SemiringKind};

/// Strategy over small monomials on annotations x0..x5.
fn arb_monomial() -> impl Strategy<Value = Monomial> {
    prop::collection::vec((0u32..6, 1u32..3), 0..4)
        .prop_map(|fs| Monomial::from_factors(fs.into_iter().map(|(a, e)| (AnnotId(a), e))))
}

/// Strategy over small polynomials.
fn arb_poly() -> impl Strategy<Value = Polynomial> {
    prop::collection::vec((arb_monomial(), 1u64..4), 0..4).prop_map(Polynomial::from_terms)
}

proptest! {
    #[test]
    fn intern_resolve_roundtrips(p in arb_poly()) {
        let mut store = ProvStore::new();
        let id = store.intern(&p);
        prop_assert_eq!(store.resolve(id), p);
    }

    #[test]
    fn interning_is_canonical(p in arb_poly(), q in arb_poly()) {
        let mut store = ProvStore::new();
        let (pi, qi) = (store.intern(&p), store.intern(&q));
        prop_assert_eq!(pi == qi, p == q);
    }

    #[test]
    fn add_matches_owned(p in arb_poly(), q in arb_poly()) {
        let mut store = ProvStore::new();
        let (pi, qi) = (store.intern(&p), store.intern(&q));
        let sum = store.add(pi, qi);
        prop_assert_eq!(store.resolve(sum), p.add(&q));
        // Memoized repeat answers identically (both argument orders).
        prop_assert_eq!(store.add(qi, pi), sum);
    }

    #[test]
    fn mul_matches_owned(p in arb_poly(), q in arb_poly()) {
        let mut store = ProvStore::new();
        let (pi, qi) = (store.intern(&p), store.intern(&q));
        let product = store.mul(pi, qi);
        prop_assert_eq!(store.resolve(product), p.mul(&q));
        prop_assert_eq!(store.mul(qi, pi), product);
    }

    #[test]
    fn checked_sub_matches_owned(p in arb_poly(), q in arb_poly()) {
        let mut store = ProvStore::new();
        let (pi, qi) = (store.intern(&p), store.intern(&q));
        let interned = store.checked_sub(pi, qi).map(|d| store.resolve(d));
        prop_assert_eq!(interned, p.checked_sub(&q));
        // The defined direction: (p + q) - q == p, exactly.
        let sum = store.add(pi, qi);
        let back = store.checked_sub(sum, qi).expect("p + q dominates q");
        prop_assert_eq!(store.resolve(back), p);
    }

    #[test]
    fn coarsen_matches_owned(p in arb_poly()) {
        let mut store = ProvStore::new();
        let pi = store.intern(&p);
        for kind in SemiringKind::ALL {
            let coarse = store.coarsen(pi, kind);
            prop_assert_eq!(store.resolve(coarse), p.coarsen(kind), "kind {}", kind);
        }
    }

    /// Abstraction application: lifting occurrence `i` of each monomial to a
    /// fresh annotation determined by `(i + shift) % modulus` matches doing
    /// the same substitution on the owned occurrence lists.
    #[test]
    fn apply_abstraction_matches_owned_substitution(
        p in arb_poly(),
        shift in 0usize..4,
        modulus in 1usize..4,
    ) {
        let subst = |i: usize, a: AnnotId| -> AnnotId {
            if (i + shift).is_multiple_of(modulus) { AnnotId(100 + a.0) } else { a }
        };
        let mut store = ProvStore::new();
        let pi = store.intern(&p);
        let fingerprint = (shift * 10 + modulus) as u64;
        let lifted = store.apply_abstraction(pi, fingerprint, subst);
        // Owned reference: substitute over each monomial's occurrence list.
        let expected = Polynomial::from_terms(p.terms().iter().map(|(m, c)| {
            let occs = m.occurrences();
            let mapped = Monomial::from_annots(
                occs.iter().enumerate().map(|(i, &a)| subst(i, a)),
            );
            (mapped, *c)
        }));
        prop_assert_eq!(store.resolve(lifted), expected);
        // The memo answers the repeat under the same fingerprint.
        let again = store.apply_abstraction(pi, fingerprint, subst);
        prop_assert_eq!(again, lifted);
    }
}
