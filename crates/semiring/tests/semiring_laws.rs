//! Property-based tests: `(N[X], +, ·, 0, 1)` is a commutative semiring and
//! the coarsening maps are semiring homomorphisms.

use proptest::prelude::*;
use provabs_semiring::{AnnotId, Monomial, Polynomial, SemiringKind};

/// Strategy over small monomials on annotations x0..x5.
fn arb_monomial() -> impl Strategy<Value = Monomial> {
    prop::collection::vec((0u32..6, 1u32..3), 0..4)
        .prop_map(|fs| Monomial::from_factors(fs.into_iter().map(|(a, e)| (AnnotId(a), e))))
}

/// Strategy over small polynomials.
fn arb_poly() -> impl Strategy<Value = Polynomial> {
    prop::collection::vec((arb_monomial(), 1u64..4), 0..4).prop_map(Polynomial::from_terms)
}

proptest! {
    #[test]
    fn addition_commutes(p in arb_poly(), q in arb_poly()) {
        prop_assert_eq!(p.add(&q), q.add(&p));
    }

    #[test]
    fn addition_associates(p in arb_poly(), q in arb_poly(), r in arb_poly()) {
        prop_assert_eq!(p.add(&q).add(&r), p.add(&q.add(&r)));
    }

    #[test]
    fn multiplication_commutes(p in arb_poly(), q in arb_poly()) {
        prop_assert_eq!(p.mul(&q), q.mul(&p));
    }

    #[test]
    fn multiplication_associates(p in arb_poly(), q in arb_poly(), r in arb_poly()) {
        prop_assert_eq!(p.mul(&q).mul(&r), p.mul(&q.mul(&r)));
    }

    #[test]
    fn distributivity(p in arb_poly(), q in arb_poly(), r in arb_poly()) {
        prop_assert_eq!(p.mul(&q.add(&r)), p.mul(&q).add(&p.mul(&r)));
    }

    #[test]
    fn identities(p in arb_poly()) {
        prop_assert_eq!(p.add(&Polynomial::zero()), p.clone());
        prop_assert_eq!(p.mul(&Polynomial::one()), p.clone());
        prop_assert!(p.mul(&Polynomial::zero()).is_zero());
    }

    #[test]
    fn nat_leq_is_reflexive_and_respects_addition(p in arb_poly(), q in arb_poly()) {
        prop_assert!(p.nat_leq(&p));
        prop_assert!(p.nat_leq(&p.add(&q)));
    }

    #[test]
    fn nat_leq_antisymmetric(p in arb_poly(), q in arb_poly()) {
        if p.nat_leq(&q) && q.nat_leq(&p) {
            prop_assert_eq!(p, q);
        }
    }

    /// Coarsening is a homomorphism: coarsen(p + q) = coarsen(coarsen(p) + coarsen(q)),
    /// and similarly for products. (The outer coarsen re-normalizes, since the
    /// coarser semiring's representation is the normal form.)
    #[test]
    fn coarsen_homomorphism(p in arb_poly(), q in arb_poly()) {
        for kind in [SemiringKind::BX, SemiringKind::Trio, SemiringKind::Why, SemiringKind::PosBool, SemiringKind::Lin] {
            let lhs_add = p.add(&q).coarsen(kind);
            let rhs_add = p.coarsen(kind).add(&q.coarsen(kind)).coarsen(kind);
            prop_assert_eq!(lhs_add, rhs_add, "addition hom failed for {}", kind);
            let lhs_mul = p.mul(&q).coarsen(kind);
            let rhs_mul = p.coarsen(kind).mul(&q.coarsen(kind)).coarsen(kind);
            prop_assert_eq!(lhs_mul, rhs_mul, "multiplication hom failed for {}", kind);
        }
    }

    /// Coarsening is idempotent: the image is already in normal form.
    #[test]
    fn coarsen_idempotent(p in arb_poly()) {
        for kind in SemiringKind::ALL {
            let once = p.coarsen(kind);
            prop_assert_eq!(once.coarsen(kind), once);
        }
    }

    /// Monomial multiplication: degree is additive, support is the union.
    #[test]
    fn monomial_mul_degree(m in arb_monomial(), n in arb_monomial()) {
        let p = m.mul(&n);
        prop_assert_eq!(p.degree(), m.degree() + n.degree());
        for a in m.support().chain(n.support()) {
            prop_assert!(p.contains(a));
        }
    }

    /// Deletion propagation is monotone: deleting more annotations can only
    /// kill more outputs.
    #[test]
    fn survives_deletion_monotone(p in arb_poly(), cut in 0u32..6) {
        let small = move |a: AnnotId| a.0 < cut;
        let large = move |a: AnnotId| a.0 <= cut;
        if !p.survives_deletion(&small) {
            prop_assert!(!p.survives_deletion(&large));
        }
    }
}
