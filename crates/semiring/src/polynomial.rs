//! `N[X]` provenance polynomials.

use crate::{AnnotId, AnnotRegistry, Monomial, SemiringKind};
use serde::{Deserialize, Serialize};

/// A provenance polynomial in `N[X]`: a finite sum of monomials with
/// positive integer coefficients.
///
/// Stored as a sorted vector of `(monomial, coefficient)` with strictly
/// increasing monomials and strictly positive coefficients, so structural
/// equality is algebraic equality. `N[X]` is the most informative semiring of
/// the provenance hierarchy; all coarser semirings are obtained by
/// [`Polynomial::coarsen`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Polynomial {
    terms: Vec<(Monomial, u64)>,
}

impl Polynomial {
    /// The additive identity `0`.
    pub fn zero() -> Self {
        Self::default()
    }

    /// The multiplicative identity `1` (the empty monomial with coefficient 1).
    pub fn one() -> Self {
        Self {
            terms: vec![(Monomial::one(), 1)],
        }
    }

    /// A polynomial with a single annotation (the canonical tag of an input
    /// tuple in an abstractly-tagged database).
    pub fn var(a: AnnotId) -> Self {
        Self {
            terms: vec![(Monomial::from_annots([a]), 1)],
        }
    }

    /// Builds from `(monomial, coefficient)` terms; duplicates accumulate and
    /// zero coefficients are dropped.
    ///
    /// Coefficient accumulation saturates at `u64::MAX` instead of wrapping:
    /// a saturated coefficient is still the top of the natural order, so
    /// comparisons and [`Polynomial::checked_sub`] stay monotone, whereas a
    /// silent wrap would fabricate small coefficients.
    pub fn from_terms<I: IntoIterator<Item = (Monomial, u64)>>(terms: I) -> Self {
        let mut v: Vec<(Monomial, u64)> = terms.into_iter().filter(|&(_, c)| c > 0).collect();
        v.sort_unstable_by(|x, y| x.0.cmp(&y.0));
        let mut out: Vec<(Monomial, u64)> = Vec::with_capacity(v.len());
        for (m, c) in v {
            match out.last_mut() {
                Some((last, acc)) if *last == m => *acc = acc.checked_add(c).unwrap_or(u64::MAX),
                _ => out.push((m, c)),
            }
        }
        Self { terms: out }
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// The number of distinct monomials.
    pub fn num_monomials(&self) -> usize {
        self.terms.len()
    }

    /// The sorted `(monomial, coefficient)` terms.
    pub fn terms(&self) -> &[(Monomial, u64)] {
        &self.terms
    }

    /// Iterates over the monomials.
    pub fn monomials(&self) -> impl Iterator<Item = &Monomial> + '_ {
        self.terms.iter().map(|(m, _)| m)
    }

    /// The coefficient of `m` (0 if absent).
    pub fn coefficient(&self, m: &Monomial) -> u64 {
        self.terms
            .binary_search_by(|(x, _)| x.cmp(m))
            .map(|i| self.terms[i].1)
            .unwrap_or(0)
    }

    /// All distinct annotations occurring in the polynomial.
    pub fn variables(&self) -> Vec<AnnotId> {
        let mut v: Vec<AnnotId> = self.terms.iter().flat_map(|(m, _)| m.support()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Sum of two polynomials.
    pub fn add(&self, other: &Self) -> Self {
        let mut out: Vec<(Monomial, u64)> =
            Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() && j < other.terms.len() {
            match self.terms[i].0.cmp(&other.terms[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(self.terms[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.terms[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((
                        self.terms[i].0.clone(),
                        self.terms[i].1.saturating_add(other.terms[j].1),
                    ));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.terms[i..]);
        out.extend_from_slice(&other.terms[j..]);
        Self { terms: out }
    }

    /// Product of two polynomials (distributes over all monomial pairs).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        Self::from_terms(self.terms.iter().flat_map(|(m1, c1)| {
            other
                .terms
                .iter()
                .map(move |(m2, c2)| (m1.mul(m2), c1.saturating_mul(*c2)))
        }))
    }

    /// Multiplies every monomial by annotation `a`.
    pub fn mul_annot(&self, a: AnnotId) -> Self {
        Self {
            terms: self
                .terms
                .iter()
                .map(|(m, c)| (m.mul_annot(a), *c))
                .collect(),
        }
    }

    /// Coefficient-wise difference `self - other`, defined exactly when
    /// `other ≤_{N[X]} self` (the witness `c` of the natural order). Returns
    /// `None` when some coefficient would go negative — `N[X]` has no
    /// additive inverses, so subtraction is partial.
    ///
    /// This is the merge primitive of incremental view maintenance: the
    /// derivations retracted by a delta are always a sub-multiset of the
    /// cached provenance, so the subtraction is total along that path.
    pub fn checked_sub(&self, other: &Self) -> Option<Self> {
        let mut out: Vec<(Monomial, u64)> = Vec::with_capacity(self.terms.len());
        let mut j = 0;
        for (m, c) in &self.terms {
            let mut c = *c;
            if j < other.terms.len() && other.terms[j].0 < *m {
                return None; // other has a monomial self lacks
            }
            if j < other.terms.len() && other.terms[j].0 == *m {
                let oc = other.terms[j].1;
                if oc > c {
                    return None;
                }
                c -= oc;
                j += 1;
            }
            if c > 0 {
                out.push((m.clone(), c));
            }
        }
        if j < other.terms.len() {
            return None;
        }
        Some(Self { terms: out })
    }

    /// The natural order `self ≤_{N[X]} other`: there exists `c` with
    /// `self + c = other`, i.e. coefficient-wise domination (Def. 3.8).
    pub fn nat_leq(&self, other: &Self) -> bool {
        self.terms.iter().all(|(m, c)| *c <= other.coefficient(m))
    }

    /// Evaluates the polynomial under a Boolean assignment: annotations in
    /// `deleted` map to 0, all others to 1. Returns whether the polynomial is
    /// non-zero — i.e. whether the annotated output tuple *survives* deleting
    /// the tuples in `deleted` (deletion propagation / hypothetical
    /// reasoning).
    pub fn survives_deletion(&self, deleted: &dyn Fn(AnnotId) -> bool) -> bool {
        self.terms
            .iter()
            .any(|(m, _)| m.support().all(|a| !deleted(a)))
    }

    /// Projects into a coarser semiring of the provenance hierarchy.
    ///
    /// The result is still represented as a `Polynomial`, normalized so that
    /// structurally equal results mean equal elements of the target semiring:
    /// * `NX` — identity.
    /// * `BX` — coefficients dropped (all set to 1).
    /// * `Trio` — exponents dropped, coefficients merged.
    /// * `Why` — exponents and coefficients dropped.
    /// * `PosBool` — like `Why`, then absorption: monomials whose support is
    ///   a strict superset of another's are removed.
    /// * `Lin` — a single monomial holding the set of all annotations.
    pub fn coarsen(&self, kind: SemiringKind) -> Polynomial {
        match kind {
            SemiringKind::NX => self.clone(),
            SemiringKind::BX => Self::from_terms(
                self.terms
                    .iter()
                    .map(|(m, _)| (m.clone(), 1))
                    .collect::<Vec<_>>(),
            )
            .dedup_coeff1(),
            SemiringKind::Trio => Self::from_terms(
                self.terms
                    .iter()
                    .map(|(m, c)| (m.drop_exponents(), *c))
                    .collect::<Vec<_>>(),
            ),
            SemiringKind::Why => Self::from_terms(
                self.terms
                    .iter()
                    .map(|(m, _)| (m.drop_exponents(), 1))
                    .collect::<Vec<_>>(),
            )
            .dedup_coeff1(),
            SemiringKind::PosBool => {
                let why = self.coarsen(SemiringKind::Why);
                let mons: Vec<&Monomial> = why.monomials().collect();
                let keep: Vec<(Monomial, u64)> = mons
                    .iter()
                    .filter(|m| !mons.iter().any(|n| *n != **m && n.support_subset_of(m)))
                    .map(|m| ((*m).clone(), 1))
                    .collect();
                Self::from_terms(keep).dedup_coeff1()
            }
            SemiringKind::Lin => {
                if self.is_zero() {
                    return Self::zero();
                }
                Self::from_terms([(Monomial::from_annots(self.variables()), 1)])
            }
        }
    }

    /// Clamps all coefficients to 1 (helper for idempotent-addition
    /// semirings).
    fn dedup_coeff1(&self) -> Self {
        Self {
            terms: self.terms.iter().map(|(m, _)| (m.clone(), 1)).collect(),
        }
    }

    /// Renders with labels from `reg`, e.g. `2*a*b + c^2`.
    pub fn to_string_with(&self, reg: &AnnotRegistry) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut s = String::new();
        for (idx, (m, c)) in self.terms.iter().enumerate() {
            if idx > 0 {
                s.push_str(" + ");
            }
            if *c != 1 {
                s.push_str(&c.to_string());
                if !m.is_one() {
                    s.push('*');
                }
                if m.is_one() {
                    continue;
                }
            }
            s.push_str(&m.to_string_with(reg));
        }
        s
    }
}

impl From<Monomial> for Polynomial {
    fn from(m: Monomial) -> Self {
        Self {
            terms: vec![(m, 1)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AnnotRegistry, AnnotId, AnnotId, AnnotId) {
        let mut reg = AnnotRegistry::new();
        let a = reg.intern("a");
        let b = reg.intern("b");
        let c = reg.intern("c");
        (reg, a, b, c)
    }

    #[test]
    fn add_merges_coefficients() {
        let (_, a, b, _) = setup();
        let p = Polynomial::var(a)
            .add(&Polynomial::var(b))
            .add(&Polynomial::var(a));
        assert_eq!(p.coefficient(&Monomial::from_annots([a])), 2);
        assert_eq!(p.coefficient(&Monomial::from_annots([b])), 1);
        assert_eq!(p.num_monomials(), 2);
    }

    #[test]
    fn mul_distributes() {
        let (_, a, b, c) = setup();
        // (a + b) * (a + c) = a^2 + a*c + a*b + b*c
        let p = Polynomial::var(a).add(&Polynomial::var(b));
        let q = Polynomial::var(a).add(&Polynomial::var(c));
        let r = p.mul(&q);
        assert_eq!(r.num_monomials(), 4);
        assert_eq!(r.coefficient(&Monomial::from_factors([(a, 2)])), 1);
        assert_eq!(r.coefficient(&Monomial::from_annots([a, b])), 1);
    }

    #[test]
    fn zero_and_one_laws() {
        let (_, a, _, _) = setup();
        let p = Polynomial::var(a);
        assert_eq!(p.add(&Polynomial::zero()), p);
        assert_eq!(p.mul(&Polynomial::one()), p);
        assert!(p.mul(&Polynomial::zero()).is_zero());
    }

    #[test]
    fn nat_leq_is_coefficientwise() {
        let (_, a, b, _) = setup();
        let small = Polynomial::var(a);
        let big = Polynomial::var(a)
            .add(&Polynomial::var(a))
            .add(&Polynomial::var(b));
        assert!(small.nat_leq(&big));
        assert!(!big.nat_leq(&small));
        assert!(Polynomial::zero().nat_leq(&small));
    }

    #[test]
    fn checked_sub_inverts_add() {
        let (_, a, b, c) = setup();
        let p = Polynomial::from_terms([
            (Monomial::from_annots([a]), 2),
            (Monomial::from_annots([b, c]), 1),
        ]);
        let q = Polynomial::var(a);
        let diff = p.checked_sub(&q).unwrap();
        assert_eq!(diff.add(&q), p);
        assert_eq!(p.checked_sub(&p), Some(Polynomial::zero()));
        assert!(p.checked_sub(&Polynomial::zero()).unwrap() == p);
    }

    #[test]
    fn checked_sub_detects_underflow() {
        let (_, a, b, _) = setup();
        let p = Polynomial::var(a);
        // Coefficient underflow.
        let twice = p.add(&p);
        assert_eq!(p.checked_sub(&twice), None);
        // Missing monomial, both before and after self's terms.
        assert_eq!(p.checked_sub(&Polynomial::var(b)), None);
        assert_eq!(Polynomial::var(b).checked_sub(&p), None);
        assert_eq!(Polynomial::zero().checked_sub(&p), None);
    }

    #[test]
    fn coarsen_bx_drops_coefficients() {
        let (_, a, _, _) = setup();
        let p = Polynomial::var(a).add(&Polynomial::var(a)); // 2a
        let bx = p.coarsen(SemiringKind::BX);
        assert_eq!(bx.coefficient(&Monomial::from_annots([a])), 1);
    }

    #[test]
    fn coarsen_trio_drops_exponents_keeps_coefficients() {
        let (_, a, b, _) = setup();
        // a^2*b + a*b  --Trio-->  2*a*b
        let p = Polynomial::from_terms([
            (Monomial::from_factors([(a, 2), (b, 1)]), 1),
            (Monomial::from_annots([a, b]), 1),
        ]);
        let t = p.coarsen(SemiringKind::Trio);
        assert_eq!(t.coefficient(&Monomial::from_annots([a, b])), 2);
        assert_eq!(t.num_monomials(), 1);
    }

    #[test]
    fn coarsen_posbool_absorbs() {
        let (_, a, b, _) = setup();
        // a + a*b --PosBool--> a  (a absorbs a*b)
        let p = Polynomial::var(a).add(&Polynomial::from(Monomial::from_annots([a, b])));
        let pb = p.coarsen(SemiringKind::PosBool);
        assert_eq!(pb.num_monomials(), 1);
        assert_eq!(pb.coefficient(&Monomial::from_annots([a])), 1);
    }

    #[test]
    fn coarsen_lin_flattens_to_variable_set() {
        let (_, a, b, c) = setup();
        let p = Polynomial::from_terms([
            (Monomial::from_factors([(a, 2)]), 3),
            (Monomial::from_annots([b, c]), 1),
        ]);
        let l = p.coarsen(SemiringKind::Lin);
        assert_eq!(l.num_monomials(), 1);
        assert_eq!(l.coefficient(&Monomial::from_annots([a, b, c])), 1);
    }

    #[test]
    fn survives_deletion_checks_monomial_support() {
        let (_, a, b, c) = setup();
        // a*b + c: deleting a leaves c alive; deleting {a, c} kills it.
        let p = Polynomial::from(Monomial::from_annots([a, b])).add(&Polynomial::var(c));
        assert!(p.survives_deletion(&|x| x == a));
        assert!(!p.survives_deletion(&|x| x == a || x == c));
    }

    #[test]
    fn coefficient_accumulation_saturates_at_the_boundary() {
        let (_, a, b, _) = setup();
        let m = Monomial::from_annots([a]);
        // from_terms: duplicate terms whose sum exceeds u64::MAX clamp.
        let p = Polynomial::from_terms([(m.clone(), u64::MAX), (m.clone(), 2)]);
        assert_eq!(p.coefficient(&m), u64::MAX);
        // add: the merge path saturates too.
        let top = Polynomial::from_terms([(m.clone(), u64::MAX)]);
        assert_eq!(top.add(&top).coefficient(&m), u64::MAX);
        // mul: coefficient products saturate.
        let big = Polynomial::from_terms([(Monomial::from_annots([b]), u64::MAX)]);
        let half = Polynomial::from_terms([(m.clone(), 3)]);
        let prod = big.mul(&half);
        assert_eq!(prod.coefficient(&Monomial::from_annots([a, b])), u64::MAX);
        // Saturation keeps the natural order monotone: top - 1 is defined.
        let one_of = Polynomial::from_terms([(m.clone(), 1)]);
        assert!(top.checked_sub(&one_of).is_some());
    }

    #[test]
    fn display_renders_coefficients() {
        let (reg, a, b, _) = setup();
        let p = Polynomial::from_terms([
            (Monomial::from_annots([a]), 2),
            (Monomial::from_factors([(b, 2)]), 1),
        ]);
        assert_eq!(p.to_string_with(&reg), "2*a + b^2");
        assert_eq!(Polynomial::zero().to_string_with(&reg), "0");
    }
}
