//! Monomials: products of annotations with exponents.

use crate::{AnnotId, AnnotRegistry};
use serde::{Deserialize, Serialize};

/// A monomial over annotations: a product `x1^e1 * ... * xn^en`.
///
/// Stored as a sorted vector of `(annotation, exponent)` pairs with strictly
/// increasing annotations and strictly positive exponents, so structural
/// equality coincides with algebraic equality.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Monomial {
    factors: Vec<(AnnotId, u32)>,
}

impl Monomial {
    /// The multiplicative identity (the empty product).
    pub fn one() -> Self {
        Self::default()
    }

    /// Builds a monomial from an iterator of annotations; repeats accumulate
    /// as exponents.
    pub fn from_annots<I: IntoIterator<Item = AnnotId>>(annots: I) -> Self {
        let mut v: Vec<AnnotId> = annots.into_iter().collect();
        v.sort_unstable();
        let mut factors: Vec<(AnnotId, u32)> = Vec::with_capacity(v.len());
        for a in v {
            match factors.last_mut() {
                Some((last, e)) if *last == a => *e = e.saturating_add(1),
                _ => factors.push((a, 1)),
            }
        }
        Self { factors }
    }

    /// Builds a monomial from `(annotation, exponent)` pairs.
    ///
    /// Pairs with zero exponent are dropped; duplicate annotations
    /// accumulate, saturating at `u32::MAX` instead of wrapping (a wrapped
    /// exponent would silently fabricate a *smaller* monomial and break the
    /// divisibility order).
    pub fn from_factors<I: IntoIterator<Item = (AnnotId, u32)>>(factors: I) -> Self {
        let mut v: Vec<(AnnotId, u32)> = factors.into_iter().filter(|&(_, e)| e > 0).collect();
        v.sort_unstable_by_key(|&(a, _)| a);
        let mut out: Vec<(AnnotId, u32)> = Vec::with_capacity(v.len());
        for (a, e) in v {
            match out.last_mut() {
                Some((last, acc)) if *last == a => *acc = acc.checked_add(e).unwrap_or(u32::MAX),
                _ => out.push((a, e)),
            }
        }
        Self { factors: out }
    }

    /// Whether this is the empty product.
    pub fn is_one(&self) -> bool {
        self.factors.is_empty()
    }

    /// The total degree: sum of exponents (saturating at `u32::MAX`).
    pub fn degree(&self) -> u32 {
        self.factors
            .iter()
            .fold(0u32, |acc, &(_, e)| acc.saturating_add(e))
    }

    /// The number of distinct annotations.
    pub fn support_size(&self) -> usize {
        self.factors.len()
    }

    /// The exponent of `a` (0 if absent).
    pub fn exponent(&self, a: AnnotId) -> u32 {
        self.factors
            .binary_search_by_key(&a, |&(x, _)| x)
            .map(|i| self.factors[i].1)
            .unwrap_or(0)
    }

    /// Whether `a` occurs in this monomial.
    pub fn contains(&self, a: AnnotId) -> bool {
        self.exponent(a) > 0
    }

    /// The sorted `(annotation, exponent)` factors.
    pub fn factors(&self) -> &[(AnnotId, u32)] {
        &self.factors
    }

    /// The distinct annotations, in increasing order.
    pub fn support(&self) -> impl Iterator<Item = AnnotId> + '_ {
        self.factors.iter().map(|&(a, _)| a)
    }

    /// Expands the monomial into a flat occurrence list, with each
    /// annotation repeated `exponent` times, in increasing annotation order.
    ///
    /// This is the occurrence view used by occurrence-level abstraction
    /// functions (Def. 3.1 of the paper).
    pub fn occurrences(&self) -> Vec<AnnotId> {
        let mut out = Vec::with_capacity(self.degree() as usize);
        for &(a, e) in &self.factors {
            out.extend(std::iter::repeat_n(a, e as usize));
        }
        out
    }

    /// The product of two monomials.
    pub fn mul(&self, other: &Self) -> Self {
        let mut out: Vec<(AnnotId, u32)> =
            Vec::with_capacity(self.factors.len() + other.factors.len());
        let (mut i, mut j) = (0, 0);
        while i < self.factors.len() && j < other.factors.len() {
            let (a, ea) = self.factors[i];
            let (b, eb) = other.factors[j];
            match a.cmp(&b) {
                std::cmp::Ordering::Less => {
                    out.push((a, ea));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((b, eb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((a, ea.saturating_add(eb)));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.factors[i..]);
        out.extend_from_slice(&other.factors[j..]);
        Self { factors: out }
    }

    /// Multiplies by a single annotation.
    pub fn mul_annot(&self, a: AnnotId) -> Self {
        self.mul(&Monomial::from_annots([a]))
    }

    /// Drops exponents: the `Why(X)`-style support monomial (all exponents 1).
    pub fn drop_exponents(&self) -> Self {
        Self {
            factors: self.factors.iter().map(|&(a, _)| (a, 1)).collect(),
        }
    }

    /// Whether this monomial divides `other` (pointwise exponent ≤).
    pub fn divides(&self, other: &Self) -> bool {
        self.factors.iter().all(|&(a, e)| e <= other.exponent(a))
    }

    /// Whether the support of `self` is a subset of the support of `other`.
    pub fn support_subset_of(&self, other: &Self) -> bool {
        self.factors.iter().all(|&(a, _)| other.contains(a))
    }

    /// Renders with labels from `reg`, e.g. `p1*h1^2`.
    pub fn to_string_with(&self, reg: &AnnotRegistry) -> String {
        if self.is_one() {
            return "1".to_owned();
        }
        let mut s = String::new();
        for (idx, &(a, e)) in self.factors.iter().enumerate() {
            if idx > 0 {
                s.push('*');
            }
            s.push_str(reg.name(a));
            if e > 1 {
                s.push('^');
                s.push_str(&e.to_string());
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg3() -> (AnnotRegistry, AnnotId, AnnotId, AnnotId) {
        let mut reg = AnnotRegistry::new();
        let a = reg.intern("a");
        let b = reg.intern("b");
        let c = reg.intern("c");
        (reg, a, b, c)
    }

    #[test]
    fn from_annots_accumulates_exponents() {
        let (_, a, b, _) = reg3();
        let m = Monomial::from_annots([b, a, b]);
        assert_eq!(m.factors(), &[(a, 1), (b, 2)]);
        assert_eq!(m.degree(), 3);
        assert_eq!(m.support_size(), 2);
    }

    #[test]
    fn mul_merges_sorted() {
        let (_, a, b, c) = reg3();
        let m1 = Monomial::from_annots([a, c]);
        let m2 = Monomial::from_annots([b, c]);
        let p = m1.mul(&m2);
        assert_eq!(p.factors(), &[(a, 1), (b, 1), (c, 2)]);
    }

    #[test]
    fn occurrences_expand_exponents() {
        let (_, a, b, _) = reg3();
        let m = Monomial::from_factors([(b, 2), (a, 1)]);
        assert_eq!(m.occurrences(), vec![a, b, b]);
    }

    #[test]
    fn divides_and_support() {
        let (_, a, b, c) = reg3();
        let small = Monomial::from_annots([a, b]);
        let big = Monomial::from_factors([(a, 2), (b, 1), (c, 1)]);
        assert!(small.divides(&big));
        assert!(!big.divides(&small));
        assert!(small.support_subset_of(&big));
        assert_eq!(big.drop_exponents().degree(), 3);
    }

    #[test]
    fn one_behaves_as_identity() {
        let (_, a, _, _) = reg3();
        let m = Monomial::from_annots([a]);
        assert_eq!(Monomial::one().mul(&m), m);
        assert!(Monomial::one().is_one());
        assert!(Monomial::one().divides(&m));
    }

    #[test]
    fn display_with_registry() {
        let (reg, a, b, _) = reg3();
        let m = Monomial::from_factors([(a, 1), (b, 2)]);
        assert_eq!(m.to_string_with(&reg), "a*b^2");
        assert_eq!(Monomial::one().to_string_with(&reg), "1");
    }

    #[test]
    fn from_factors_drops_zeros_and_merges_duplicates() {
        let (_, a, b, _) = reg3();
        let m = Monomial::from_factors([(a, 0), (b, 1), (b, 2)]);
        assert_eq!(m.factors(), &[(b, 3)]);
    }

    #[test]
    fn exponent_accumulation_saturates_at_the_boundary() {
        let (_, a, b, _) = reg3();
        // from_factors: u32::MAX + 1 must clamp, not wrap to 0 (which would
        // silently drop the factor).
        let m = Monomial::from_factors([(a, u32::MAX), (a, 1), (b, 1)]);
        assert_eq!(m.exponent(a), u32::MAX);
        assert_eq!(m.exponent(b), 1);
        // mul across two saturated-at-the-top monomials.
        let sq = m.mul(&m);
        assert_eq!(sq.exponent(a), u32::MAX);
        assert_eq!(sq.exponent(b), 2);
        // degree sums saturate instead of panicking/wrapping.
        assert_eq!(m.degree(), u32::MAX);
    }
}
