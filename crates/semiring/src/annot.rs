//! Interned tuple annotations.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// An interned tuple annotation — an element of the annotation set `X`.
///
/// Annotations are the provenance "variables" of the paper (e.g. `p1`, `h1`,
/// `i1` in the running example). They are interned through an
/// [`AnnotRegistry`], so comparisons and hashing are integer operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AnnotId(pub u32);

impl AnnotId {
    /// The raw index of this annotation in its registry.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AnnotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A registry interning annotation names to dense [`AnnotId`]s.
///
/// The registry owns the human-readable labels; all algebraic structures
/// ([`Monomial`](crate::Monomial), [`Polynomial`](crate::Polynomial)) store
/// only ids.
#[derive(Debug, Default, Clone)]
pub struct AnnotRegistry {
    names: Vec<String>,
    by_name: HashMap<String, AnnotId>,
}

impl AnnotRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> AnnotId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = AnnotId(u32::try_from(self.names.len()).expect("annotation space exhausted"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Returns the id of `name`, if it has been interned.
    pub fn get(&self, name: &str) -> Option<AnnotId> {
        self.by_name.get(name).copied()
    }

    /// Returns the label of `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this registry.
    pub fn name(&self, id: AnnotId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned annotations.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all interned ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = AnnotId> + '_ {
        (0..self.names.len() as u32).map(AnnotId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut reg = AnnotRegistry::new();
        let a = reg.intern("a");
        let b = reg.intern("b");
        assert_ne!(a, b);
        assert_eq!(reg.intern("a"), a);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.name(a), "a");
        assert_eq!(reg.get("b"), Some(b));
        assert_eq!(reg.get("c"), None);
    }

    #[test]
    fn ids_iterates_in_order() {
        let mut reg = AnnotRegistry::new();
        let ids: Vec<_> = ["x", "y", "z"].iter().map(|n| reg.intern(n)).collect();
        assert_eq!(reg.ids().collect::<Vec<_>>(), ids);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(AnnotId(7).to_string(), "x7");
    }
}
