//! Provenance semirings for the provabs system.
//!
//! This crate implements the algebraic substrate of the paper *"On Optimizing
//! the Trade-off between Privacy and Utility in Data Provenance"* (SIGMOD
//! 2021): provenance polynomials in the free commutative semiring `N[X]`
//! (Green, Karvounarakis, Tannen — PODS 2007), the coarser semirings of the
//! provenance hierarchy (`B[X]`, `Trio(X)`, `Why(X)`, `PosBool(X)`,
//! `Lin(X)`), and aggregate semimodules (Amsterdamer, Deutch, Tannen — PODS
//! 2011) used by the paper's §3.4 aggregate extension.
//!
//! # Overview
//!
//! * [`AnnotId`] / [`AnnotRegistry`] — interned tuple annotations (the set
//!   `X` of the paper; each input tuple of an abstractly-tagged K-database
//!   carries a distinct annotation).
//! * [`Monomial`] — a product of annotations with exponents.
//! * [`Polynomial`] — an `N[X]` polynomial: a sum of monomials with positive
//!   integer coefficients.
//! * [`SemiringKind`] and [`coarsen`](Polynomial::coarsen) — projections of
//!   an `N[X]` polynomial into the coarser semirings of Table 4.
//! * [`ProvStore`] / [`MonoId`] / [`PolyId`] — a hash-consing arena that
//!   interns monomials and polynomials into small ids with arena-level
//!   memoized operations; the hot paths (join engine, abstraction search)
//!   traffic in ids and resolve to owned values only at the boundary.
//! * [`semimodule`] — tensor expressions `m ⊗ v` aggregated with
//!   MAX/MIN/SUM/COUNT, the provenance of aggregate query results.
//!
//! # Example
//!
//! ```
//! use provabs_semiring::{AnnotRegistry, Monomial, Polynomial};
//!
//! let mut reg = AnnotRegistry::new();
//! let p1 = reg.intern("p1");
//! let h1 = reg.intern("h1");
//! let i1 = reg.intern("i1");
//! // provenance of the first output row of the running example: p1 * h1 * i1
//! let m = Monomial::from_annots([p1, h1, i1]);
//! let poly = Polynomial::from(m);
//! assert_eq!(poly.to_string_with(&reg), "p1*h1*i1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annot;
pub mod intern;
mod monomial;
mod polynomial;
pub mod semimodule;
mod semiring_kind;

pub use annot::{AnnotId, AnnotRegistry};
pub use intern::{MonoId, PolyId, ProvStore, StoreWork};
pub use monomial::Monomial;
pub use polynomial::Polynomial;
pub use semimodule::{AggOp, AggValue, TensorTerm};
pub use semiring_kind::SemiringKind;
