//! A hash-consing arena for provenance monomials and polynomials.
//!
//! The abstraction search evaluates thousands of candidate abstractions over
//! the *same* provenance polynomials; every owned-`Polynomial` operation
//! clones nested `Vec<(Monomial, u64)>` structures and re-sorts them from
//! scratch. [`ProvStore`] interns monomials and polynomials into small ids
//! ([`MonoId`], [`PolyId`]): structurally equal values share one arena slot,
//! so clone, equality and hashing become O(1) id operations, and the
//! semiring operations (`add`, `mul`, `checked_sub`, `coarsen`) plus
//! occurrence-level abstraction application are memoized at the arena level
//! — each distinct input combination is computed exactly once for the
//! lifetime of the store.
//!
//! # Id lifetimes and growth
//!
//! Ids are only meaningful relative to the store that issued them; a store
//! never forgets or reuses an id, so ids stay valid for the store's whole
//! lifetime. Because interning is canonical, `PolyId` equality *is*
//! polynomial equality (and likewise for monomials) within one store.
//!
//! The flip side of "never forgets" is monotonic growth: an arena fed by an
//! unbounded stream (e.g. a persistent store across endless maintenance
//! batches) accumulates entries for values that will never be touched
//! again, including ids referencing retired annotations. Long-lived
//! streaming callers should periodically **rebuild**: create a fresh store
//! and re-intern the live state they maintain (for cached K-relations,
//! `IKRelation::rebase` in `provabs-relational` does exactly this). The
//! rebuild cost is one pass over the live values — everything dead is
//! dropped with the old arena.
//!
//! # Example
//!
//! ```
//! use provabs_semiring::{AnnotRegistry, Polynomial, ProvStore};
//!
//! let mut reg = AnnotRegistry::new();
//! let (a, b) = (reg.intern("a"), reg.intern("b"));
//! let mut store = ProvStore::new();
//! let pa = store.intern(&Polynomial::var(a));
//! let pb = store.intern(&Polynomial::var(b));
//! let sum = store.add(pa, pb);
//! // Interning is canonical: recomputing the sum yields the same id, and
//! // the memo answers without rebuilding the polynomial.
//! assert_eq!(store.add(pb, pa), sum);
//! assert_eq!(store.resolve(sum), Polynomial::var(a).add(&Polynomial::var(b)));
//! ```

use crate::{AnnotId, Monomial, Polynomial, SemiringKind};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// An interned [`Monomial`]: a dense index into a [`ProvStore`].
///
/// Only meaningful for the store that issued it. Equality of ids is equality
/// of monomials within that store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MonoId(u32);

/// An interned [`Polynomial`]: a dense index into a [`ProvStore`].
///
/// Only meaningful for the store that issued it. Equality of ids is equality
/// of polynomials within that store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PolyId(u32);

impl MonoId {
    /// The dense arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PolyId {
    /// The dense arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Deterministic work counters of a [`ProvStore`]: how many structures were
/// actually built versus answered from the hash-consing tables and operation
/// memos. Machine-independent, so they make stable perf-gate metrics (an
/// allocation proxy: every `*_interned` / `memo_misses` paid a real
/// construction, every hit was O(1)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreWork {
    /// Monomials constructed into the arena (hash-consing misses).
    pub monos_interned: u64,
    /// Polynomials constructed into the arena (hash-consing misses).
    pub polys_interned: u64,
    /// Monomial interning requests answered by an existing slot.
    pub mono_hits: u64,
    /// Polynomial interning requests answered by an existing slot.
    pub poly_hits: u64,
    /// Semiring-operation memo hits (`add`/`mul`/`checked_sub`/`coarsen`).
    pub memo_hits: u64,
    /// Semiring-operation memo misses (operations actually computed).
    pub memo_misses: u64,
    /// Abstraction applications answered from the memo.
    pub apply_hits: u64,
    /// Abstraction applications actually computed.
    pub apply_misses: u64,
}

impl StoreWork {
    /// Total structures constructed — the allocations proxy.
    pub fn constructions(&self) -> u64 {
        self.monos_interned + self.polys_interned
    }

    /// Hit rate over every memoized lookup (`0.0` when nothing was asked).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.mono_hits + self.poly_hits + self.memo_hits + self.apply_hits;
        let total =
            hits + self.monos_interned + self.polys_interned + self.memo_misses + self.apply_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Normal form of an interned polynomial: `(monomial, coefficient)` terms
/// with strictly increasing `MonoId` and strictly positive coefficients.
/// (Note the order is by *id*, not by monomial `Ord` — canonical within one
/// store, which is all id-level operations need.)
type Terms = Arc<Vec<(MonoId, u64)>>;

/// The hash-consing arena. See the [module docs](self) for the contract.
///
/// The store is a plain `&mut self` structure with no interior mutability:
/// engines own one (or borrow one exclusively) while they run. Concurrent
/// consumers share *derived* values (ids are `Copy`, resolved structures are
/// owned), never the store itself.
#[derive(Debug)]
pub struct ProvStore {
    monos: Vec<Monomial>,
    mono_ids: HashMap<Monomial, MonoId>,
    polys: Vec<Terms>,
    poly_ids: HashMap<Terms, PolyId>,
    add_memo: HashMap<(PolyId, PolyId), PolyId>,
    add_mono_memo: HashMap<(PolyId, MonoId), PolyId>,
    mul_memo: HashMap<(PolyId, PolyId), PolyId>,
    mul_mono_memo: HashMap<(MonoId, MonoId), MonoId>,
    sub_memo: HashMap<(PolyId, PolyId), Option<PolyId>>,
    coarsen_memo: HashMap<(PolyId, SemiringKind), PolyId>,
    apply_memo: HashMap<(PolyId, u64), PolyId>,
    work: StoreWork,
}

impl Default for ProvStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ProvStore {
    /// The interned zero polynomial (present in every store).
    pub const ZERO: PolyId = PolyId(0);
    /// The interned one polynomial (present in every store).
    pub const ONE: PolyId = PolyId(1);
    /// The interned empty monomial (present in every store).
    pub const MONO_ONE: MonoId = MonoId(0);

    /// An empty store holding only the canonical constants.
    pub fn new() -> Self {
        let mut store = Self {
            monos: Vec::new(),
            mono_ids: HashMap::new(),
            polys: Vec::new(),
            poly_ids: HashMap::new(),
            add_memo: HashMap::new(),
            add_mono_memo: HashMap::new(),
            mul_memo: HashMap::new(),
            mul_mono_memo: HashMap::new(),
            sub_memo: HashMap::new(),
            coarsen_memo: HashMap::new(),
            apply_memo: HashMap::new(),
            work: StoreWork::default(),
        };
        let one = store.intern_monomial(Monomial::one());
        debug_assert_eq!(one, Self::MONO_ONE);
        let zero = store.intern_terms(Vec::new());
        debug_assert_eq!(zero, Self::ZERO);
        let one_poly = store.intern_terms(vec![(one, 1)]);
        debug_assert_eq!(one_poly, Self::ONE);
        // The constants are part of every store, not work the caller caused.
        store.work = StoreWork::default();
        store
    }

    /// Number of distinct monomials interned.
    pub fn num_monomials(&self) -> usize {
        self.monos.len()
    }

    /// Number of distinct polynomials interned.
    pub fn num_polynomials(&self) -> usize {
        self.polys.len()
    }

    /// Snapshot of the work counters.
    pub fn work(&self) -> StoreWork {
        self.work
    }

    /// Interns a monomial, returning its canonical id.
    pub fn intern_monomial(&mut self, m: Monomial) -> MonoId {
        if let Some(&id) = self.mono_ids.get(&m) {
            self.work.mono_hits += 1;
            return id;
        }
        self.work.monos_interned += 1;
        let id = MonoId(u32::try_from(self.monos.len()).expect("monomial arena overflow"));
        self.monos.push(m.clone());
        self.mono_ids.insert(m, id);
        id
    }

    /// The monomial behind `id`.
    pub fn monomial(&self, id: MonoId) -> &Monomial {
        &self.monos[id.index()]
    }

    /// The normal-form terms of `p` (sorted by `MonoId`, positive
    /// coefficients).
    pub fn terms(&self, p: PolyId) -> &[(MonoId, u64)] {
        &self.polys[p.index()]
    }

    /// Whether `p` is the zero polynomial.
    pub fn is_zero(&self, p: PolyId) -> bool {
        p == Self::ZERO
    }

    /// Interns normalized terms. Callers must pass strictly increasing
    /// `MonoId`s with positive coefficients.
    fn intern_terms(&mut self, terms: Vec<(MonoId, u64)>) -> PolyId {
        debug_assert!(terms.windows(2).all(|w| w[0].0 < w[1].0), "terms unsorted");
        debug_assert!(terms.iter().all(|&(_, c)| c > 0), "zero coefficient");
        let terms: Terms = Arc::new(terms);
        if let Some(&id) = self.poly_ids.get(&terms) {
            self.work.poly_hits += 1;
            return id;
        }
        self.work.polys_interned += 1;
        let id = PolyId(u32::try_from(self.polys.len()).expect("polynomial arena overflow"));
        self.polys.push(Arc::clone(&terms));
        self.poly_ids.insert(terms, id);
        id
    }

    /// The polynomial holding exactly one monomial with coefficient 1.
    pub fn poly_of_monomial(&mut self, m: MonoId) -> PolyId {
        self.intern_terms(vec![(m, 1)])
    }

    /// Interns a polynomial given as raw `(monomial id, coefficient)` terms:
    /// duplicates accumulate (saturating) and zero coefficients drop.
    ///
    /// This is the bulk-accumulation boundary: engines that sum many
    /// derivations into one polynomial should collect them in a scratch
    /// map and intern the *final* normal form once through here — only that
    /// polynomial is retained by the arena, not every accumulation prefix.
    pub fn intern_mono_terms<I: IntoIterator<Item = (MonoId, u64)>>(&mut self, terms: I) -> PolyId {
        let mut v: Vec<(MonoId, u64)> = terms.into_iter().filter(|&(_, c)| c > 0).collect();
        v.sort_unstable_by_key(|&(m, _)| m);
        let mut out: Vec<(MonoId, u64)> = Vec::with_capacity(v.len());
        for (m, c) in v {
            match out.last_mut() {
                Some((last, acc)) if *last == m => *acc = acc.saturating_add(c),
                _ => out.push((m, c)),
            }
        }
        self.intern_terms(out)
    }

    /// Interns an owned polynomial.
    pub fn intern(&mut self, p: &Polynomial) -> PolyId {
        let mut terms: Vec<(MonoId, u64)> = p
            .terms()
            .iter()
            .map(|(m, c)| (self.intern_monomial(m.clone()), *c))
            .collect();
        terms.sort_unstable_by_key(|&(m, _)| m);
        self.intern_terms(terms)
    }

    /// Resolves `p` back to an owned [`Polynomial`] (the boundary out of the
    /// arena — serialization, display, legacy callers).
    pub fn resolve(&self, p: PolyId) -> Polynomial {
        Polynomial::from_terms(
            self.polys[p.index()]
                .iter()
                .map(|&(m, c)| (self.monos[m.index()].clone(), c)),
        )
    }

    /// Memoized sum. Equal to
    /// [`Polynomial::add`](crate::Polynomial::add) on the resolved values.
    pub fn add(&mut self, a: PolyId, b: PolyId) -> PolyId {
        if a == Self::ZERO {
            return b;
        }
        if b == Self::ZERO {
            return a;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&r) = self.add_memo.get(&key) {
            self.work.memo_hits += 1;
            return r;
        }
        self.work.memo_misses += 1;
        let (ta, tb) = (
            Arc::clone(&self.polys[a.index()]),
            Arc::clone(&self.polys[b.index()]),
        );
        let mut out: Vec<(MonoId, u64)> = Vec::with_capacity(ta.len() + tb.len());
        let (mut i, mut j) = (0, 0);
        while i < ta.len() && j < tb.len() {
            match ta[i].0.cmp(&tb[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(ta[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(tb[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((ta[i].0, ta[i].1.saturating_add(tb[j].1)));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&ta[i..]);
        out.extend_from_slice(&tb[j..]);
        let r = self.intern_terms(out);
        self.add_memo.insert(key, r);
        r
    }

    /// Memoized `p + m` (one monomial, coefficient 1) — the single-step
    /// accumulation primitive for incremental additions.
    ///
    /// Every step interns the updated polynomial, so a long run of calls
    /// against one growing polynomial retains each prefix in the arena;
    /// bulk producers (like the join engine) should accumulate in a scratch
    /// map and intern the final normal form once via
    /// [`ProvStore::intern_mono_terms`].
    pub fn add_monomial(&mut self, p: PolyId, m: MonoId) -> PolyId {
        let key = (p, m);
        if let Some(&r) = self.add_mono_memo.get(&key) {
            self.work.memo_hits += 1;
            return r;
        }
        self.work.memo_misses += 1;
        let tp = Arc::clone(&self.polys[p.index()]);
        let mut out: Vec<(MonoId, u64)> = Vec::with_capacity(tp.len() + 1);
        let mut placed = false;
        for &(tm, c) in tp.iter() {
            if !placed && tm >= m {
                if tm == m {
                    out.push((tm, c.saturating_add(1)));
                } else {
                    out.push((m, 1));
                    out.push((tm, c));
                }
                placed = true;
            } else {
                out.push((tm, c));
            }
        }
        if !placed {
            out.push((m, 1));
        }
        let r = self.intern_terms(out);
        self.add_mono_memo.insert(key, r);
        r
    }

    /// Memoized product of two monomials.
    pub fn mul_monomials(&mut self, a: MonoId, b: MonoId) -> MonoId {
        if a == Self::MONO_ONE {
            return b;
        }
        if b == Self::MONO_ONE {
            return a;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&r) = self.mul_mono_memo.get(&key) {
            self.work.memo_hits += 1;
            return r;
        }
        self.work.memo_misses += 1;
        let product = self.monos[a.index()].mul(&self.monos[b.index()]);
        let r = self.intern_monomial(product);
        self.mul_mono_memo.insert(key, r);
        r
    }

    /// Memoized product. Equal to
    /// [`Polynomial::mul`](crate::Polynomial::mul) on the resolved values.
    pub fn mul(&mut self, a: PolyId, b: PolyId) -> PolyId {
        if a == Self::ZERO || b == Self::ZERO {
            return Self::ZERO;
        }
        if a == Self::ONE {
            return b;
        }
        if b == Self::ONE {
            return a;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&r) = self.mul_memo.get(&key) {
            self.work.memo_hits += 1;
            return r;
        }
        self.work.memo_misses += 1;
        let (ta, tb) = (
            Arc::clone(&self.polys[a.index()]),
            Arc::clone(&self.polys[b.index()]),
        );
        let mut acc: BTreeMap<MonoId, u64> = BTreeMap::new();
        for &(ma, ca) in ta.iter() {
            for &(mb, cb) in tb.iter() {
                let m = self.mul_monomials(ma, mb);
                let e = acc.entry(m).or_insert(0);
                *e = e.saturating_add(ca.saturating_mul(cb));
            }
        }
        let r = self.intern_terms(acc.into_iter().collect());
        self.mul_memo.insert(key, r);
        r
    }

    /// Memoized coefficient-wise difference, defined exactly when
    /// `b ≤_{N[X]} a`. Equal to
    /// [`Polynomial::checked_sub`](crate::Polynomial::checked_sub) on the
    /// resolved values — the merge primitive of incremental maintenance.
    pub fn checked_sub(&mut self, a: PolyId, b: PolyId) -> Option<PolyId> {
        if b == Self::ZERO {
            return Some(a);
        }
        if a == b {
            return Some(Self::ZERO);
        }
        let key = (a, b);
        if let Some(&r) = self.sub_memo.get(&key) {
            self.work.memo_hits += 1;
            return r;
        }
        self.work.memo_misses += 1;
        let (ta, tb) = (
            Arc::clone(&self.polys[a.index()]),
            Arc::clone(&self.polys[b.index()]),
        );
        let mut out: Vec<(MonoId, u64)> = Vec::with_capacity(ta.len());
        let mut j = 0;
        let mut ok = true;
        for &(m, mut c) in ta.iter() {
            if j < tb.len() && tb[j].0 < m {
                ok = false; // b has a monomial a lacks
                break;
            }
            if j < tb.len() && tb[j].0 == m {
                let oc = tb[j].1;
                if oc > c {
                    ok = false;
                    break;
                }
                c -= oc;
                j += 1;
            }
            if c > 0 {
                out.push((m, c));
            }
        }
        let r = if ok && j == tb.len() {
            Some(self.intern_terms(out))
        } else {
            None
        };
        self.sub_memo.insert(key, r);
        r
    }

    /// Memoized projection into a coarser semiring. Equal to
    /// [`Polynomial::coarsen`](crate::Polynomial::coarsen) on the resolved
    /// values.
    pub fn coarsen(&mut self, p: PolyId, kind: SemiringKind) -> PolyId {
        if kind == SemiringKind::NX || p == Self::ZERO {
            return p;
        }
        let key = (p, kind);
        if let Some(&r) = self.coarsen_memo.get(&key) {
            self.work.memo_hits += 1;
            return r;
        }
        self.work.memo_misses += 1;
        let coarse = self.resolve(p).coarsen(kind);
        let r = self.intern(&coarse);
        self.coarsen_memo.insert(key, r);
        r
    }

    /// Memoized occurrence-level abstraction application (Def. 3.1 lifted to
    /// polynomials): every annotation occurrence of every monomial is
    /// replaced by `subst(i, a)`, where `i` is the occurrence's index within
    /// its monomial's sorted occurrence list (as
    /// [`Monomial::occurrences`] enumerates it) and `a` its annotation.
    ///
    /// Results are memoized by `(p, fingerprint)`. **The caller must
    /// guarantee** that `fingerprint` uniquely identifies the substitution's
    /// behavior on `p` (e.g. an interned id of the lift vector): the memo
    /// trusts it blindly, and a colliding fingerprint returns the wrong
    /// polynomial.
    pub fn apply_abstraction(
        &mut self,
        p: PolyId,
        fingerprint: u64,
        mut subst: impl FnMut(usize, AnnotId) -> AnnotId,
    ) -> PolyId {
        let key = (p, fingerprint);
        if let Some(&r) = self.apply_memo.get(&key) {
            self.work.apply_hits += 1;
            return r;
        }
        self.work.apply_misses += 1;
        let terms = Arc::clone(&self.polys[p.index()]);
        let mut acc: BTreeMap<MonoId, u64> = BTreeMap::new();
        for &(m, c) in terms.iter() {
            let occs = self.monos[m.index()].occurrences();
            let mapped = Monomial::from_annots(occs.iter().enumerate().map(|(i, &a)| subst(i, a)));
            let id = self.intern_monomial(mapped);
            let e = acc.entry(id).or_insert(0);
            *e = e.saturating_add(c);
        }
        let r = self.intern_terms(acc.into_iter().collect());
        self.apply_memo.insert(key, r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnnotRegistry;

    fn setup() -> (AnnotRegistry, AnnotId, AnnotId, AnnotId) {
        let mut reg = AnnotRegistry::new();
        let a = reg.intern("a");
        let b = reg.intern("b");
        let c = reg.intern("c");
        (reg, a, b, c)
    }

    #[test]
    fn constants_are_canonical() {
        let mut store = ProvStore::new();
        assert!(store.is_zero(ProvStore::ZERO));
        assert_eq!(store.intern(&Polynomial::zero()), ProvStore::ZERO);
        assert_eq!(store.intern(&Polynomial::one()), ProvStore::ONE);
        assert_eq!(store.intern_monomial(Monomial::one()), ProvStore::MONO_ONE);
        assert_eq!(store.resolve(ProvStore::ZERO), Polynomial::zero());
        assert_eq!(store.resolve(ProvStore::ONE), Polynomial::one());
    }

    #[test]
    fn interning_is_canonical_and_counts_work() {
        let (_, a, b, _) = setup();
        let mut store = ProvStore::new();
        let p = Polynomial::var(a).add(&Polynomial::var(b));
        let id1 = store.intern(&p);
        let before = store.work();
        let id2 = store.intern(&p);
        assert_eq!(id1, id2);
        let after = store.work();
        assert_eq!(after.polys_interned, before.polys_interned);
        assert_eq!(after.poly_hits, before.poly_hits + 1);
        assert_eq!(store.resolve(id1), p);
    }

    #[test]
    fn ops_match_owned_reference() {
        let (_, a, b, c) = setup();
        let p = Polynomial::from_terms([
            (Monomial::from_factors([(a, 2)]), 3),
            (Monomial::from_annots([b, c]), 1),
        ]);
        let q = Polynomial::var(a).add(&Polynomial::from(Monomial::from_annots([b, c])));
        let mut store = ProvStore::new();
        let (pi, qi) = (store.intern(&p), store.intern(&q));
        let sum = store.add(pi, qi);
        assert_eq!(store.resolve(sum), p.add(&q));
        let product = store.mul(pi, qi);
        assert_eq!(store.resolve(product), p.mul(&q));
        let diff = store.checked_sub(pi, qi);
        assert_eq!(diff.map(|d| store.resolve(d)), p.checked_sub(&q));
        assert_eq!(store.checked_sub(qi, pi), None);
        for kind in SemiringKind::ALL {
            let coarse = store.coarsen(pi, kind);
            assert_eq!(store.resolve(coarse), p.coarsen(kind));
        }
    }

    #[test]
    fn add_monomial_accumulates_like_owned_add() {
        let (_, a, b, _) = setup();
        let mut store = ProvStore::new();
        let ma = store.intern_monomial(Monomial::from_annots([a]));
        let mb = store.intern_monomial(Monomial::from_annots([b]));
        let mut p = ProvStore::ZERO;
        for m in [ma, mb, ma] {
            p = store.add_monomial(p, m);
        }
        let expected = Polynomial::var(a)
            .add(&Polynomial::var(b))
            .add(&Polynomial::var(a));
        assert_eq!(store.resolve(p), expected);
    }

    #[test]
    fn memoized_ops_pay_once() {
        let (_, a, b, _) = setup();
        let mut store = ProvStore::new();
        let pa = store.intern(&Polynomial::var(a));
        let pb = store.intern(&Polynomial::var(b));
        let first = store.add(pa, pb);
        let misses = store.work().memo_misses;
        // Repeat, both orders: the commutative memo answers.
        assert_eq!(store.add(pa, pb), first);
        assert_eq!(store.add(pb, pa), first);
        assert_eq!(store.work().memo_misses, misses);
        assert!(store.work().memo_hits >= 2);
    }

    #[test]
    fn apply_abstraction_substitutes_occurrences() {
        let (mut reg, a, b, _) = setup();
        let up = reg.intern("up");
        // a^2*b: occurrences [a, a, b]; lift the *second* occurrence only.
        let p = Polynomial::from(Monomial::from_factors([(a, 2), (b, 1)]));
        let mut store = ProvStore::new();
        let pi = store.intern(&p);
        let lifted = store.apply_abstraction(pi, 1, |i, x| if i == 1 { up } else { x });
        let expected = Polynomial::from(Monomial::from_annots([a, up, b]));
        assert_eq!(store.resolve(lifted), expected);
        // Identity substitution under a distinct fingerprint.
        let same = store.apply_abstraction(pi, 2, |_, x| x);
        assert_eq!(same, pi);
        // The memo answers the repeat without recomputation.
        let misses = store.work().apply_misses;
        assert_eq!(
            store.apply_abstraction(pi, 1, |_, _| unreachable!("memo must answer")),
            lifted
        );
        assert_eq!(store.work().apply_misses, misses);
        assert!(store.work().apply_hits >= 1);
    }

    #[test]
    fn poly_id_equality_is_polynomial_equality() {
        let (_, a, b, _) = setup();
        let mut store = ProvStore::new();
        // a + b built two different ways lands on one id.
        let pa = store.intern(&Polynomial::var(a));
        let pb = store.intern(&Polynomial::var(b));
        let sum = store.add(pa, pb);
        let direct = store.intern(&Polynomial::var(b).add(&Polynomial::var(a)));
        assert_eq!(sum, direct);
    }

    #[test]
    fn saturating_coefficients_do_not_wrap() {
        let (_, a, _, _) = setup();
        let mut store = ProvStore::new();
        let big = Polynomial::from_terms([(Monomial::from_annots([a]), u64::MAX)]);
        let bi = store.intern(&big);
        let doubled = store.add(bi, bi);
        assert_eq!(
            store
                .resolve(doubled)
                .coefficient(&Monomial::from_annots([a])),
            u64::MAX
        );
    }
}
