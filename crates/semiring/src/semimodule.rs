//! Aggregate provenance via semimodules (§3.4 of the paper).
//!
//! Following Amsterdamer, Deutch & Tannen (PODS 2011), the provenance of an
//! aggregate query result is a formal sum of tensors `m ⊗ v` pairing a
//! provenance monomial `m` with a value `v` from the aggregate domain, summed
//! with the aggregate's monoid operation (e.g. `+MAX`). The paper's
//! abstraction functions act on the *annotation part* of each tensor and
//! leave the value part intact.

use crate::{AnnotId, AnnotRegistry, Monomial};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An aggregate operation (the monoid the tensors are summed with).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggOp {
    /// Maximum.
    Max,
    /// Minimum.
    Min,
    /// Sum.
    Sum,
    /// Count (each tensor contributes its value, normally 1).
    Count,
}

impl AggOp {
    /// Combines two aggregate-domain values with this monoid.
    pub fn combine(self, a: i64, b: i64) -> i64 {
        match self {
            AggOp::Max => a.max(b),
            AggOp::Min => a.min(b),
            AggOp::Sum | AggOp::Count => a + b,
        }
    }

    /// The identity element of the monoid.
    pub fn identity(self) -> i64 {
        match self {
            AggOp::Max => i64::MIN,
            AggOp::Min => i64::MAX,
            AggOp::Sum | AggOp::Count => 0,
        }
    }
}

impl fmt::Display for AggOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggOp::Max => "MAX",
            AggOp::Min => "MIN",
            AggOp::Sum => "SUM",
            AggOp::Count => "COUNT",
        };
        f.write_str(s)
    }
}

/// A single tensor `monomial ⊗ value`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorTerm {
    /// The provenance monomial (annotation part). Abstraction functions
    /// rewrite this component.
    pub monomial: Monomial,
    /// The aggregate-domain value.
    pub value: i64,
}

/// An aggregate provenance value: `Σ_op (m_i ⊗ v_i)`.
///
/// E.g. `(p1*h1*i1) ⊗ 27 +MAX (p2*h2*i2) ⊗ 31` for the MAX-age variant of
/// the running example.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggValue {
    /// The aggregation monoid.
    pub op: AggOp,
    /// The tensor terms, in insertion order.
    pub terms: Vec<TensorTerm>,
}

impl AggValue {
    /// Creates an empty aggregate value for `op`.
    pub fn new(op: AggOp) -> Self {
        Self {
            op,
            terms: Vec::new(),
        }
    }

    /// Appends a tensor `m ⊗ v`.
    pub fn push(&mut self, monomial: Monomial, value: i64) {
        self.terms.push(TensorTerm { monomial, value });
    }

    /// The aggregate result when every tuple is present.
    pub fn evaluate(&self) -> i64 {
        self.terms
            .iter()
            .fold(self.op.identity(), |acc, t| self.op.combine(acc, t.value))
    }

    /// The aggregate result after deleting the annotations selected by
    /// `deleted`: tensors whose monomial mentions a deleted annotation are
    /// dropped (their monomial evaluates to 0 and `0 ⊗ v` is the semimodule
    /// zero). Returns `None` if no tensor survives.
    pub fn evaluate_after_deletion(&self, deleted: &dyn Fn(AnnotId) -> bool) -> Option<i64> {
        let mut acc: Option<i64> = None;
        for t in &self.terms {
            if t.monomial.support().all(|a| !deleted(a)) {
                acc = Some(match acc {
                    None => self.op.combine(self.op.identity(), t.value),
                    Some(v) => self.op.combine(v, t.value),
                });
            }
        }
        acc
    }

    /// Rewrites the annotation part of every tensor through `f` — the
    /// semimodule form of applying an abstraction function (§3.4). The value
    /// parts are untouched.
    pub fn map_monomials(&self, mut f: impl FnMut(&Monomial) -> Monomial) -> Self {
        Self {
            op: self.op,
            terms: self
                .terms
                .iter()
                .map(|t| TensorTerm {
                    monomial: f(&t.monomial),
                    value: t.value,
                })
                .collect(),
        }
    }

    /// Renders with labels from `reg`, e.g.
    /// `(p1*h1*i1)⊗27 +MAX (p2*h2*i2)⊗31`.
    pub fn to_string_with(&self, reg: &AnnotRegistry) -> String {
        if self.terms.is_empty() {
            return "0".to_owned();
        }
        let sep = format!(" +{} ", self.op);
        self.terms
            .iter()
            .map(|t| format!("({})⊗{}", t.monomial.to_string_with(reg), t.value))
            .collect::<Vec<_>>()
            .join(&sep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnnotRegistry;

    fn running_example_agg() -> (AnnotRegistry, AggValue) {
        let mut reg = AnnotRegistry::new();
        let p1 = reg.intern("p1");
        let h1 = reg.intern("h1");
        let i1 = reg.intern("i1");
        let p2 = reg.intern("p2");
        let h2 = reg.intern("h2");
        let i2 = reg.intern("i2");
        let mut agg = AggValue::new(AggOp::Max);
        agg.push(Monomial::from_annots([p1, h1, i1]), 27);
        agg.push(Monomial::from_annots([p2, h2, i2]), 31);
        (reg, agg)
    }

    #[test]
    fn max_aggregation_evaluates() {
        let (_, agg) = running_example_agg();
        assert_eq!(agg.evaluate(), 31);
    }

    #[test]
    fn deletion_changes_aggregate() {
        let (reg, agg) = running_example_agg();
        let h2 = reg.get("h2").unwrap();
        // Deleting Brenda's hobby tuple drops the 31 tensor: MAX falls to 27.
        assert_eq!(agg.evaluate_after_deletion(&|a| a == h2), Some(27));
        // Deleting everything yields no result.
        assert_eq!(agg.evaluate_after_deletion(&|_| true), None);
    }

    #[test]
    fn map_monomials_preserves_values() {
        let (mut reg, agg) = running_example_agg();
        let fb = reg.intern("Facebook");
        let h1 = reg.get("h1").unwrap();
        let mapped = agg.map_monomials(|m| {
            Monomial::from_annots(
                m.occurrences()
                    .into_iter()
                    .map(|a| if a == h1 { fb } else { a }),
            )
        });
        assert_eq!(mapped.evaluate(), 31);
        assert!(mapped.terms[0].monomial.contains(fb));
        assert_eq!(mapped.terms[0].value, 27);
    }

    #[test]
    fn op_identities() {
        assert_eq!(AggOp::Sum.combine(AggOp::Sum.identity(), 5), 5);
        assert_eq!(AggOp::Max.combine(AggOp::Max.identity(), 5), 5);
        assert_eq!(AggOp::Min.combine(AggOp::Min.identity(), 5), 5);
    }

    #[test]
    fn render_matches_paper_notation() {
        let (reg, agg) = running_example_agg();
        assert_eq!(agg.to_string_with(&reg), "(p1*h1*i1)⊗27 +MAX (p2*h2*i2)⊗31");
    }
}
