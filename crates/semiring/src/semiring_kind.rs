//! The provenance-semiring hierarchy.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The semirings (and semiring families) of the provenance hierarchy used by
/// Table 4 of the paper, ordered from most to least informative.
///
/// `N[X]` (provenance polynomials) sits at the top; every other member is a
/// surjective semiring homomorphism image of it, computed by
/// [`Polynomial::coarsen`](crate::Polynomial::coarsen).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SemiringKind {
    /// `N[X]` — polynomials with coefficients and exponents.
    NX,
    /// `B[X]` — coefficients dropped (sets of monomials).
    BX,
    /// `Trio(X)` — exponents dropped, coefficients kept (bags of sets).
    Trio,
    /// `Why(X)` — witness sets: both coefficients and exponents dropped.
    Why,
    /// `PosBool(X)` — positive Boolean expressions; absorption applies.
    PosBool,
    /// `Lin(X)` — lineage: the flat set of contributing annotations.
    Lin,
}

impl SemiringKind {
    /// All kinds, most informative first.
    pub const ALL: [SemiringKind; 6] = [
        SemiringKind::NX,
        SemiringKind::BX,
        SemiringKind::Trio,
        SemiringKind::Why,
        SemiringKind::PosBool,
        SemiringKind::Lin,
    ];

    /// Whether the semiring keeps monomial exponents.
    pub fn keeps_exponents(self) -> bool {
        matches!(self, SemiringKind::NX | SemiringKind::BX)
    }

    /// Whether the semiring keeps coefficients (derivation counts).
    pub fn keeps_coefficients(self) -> bool {
        matches!(self, SemiringKind::NX | SemiringKind::Trio)
    }

    /// Whether the paper's reverse-engineering machinery supports the
    /// semiring (everything except `Lin(X)`, which the paper defers to
    /// future work).
    pub fn supports_reverse_engineering(self) -> bool {
        !matches!(self, SemiringKind::Lin)
    }
}

impl fmt::Display for SemiringKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SemiringKind::NX => "N[X]",
            SemiringKind::BX => "B[X]",
            SemiringKind::Trio => "Trio(X)",
            SemiringKind::Why => "Why(X)",
            SemiringKind::PosBool => "PosBool(X)",
            SemiringKind::Lin => "Lin(X)",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_flags() {
        assert!(SemiringKind::NX.keeps_exponents());
        assert!(SemiringKind::NX.keeps_coefficients());
        assert!(SemiringKind::BX.keeps_exponents());
        assert!(!SemiringKind::BX.keeps_coefficients());
        assert!(!SemiringKind::Trio.keeps_exponents());
        assert!(SemiringKind::Trio.keeps_coefficients());
        assert!(!SemiringKind::Why.keeps_exponents());
        assert!(!SemiringKind::Lin.supports_reverse_engineering());
        assert!(SemiringKind::PosBool.supports_reverse_engineering());
    }

    #[test]
    fn display_names() {
        assert_eq!(SemiringKind::NX.to_string(), "N[X]");
        assert_eq!(SemiringKind::Why.to_string(), "Why(X)");
    }
}
