//! Concretization sets of abstracted K-examples (Def. 3.3, Prop. 3.5).

use crate::{AbsRow, Bound, Sym};
use provabs_semiring::AnnotId;

/// The number of concretizations of an abstracted row: the product over its
/// symbols of `|L_T(sym)|` (Prop. 3.5 item 1, per row).
pub fn row_concretization_count(bound: &Bound<'_>, row: &AbsRow) -> u128 {
    row.syms
        .iter()
        .map(|s| match s {
            Sym::Leaf(_) => 1u128,
            Sym::Abs(n) => u128::from(bound.tree.leaf_count(*n)),
        })
        .product()
}

/// The number of concretizations of a whole abstracted example
/// (Prop. 3.5 item 1).
pub fn concretization_count(bound: &Bound<'_>, rows: &[AbsRow]) -> u128 {
    rows.iter()
        .map(|r| row_concretization_count(bound, r))
        .product()
}

/// Enumerates the concretizations of one abstracted row: every assignment of
/// a leaf under each abstracted symbol. Calls `visit` with the concrete
/// occurrence list; stops and returns `false` once `visit` returns `false`
/// or `max` rows were produced (returns `true` iff enumeration completed).
pub fn for_each_row_concretization(
    bound: &Bound<'_>,
    row: &AbsRow,
    max: usize,
    mut visit: impl FnMut(&[AnnotId]) -> bool,
) -> bool {
    // Choice lists per symbol.
    let choices: Vec<&[AnnotId]> = row
        .syms
        .iter()
        .map(|s| match s {
            Sym::Leaf(a) => std::slice::from_ref(a),
            Sym::Abs(n) => bound.tree.leaves_under(*n),
        })
        .collect();
    let mut current: Vec<AnnotId> = choices.iter().map(|c| c[0]).collect();
    let mut produced = 0usize;
    odometer(&choices, 0, &mut current, &mut |occs| {
        if produced >= max {
            return false;
        }
        produced += 1;
        visit(occs)
    })
}

fn odometer(
    choices: &[&[AnnotId]],
    i: usize,
    current: &mut Vec<AnnotId>,
    visit: &mut impl FnMut(&[AnnotId]) -> bool,
) -> bool {
    if i == choices.len() {
        return visit(current);
    }
    for &c in choices[i] {
        current[i] = c;
        if !odometer(choices, i + 1, current, visit) {
            return false;
        }
    }
    true
}

/// Enumerates the concretizations of a list of abstracted rows (the
/// cartesian product of per-row concretizations). `visit` receives one
/// occurrence list per row; the same early-exit protocol as
/// [`for_each_row_concretization`] applies.
pub fn for_each_concretization(
    bound: &Bound<'_>,
    rows: &[AbsRow],
    max: usize,
    mut visit: impl FnMut(&[Vec<AnnotId>]) -> bool,
) -> bool {
    let mut current: Vec<Vec<AnnotId>> = Vec::with_capacity(rows.len());
    let mut produced = 0usize;
    rec_rows(bound, rows, 0, &mut current, max, &mut produced, &mut visit)
}

fn rec_rows(
    bound: &Bound<'_>,
    rows: &[AbsRow],
    i: usize,
    current: &mut Vec<Vec<AnnotId>>,
    max: usize,
    produced: &mut usize,
    visit: &mut impl FnMut(&[Vec<AnnotId>]) -> bool,
) -> bool {
    if i == rows.len() {
        if *produced >= max {
            return false;
        }
        *produced += 1;
        return visit(current);
    }
    for_each_row_concretization(bound, &rows[i], usize::MAX, |occs| {
        current.push(occs.to_vec());
        let cont = rec_rows(bound, rows, i + 1, current, max, produced, visit);
        current.pop();
        cont
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::running_example;
    use crate::{Abstraction, Bound};

    fn abs_lifting(bound: &Bound<'_>, lifts: &[(&str, u32)]) -> Abstraction {
        let mut abs = Abstraction::identity(bound);
        for (name, lift) in lifts {
            let id = bound.db.annotations().get(name).unwrap();
            for r in 0..bound.num_rows() {
                for (i, &a) in bound.row_occurrences(r).iter().enumerate() {
                    if a == id {
                        abs.lifts[r][i] = *lift;
                    }
                }
            }
        }
        abs
    }

    #[test]
    fn exabs1_has_15_concretizations() {
        // Example 3.15: |C(Exabs1)| = 5 * 3 = 15.
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = abs_lifting(&b, &[("h1", 1), ("h2", 1)]);
        let rows = abs.apply(&b).rows;
        assert_eq!(concretization_count(&b, &rows), 15);
        let mut seen = 0;
        assert!(for_each_concretization(&b, &rows, usize::MAX, |_| {
            seen += 1;
            true
        }));
        assert_eq!(seen, 15);
    }

    #[test]
    fn exabs2_has_20_concretizations() {
        // A2_T: i1 -> WikiLeaks (4 leaves), i2 -> Facebook (5 leaves) = 20.
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = abs_lifting(&b, &[("i1", 1), ("i2", 1)]);
        let rows = abs.apply(&b).rows;
        assert_eq!(concretization_count(&b, &rows), 20);
    }

    #[test]
    fn identity_has_single_concretization() {
        // Prop. 3.5 item 2, lower bound.
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = Abstraction::identity(&b);
        let rows = abs.apply(&b).rows;
        assert_eq!(concretization_count(&b, &rows), 1);
        let mut seen = Vec::new();
        for_each_concretization(&b, &rows, usize::MAX, |c| {
            seen.push(c.to_vec());
            true
        });
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0][0], b.row_occurrences(0));
    }

    #[test]
    fn full_abstraction_hits_upper_bound() {
        // Prop. 3.5 item 2, upper bound: lifting every tree occurrence to
        // the root gives |L_T|^n concretizations for the lifted ones.
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let mut abs = Abstraction::identity(&b);
        let mut lifted = 0u32;
        for r in 0..b.num_rows() {
            for i in 0..b.row_occurrences(r).len() {
                let max = b.max_lift(r, i);
                if max > 0 {
                    abs.lifts[r][i] = max;
                    lifted += 1;
                }
            }
        }
        // Four tree occurrences (h1, i1, h2, i2), 12 leaves each.
        assert_eq!(lifted, 4);
        let rows = abs.apply(&b).rows;
        assert_eq!(concretization_count(&b, &rows), 12u128.pow(4));
    }

    #[test]
    fn enumeration_cap_aborts() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = abs_lifting(&b, &[("h1", 1), ("h2", 1)]);
        let rows = abs.apply(&b).rows;
        let mut seen = 0;
        let complete = for_each_concretization(&b, &rows, 7, |_| {
            seen += 1;
            true
        });
        assert!(!complete);
        assert_eq!(seen, 7);
    }
}
