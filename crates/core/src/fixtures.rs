//! The paper's running example (Figures 1–6, Tables 1 and 3) as a reusable
//! fixture for tests, examples, and benchmarks.

use provabs_relational::{eval_cq, parse_cq, Cq, Database, KExample};
use provabs_tree::{AbstractionTree, TreeBuilder};

/// The running example of the paper: the Figure 1 database, the Figure 3
/// abstraction tree, the Table 1 queries, and the Figure 2 K-examples.
#[derive(Debug)]
pub struct RunningExample {
    /// Figure 1: Interests / Hobbies / Person with annotations `i1..i6`,
    /// `h1..h6`, `p1..p2`. Inner tree labels are interned in the same
    /// registry.
    pub db: Database,
    /// Figure 3: the abstraction tree over a subset of the annotations.
    pub tree: AbstractionTree,
    /// Table 1: `Qreal` — people who like dancing and music.
    pub qreal: Cq,
    /// Table 1: `Qfalse1` — trips instead of dancing.
    pub qfalse1: Cq,
    /// Table 1: `Qfalse2` — parties instead of music.
    pub qfalse2: Cq,
    /// Table 1: `Qgeneral` — the interest constant generalized.
    pub qgeneral: Cq,
    /// Figure 2a: the output of `Qreal` with provenance.
    pub exreal: KExample,
}

/// Builds the running example.
pub fn running_example() -> RunningExample {
    let mut db = Database::new();
    let interests = db.add_relation("Interests", &["pid", "interest", "source"]);
    let hobbies = db.add_relation("Hobbies", &["pid", "hobby", "source"]);
    let persons = db.add_relation("Person", &["pid", "name", "age"]);
    for (a, f) in [
        ("i1", ["1", "Music", "WikiLeaks"]),
        ("i2", ["2", "Music", "Facebook"]),
        ("i3", ["3", "Music", "LinkedIn"]),
        ("i4", ["1", "Parties", "WikiLeaks"]),
        ("i5", ["2", "Parties", "Facebook"]),
        ("i6", ["4", "Movies", "WikiLeaks"]),
    ] {
        db.insert_str(interests, a, &f);
    }
    for (a, f) in [
        ("h1", ["1", "Dance", "Facebook"]),
        ("h2", ["2", "Dance", "LinkedIn"]),
        ("h3", ["4", "Dance", "Facebook"]),
        ("h4", ["1", "Trips", "Facebook"]),
        ("h5", ["2", "Trips", "LinkedIn"]),
        ("h6", ["3", "Trips", "WikiLeaks"]),
    ] {
        db.insert_str(hobbies, a, &f);
    }
    db.insert_str(persons, "p1", &["1", "James T", "27"]);
    db.insert_str(persons, "p2", &["2", "Brenda P", "31"]);
    db.build_indexes();

    // Figure 3 tree; inner labels share the database registry so that
    // compatibility (Def. 2.6) is meaningful.
    let root = db.intern_label("*");
    let wiki = db.intern_label("WikiLeaks_src");
    let social = db.intern_label("SocialNetwork");
    let linkedin = db.intern_label("LinkedIn_src");
    let facebook = db.intern_label("Facebook_src");
    let leaf = |db: &Database, n: &str| db.annotations().get(n).unwrap();
    let mut b = TreeBuilder::new(root);
    b.add_child(root, wiki);
    b.add_child(root, social);
    for n in ["i6", "i4", "i1", "h6"] {
        b.add_child(wiki, leaf(&db, n));
    }
    b.add_child(social, linkedin);
    b.add_child(social, facebook);
    for n in ["i3", "h5", "h2"] {
        b.add_child(linkedin, leaf(&db, n));
    }
    for n in ["i5", "i2", "h4", "h3", "h1"] {
        b.add_child(facebook, leaf(&db, n));
    }
    let tree = b.build();
    debug_assert!(tree.compatible_with(&db));

    let schema = db.schema();
    let qreal = parse_cq(
        "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', src1), Interests(id, 'Music', src2)",
        schema,
    )
    .unwrap();
    let qfalse1 = parse_cq(
        "Q(id) :- Person(id, name, age), Hobbies(id, 'Trips', src1), Interests(id, 'Music', src2)",
        schema,
    )
    .unwrap();
    let qfalse2 = parse_cq(
        "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', src1), Interests(id, 'Parties', src2)",
        schema,
    )
    .unwrap();
    let qgeneral = parse_cq(
        "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', src1), Interests(id, interest, src2)",
        schema,
    )
    .unwrap();
    let exreal = KExample::from_krelation(&eval_cq(&db, &qreal), usize::MAX);
    RunningExample {
        db,
        tree,
        qreal,
        qfalse1,
        qfalse2,
        qgeneral,
        exreal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exreal_matches_figure_2a() {
        let fx = running_example();
        assert_eq!(fx.exreal.len(), 2);
        let reg = fx.db.annotations();
        let rendered = fx.exreal.to_string_with(reg);
        assert!(rendered.contains("(1)"));
        assert!(rendered.contains("(2)"));
        // Row 1 provenance mentions p1, h1, i1.
        for a in ["p1", "h1", "i1"] {
            assert!(fx.exreal.rows[0].monomial.contains(reg.get(a).unwrap()));
        }
    }

    #[test]
    fn tree_matches_figure_3_counts() {
        let fx = running_example();
        assert_eq!(fx.tree.num_leaves(), 12);
        let fb = fx
            .tree
            .node_by_label(fx.db.annotations().get("Facebook_src").unwrap())
            .unwrap();
        assert_eq!(fx.tree.leaf_count(fb), 5);
    }

    #[test]
    fn fixture_round_trips_through_the_value_interner() {
        // The fixture inserts owned tuples; storage dictionary-encodes
        // them. Decoding every tagged tuple and looking each value back up
        // must land on the exact stored column ids — the concretize /
        // reverse-engineering layers rely on this boundary decode being
        // lossless.
        let fx = running_example();
        let ex = &fx.exreal;
        let mut decoded = Vec::new();
        for row in &ex.rows {
            for a in row.monomial.occurrences() {
                let loc = fx.db.locate(a).expect("example annotations resolve");
                fx.db.decode_row_into(loc.rel, loc.row, &mut decoded);
                for (col, v) in decoded.iter().enumerate() {
                    let id = fx
                        .db
                        .interner()
                        .lookup(v)
                        .expect("decoded value is interned");
                    assert_eq!(fx.db.column(loc.rel, col)[loc.row], id);
                }
            }
        }
        // Resolution through the owned boundary agrees with the decode.
        let resolved = ex.resolve(&fx.db).expect("resolvable");
        for row in &resolved {
            for (a, rel, t) in &row.occurrences {
                let loc = fx.db.locate(*a).unwrap();
                assert_eq!(loc.rel, *rel);
                assert_eq!(&fx.db.decode_row(loc.rel, loc.row), t);
            }
        }
    }

    #[test]
    fn queries_parse_with_expected_shapes() {
        let fx = running_example();
        for q in [&fx.qreal, &fx.qfalse1, &fx.qfalse2, &fx.qgeneral] {
            assert_eq!(q.body.len(), 3);
            assert!(q.is_connected());
        }
    }
}
