//! Algorithm 1: computing the privacy of an abstracted K-example.
//!
//! The privacy of `Ã` is the number of unique CIM queries w.r.t. `Ã`
//! (Def. 3.12). The algorithm concretizes row by row, keeping only the
//! "good" concretization prefixes that admit consistent connected queries,
//! filtering disconnected concretizations, and caching per-concretization
//! results (§4.1). Every optimization component carries a config flag so the
//! Figure 19 ablation can disable it.

use crate::concretize::{for_each_concretization, for_each_row_concretization};
use crate::sharded::ShardedMap;
use crate::{AbsRow, Bound};
use provabs_relational::{ConcreteRow, Cq, Ucq};
use provabs_reveng::ucq::{cim_ucqs, find_consistent_ucqs, UcqOptions};
use provabs_reveng::{
    canonical_key, cim_queries, find_consistent_queries, ContainmentMode, RevOptions,
};
use provabs_semiring::{AnnotId, SemiringKind};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// The query class against which privacy is measured (Table 4 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryClass {
    /// Conjunctive queries (the gray/red cells; Algorithm 1 as printed).
    #[default]
    Cq,
    /// Unions of conjunctive queries (orange/green cells) with the
    /// trivial-query exclusion.
    Ucq,
}

/// Configuration of the privacy computation.
#[derive(Debug, Clone)]
pub struct PrivacyConfig {
    /// The privacy threshold `k`.
    pub threshold: usize,
    /// The provenance semiring the K-example is given in.
    pub semiring: SemiringKind,
    /// CQ or UCQ privacy.
    pub query_class: QueryClass,
    /// Exclude trivial UCQs (variable-free disjuncts), §4 orange cell.
    pub exclude_trivial: bool,
    /// §4.1 component 1 (of the privacy computation): process rows
    /// incrementally, pruning prefixes that admit no consistent connected
    /// query. Disabled = concretize the whole example at once.
    pub row_by_row: bool,
    /// §4.1 component 2: drop disconnected concretizations.
    pub connectivity_filter: bool,
    /// §4.1 component 3: cache consistent queries and connectivity per
    /// concretization.
    pub caching: bool,
    /// Cap on alignments per consistency call.
    pub max_alignments: usize,
    /// Cap on concretizations enumerated per privacy evaluation. When hit,
    /// the returned privacy is a lower bound and `stats.truncated` is set.
    pub max_concretizations: usize,
    /// Extra expansion degree for exponent-dropping semirings.
    pub max_expansion_extra: u32,
}

impl Default for PrivacyConfig {
    fn default() -> Self {
        Self {
            threshold: 5,
            semiring: SemiringKind::NX,
            query_class: QueryClass::Cq,
            exclude_trivial: true,
            row_by_row: true,
            connectivity_filter: true,
            caching: true,
            max_alignments: 100_000,
            max_concretizations: 1_000_000,
            max_expansion_extra: 1,
        }
    }
}

/// Counters exposed by one privacy evaluation.
#[derive(Debug, Clone, Default)]
pub struct PrivacyStats {
    /// Concretizations produced by the enumerators.
    pub concretizations_enumerated: usize,
    /// Concretizations surviving the connectivity filter.
    pub concretizations_kept: usize,
    /// Consistency-cache hits / misses.
    pub consistency_cache_hits: usize,
    /// Consistency-cache misses (queries actually computed).
    pub consistency_cache_misses: usize,
    /// Connectivity-cache hits.
    pub connectivity_cache_hits: usize,
    /// Connectivity-cache misses.
    pub connectivity_cache_misses: usize,
    /// Whether a cap was hit (result is a lower bound).
    pub truncated: bool,
}

impl PrivacyStats {
    /// Merges counters from another evaluation (used by the search).
    pub fn absorb(&mut self, other: &PrivacyStats) {
        self.concretizations_enumerated += other.concretizations_enumerated;
        self.concretizations_kept += other.concretizations_kept;
        self.consistency_cache_hits += other.consistency_cache_hits;
        self.consistency_cache_misses += other.consistency_cache_misses;
        self.connectivity_cache_hits += other.connectivity_cache_hits;
        self.connectivity_cache_misses += other.connectivity_cache_misses;
        self.truncated |= other.truncated;
    }
}

/// Caches shared across privacy evaluations (§4.1, "Caching information
/// about concretizations and queries"). Consistent queries are cached per
/// concretization; CIM queries are *not* cached, exactly as the paper notes,
/// because minimality depends on the concretization set of the abstraction
/// under evaluation.
///
/// The cache is `Send + Sync` (internally a sharded concurrent map), so one
/// cache is shared by every worker of the parallel search — candidates that
/// revisit a concretization another worker already solved get the memoized
/// result — and can likewise be reused across searches by an experiment
/// harness. All methods take `&self`.
///
/// ```
/// use provabs_core::privacy::{compute_privacy, PrivacyCache, PrivacyConfig};
/// use provabs_core::{fixtures, Abstraction, Bound};
///
/// let fx = fixtures::running_example();
/// let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
/// let rows = Abstraction::identity(&bound).apply(&bound).rows;
/// let cfg = PrivacyConfig { threshold: 1, ..Default::default() };
///
/// let cache = PrivacyCache::new();
/// let first = compute_privacy(&bound, &rows, &cfg, &cache);
/// let second = compute_privacy(&bound, &rows, &cfg, &cache);
/// assert_eq!(first.privacy, second.privacy);
/// // The repeat run is answered from the cache: no recomputation.
/// assert_eq!(second.stats.consistency_cache_misses, 0);
/// assert!(!cache.is_empty());
///
/// // The cache crosses thread boundaries by shared reference.
/// fn assert_send_sync<T: Send + Sync>(_: &T) {}
/// assert_send_sync(&cache);
/// ```
#[derive(Debug, Default)]
pub struct PrivacyCache {
    /// Interns sorted occurrence lists to small ids: both caches key by
    /// [`OccId`] instead of hashed owned annotation vectors, so repeat
    /// lookups hash a handful of `u32`s rather than whole concretizations.
    occs: OccInterner,
    consistent: ShardedMap<ConcKey, Arc<Vec<Cq>>>,
    connectivity: ShardedMap<OccId, bool>,
}

/// An interned sorted occurrence list (id space private to one
/// [`PrivacyCache`]).
type OccId = u32;

/// A sharded interner: sorted occurrence vector → dense-ish id. First
/// insert wins under races, so every equal vector resolves to one canonical
/// id (racing workers may burn a counter value — ids stay unique, which is
/// all the keying needs).
#[derive(Debug, Default)]
struct OccInterner {
    ids: ShardedMap<Vec<AnnotId>, OccId>,
    next: AtomicU32,
}

impl OccInterner {
    fn intern(&self, key: Vec<AnnotId>) -> OccId {
        if let Some(id) = self.ids.get(&key) {
            return id;
        }
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.ids.insert(key, id)
    }

    /// Drops every interned list intersecting `touched`, returning the
    /// evicted ids.
    fn invalidate(&self, touched: &HashSet<AnnotId>) -> HashSet<OccId> {
        let mut evicted = HashSet::new();
        self.ids.retain_kv(|key, &id| {
            if key.iter().any(|a| touched.contains(a)) {
                evicted.insert(id);
                false
            } else {
                true
            }
        });
        evicted
    }
}

impl PrivacyCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached concretizations.
    pub fn len(&self) -> usize {
        self.consistent.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.consistent.is_empty()
    }

    /// Provenance-aware invalidation after a database delta: drops exactly
    /// the entries whose annotations intersect `touched` (the deleted and
    /// inserted tuples of an [`AppliedDelta`](provabs_relational::AppliedDelta)).
    ///
    /// Keys are interned occurrence-list ids; the interner is the single
    /// source of truth for which annotations an id covers, so invalidation
    /// evicts the intersecting ids there and then drops exactly the cache
    /// entries referencing them. Cached values depend only on the tuples
    /// those annotations tag — consistent queries on the resolved rows,
    /// connectivity on their value overlaps — so entries disjoint from the
    /// delta stay exactly valid and survive. Inserted annotations are fresh
    /// and appear in no key; they are accepted here so callers can pass the
    /// whole touched set.
    pub fn invalidate(&self, touched: &std::collections::HashSet<AnnotId>) {
        if touched.is_empty() {
            return;
        }
        let evicted = self.occs.invalidate(touched);
        if evicted.is_empty() {
            return;
        }
        self.connectivity.retain(|id| !evicted.contains(id));
        self.consistent
            .retain(|key| !key.iter().any(|(_, id)| evicted.contains(id)));
    }
}

/// Cache key: the concrete rows (output + interned sorted occurrence list).
type ConcKey = Vec<(provabs_relational::Tuple, OccId)>;

/// The result of a privacy evaluation.
#[derive(Debug, Clone)]
pub struct PrivacyOutcome {
    /// `Some(p)` with `p >= k` when the threshold is met; `None` encodes the
    /// paper's `-1` (privacy below the threshold).
    pub privacy: Option<usize>,
    /// The CIM queries witnessing the privacy (empty when below threshold).
    pub cim: Vec<Cq>,
    /// Counters.
    pub stats: PrivacyStats,
}

/// Computes the privacy of the abstracted rows `abs_rows` of `bound`
/// (Algorithm 1). Returns `None` privacy when it falls below
/// `cfg.threshold`.
pub fn compute_privacy(
    bound: &Bound<'_>,
    abs_rows: &[AbsRow],
    cfg: &PrivacyConfig,
    cache: &PrivacyCache,
) -> PrivacyOutcome {
    match cfg.query_class {
        QueryClass::Cq => {
            if cfg.row_by_row && abs_rows.len() > 1 {
                privacy_row_by_row(bound, abs_rows, cfg, cache)
            } else {
                privacy_direct(bound, abs_rows, cfg, cache)
            }
        }
        QueryClass::Ucq => privacy_ucq(bound, abs_rows, cfg),
    }
}

fn rev_options(cfg: &PrivacyConfig) -> RevOptions {
    RevOptions {
        semiring: cfg.semiring,
        max_alignments: cfg.max_alignments,
        max_expansion_extra: cfg.max_expansion_extra,
        connected_only: false,
    }
}

fn containment_mode(cfg: &PrivacyConfig) -> ContainmentMode {
    ContainmentMode::for_semiring(cfg.semiring)
}

/// Row connectivity with caching.
fn row_connected(
    bound: &Bound<'_>,
    occs: &[AnnotId],
    cfg: &PrivacyConfig,
    cache: &PrivacyCache,
    stats: &mut PrivacyStats,
) -> bool {
    if !cfg.connectivity_filter {
        return true;
    }
    let key = cfg.caching.then(|| {
        let mut sorted: Vec<AnnotId> = occs.to_vec();
        sorted.sort_unstable();
        cache.occs.intern(sorted)
    });
    if let Some(id) = key {
        if let Some(c) = cache.connectivity.get(&id) {
            stats.connectivity_cache_hits += 1;
            return c;
        }
    }
    stats.connectivity_cache_misses += 1;
    let connected = provabs_relational::monomial_connected(bound.db, occs);
    if let Some(id) = key {
        cache.connectivity.insert(id, connected);
    }
    connected
}

/// Consistent-query frontier of a concrete prefix, with caching.
fn consistent_of(
    bound: &Bound<'_>,
    abs_rows: &[AbsRow],
    conc: &[Vec<AnnotId>],
    cfg: &PrivacyConfig,
    cache: &PrivacyCache,
    stats: &mut PrivacyStats,
) -> Arc<Vec<Cq>> {
    let key: Option<ConcKey> = cfg.caching.then(|| {
        conc.iter()
            .enumerate()
            .map(|(r, occs)| {
                let mut sorted = occs.clone();
                sorted.sort_unstable();
                (abs_rows[r].output.clone(), cache.occs.intern(sorted))
            })
            .collect()
    });
    if let Some(k) = &key {
        if let Some(qs) = cache.consistent.get(k) {
            stats.consistency_cache_hits += 1;
            return qs;
        }
    }
    stats.consistency_cache_misses += 1;
    let rows: Vec<ConcreteRow> = conc
        .iter()
        .enumerate()
        .filter_map(|(r, occs)| ConcreteRow::resolve(bound.db, &abs_rows[r].output, occs))
        .collect();
    let qs = Arc::new(if rows.len() == conc.len() {
        find_consistent_queries(&rows, &rev_options(cfg))
    } else {
        Vec::new()
    });
    if let Some(k) = key {
        // First insert wins; racing workers converge on the stored value.
        return cache.consistent.insert(k, qs);
    }
    qs
}

/// The incremental Algorithm 1 (lines 1–23).
fn privacy_row_by_row(
    bound: &Bound<'_>,
    abs_rows: &[AbsRow],
    cfg: &PrivacyConfig,
    cache: &PrivacyCache,
) -> PrivacyOutcome {
    let mut stats = PrivacyStats::default();
    let mode = containment_mode(cfg);
    // GoodConc: concrete prefixes, starting from the concretizations of the
    // first row (line 1 holds the abstract row; its concretization happens
    // in the first iteration below).
    let mut good: Vec<Vec<Vec<AnnotId>>> = Vec::new();
    {
        let complete =
            for_each_row_concretization(bound, &abs_rows[0], cfg.max_concretizations, |occs| {
                stats.concretizations_enumerated += 1;
                if row_connected(bound, occs, cfg, cache, &mut stats) {
                    stats.concretizations_kept += 1;
                    good.push(vec![occs.to_vec()]);
                }
                true
            });
        stats.truncated |= !complete;
    }
    let mut last_cim: Vec<Cq> = Vec::new();
    for i in 1..abs_rows.len() {
        // Lines 3–6: extend every good prefix with the concretizations of
        // row i, dropping disconnected rows.
        let mut candidates: Vec<Vec<Vec<AnnotId>>> = Vec::new();
        for gc in &good {
            let complete =
                for_each_row_concretization(bound, &abs_rows[i], cfg.max_concretizations, |occs| {
                    stats.concretizations_enumerated += 1;
                    if row_connected(bound, occs, cfg, cache, &mut stats) {
                        stats.concretizations_kept += 1;
                        let mut prefix = gc.clone();
                        prefix.push(occs.to_vec());
                        candidates.push(prefix);
                    }
                    candidates.len() < cfg.max_concretizations
                });
            stats.truncated |= !complete;
            if candidates.len() >= cfg.max_concretizations {
                stats.truncated = true;
                break;
            }
        }
        // Lines 7–13: consistent connected queries per concretization.
        let mut qconn: BTreeMap<String, Cq> = BTreeMap::new();
        let mut queries_to_conc: HashMap<String, Vec<usize>> = HashMap::new();
        for (idx, prefix) in candidates.iter().enumerate() {
            let qs = consistent_of(bound, &abs_rows[..=i], prefix, cfg, cache, &mut stats);
            for q in qs.iter() {
                if !q.is_connected() {
                    continue; // line 13
                }
                let key = canonical_key(q);
                qconn.entry(key.clone()).or_insert_with(|| q.clone());
                queries_to_conc.entry(key).or_default().push(idx);
            }
        }
        // Lines 14–15.
        if qconn.len() < cfg.threshold {
            return PrivacyOutcome {
                privacy: None,
                cim: Vec::new(),
                stats,
            };
        }
        // Lines 16–19: keep only concretizations that created queries.
        let mut keep: HashSet<usize> = HashSet::new();
        for idxs in queries_to_conc.values() {
            keep.extend(idxs.iter().copied());
        }
        good = candidates
            .into_iter()
            .enumerate()
            .filter(|(idx, _)| keep.contains(idx))
            .map(|(_, p)| p)
            .collect();
        // Lines 20–22.
        let conn: Vec<Cq> = qconn.into_values().collect();
        last_cim = cim_queries(&conn, mode);
        if last_cim.len() < cfg.threshold {
            return PrivacyOutcome {
                privacy: None,
                cim: Vec::new(),
                stats,
            };
        }
    }
    PrivacyOutcome {
        privacy: Some(last_cim.len()),
        cim: last_cim,
        stats,
    }
}

/// Single-shot evaluation: concretize the full example at once (also the
/// path for 1-row examples and the row-by-row ablation).
fn privacy_direct(
    bound: &Bound<'_>,
    abs_rows: &[AbsRow],
    cfg: &PrivacyConfig,
    cache: &PrivacyCache,
) -> PrivacyOutcome {
    let mut stats = PrivacyStats::default();
    let mode = containment_mode(cfg);
    let mut qall: BTreeMap<String, Cq> = BTreeMap::new();
    let complete = for_each_concretization(bound, abs_rows, cfg.max_concretizations, |conc| {
        stats.concretizations_enumerated += 1;
        let connected = conc
            .iter()
            .all(|occs| row_connected(bound, occs, cfg, cache, &mut stats));
        if !connected {
            return true;
        }
        stats.concretizations_kept += 1;
        let qs = consistent_of(bound, abs_rows, conc, cfg, cache, &mut stats);
        for q in qs.iter() {
            if q.is_connected() {
                qall.entry(canonical_key(q)).or_insert_with(|| q.clone());
            }
        }
        true
    });
    stats.truncated |= !complete;
    let conn: Vec<Cq> = qall.into_values().collect();
    let cim = cim_queries(&conn, mode);
    if cim.len() < cfg.threshold {
        return PrivacyOutcome {
            privacy: None,
            cim: Vec::new(),
            stats,
        };
    }
    PrivacyOutcome {
        privacy: Some(cim.len()),
        cim,
        stats,
    }
}

/// UCQ privacy (Table 4 orange/green cells): direct evaluation with the
/// trivial-query exclusion and the "disconnected UCQ" rule.
fn privacy_ucq(bound: &Bound<'_>, abs_rows: &[AbsRow], cfg: &PrivacyConfig) -> PrivacyOutcome {
    let mut stats = PrivacyStats::default();
    let mode = containment_mode(cfg);
    let opts = UcqOptions {
        rev: rev_options(cfg),
        exclude_trivial: cfg.exclude_trivial,
        max_ucqs: 10_000,
    };
    let mut frontier: Vec<Ucq> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let complete = for_each_concretization(bound, abs_rows, cfg.max_concretizations, |conc| {
        stats.concretizations_enumerated += 1;
        let rows: Vec<ConcreteRow> = conc
            .iter()
            .enumerate()
            .filter_map(|(r, occs)| ConcreteRow::resolve(bound.db, &abs_rows[r].output, occs))
            .collect();
        if rows.len() != conc.len() {
            return true;
        }
        if cfg.connectivity_filter && !rows.iter().all(ConcreteRow::is_connected) {
            return true;
        }
        stats.concretizations_kept += 1;
        for u in find_consistent_ucqs(&rows, &opts) {
            if !u.is_connected() {
                continue;
            }
            let key = u
                .disjuncts
                .iter()
                .map(canonical_key)
                .collect::<Vec<_>>()
                .join("|");
            if seen.insert(key) {
                frontier.push(u);
            }
        }
        true
    });
    stats.truncated |= !complete;
    let cim = cim_ucqs(&frontier, mode);
    if cim.len() < cfg.threshold {
        return PrivacyOutcome {
            privacy: None,
            cim: Vec::new(),
            stats,
        };
    }
    // Report the CQ disjuncts of the first CIM UCQ for display purposes.
    let witness: Vec<Cq> = cim.first().map(|u| u.disjuncts.clone()).unwrap_or_default();
    PrivacyOutcome {
        privacy: Some(cim.len()),
        cim: witness,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::running_example;
    use crate::Abstraction;

    fn abs_lifting(bound: &Bound<'_>, lifts: &[(&str, u32)]) -> Abstraction {
        let mut abs = Abstraction::identity(bound);
        for (name, lift) in lifts {
            let id = bound.db.annotations().get(name).unwrap();
            for r in 0..bound.num_rows() {
                for (i, &a) in bound.row_occurrences(r).iter().enumerate() {
                    if a == id {
                        abs.lifts[r][i] = *lift;
                    }
                }
            }
        }
        abs
    }

    fn privacy_of(lifts: &[(&str, u32)], cfg: &PrivacyConfig) -> PrivacyOutcome {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = abs_lifting(&b, lifts);
        let rows = abs.apply(&b).rows;
        let cache = PrivacyCache::new();
        compute_privacy(&b, &rows, cfg, &cache)
    }

    #[test]
    fn exabs1_has_privacy_2() {
        // Example 3.13: the CIM queries of Exabs1 are Qreal and Qfalse1.
        let cfg = PrivacyConfig {
            threshold: 2,
            ..Default::default()
        };
        let out = privacy_of(&[("h1", 1), ("h2", 1)], &cfg);
        assert_eq!(out.privacy, Some(2));
        let fx = running_example();
        let keys: Vec<String> = out.cim.iter().map(canonical_key).collect();
        assert!(keys.contains(&canonical_key(&fx.qreal)));
        assert!(keys.contains(&canonical_key(&fx.qfalse1)));
    }

    #[test]
    fn exabs2_has_privacy_2() {
        // Example 3.15: A2_T also meets threshold 2 (Qreal and Qfalse2).
        let cfg = PrivacyConfig {
            threshold: 2,
            ..Default::default()
        };
        let out = privacy_of(&[("i1", 1), ("i2", 1)], &cfg);
        assert_eq!(out.privacy, Some(2));
        let fx = running_example();
        let keys: Vec<String> = out.cim.iter().map(canonical_key).collect();
        assert!(keys.contains(&canonical_key(&fx.qreal)));
        assert!(keys.contains(&canonical_key(&fx.qfalse2)));
    }

    #[test]
    fn exabs3_fails_threshold_2() {
        // Example 4.2: A3_T (i1 -> WikiLeaks only) has a single CIM query.
        let cfg = PrivacyConfig {
            threshold: 2,
            ..Default::default()
        };
        let out = privacy_of(&[("i1", 1)], &cfg);
        assert_eq!(out.privacy, None);
        // With threshold 1 it reports exactly one CIM query: Qreal.
        let cfg1 = PrivacyConfig {
            threshold: 1,
            ..Default::default()
        };
        let out1 = privacy_of(&[("i1", 1)], &cfg1);
        assert_eq!(out1.privacy, Some(1));
        let fx = running_example();
        assert_eq!(canonical_key(&out1.cim[0]), canonical_key(&fx.qreal));
    }

    #[test]
    fn identity_abstraction_reveals_the_query() {
        let cfg = PrivacyConfig {
            threshold: 1,
            ..Default::default()
        };
        let out = privacy_of(&[], &cfg);
        assert_eq!(out.privacy, Some(1));
        let fx = running_example();
        assert_eq!(canonical_key(&out.cim[0]), canonical_key(&fx.qreal));
    }

    #[test]
    fn ablation_flags_agree_on_privacy() {
        // All four optimization components must not change the result.
        let base = PrivacyConfig {
            threshold: 1,
            ..Default::default()
        };
        let reference = privacy_of(&[("h1", 1), ("h2", 1)], &base);
        for (row_by_row, connectivity, caching) in [
            (false, true, true),
            (true, false, true),
            (true, true, false),
            (false, false, false),
        ] {
            let cfg = PrivacyConfig {
                row_by_row,
                connectivity_filter: connectivity,
                caching,
                ..base.clone()
            };
            let out = privacy_of(&[("h1", 1), ("h2", 1)], &cfg);
            assert_eq!(
                out.privacy, reference.privacy,
                "row_by_row={row_by_row} connectivity={connectivity} caching={caching}"
            );
        }
    }

    #[test]
    fn caching_reduces_recomputation() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = abs_lifting(&b, &[("h1", 1), ("h2", 1)]);
        let rows = abs.apply(&b).rows;
        let cfg = PrivacyConfig {
            threshold: 1,
            ..Default::default()
        };
        let cache = PrivacyCache::new();
        let first = compute_privacy(&b, &rows, &cfg, &cache);
        let second = compute_privacy(&b, &rows, &cfg, &cache);
        assert_eq!(first.privacy, second.privacy);
        assert!(second.stats.consistency_cache_hits > 0);
        assert_eq!(second.stats.consistency_cache_misses, 0);
    }

    #[test]
    fn invalidation_is_provenance_aware() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = abs_lifting(&b, &[("h1", 1), ("h2", 1)]);
        let rows = abs.apply(&b).rows;
        let cfg = PrivacyConfig {
            threshold: 1,
            ..Default::default()
        };
        let cache = PrivacyCache::new();
        let first = compute_privacy(&b, &rows, &cfg, &cache);
        let populated = cache.len();
        assert!(populated > 0);
        // A delta touching nothing the example concretizes to: no eviction.
        let ghost = std::collections::HashSet::from([provabs_semiring::AnnotId(u32::MAX)]);
        cache.invalidate(&ghost);
        assert_eq!(cache.len(), populated);
        // Touching h1 evicts every concretization that resolves through it
        // (here: all of them — h1 appears unabstracted or as a candidate
        // leaf in each), but the cache stays usable.
        let h1 = std::collections::HashSet::from([fx.db.annotations().get("h1").unwrap()]);
        cache.invalidate(&h1);
        assert!(cache.len() < populated);
        let again = compute_privacy(&b, &rows, &cfg, &cache);
        assert_eq!(again.privacy, first.privacy);
    }

    #[test]
    fn invalidate_evicts_exactly_the_intersecting_entries() {
        // Regression for the interned-id key scheme: eviction must still be
        // *exact* — precisely the entries whose annotations intersect the
        // touched set disappear, nothing more, nothing less. We verify
        // behaviorally: after invalidating, a re-run recomputes exactly the
        // evicted consistency entries (misses == evicted) and answers the
        // survivors from cache.
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = abs_lifting(&b, &[("h1", 1), ("h2", 1)]);
        let rows = abs.apply(&b).rows;
        let cfg = PrivacyConfig {
            threshold: 1,
            ..Default::default()
        };
        let cache = PrivacyCache::new();
        let first = compute_privacy(&b, &rows, &cfg, &cache);
        let populated = cache.len();
        assert!(populated > 0);
        let h2 = std::collections::HashSet::from([fx.db.annotations().get("h2").unwrap()]);
        cache.invalidate(&h2);
        let surviving = cache.len();
        let evicted = populated - surviving;
        assert!(evicted > 0, "h2 appears in concretizations — must evict");
        assert!(surviving > 0, "h1-only concretizations must survive");
        let second = compute_privacy(&b, &rows, &cfg, &cache);
        assert_eq!(second.privacy, first.privacy);
        assert_eq!(
            second.stats.consistency_cache_misses, evicted,
            "re-run must recompute exactly the evicted entries"
        );
        // The cache is fully warm again: a third run misses nothing.
        let third = compute_privacy(&b, &rows, &cfg, &cache);
        assert_eq!(third.stats.consistency_cache_misses, 0);
    }

    #[test]
    fn connectivity_filter_prunes_concretizations() {
        let cfg = PrivacyConfig {
            threshold: 1,
            ..Default::default()
        };
        let with = privacy_of(&[("h1", 1), ("h2", 1)], &cfg);
        let without = privacy_of(
            &[("h1", 1), ("h2", 1)],
            &PrivacyConfig {
                connectivity_filter: false,
                ..cfg
            },
        );
        assert_eq!(with.privacy, without.privacy);
        assert!(with.stats.concretizations_kept < without.stats.concretizations_kept);
    }

    #[test]
    fn truncation_is_reported() {
        let cfg = PrivacyConfig {
            threshold: 1,
            max_concretizations: 2,
            ..Default::default()
        };
        let out = privacy_of(&[("h1", 3), ("h2", 3), ("i1", 3), ("i2", 3)], &cfg);
        assert!(out.stats.truncated);
    }

    #[test]
    fn ucq_privacy_counts_unions() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = abs_lifting(&b, &[("h1", 1), ("h2", 1)]);
        let rows = abs.apply(&b).rows;
        let cfg = PrivacyConfig {
            threshold: 1,
            query_class: QueryClass::Ucq,
            ..Default::default()
        };
        let cache = PrivacyCache::new();
        let out = compute_privacy(&b, &rows, &cfg, &cache);
        assert!(out.privacy.is_some());
        assert!(out.privacy.unwrap() >= 2);
    }
}
