//! Algorithm 1: computing the privacy of an abstracted K-example.
//!
//! The privacy of `Ã` is the number of unique CIM queries w.r.t. `Ã`
//! (Def. 3.12). The algorithm concretizes row by row, keeping only the
//! "good" concretization prefixes that admit consistent connected queries,
//! filtering disconnected concretizations, and caching per-concretization
//! results (§4.1). Every optimization component carries a config flag so the
//! Figure 19 ablation can disable it.

use crate::concretize::{for_each_concretization, for_each_row_concretization};
use crate::sharded::ShardedMap;
use crate::{AbsRow, Bound};
use provabs_relational::{ConcreteRow, Cq, Ucq};
use provabs_reveng::ucq::{cim_ucqs, find_consistent_ucqs, UcqOptions};
use provabs_reveng::{
    canonical_key, cim_queries, find_consistent_queries, ContainmentMode, RevOptions,
};
use provabs_semiring::{AnnotId, SemiringKind};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// The query class against which privacy is measured (Table 4 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryClass {
    /// Conjunctive queries (the gray/red cells; Algorithm 1 as printed).
    #[default]
    Cq,
    /// Unions of conjunctive queries (orange/green cells) with the
    /// trivial-query exclusion.
    Ucq,
}

/// Configuration of the privacy computation.
#[derive(Debug, Clone)]
pub struct PrivacyConfig {
    /// The privacy threshold `k`.
    pub threshold: usize,
    /// The provenance semiring the K-example is given in.
    pub semiring: SemiringKind,
    /// CQ or UCQ privacy.
    pub query_class: QueryClass,
    /// Exclude trivial UCQs (variable-free disjuncts), §4 orange cell.
    pub exclude_trivial: bool,
    /// §4.1 component 1 (of the privacy computation): process rows
    /// incrementally, pruning prefixes that admit no consistent connected
    /// query. Disabled = concretize the whole example at once.
    pub row_by_row: bool,
    /// §4.1 component 2: drop disconnected concretizations.
    pub connectivity_filter: bool,
    /// §4.1 component 3: cache consistent queries and connectivity per
    /// concretization.
    pub caching: bool,
    /// Cap on alignments per consistency call.
    pub max_alignments: usize,
    /// Cap on concretizations enumerated per privacy evaluation. When hit,
    /// the returned privacy is a lower bound and `stats.truncated` is set.
    pub max_concretizations: usize,
    /// Extra expansion degree for exponent-dropping semirings.
    pub max_expansion_extra: u32,
    /// The snapshot epoch this evaluation reads at (see
    /// [`PrivacyCache::invalidate_at`]). Single-session callers leave the
    /// default 0; a reader session pinned to a
    /// [`SessionDb`](provabs_relational::SessionDb) passes its pinned
    /// epoch so a shared cache serves it exactly the entries valid for
    /// its snapshot — never values computed against later deltas.
    pub epoch: u64,
}

impl Default for PrivacyConfig {
    fn default() -> Self {
        Self {
            threshold: 5,
            semiring: SemiringKind::NX,
            query_class: QueryClass::Cq,
            exclude_trivial: true,
            row_by_row: true,
            connectivity_filter: true,
            caching: true,
            max_alignments: 100_000,
            max_concretizations: 1_000_000,
            max_expansion_extra: 1,
            epoch: 0,
        }
    }
}

/// Counters exposed by one privacy evaluation.
#[derive(Debug, Clone, Default)]
pub struct PrivacyStats {
    /// Concretizations produced by the enumerators.
    pub concretizations_enumerated: usize,
    /// Concretizations surviving the connectivity filter.
    pub concretizations_kept: usize,
    /// Consistency-cache hits / misses.
    pub consistency_cache_hits: usize,
    /// Consistency-cache misses (queries actually computed).
    pub consistency_cache_misses: usize,
    /// Connectivity-cache hits.
    pub connectivity_cache_hits: usize,
    /// Connectivity-cache misses.
    pub connectivity_cache_misses: usize,
    /// Whether a cap was hit (result is a lower bound).
    pub truncated: bool,
}

impl PrivacyStats {
    /// Merges counters from another evaluation (used by the search).
    pub fn absorb(&mut self, other: &PrivacyStats) {
        self.concretizations_enumerated += other.concretizations_enumerated;
        self.concretizations_kept += other.concretizations_kept;
        self.consistency_cache_hits += other.consistency_cache_hits;
        self.consistency_cache_misses += other.consistency_cache_misses;
        self.connectivity_cache_hits += other.connectivity_cache_hits;
        self.connectivity_cache_misses += other.connectivity_cache_misses;
        self.truncated |= other.truncated;
    }
}

/// Caches shared across privacy evaluations (§4.1, "Caching information
/// about concretizations and queries"). Consistent queries are cached per
/// concretization; CIM queries are *not* cached, exactly as the paper notes,
/// because minimality depends on the concretization set of the abstraction
/// under evaluation.
///
/// The cache is `Send + Sync` (internally a sharded concurrent map), so one
/// cache is shared by every worker of the parallel search — candidates that
/// revisit a concretization another worker already solved get the memoized
/// result — and can likewise be reused across searches by an experiment
/// harness. All methods take `&self`.
///
/// ```
/// use provabs_core::privacy::{compute_privacy, PrivacyCache, PrivacyConfig};
/// use provabs_core::{fixtures, Abstraction, Bound};
///
/// let fx = fixtures::running_example();
/// let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
/// let rows = Abstraction::identity(&bound).apply(&bound).rows;
/// let cfg = PrivacyConfig { threshold: 1, ..Default::default() };
///
/// let cache = PrivacyCache::new();
/// let first = compute_privacy(&bound, &rows, &cfg, &cache);
/// let second = compute_privacy(&bound, &rows, &cfg, &cache);
/// assert_eq!(first.privacy, second.privacy);
/// // The repeat run is answered from the cache: no recomputation.
/// assert_eq!(second.stats.consistency_cache_misses, 0);
/// assert!(!cache.is_empty());
///
/// // The cache crosses thread boundaries by shared reference.
/// fn assert_send_sync<T: Send + Sync>(_: &T) {}
/// assert_send_sync(&cache);
/// ```
#[derive(Debug)]
pub struct PrivacyCache {
    /// Interns sorted occurrence lists to small ids: both caches key by
    /// [`OccId`] instead of hashed owned annotation vectors, so repeat
    /// lookups hash a handful of `u32`s rather than whole concretizations.
    occs: OccInterner,
    consistent: ShardedMap<ConcKey, Vec<Stamped<Arc<Vec<Cq>>>>>,
    connectivity: ShardedMap<OccId, Vec<Stamped<bool>>>,
    /// Sorted invalidation epochs per occurrence id (fed by
    /// [`PrivacyCache::invalidate_at`]): the lifetime fences a late insert
    /// by a pinned old-epoch reader must not outlive.
    retirements: ShardedMap<OccId, Vec<u64>>,
}

/// The lock hierarchy of the cache (enforced by the schedule-enumeration
/// harness's lock-order audit): a `consistent` / `connectivity` shard may be
/// held while a `retirements` shard is acquired — the value stores read the
/// retirement fences from inside their shard `update` — never the reverse,
/// and the interner's shards nest inside nothing.
impl Default for PrivacyCache {
    fn default() -> Self {
        Self {
            occs: OccInterner::default(),
            consistent: ShardedMap::labeled("privacy.consistent.shard"),
            connectivity: ShardedMap::labeled("privacy.connectivity.shard"),
            retirements: ShardedMap::labeled("privacy.retirements.shard"),
        }
    }
}

/// One cached value version: valid for epochs `born <= e < dead`
/// (`dead == u64::MAX` means still live).
#[derive(Debug, Clone)]
struct Stamped<V> {
    born: u64,
    dead: u64,
    value: V,
}

/// The version of `vs` visible at `epoch`. Versions may overlap when a
/// pinned old-epoch reader inserts after later versions exist; the
/// max-born rule picks deterministically (overlapping versions hold equal
/// values — both were computed from the same snapshot state).
fn version_at<V: Clone>(vs: &[Stamped<V>], epoch: u64) -> Option<V> {
    vs.iter()
        .filter(|s| s.born <= epoch && epoch < s.dead)
        .max_by_key(|s| s.born)
        .map(|s| s.value.clone())
}

/// Ends, at `epoch`, the life of every version born before it.
fn clamp<V>(vs: &mut [Stamped<V>], epoch: u64) {
    for s in vs {
        if s.born < epoch && s.dead > epoch {
            s.dead = epoch;
        }
    }
}

/// An interned sorted occurrence list (id space private to one
/// [`PrivacyCache`]).
type OccId = u32;

/// A sharded interner: sorted occurrence vector → dense-ish id. First
/// insert wins under races, so every equal vector resolves to one canonical
/// id (racing workers may burn a counter value — ids stay unique, which is
/// all the keying needs).
#[derive(Debug)]
struct OccInterner {
    ids: ShardedMap<Vec<AnnotId>, OccId>,
    next: AtomicU32,
}

impl Default for OccInterner {
    fn default() -> Self {
        Self {
            ids: ShardedMap::labeled("privacy.occs.shard"),
            next: AtomicU32::default(),
        }
    }
}

impl OccInterner {
    fn intern(&self, key: Vec<AnnotId>) -> OccId {
        if let Some(id) = self.ids.get(&key) {
            return id;
        }
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.ids.insert(key, id)
    }

    /// Drops every interned list intersecting `touched`, returning the
    /// evicted ids.
    fn invalidate(&self, touched: &HashSet<AnnotId>) -> HashSet<OccId> {
        let mut evicted = HashSet::new();
        self.ids.retain_kv(|key, &id| {
            if key.iter().any(|a| touched.contains(a)) {
                evicted.insert(id);
                false
            } else {
                true
            }
        });
        evicted
    }
}

impl PrivacyCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached concretizations.
    pub fn len(&self) -> usize {
        self.consistent.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.consistent.is_empty()
    }

    /// Provenance-aware invalidation after a database delta: drops exactly
    /// the entries whose annotations intersect `touched` (the deleted and
    /// inserted tuples of an [`AppliedDelta`](provabs_relational::AppliedDelta)).
    ///
    /// Keys are interned occurrence-list ids; the interner is the single
    /// source of truth for which annotations an id covers, so invalidation
    /// evicts the intersecting ids there and then drops exactly the cache
    /// entries referencing them. Cached values depend only on the tuples
    /// those annotations tag — consistent queries on the resolved rows,
    /// connectivity on their value overlaps — so entries disjoint from the
    /// delta stay exactly valid and survive. Inserted annotations are fresh
    /// and appear in no key; they are accepted here so callers can pass the
    /// whole touched set.
    pub fn invalidate(&self, touched: &std::collections::HashSet<AnnotId>) {
        if touched.is_empty() {
            return;
        }
        let evicted = self.occs.invalidate(touched);
        if evicted.is_empty() {
            return;
        }
        self.connectivity.retain(|id| !evicted.contains(id));
        self.consistent
            .retain(|key| !key.iter().any(|(_, id)| evicted.contains(id)));
        self.retirements.retain(|id| !evicted.contains(id));
    }

    /// Epoch-aware invalidation for snapshot-isolated sharing: a delta
    /// committing as snapshot `epoch` **retires** — rather than evicts —
    /// every entry whose annotations intersect `touched`, for epochs at or
    /// after `epoch` only. A reader pinned to an older snapshot (its
    /// [`PrivacyConfig::epoch`] `< epoch`) keeps hitting its cached
    /// entries bit-for-bit; readers at or after `epoch` recompute against
    /// the new state and their results are stored as new versions under
    /// the same keys. Nothing is removed: occurrence ids stay interned
    /// (keys must remain stable across epochs) and [`PrivacyCache::len`]
    /// does not shrink.
    ///
    /// The epoch-oblivious [`PrivacyCache::invalidate`] remains the right
    /// call for single-session callers that do not version their reads —
    /// it frees the memory outright.
    pub fn invalidate_at(&self, touched: &std::collections::HashSet<AnnotId>, epoch: u64) {
        if touched.is_empty() {
            return;
        }
        // Affected ids, *without* evicting them from the interner.
        let mut affected: HashSet<OccId> = HashSet::new();
        self.occs.ids.for_each(|key, &id| {
            if key.iter().any(|a| touched.contains(a)) {
                affected.insert(id);
            }
        });
        if affected.is_empty() {
            return;
        }
        // Record the fence first: a concurrent insert either sees the
        // retirement (and bounds its version's lifetime itself) or
        // publishes before the clamp pass below (which then bounds it).
        // Either way no version born before `epoch` survives past it.
        for &id in &affected {
            self.retirements.update(id, Vec::new, |rs| {
                if rs.last().copied() != Some(epoch) {
                    rs.push(epoch);
                }
            });
        }
        self.connectivity.for_each_mut(|id, vs| {
            if affected.contains(id) {
                clamp(vs, epoch);
            }
        });
        self.consistent.for_each_mut(|key, vs| {
            if key.iter().any(|(_, id)| affected.contains(id)) {
                clamp(vs, epoch);
            }
        });
    }

    /// The cached connectivity of `id` as seen at `epoch`.
    fn connectivity_at(&self, id: OccId, epoch: u64) -> Option<bool> {
        self.connectivity
            .read(&id, |vs| version_at(vs, epoch))
            .flatten()
    }

    /// Stores `value` as the connectivity of `id` at `epoch` (first insert
    /// wins) and returns the canonical stored value.
    fn store_connectivity(&self, id: OccId, epoch: u64, value: bool) -> bool {
        self.connectivity.update(id, Vec::new, |vs| {
            if let Some(v) = version_at(vs, epoch) {
                return v;
            }
            let dead = self.retirement_after(&[id], epoch);
            vs.push(Stamped {
                born: epoch,
                dead,
                value,
            });
            value
        })
    }

    /// The cached consistent queries of `key` as seen at `epoch`.
    fn consistent_at(&self, key: &ConcKey, epoch: u64) -> Option<Arc<Vec<Cq>>> {
        self.consistent
            .read(key, |vs| version_at(vs, epoch))
            .flatten()
    }

    /// Stores `value` under `key` at `epoch` (first insert wins) and
    /// returns the canonical stored value.
    fn store_consistent(&self, key: ConcKey, epoch: u64, value: Arc<Vec<Cq>>) -> Arc<Vec<Cq>> {
        let ids: Vec<OccId> = key.iter().map(|&(_, id)| id).collect();
        self.consistent.update(key, Vec::new, |vs| {
            if let Some(v) = version_at(vs, epoch) {
                return v;
            }
            let dead = self.retirement_after(&ids, epoch);
            vs.push(Stamped {
                born: epoch,
                dead,
                value: Arc::clone(&value),
            });
            value
        })
    }

    /// The connectivity verdict cached for the occurrence list `occs` as
    /// seen at `epoch`, `None` on a miss.
    ///
    /// This is the epoch-stamped cell protocol of the cache exposed
    /// directly: probe → recompute on miss → [`PrivacyCache::connectivity_record`].
    /// The schedule-enumeration harness drives the retirement fence through
    /// this pair (see `provabsd`'s sched suite), and service health checks
    /// can use it to verify fence behavior without running a full privacy
    /// evaluation.
    pub fn connectivity_probe(&self, occs: &[AnnotId], epoch: u64) -> Option<bool> {
        let id = self.occs.ids.get_borrowed(occs)?;
        self.connectivity_at(id, epoch)
    }

    /// Records `value` as the connectivity verdict of `occs` at `epoch`
    /// (first insert per epoch wins; the canonical stored value is
    /// returned). The version is born at `epoch` and dies at the earliest
    /// retirement fence recorded after it, exactly like the internal store
    /// path.
    pub fn connectivity_record(&self, occs: &[AnnotId], epoch: u64, value: bool) -> bool {
        let id = self.occs.intern(occs.to_vec());
        self.store_connectivity(id, epoch, value)
    }

    /// The earliest recorded retirement strictly after `epoch` across
    /// `ids` — the epoch at which a version born at `epoch` stops being
    /// valid. A pinned old-epoch reader inserting after later
    /// invalidations have been recorded lands its version inside the
    /// right fences instead of claiming liveness forever.
    fn retirement_after(&self, ids: &[OccId], epoch: u64) -> u64 {
        let mut dead = u64::MAX;
        for &id in ids {
            if let Some(Some(d)) = self
                .retirements
                .read(&id, |rs| rs.iter().copied().find(|&r| r > epoch))
            {
                dead = dead.min(d);
            }
        }
        dead
    }
}

/// Cache key: the concrete rows (output + interned sorted occurrence list).
type ConcKey = Vec<(provabs_relational::Tuple, OccId)>;

/// The result of a privacy evaluation.
#[derive(Debug, Clone)]
pub struct PrivacyOutcome {
    /// `Some(p)` with `p >= k` when the threshold is met; `None` encodes the
    /// paper's `-1` (privacy below the threshold).
    pub privacy: Option<usize>,
    /// The CIM queries witnessing the privacy (empty when below threshold).
    pub cim: Vec<Cq>,
    /// Counters.
    pub stats: PrivacyStats,
}

/// Computes the privacy of the abstracted rows `abs_rows` of `bound`
/// (Algorithm 1). Returns `None` privacy when it falls below
/// `cfg.threshold`.
pub fn compute_privacy(
    bound: &Bound<'_>,
    abs_rows: &[AbsRow],
    cfg: &PrivacyConfig,
    cache: &PrivacyCache,
) -> PrivacyOutcome {
    match cfg.query_class {
        QueryClass::Cq => {
            if cfg.row_by_row && abs_rows.len() > 1 {
                privacy_row_by_row(bound, abs_rows, cfg, cache)
            } else {
                privacy_direct(bound, abs_rows, cfg, cache)
            }
        }
        QueryClass::Ucq => privacy_ucq(bound, abs_rows, cfg),
    }
}

fn rev_options(cfg: &PrivacyConfig) -> RevOptions {
    RevOptions {
        semiring: cfg.semiring,
        max_alignments: cfg.max_alignments,
        max_expansion_extra: cfg.max_expansion_extra,
        connected_only: false,
    }
}

fn containment_mode(cfg: &PrivacyConfig) -> ContainmentMode {
    ContainmentMode::for_semiring(cfg.semiring)
}

/// Row connectivity with caching.
fn row_connected(
    bound: &Bound<'_>,
    occs: &[AnnotId],
    cfg: &PrivacyConfig,
    cache: &PrivacyCache,
    stats: &mut PrivacyStats,
) -> bool {
    if !cfg.connectivity_filter {
        return true;
    }
    let key = cfg.caching.then(|| {
        let mut sorted: Vec<AnnotId> = occs.to_vec();
        sorted.sort_unstable();
        cache.occs.intern(sorted)
    });
    if let Some(id) = key {
        if let Some(c) = cache.connectivity_at(id, cfg.epoch) {
            stats.connectivity_cache_hits += 1;
            return c;
        }
    }
    stats.connectivity_cache_misses += 1;
    let connected = provabs_relational::monomial_connected(bound.db, occs);
    if let Some(id) = key {
        return cache.store_connectivity(id, cfg.epoch, connected);
    }
    connected
}

/// Consistent-query frontier of a concrete prefix, with caching.
fn consistent_of(
    bound: &Bound<'_>,
    abs_rows: &[AbsRow],
    conc: &[Vec<AnnotId>],
    cfg: &PrivacyConfig,
    cache: &PrivacyCache,
    stats: &mut PrivacyStats,
) -> Arc<Vec<Cq>> {
    let key: Option<ConcKey> = cfg.caching.then(|| {
        conc.iter()
            .enumerate()
            .map(|(r, occs)| {
                let mut sorted = occs.clone();
                sorted.sort_unstable();
                (abs_rows[r].output.clone(), cache.occs.intern(sorted))
            })
            .collect()
    });
    if let Some(k) = &key {
        if let Some(qs) = cache.consistent_at(k, cfg.epoch) {
            stats.consistency_cache_hits += 1;
            return qs;
        }
    }
    stats.consistency_cache_misses += 1;
    let rows: Vec<ConcreteRow> = conc
        .iter()
        .enumerate()
        .filter_map(|(r, occs)| ConcreteRow::resolve(bound.db, &abs_rows[r].output, occs))
        .collect();
    let qs = Arc::new(if rows.len() == conc.len() {
        find_consistent_queries(&rows, &rev_options(cfg))
    } else {
        Vec::new()
    });
    if let Some(k) = key {
        // First insert wins; racing workers converge on the stored value.
        return cache.store_consistent(k, cfg.epoch, qs);
    }
    qs
}

/// The incremental Algorithm 1 (lines 1–23).
fn privacy_row_by_row(
    bound: &Bound<'_>,
    abs_rows: &[AbsRow],
    cfg: &PrivacyConfig,
    cache: &PrivacyCache,
) -> PrivacyOutcome {
    let mut stats = PrivacyStats::default();
    let mode = containment_mode(cfg);
    // GoodConc: concrete prefixes, starting from the concretizations of the
    // first row (line 1 holds the abstract row; its concretization happens
    // in the first iteration below).
    let mut good: Vec<Vec<Vec<AnnotId>>> = Vec::new();
    {
        let complete =
            for_each_row_concretization(bound, &abs_rows[0], cfg.max_concretizations, |occs| {
                stats.concretizations_enumerated += 1;
                if row_connected(bound, occs, cfg, cache, &mut stats) {
                    stats.concretizations_kept += 1;
                    good.push(vec![occs.to_vec()]);
                }
                true
            });
        stats.truncated |= !complete;
    }
    let mut last_cim: Vec<Cq> = Vec::new();
    for i in 1..abs_rows.len() {
        // Lines 3–6: extend every good prefix with the concretizations of
        // row i, dropping disconnected rows.
        let mut candidates: Vec<Vec<Vec<AnnotId>>> = Vec::new();
        for gc in &good {
            let complete =
                for_each_row_concretization(bound, &abs_rows[i], cfg.max_concretizations, |occs| {
                    stats.concretizations_enumerated += 1;
                    if row_connected(bound, occs, cfg, cache, &mut stats) {
                        stats.concretizations_kept += 1;
                        let mut prefix = gc.clone();
                        prefix.push(occs.to_vec());
                        candidates.push(prefix);
                    }
                    candidates.len() < cfg.max_concretizations
                });
            stats.truncated |= !complete;
            if candidates.len() >= cfg.max_concretizations {
                stats.truncated = true;
                break;
            }
        }
        // Lines 7–13: consistent connected queries per concretization.
        let mut qconn: BTreeMap<String, Cq> = BTreeMap::new();
        let mut queries_to_conc: HashMap<String, Vec<usize>> = HashMap::new();
        for (idx, prefix) in candidates.iter().enumerate() {
            let qs = consistent_of(bound, &abs_rows[..=i], prefix, cfg, cache, &mut stats);
            for q in qs.iter() {
                if !q.is_connected() {
                    continue; // line 13
                }
                let key = canonical_key(q);
                qconn.entry(key.clone()).or_insert_with(|| q.clone());
                queries_to_conc.entry(key).or_default().push(idx);
            }
        }
        // Lines 14–15.
        if qconn.len() < cfg.threshold {
            return PrivacyOutcome {
                privacy: None,
                cim: Vec::new(),
                stats,
            };
        }
        // Lines 16–19: keep only concretizations that created queries.
        let mut keep: HashSet<usize> = HashSet::new();
        for idxs in queries_to_conc.values() {
            keep.extend(idxs.iter().copied());
        }
        good = candidates
            .into_iter()
            .enumerate()
            .filter(|(idx, _)| keep.contains(idx))
            .map(|(_, p)| p)
            .collect();
        // Lines 20–22.
        let conn: Vec<Cq> = qconn.into_values().collect();
        last_cim = cim_queries(&conn, mode);
        if last_cim.len() < cfg.threshold {
            return PrivacyOutcome {
                privacy: None,
                cim: Vec::new(),
                stats,
            };
        }
    }
    PrivacyOutcome {
        privacy: Some(last_cim.len()),
        cim: last_cim,
        stats,
    }
}

/// Single-shot evaluation: concretize the full example at once (also the
/// path for 1-row examples and the row-by-row ablation).
fn privacy_direct(
    bound: &Bound<'_>,
    abs_rows: &[AbsRow],
    cfg: &PrivacyConfig,
    cache: &PrivacyCache,
) -> PrivacyOutcome {
    let mut stats = PrivacyStats::default();
    let mode = containment_mode(cfg);
    let mut qall: BTreeMap<String, Cq> = BTreeMap::new();
    let complete = for_each_concretization(bound, abs_rows, cfg.max_concretizations, |conc| {
        stats.concretizations_enumerated += 1;
        let connected = conc
            .iter()
            .all(|occs| row_connected(bound, occs, cfg, cache, &mut stats));
        if !connected {
            return true;
        }
        stats.concretizations_kept += 1;
        let qs = consistent_of(bound, abs_rows, conc, cfg, cache, &mut stats);
        for q in qs.iter() {
            if q.is_connected() {
                qall.entry(canonical_key(q)).or_insert_with(|| q.clone());
            }
        }
        true
    });
    stats.truncated |= !complete;
    let conn: Vec<Cq> = qall.into_values().collect();
    let cim = cim_queries(&conn, mode);
    if cim.len() < cfg.threshold {
        return PrivacyOutcome {
            privacy: None,
            cim: Vec::new(),
            stats,
        };
    }
    PrivacyOutcome {
        privacy: Some(cim.len()),
        cim,
        stats,
    }
}

/// UCQ privacy (Table 4 orange/green cells): direct evaluation with the
/// trivial-query exclusion and the "disconnected UCQ" rule.
fn privacy_ucq(bound: &Bound<'_>, abs_rows: &[AbsRow], cfg: &PrivacyConfig) -> PrivacyOutcome {
    let mut stats = PrivacyStats::default();
    let mode = containment_mode(cfg);
    let opts = UcqOptions {
        rev: rev_options(cfg),
        exclude_trivial: cfg.exclude_trivial,
        max_ucqs: 10_000,
    };
    let mut frontier: Vec<Ucq> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let complete = for_each_concretization(bound, abs_rows, cfg.max_concretizations, |conc| {
        stats.concretizations_enumerated += 1;
        let rows: Vec<ConcreteRow> = conc
            .iter()
            .enumerate()
            .filter_map(|(r, occs)| ConcreteRow::resolve(bound.db, &abs_rows[r].output, occs))
            .collect();
        if rows.len() != conc.len() {
            return true;
        }
        if cfg.connectivity_filter && !rows.iter().all(ConcreteRow::is_connected) {
            return true;
        }
        stats.concretizations_kept += 1;
        for u in find_consistent_ucqs(&rows, &opts) {
            if !u.is_connected() {
                continue;
            }
            let key = u
                .disjuncts
                .iter()
                .map(canonical_key)
                .collect::<Vec<_>>()
                .join("|");
            if seen.insert(key) {
                frontier.push(u);
            }
        }
        true
    });
    stats.truncated |= !complete;
    let cim = cim_ucqs(&frontier, mode);
    if cim.len() < cfg.threshold {
        return PrivacyOutcome {
            privacy: None,
            cim: Vec::new(),
            stats,
        };
    }
    // Report the CQ disjuncts of the first CIM UCQ for display purposes.
    let witness: Vec<Cq> = cim.first().map(|u| u.disjuncts.clone()).unwrap_or_default();
    PrivacyOutcome {
        privacy: Some(cim.len()),
        cim: witness,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::running_example;
    use crate::Abstraction;

    fn abs_lifting(bound: &Bound<'_>, lifts: &[(&str, u32)]) -> Abstraction {
        let mut abs = Abstraction::identity(bound);
        for (name, lift) in lifts {
            let id = bound.db.annotations().get(name).unwrap();
            for r in 0..bound.num_rows() {
                for (i, &a) in bound.row_occurrences(r).iter().enumerate() {
                    if a == id {
                        abs.lifts[r][i] = *lift;
                    }
                }
            }
        }
        abs
    }

    fn privacy_of(lifts: &[(&str, u32)], cfg: &PrivacyConfig) -> PrivacyOutcome {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = abs_lifting(&b, lifts);
        let rows = abs.apply(&b).rows;
        let cache = PrivacyCache::new();
        compute_privacy(&b, &rows, cfg, &cache)
    }

    #[test]
    fn exabs1_has_privacy_2() {
        // Example 3.13: the CIM queries of Exabs1 are Qreal and Qfalse1.
        let cfg = PrivacyConfig {
            threshold: 2,
            ..Default::default()
        };
        let out = privacy_of(&[("h1", 1), ("h2", 1)], &cfg);
        assert_eq!(out.privacy, Some(2));
        let fx = running_example();
        let keys: Vec<String> = out.cim.iter().map(canonical_key).collect();
        assert!(keys.contains(&canonical_key(&fx.qreal)));
        assert!(keys.contains(&canonical_key(&fx.qfalse1)));
    }

    #[test]
    fn exabs2_has_privacy_2() {
        // Example 3.15: A2_T also meets threshold 2 (Qreal and Qfalse2).
        let cfg = PrivacyConfig {
            threshold: 2,
            ..Default::default()
        };
        let out = privacy_of(&[("i1", 1), ("i2", 1)], &cfg);
        assert_eq!(out.privacy, Some(2));
        let fx = running_example();
        let keys: Vec<String> = out.cim.iter().map(canonical_key).collect();
        assert!(keys.contains(&canonical_key(&fx.qreal)));
        assert!(keys.contains(&canonical_key(&fx.qfalse2)));
    }

    #[test]
    fn exabs3_fails_threshold_2() {
        // Example 4.2: A3_T (i1 -> WikiLeaks only) has a single CIM query.
        let cfg = PrivacyConfig {
            threshold: 2,
            ..Default::default()
        };
        let out = privacy_of(&[("i1", 1)], &cfg);
        assert_eq!(out.privacy, None);
        // With threshold 1 it reports exactly one CIM query: Qreal.
        let cfg1 = PrivacyConfig {
            threshold: 1,
            ..Default::default()
        };
        let out1 = privacy_of(&[("i1", 1)], &cfg1);
        assert_eq!(out1.privacy, Some(1));
        let fx = running_example();
        assert_eq!(canonical_key(&out1.cim[0]), canonical_key(&fx.qreal));
    }

    #[test]
    fn identity_abstraction_reveals_the_query() {
        let cfg = PrivacyConfig {
            threshold: 1,
            ..Default::default()
        };
        let out = privacy_of(&[], &cfg);
        assert_eq!(out.privacy, Some(1));
        let fx = running_example();
        assert_eq!(canonical_key(&out.cim[0]), canonical_key(&fx.qreal));
    }

    #[test]
    fn ablation_flags_agree_on_privacy() {
        // All four optimization components must not change the result.
        let base = PrivacyConfig {
            threshold: 1,
            ..Default::default()
        };
        let reference = privacy_of(&[("h1", 1), ("h2", 1)], &base);
        for (row_by_row, connectivity, caching) in [
            (false, true, true),
            (true, false, true),
            (true, true, false),
            (false, false, false),
        ] {
            let cfg = PrivacyConfig {
                row_by_row,
                connectivity_filter: connectivity,
                caching,
                ..base.clone()
            };
            let out = privacy_of(&[("h1", 1), ("h2", 1)], &cfg);
            assert_eq!(
                out.privacy, reference.privacy,
                "row_by_row={row_by_row} connectivity={connectivity} caching={caching}"
            );
        }
    }

    #[test]
    fn caching_reduces_recomputation() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = abs_lifting(&b, &[("h1", 1), ("h2", 1)]);
        let rows = abs.apply(&b).rows;
        let cfg = PrivacyConfig {
            threshold: 1,
            ..Default::default()
        };
        let cache = PrivacyCache::new();
        let first = compute_privacy(&b, &rows, &cfg, &cache);
        let second = compute_privacy(&b, &rows, &cfg, &cache);
        assert_eq!(first.privacy, second.privacy);
        assert!(second.stats.consistency_cache_hits > 0);
        assert_eq!(second.stats.consistency_cache_misses, 0);
    }

    #[test]
    fn invalidation_is_provenance_aware() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = abs_lifting(&b, &[("h1", 1), ("h2", 1)]);
        let rows = abs.apply(&b).rows;
        let cfg = PrivacyConfig {
            threshold: 1,
            ..Default::default()
        };
        let cache = PrivacyCache::new();
        let first = compute_privacy(&b, &rows, &cfg, &cache);
        let populated = cache.len();
        assert!(populated > 0);
        // A delta touching nothing the example concretizes to: no eviction.
        let ghost = std::collections::HashSet::from([provabs_semiring::AnnotId(u32::MAX)]);
        cache.invalidate(&ghost);
        assert_eq!(cache.len(), populated);
        // Touching h1 evicts every concretization that resolves through it
        // (here: all of them — h1 appears unabstracted or as a candidate
        // leaf in each), but the cache stays usable.
        let h1 = std::collections::HashSet::from([fx.db.annotations().get("h1").unwrap()]);
        cache.invalidate(&h1);
        assert!(cache.len() < populated);
        let again = compute_privacy(&b, &rows, &cfg, &cache);
        assert_eq!(again.privacy, first.privacy);
    }

    #[test]
    fn invalidate_evicts_exactly_the_intersecting_entries() {
        // Regression for the interned-id key scheme: eviction must still be
        // *exact* — precisely the entries whose annotations intersect the
        // touched set disappear, nothing more, nothing less. We verify
        // behaviorally: after invalidating, a re-run recomputes exactly the
        // evicted consistency entries (misses == evicted) and answers the
        // survivors from cache.
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = abs_lifting(&b, &[("h1", 1), ("h2", 1)]);
        let rows = abs.apply(&b).rows;
        let cfg = PrivacyConfig {
            threshold: 1,
            ..Default::default()
        };
        let cache = PrivacyCache::new();
        let first = compute_privacy(&b, &rows, &cfg, &cache);
        let populated = cache.len();
        assert!(populated > 0);
        let h2 = std::collections::HashSet::from([fx.db.annotations().get("h2").unwrap()]);
        cache.invalidate(&h2);
        let surviving = cache.len();
        let evicted = populated - surviving;
        assert!(evicted > 0, "h2 appears in concretizations — must evict");
        assert!(surviving > 0, "h1-only concretizations must survive");
        let second = compute_privacy(&b, &rows, &cfg, &cache);
        assert_eq!(second.privacy, first.privacy);
        assert_eq!(
            second.stats.consistency_cache_misses, evicted,
            "re-run must recompute exactly the evicted entries"
        );
        // The cache is fully warm again: a third run misses nothing.
        let third = compute_privacy(&b, &rows, &cfg, &cache);
        assert_eq!(third.stats.consistency_cache_misses, 0);
    }

    #[test]
    fn epoch_invalidation_preserves_pinned_readers() {
        // Satellite regression: after an epoch-aware invalidation, a
        // reader pinned at an *older* epoch must still hit every one of
        // its cached entries — only readers at or after the invalidating
        // epoch recompute.
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = abs_lifting(&b, &[("h1", 1), ("h2", 1)]);
        let rows = abs.apply(&b).rows;
        let at_epoch = |e: u64| PrivacyConfig {
            threshold: 1,
            epoch: e,
            ..Default::default()
        };
        let cache = PrivacyCache::new();
        let first = compute_privacy(&b, &rows, &at_epoch(0), &cache);
        let populated = cache.len();
        assert!(populated > 0);
        // A delta touching h2 commits as epoch 1.
        let h2 = std::collections::HashSet::from([fx.db.annotations().get("h2").unwrap()]);
        cache.invalidate_at(&h2, 1);
        // Nothing is evicted — entries are retired per epoch, not dropped.
        assert_eq!(cache.len(), populated);
        // The pinned epoch-0 reader still hits everything.
        let pinned = compute_privacy(&b, &rows, &at_epoch(0), &cache);
        assert_eq!(pinned.privacy, first.privacy);
        assert_eq!(
            pinned.stats.consistency_cache_misses, 0,
            "older-epoch reader must keep hitting its entries"
        );
        assert_eq!(pinned.stats.connectivity_cache_misses, 0);
        // A reader at epoch 1 recomputes the retired entries (the database
        // is unchanged here, so the recomputed values — and the privacy —
        // are identical) and leaves the untouched ones warm.
        let fresh = compute_privacy(&b, &rows, &at_epoch(1), &cache);
        assert_eq!(fresh.privacy, first.privacy);
        assert!(fresh.stats.consistency_cache_misses > 0);
        assert!(
            fresh.stats.consistency_cache_hits > 0,
            "entries disjoint from the delta survive at the new epoch"
        );
        // Both epochs are now fully warm.
        let warm0 = compute_privacy(&b, &rows, &at_epoch(0), &cache);
        assert_eq!(warm0.stats.consistency_cache_misses, 0);
        let warm1 = compute_privacy(&b, &rows, &at_epoch(1), &cache);
        assert_eq!(warm1.stats.consistency_cache_misses, 0);
    }

    #[test]
    fn late_insert_by_pinned_reader_respects_later_fences() {
        // A pinned epoch-0 reader that *populates* the cache after an
        // invalidation at epoch 1 has been recorded must not publish
        // entries claiming validity beyond the fence.
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = abs_lifting(&b, &[("h1", 1), ("h2", 1)]);
        let rows = abs.apply(&b).rows;
        let at_epoch = |e: u64| PrivacyConfig {
            threshold: 1,
            epoch: e,
            ..Default::default()
        };
        let cache = PrivacyCache::new();
        // Warm the *interner* only (ids must exist for the fence to bind
        // to) by computing once, then retire h1 at epoch 1, then clear and
        // recompute at epoch 0 to exercise the late-insert path.
        compute_privacy(&b, &rows, &at_epoch(0), &cache);
        let h1 = std::collections::HashSet::from([fx.db.annotations().get("h1").unwrap()]);
        cache.invalidate_at(&h1, 1);
        // The epoch-0 reader misses nothing (its versions survived), but
        // an epoch-1 reader recomputes; its new entries are then visible
        // to a *second* epoch-1 reader while epoch-0 stays warm too.
        let e1a = compute_privacy(&b, &rows, &at_epoch(1), &cache);
        assert!(e1a.stats.consistency_cache_misses > 0);
        let e1b = compute_privacy(&b, &rows, &at_epoch(1), &cache);
        assert_eq!(e1b.stats.consistency_cache_misses, 0);
        let e0 = compute_privacy(&b, &rows, &at_epoch(0), &cache);
        assert_eq!(e0.stats.consistency_cache_misses, 0);
    }

    #[test]
    fn connectivity_filter_prunes_concretizations() {
        let cfg = PrivacyConfig {
            threshold: 1,
            ..Default::default()
        };
        let with = privacy_of(&[("h1", 1), ("h2", 1)], &cfg);
        let without = privacy_of(
            &[("h1", 1), ("h2", 1)],
            &PrivacyConfig {
                connectivity_filter: false,
                ..cfg
            },
        );
        assert_eq!(with.privacy, without.privacy);
        assert!(with.stats.concretizations_kept < without.stats.concretizations_kept);
    }

    #[test]
    fn truncation_is_reported() {
        let cfg = PrivacyConfig {
            threshold: 1,
            max_concretizations: 2,
            ..Default::default()
        };
        let out = privacy_of(&[("h1", 3), ("h2", 3), ("i1", 3), ("i2", 3)], &cfg);
        assert!(out.stats.truncated);
    }

    #[test]
    fn ucq_privacy_counts_unions() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = abs_lifting(&b, &[("h1", 1), ("h2", 1)]);
        let rows = abs.apply(&b).rows;
        let cfg = PrivacyConfig {
            threshold: 1,
            query_class: QueryClass::Ucq,
            ..Default::default()
        };
        let cache = PrivacyCache::new();
        let out = compute_privacy(&b, &rows, &cfg, &cache);
        assert!(out.privacy.is_some());
        assert!(out.privacy.unwrap() >= 2);
    }

    /// Model-checked (healthy protocol): the writer records the retirement
    /// fence *before* publishing the new epoch, so across every enumerated
    /// schedule a reader that observes the new epoch can never hit a
    /// pre-fence cached verdict.
    #[test]
    fn sched_fenced_invalidation_is_never_stale() {
        use provabs_sched as sched;
        use provabs_sched::sync::atomic::{AtomicU64 as SchedU64, Ordering as SchedOrdering};
        let outcome = sched::explore_with(sched::Config::unbounded(), || {
            let annot = provabs_semiring::AnnotId(7);
            let cache = Arc::new(PrivacyCache::new());
            // truth(epoch 0) = false, truth(epoch 1) = true
            cache.connectivity_record(&[annot], 0, false);
            let published = Arc::new(SchedU64::labeled("privacy.epoch", 0));
            let (c2, p2) = (Arc::clone(&cache), Arc::clone(&published));
            let writer = sched::thread::spawn(move || {
                // Fence first, publish second — the invariant under test.
                let touched = std::collections::HashSet::from([annot]);
                c2.invalidate_at(&touched, 1);
                p2.store(1, SchedOrdering::SeqCst);
            });
            let epoch = published.load(SchedOrdering::SeqCst);
            let truth = epoch >= 1;
            match cache.connectivity_probe(&[annot], epoch) {
                Some(v) => assert_eq!(v, truth, "stale privacy verdict at epoch {epoch}"),
                None => {
                    assert_eq!(cache.connectivity_record(&[annot], epoch, truth), truth);
                }
            }
            writer.join().unwrap();
            // After the fence, epoch 1 never resolves to the epoch-0 verdict.
            assert_ne!(cache.connectivity_probe(&[annot], 1), Some(false));
            assert_eq!(cache.connectivity_probe(&[annot], 0), Some(false));
        });
        outcome.expect_clean();
        assert!(
            outcome.lock_cycle().is_none(),
            "privacy cache lock order must be acyclic: {:?}",
            outcome.lock_edges
        );
    }

    /// Model-checked mutant: publishing the epoch *before* recording the
    /// retirement fence opens a window where a new-epoch reader hits the
    /// stale pre-fence verdict. The sweep MUST find it — this proves the
    /// harness can see through the privacy cache's epoch-stamped protocol.
    #[test]
    fn sched_mutant_unfenced_invalidation_is_caught() {
        use provabs_sched as sched;
        use provabs_sched::sync::atomic::{AtomicU64 as SchedU64, Ordering as SchedOrdering};
        let outcome = sched::explore_with(sched::Config::unbounded(), || {
            let annot = provabs_semiring::AnnotId(7);
            let cache = Arc::new(PrivacyCache::new());
            cache.connectivity_record(&[annot], 0, false);
            let published = Arc::new(SchedU64::labeled("privacy.epoch", 0));
            let (c2, p2) = (Arc::clone(&cache), Arc::clone(&published));
            let writer = sched::thread::spawn(move || {
                // MUTANT: publish first, fence second.
                let touched = std::collections::HashSet::from([annot]);
                p2.store(1, SchedOrdering::SeqCst);
                c2.invalidate_at(&touched, 1);
            });
            let epoch = published.load(SchedOrdering::SeqCst);
            let truth = epoch >= 1;
            if let Some(v) = cache.connectivity_probe(&[annot], epoch) {
                assert_eq!(v, truth, "stale privacy verdict at epoch {epoch}");
            }
            writer.join().unwrap();
        });
        let v = outcome
            .violation
            .expect("unfenced privacy invalidation must be caught");
        assert!(
            v.message.contains("stale privacy verdict"),
            "unexpected violation: {}",
            v.message
        );
    }
}
