//! Algorithm 2: finding an optimal abstraction.
//!
//! Given a bound K-example and a privacy threshold `k`, find the abstraction
//! meeting the threshold with minimal loss of information. The search
//! enumerates abstractions in increasing number of tree edges used, ties
//! broken by LOI (§4.1 "Sorting abstractions"), evaluates LOI before privacy
//! (§4.1 "Prioritizing loss of information"), and stops early through a
//! monotone lower bound: `minLOI(e)` — the least possible LOI of any
//! abstraction using `e` edges — is non-decreasing in `e` (lifting fewer
//! edges never increases any occurrence's term), so once
//! `minLOI(e) ≥ l_best` no later bucket can improve the optimum.
//!
//! # Parallel evaluation
//!
//! Candidate *enumeration* (cheap, microseconds per candidate) is separated
//! from candidate *evaluation* (each privacy computation runs Algorithm 1 —
//! milliseconds to seconds). With [`SearchConfig::parallelism`] above one,
//! each sorted bucket's eligible prefix is evaluated by a pool of scoped
//! worker threads sharing the [`PrivacyCache`] and a lock-free incumbent;
//! see [`find_optimal_abstraction`] for the determinism contract. The
//! paper's semantics are preserved exactly: sorted order, LOI-before-privacy
//! pruning against the incumbent, and the monotone `minLOI(e)` barrier
//! between buckets all still hold, because the winning candidate of a bucket
//! is defined positionally (first eligible success in sorted order), not by
//! arrival time.

use crate::loi::{loss_of_information, occurrence_loi, LoiDistribution};
use crate::privacy::{compute_privacy, PrivacyCache, PrivacyConfig, PrivacyStats};
use crate::{AbsRow, Abstraction, Bound};
use provabs_relational::{Execution, PlanMode};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Configuration of the optimal-abstraction search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Privacy-evaluation settings (threshold `k` lives here).
    pub privacy: PrivacyConfig,
    /// §4.1 component 1: enumerate by edge count, ties by LOI. Disabled =
    /// plain odometer order (the brute-force baseline).
    pub sort_abstractions: bool,
    /// §4.1 component 2: skip the privacy computation when the abstraction
    /// cannot improve on the best LOI found.
    pub prioritize_loi: bool,
    /// Stop when the monotone LOI lower bound exceeds the best LOI.
    pub early_termination: bool,
    /// Hard cap on abstractions enumerated (the search space is
    /// `Π (depth_i + 1)`, exponential in the occurrence count).
    pub max_candidates: usize,
    /// Wall-clock budget in milliseconds; `None` disables. Exceeding it
    /// stops the search with `truncated` set (the incumbent, if any, is
    /// still a valid — possibly non-optimal — answer).
    pub time_budget_ms: Option<u64>,
    /// The loss-of-information distribution.
    pub distribution: LoiDistribution,
    /// Worker threads evaluating candidates: `None` uses every available
    /// core, `Some(1)` reproduces the sequential trace (bit-identical
    /// stats, the Figure 19 ablation baseline), `Some(n)` pins the pool
    /// size.
    ///
    /// The search result is **deterministic regardless of thread count**:
    /// the optimum returned for `None`, `Some(1)` and any `Some(n)` is the
    /// same abstraction with the same LOI and privacy (ties between
    /// equal-LOI candidates resolve to the sequential enumeration order).
    /// Only the work counters in [`SearchStats`] may differ, because
    /// parallel workers evaluate a bounded number of candidates
    /// speculatively.
    ///
    /// A search that exhausts [`SearchConfig::time_budget_ms`] is the one
    /// exception: it stops wherever the clock ran out — inherently
    /// wall-clock-dependent for the sequential trace too — and returns the
    /// incumbent found so far with `truncated` set. Even then, a parallel
    /// bucket never commits a success past a candidate the deadline left
    /// unevaluated, so the incumbent is always one the sequential order
    /// could also have produced.
    ///
    /// ```
    /// use provabs_core::privacy::PrivacyConfig;
    /// use provabs_core::search::{find_optimal_abstraction, SearchConfig};
    /// use provabs_core::{fixtures, Bound};
    ///
    /// let fx = fixtures::running_example();
    /// let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
    /// let cfg = |parallelism| SearchConfig {
    ///     parallelism,
    ///     privacy: PrivacyConfig { threshold: 2, ..Default::default() },
    ///     ..Default::default()
    /// };
    /// let sequential = find_optimal_abstraction(&bound, &cfg(Some(1))).best.unwrap();
    /// let parallel = find_optimal_abstraction(&bound, &cfg(None)).best.unwrap();
    /// assert_eq!(sequential.abstraction, parallel.abstraction);
    /// assert_eq!(sequential.privacy, parallel.privacy);
    /// assert!((sequential.loi - parallel.loi).abs() < 1e-12);
    /// ```
    pub parallelism: Option<usize>,
    /// Route abstraction application through the bound's interned memo
    /// ([`Bound::apply_abstraction_cached`]): each distinct
    /// `(row provenance, per-row lifts)` pair is materialized once per
    /// bound, across buckets, workers and warm restarts. Disabled, every
    /// privacy-evaluated candidate re-abstracts every row from scratch —
    /// the owned-polynomial baseline the `micro_intern` bench and the
    /// `BENCH_3.json` perf gate compare against. Results are identical
    /// either way; only [`SearchStats::rows_abstracted`] moves.
    pub memoize_abstractions: bool,
    /// The [`PlanMode`] for query evaluations performed *on behalf of*
    /// this search — the K-example extraction that feeds
    /// [`Bound::new`](crate::Bound) and any incremental K-relation
    /// maintenance between searches (see [`provabs_relational::plan`]).
    ///
    /// The search itself never evaluates a CQ (it operates on an
    /// already-bound example), so this field is the *declared* mode that
    /// pipeline layers owning both the config and the evaluations read
    /// back — the `bench` scenario/intern harnesses drive
    /// `kexample_for_mode` and their evaluation rounds from it. Cost-based
    /// planning is the default; the search *outcome* is plan-invariant for
    /// unlimited evaluations (the joined K-relation is order-independent),
    /// but output-capped example extraction keeps a different output
    /// subset under a different plan, so harnesses replaying checked-in
    /// counter baselines pin [`PlanMode::Greedy`] here (the `bench::intern`
    /// harness does exactly that for `BENCH_3.json`).
    pub plan_queries: PlanMode,
    /// The [`Execution`] for the same on-behalf-of evaluations as
    /// [`SearchConfig::plan_queries`]: vectorized block execution by
    /// default; harnesses replaying counter baselines recorded before the
    /// block engine pin [`Execution::Scalar`] (alongside
    /// [`PlanMode::Greedy`]) so `EvalWork` stays bit-identical.
    pub execution: Execution,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            privacy: PrivacyConfig::default(),
            sort_abstractions: true,
            prioritize_loi: true,
            early_termination: true,
            max_candidates: 1_000_000,
            time_budget_ms: None,
            distribution: LoiDistribution::Uniform,
            parallelism: None,
            memoize_abstractions: true,
            plan_queries: PlanMode::default(),
            execution: Execution::default(),
        }
    }
}

impl SearchConfig {
    /// The worker count this configuration resolves to: `parallelism`, or
    /// every available core when `None`.
    pub fn effective_parallelism(&self) -> usize {
        self.parallelism.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
    }
}

/// Counters of one search.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Abstractions generated.
    pub abstractions_enumerated: usize,
    /// LOI evaluations.
    pub loi_evaluations: usize,
    /// Privacy evaluations (the expensive part). In parallel runs this may
    /// exceed the sequential count by a bounded amount of speculation.
    pub privacy_evaluations: usize,
    /// Rows actually (re-)abstracted — symbol lists materialized. With
    /// [`SearchConfig::memoize_abstractions`] this counts memo misses only;
    /// without it, every privacy-evaluated candidate pays
    /// `bound.num_rows()`. The "derivations re-abstracted" counter of the
    /// `BENCH_3.json` perf gate.
    pub rows_abstracted: usize,
    /// Abstraction applications answered from the bound's memo in O(1).
    pub abs_cache_hits: usize,
    /// Whether `max_candidates` (or an inner cap) was hit.
    pub truncated: bool,
    /// Whether a warm-start incumbent seeded the search (see
    /// [`find_optimal_abstraction_incremental`]).
    pub warm_start_used: bool,
    /// Aggregated privacy counters.
    pub privacy_stats: PrivacyStats,
}

/// A satisfying abstraction and its metrics.
#[derive(Debug, Clone)]
pub struct BestAbstraction {
    /// The abstraction function.
    pub abstraction: Abstraction,
    /// Its loss of information.
    pub loi: f64,
    /// Its privacy (number of CIM queries, ≥ the threshold).
    pub privacy: usize,
    /// Tree edges used (the paper's "optimal abstraction size").
    pub edges_used: u32,
}

/// The result of a search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The optimal abstraction, or `None` when no abstraction meets the
    /// threshold (within the caps).
    pub best: Option<BestAbstraction>,
    /// Counters.
    pub stats: SearchStats,
}

/// The enumerable abstraction space of a bound example: per-occurrence lift
/// ranges and LOI increments.
pub(crate) struct AbstractionSpace {
    /// Flat occurrences `(row, index)`.
    pub occs: Vec<(usize, usize)>,
    /// Per occurrence: maximal lift.
    pub max_lift: Vec<u32>,
    /// Per occurrence, per lift `0..=max`: the LOI increment under the
    /// search's distribution (Prop. 3.5 decomposes total LOI into exactly
    /// these terms).
    pub loi_table: Vec<Vec<f64>>,
}

impl AbstractionSpace {
    pub fn new(bound: &Bound<'_>, dist: &LoiDistribution) -> Self {
        let occs = bound.occurrences();
        let max_lift: Vec<u32> = occs.iter().map(|&(r, i)| bound.max_lift(r, i)).collect();
        let loi_table: Vec<Vec<f64>> = occs
            .iter()
            .zip(&max_lift)
            .map(|(&(r, i), &max)| {
                (0..=max)
                    .map(|c| occurrence_loi(bound, r, i, c, dist))
                    .collect()
            })
            .collect();
        Self {
            occs,
            max_lift,
            loi_table,
        }
    }

    /// The LOI of a candidate by table lookup — no tree walks, no
    /// `Abstraction` materialization. Summed in flat-occurrence order, which
    /// is exactly the nested row/occurrence order of
    /// [`loss_of_information`], so the two agree bit for bit.
    pub fn loi_of(&self, lifts: &[u32]) -> f64 {
        lifts
            .iter()
            .zip(&self.loi_table)
            .map(|(&l, table)| table[l as usize])
            .sum()
    }

    /// Total lift budget `Σ max_lift`.
    pub fn total_edges(&self) -> u32 {
        self.max_lift.iter().sum()
    }

    /// Materializes an abstraction from flat lifts.
    pub fn to_abstraction(&self, bound: &Bound<'_>, lifts: &[u32]) -> Abstraction {
        let mut abs = Abstraction::identity(bound);
        for (&(r, i), &l) in self.occs.iter().zip(lifts) {
            abs.lifts[r][i] = l;
        }
        abs
    }

    /// `minLOI[e]`: the minimum LOI (under the space's distribution) over
    /// all abstractions using exactly `e` edges. Non-decreasing in `e` (each
    /// occurrence's LOI term is non-decreasing in its lift).
    pub fn min_loi_by_edges(&self) -> Vec<f64> {
        let total = self.total_edges() as usize;
        let mut dp = vec![f64::INFINITY; total + 1];
        dp[0] = 0.0;
        for (j, table) in self.loi_table.iter().enumerate() {
            let cap = self.max_lift[j] as usize;
            let mut ndp = vec![f64::INFINITY; total + 1];
            for (e, &cur) in dp.iter().enumerate() {
                if !cur.is_finite() {
                    continue;
                }
                for (c, &g) in table.iter().enumerate().take(cap + 1) {
                    let ne = e + c;
                    if ne <= total && cur + g < ndp[ne] {
                        ndp[ne] = cur + g;
                    }
                }
            }
            dp = ndp;
        }
        // Enforce monotonicity explicitly for safety against fp noise.
        for e in 1..dp.len() {
            if dp[e] < dp[e - 1] {
                dp[e] = dp[e - 1];
            }
        }
        dp
    }

    /// Enumerates the lift vectors using exactly `e` edges; `f` returns
    /// `false` to abort. Returns `false` when aborted.
    pub fn for_each_with_edges(&self, e: u32, f: &mut impl FnMut(&[u32]) -> bool) -> bool {
        let mut lifts = vec![0u32; self.max_lift.len()];
        // Suffix budget: the maximum edges assignable to occurrences j..
        let mut suffix = vec![0u32; self.max_lift.len() + 1];
        for j in (0..self.max_lift.len()).rev() {
            suffix[j] = suffix[j + 1] + self.max_lift[j];
        }
        self.rec_budget(e, 0, &suffix, &mut lifts, f)
    }

    fn rec_budget(
        &self,
        left: u32,
        j: usize,
        suffix: &[u32],
        lifts: &mut Vec<u32>,
        f: &mut impl FnMut(&[u32]) -> bool,
    ) -> bool {
        if j == self.max_lift.len() {
            return left != 0 || f(lifts);
        }
        if left > suffix[j] {
            return true; // infeasible branch
        }
        let hi = left.min(self.max_lift[j]);
        for c in 0..=hi {
            lifts[j] = c;
            if !self.rec_budget(left - c, j + 1, suffix, lifts, f) {
                lifts[j] = 0;
                return false;
            }
        }
        lifts[j] = 0;
        true
    }

    /// Enumerates every lift vector in odometer order (the brute-force
    /// order); `f` returns `false` to abort.
    pub fn for_each_unsorted(&self, f: &mut impl FnMut(&[u32]) -> bool) -> bool {
        let mut lifts = vec![0u32; self.max_lift.len()];
        self.rec_all(0, &mut lifts, f)
    }

    fn rec_all(&self, j: usize, lifts: &mut Vec<u32>, f: &mut impl FnMut(&[u32]) -> bool) -> bool {
        if j == self.max_lift.len() {
            return f(lifts);
        }
        for c in 0..=self.max_lift[j] {
            lifts[j] = c;
            if !self.rec_all(j + 1, lifts, f) {
                lifts[j] = 0;
                return false;
            }
        }
        lifts[j] = 0;
        true
    }
}

/// One worker's bucket report: successes as `(candidate index, privacy)`,
/// the worker's accumulated privacy counters, its evaluation count, and its
/// abstraction-application `(misses, hits)`.
struct WorkerReport {
    successes: Vec<(usize, usize)>,
    privacy_stats: PrivacyStats,
    evals: usize,
    rows_abstracted: usize,
    abs_cache_hits: usize,
}

/// Materializes the abstracted rows of a candidate, memoized or from
/// scratch per [`SearchConfig::memoize_abstractions`]. Returns the rows and
/// the `(misses, hits)` accounting — the uncached path re-abstracts every
/// row (all misses, by definition).
fn abstracted_rows(
    bound: &Bound<'_>,
    abs: &Abstraction,
    cfg: &SearchConfig,
) -> (Vec<AbsRow>, usize, usize) {
    if cfg.memoize_abstractions {
        let (ex, misses, hits) = bound.apply_abstraction_cached(abs);
        (ex.rows, misses, hits)
    } else {
        (abs.apply(bound).rows, bound.num_rows(), 0)
    }
}

/// Enumerates bucket `e` with per-candidate LOIs (table lookups — the
/// enumeration hot loop materializes no `Abstraction`), capped by the
/// `max_candidates` accounting, and sorts by LOI (the tie-break of
/// Algorithm 2 line 2). Returns the bucket and whether enumeration ran to
/// completion. Shared by the sequential and parallel paths — their
/// equivalence proof depends on both seeing the identical candidate order
/// and cap behavior.
fn collect_sorted_bucket(
    space: &AbstractionSpace,
    cfg: &SearchConfig,
    e: u32,
    enumerated_so_far: usize,
) -> (Vec<(f64, Vec<u32>)>, bool) {
    let mut bucket: Vec<(f64, Vec<u32>)> = Vec::new();
    let complete = space.for_each_with_edges(e, &mut |lifts| {
        bucket.push((space.loi_of(lifts), lifts.to_vec()));
        bucket.len() + enumerated_so_far < cfg.max_candidates
    });
    bucket.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    (bucket, complete)
}

/// The atomically-shared incumbent: the lowest committed LOI, stored as
/// `f64` bits in an `AtomicU64`. LOI is always non-negative, and IEEE-754
/// orders non-negative floats identically to their bit patterns, so a
/// lock-free `fetch_min` on the bits is a `fetch_min` on the values.
struct SharedIncumbent(AtomicU64);

impl SharedIncumbent {
    fn new() -> Self {
        Self(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    /// The current best LOI (`f64::INFINITY` before any commit).
    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    /// Lowers the incumbent to `loi` if it improves on the current value.
    fn publish_min(&self, loi: f64) {
        debug_assert!(loi >= 0.0);
        self.0.fetch_min(loi.to_bits(), Ordering::AcqRel);
    }
}

/// Algorithm 2: finds an abstraction with privacy ≥ `cfg.privacy.threshold`
/// minimizing loss of information.
///
/// With [`SearchConfig::parallelism`] resolving to more than one worker (the
/// default uses every core), candidate batches are evaluated across a scoped
/// thread pool sharing one [`PrivacyCache`]; the result is identical to the
/// sequential search for every thread count.
pub fn find_optimal_abstraction(bound: &Bound<'_>, cfg: &SearchConfig) -> SearchOutcome {
    let cache = PrivacyCache::new();
    find_optimal_abstraction_with_cache(bound, cfg, &cache)
}

/// [`find_optimal_abstraction`] with an externally owned privacy cache
/// (reused across searches by the experiment harness; shared by the worker
/// pool during one search).
pub fn find_optimal_abstraction_with_cache(
    bound: &Bound<'_>,
    cfg: &SearchConfig,
    cache: &PrivacyCache,
) -> SearchOutcome {
    search_with_incumbent(bound, cfg, cache, None)
}

/// Warm-restarted Algorithm 2 for the incremental-update engine: re-score
/// the previous winner on the (updated) bound, and when it still meets the
/// privacy threshold start the search with it as the incumbent.
///
/// A valid incumbent makes the LOI-before-privacy pruning and the monotone
/// `minLOI(e)` barrier bite from the very first bucket: under small deltas
/// the previous optimum is usually still optimal and the search terminates
/// after verifying no bucket can beat it — no privacy evaluation beyond the
/// incumbent's own. The returned optimum has the same LOI and privacy the
/// cold search would find; when several abstractions tie at the optimal
/// LOI, ties resolve to the incumbent instead of the first in enumeration
/// order.
///
/// Pass the [`PrivacyCache`] already invalidated for the delta
/// ([`PrivacyCache::invalidate`]); `warm` abstractions that no longer fit
/// the bound (row or occurrence shape changed) are ignored.
pub fn find_optimal_abstraction_incremental(
    bound: &Bound<'_>,
    cfg: &SearchConfig,
    cache: &PrivacyCache,
    warm: Option<&BestAbstraction>,
) -> SearchOutcome {
    let mut incumbent = None;
    let mut warm_stats = SearchStats::default();
    if let Some(prev) = warm {
        if prev.abstraction.validate(bound) {
            // Re-score on the updated bound: the tree and example may map
            // the same lifts to different LOI, and the delta may have
            // changed the concretization space behind the privacy value.
            let loi = loss_of_information(bound, &prev.abstraction, &cfg.distribution);
            let (rows, misses, hits) = abstracted_rows(bound, &prev.abstraction, cfg);
            warm_stats.rows_abstracted += misses;
            warm_stats.abs_cache_hits += hits;
            warm_stats.privacy_evaluations += 1;
            warm_stats.loi_evaluations += 1;
            let out = compute_privacy(bound, &rows, &cfg.privacy, cache);
            warm_stats.privacy_stats.absorb(&out.stats);
            if let Some(privacy) = out.privacy {
                warm_stats.warm_start_used = true;
                incumbent = Some(BestAbstraction {
                    abstraction: prev.abstraction.clone(),
                    loi,
                    privacy,
                    edges_used: prev.abstraction.edges_used(),
                });
            }
        }
    }
    let mut outcome = search_with_incumbent(bound, cfg, cache, incumbent);
    outcome.stats.privacy_evaluations += warm_stats.privacy_evaluations;
    outcome.stats.loi_evaluations += warm_stats.loi_evaluations;
    outcome.stats.rows_abstracted += warm_stats.rows_abstracted;
    outcome.stats.abs_cache_hits += warm_stats.abs_cache_hits;
    outcome.stats.warm_start_used = warm_stats.warm_start_used;
    outcome
        .stats
        .privacy_stats
        .absorb(&warm_stats.privacy_stats);
    outcome
}

fn search_with_incumbent(
    bound: &Bound<'_>,
    cfg: &SearchConfig,
    cache: &PrivacyCache,
    incumbent: Option<BestAbstraction>,
) -> SearchOutcome {
    let workers = cfg.effective_parallelism();
    if workers > 1 && cfg.sort_abstractions {
        return parallel_search(bound, cfg, cache, workers, incumbent);
    }
    sequential_search(bound, cfg, cache, incumbent)
}

/// The sequential Algorithm 2 exactly as the paper prints it — the
/// `parallelism: Some(1)` trace the Figure 19 ablation compares against.
fn sequential_search(
    bound: &Bound<'_>,
    cfg: &SearchConfig,
    cache: &PrivacyCache,
    incumbent: Option<BestAbstraction>,
) -> SearchOutcome {
    let space = AbstractionSpace::new(bound, &cfg.distribution);
    let mut stats = SearchStats::default();
    let mut best: Option<BestAbstraction> = incumbent;
    let deadline = cfg
        .time_budget_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let out_of_time = move || deadline.is_some_and(|d| Instant::now() >= d);

    // `loi` is the candidate's table-sum LOI (bucket enumeration already
    // paid for it; the unsorted ablation computes it the same way).
    let consider = |lifts: &[u32],
                    loi: f64,
                    stats: &mut SearchStats,
                    best: &mut Option<BestAbstraction>|
     -> bool {
        if out_of_time() {
            return false;
        }
        stats.abstractions_enumerated += 1;
        stats.loi_evaluations += 1;
        let l_best = best.as_ref().map_or(f64::INFINITY, |b| b.loi);
        if cfg.prioritize_loi && loi >= l_best {
            return stats.abstractions_enumerated < cfg.max_candidates;
        }
        let abs = space.to_abstraction(bound, lifts);
        stats.privacy_evaluations += 1;
        let (rows, misses, hits) = abstracted_rows(bound, &abs, cfg);
        stats.rows_abstracted += misses;
        stats.abs_cache_hits += hits;
        let out = compute_privacy(bound, &rows, &cfg.privacy, cache);
        stats.privacy_stats.absorb(&out.stats);
        if let Some(p) = out.privacy {
            if loi < l_best {
                *best = Some(BestAbstraction {
                    edges_used: abs.edges_used(),
                    abstraction: abs,
                    loi,
                    privacy: p,
                });
            }
        }
        stats.abstractions_enumerated < cfg.max_candidates
    };

    if cfg.sort_abstractions {
        let min_loi = if cfg.early_termination {
            space.min_loi_by_edges()
        } else {
            Vec::new()
        };
        'outer: for e in 0..=space.total_edges() {
            if cfg.early_termination {
                if let Some(b) = &best {
                    if min_loi[e as usize] >= b.loi {
                        break 'outer;
                    }
                }
            }
            let (bucket, complete) =
                collect_sorted_bucket(&space, cfg, e, stats.abstractions_enumerated);
            stats.truncated |= !complete;
            for (loi, lifts) in &bucket {
                if !consider(lifts, *loi, &mut stats, &mut best) {
                    stats.truncated = true;
                    break 'outer;
                }
            }
            if !complete {
                break 'outer;
            }
        }
    } else {
        let complete = space.for_each_unsorted(&mut |lifts| {
            consider(lifts, space.loi_of(lifts), &mut stats, &mut best)
        });
        stats.truncated |= !complete;
    }
    SearchOutcome { best, stats }
}

/// The parallel engine: sequential enumeration and sorting per bucket,
/// parallel evaluation of the bucket's eligible prefix.
///
/// The sequential search, scanning a LOI-sorted bucket, evaluates privacy
/// only for candidates with `loi < l_best`, and the *first* success
/// immediately prunes the rest of the bucket (everything after it has an
/// equal or larger LOI). A bucket's outcome is therefore fully determined
/// by *positions*, not timing: the winner is the least-indexed eligible
/// candidate whose privacy meets the threshold. Workers claim indices from
/// an atomic counter, publish successes through a lock-free `fetch_min`
/// index, and stop claiming past the best published success; the
/// coordinator commits the minimal success after the pool joins, keeping
/// the result bit-identical to the sequential trace for every worker
/// count. Speculation past the winner is bounded by the pool size (each
/// worker can hold at most one in-flight candidate).
fn parallel_search(
    bound: &Bound<'_>,
    cfg: &SearchConfig,
    cache: &PrivacyCache,
    workers: usize,
    initial: Option<BestAbstraction>,
) -> SearchOutcome {
    let space = AbstractionSpace::new(bound, &cfg.distribution);
    let mut stats = SearchStats::default();
    let mut best: Option<BestAbstraction> = initial;
    let incumbent = SharedIncumbent::new();
    if let Some(b) = &best {
        incumbent.publish_min(b.loi);
    }
    let deadline = cfg
        .time_budget_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let min_loi = if cfg.early_termination {
        space.min_loi_by_edges()
    } else {
        Vec::new()
    };

    'outer: for e in 0..=space.total_edges() {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            stats.truncated = true;
            break 'outer;
        }
        if cfg.early_termination && best.is_some() && min_loi[e as usize] >= incumbent.get() {
            break 'outer;
        }
        // Enumerate and sort the bucket — identical to the sequential path.
        let (bucket, complete) =
            collect_sorted_bucket(&space, cfg, e, stats.abstractions_enumerated);
        stats.truncated |= !complete;

        // How many candidates the sequential loop would consider before
        // `max_candidates`, and which prefix of those is eligible for a
        // privacy evaluation (`loi < l_best`; everything, under the
        // `prioritize_loi: false` ablation).
        let budget = cfg
            .max_candidates
            .saturating_sub(stats.abstractions_enumerated);
        let considered = bucket.len().min(budget);
        let l_best = incumbent.get();
        let eval_len = if cfg.prioritize_loi {
            bucket[..considered].partition_point(|(loi, _)| *loi < l_best)
        } else {
            considered
        };
        stats.abstractions_enumerated += considered;
        stats.loi_evaluations += considered;

        // Evaluate the first eligible candidate inline: whenever it
        // succeeds it decides the whole bucket (everything after it has an
        // equal or larger LOI), so spinning up the pool — and its
        // speculative work — would be pure waste.
        // Mirror the sequential trace's per-candidate deadline check: the
        // budget may have expired during enumeration and sorting, and the
        // next privacy evaluation can take seconds.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            stats.truncated = true;
            break 'outer;
        }
        let mut winner: Option<(usize, usize)> = None;
        let mut pool_start = 0usize;
        if cfg.prioritize_loi && eval_len > 0 {
            pool_start = 1;
            let (loi, lifts) = &bucket[0];
            if *loi < incumbent.get() {
                let abs = space.to_abstraction(bound, lifts);
                let (rows, misses, hits) = abstracted_rows(bound, &abs, cfg);
                stats.rows_abstracted += misses;
                stats.abs_cache_hits += hits;
                stats.privacy_evaluations += 1;
                let out = compute_privacy(bound, &rows, &cfg.privacy, cache);
                stats.privacy_stats.absorb(&out.stats);
                if let Some(p) = out.privacy {
                    winner = Some((0, p));
                }
            }
        }

        // Parallel evaluation of the rest of the eligible prefix.
        let next = AtomicUsize::new(pool_start);
        let best_success = AtomicUsize::new(usize::MAX);
        let timed_out = AtomicBool::new(false);
        // Lowest index a worker claimed but abandoned on the deadline. A
        // success above this floor must not be committed: the abandoned
        // candidate could have been the positional winner.
        let timeout_floor = AtomicUsize::new(usize::MAX);
        let pool = workers.min(eval_len.saturating_sub(pool_start));
        let run_pool = winner.is_none() && pool > 0;
        let worker_results: Vec<WorkerReport> = if !run_pool {
            Vec::new()
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..pool)
                    .map(|_| {
                        let (space, bucket) = (&space, &bucket);
                        let (next, best_success, timed_out, timeout_floor) =
                            (&next, &best_success, &timed_out, &timeout_floor);
                        s.spawn(move || {
                            let mut report = WorkerReport {
                                successes: Vec::new(),
                                privacy_stats: PrivacyStats::default(),
                                evals: 0,
                                rows_abstracted: 0,
                                abs_cache_hits: 0,
                            };
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= eval_len {
                                    break;
                                }
                                // Indices only grow, so once a success below
                                // `i` exists nothing this worker can claim
                                // will ever win: stop.
                                if cfg.prioritize_loi && best_success.load(Ordering::Acquire) < i {
                                    break;
                                }
                                if deadline.is_some_and(|d| Instant::now() >= d) {
                                    timed_out.store(true, Ordering::Release);
                                    timeout_floor.fetch_min(i, Ordering::AcqRel);
                                    break;
                                }
                                // Every index below `eval_len` already has
                                // `loi < l_best` (the partition point), and
                                // the incumbent cannot improve while the
                                // pool runs — commits happen after join —
                                // so no further LOI re-check is needed.
                                let (_, lifts) = &bucket[i];
                                let abs = space.to_abstraction(bound, lifts);
                                let (rows, misses, hits) = abstracted_rows(bound, &abs, cfg);
                                report.rows_abstracted += misses;
                                report.abs_cache_hits += hits;
                                report.evals += 1;
                                let out = compute_privacy(bound, &rows, &cfg.privacy, cache);
                                report.privacy_stats.absorb(&out.stats);
                                if let Some(p) = out.privacy {
                                    report.successes.push((i, p));
                                    best_success.fetch_min(i, Ordering::AcqRel);
                                }
                            }
                            report
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("search worker panicked"))
                    .collect()
            })
        };

        for report in worker_results {
            stats.privacy_evaluations += report.evals;
            stats.rows_abstracted += report.rows_abstracted;
            stats.abs_cache_hits += report.abs_cache_hits;
            stats.privacy_stats.absorb(&report.privacy_stats);
            for (i, p) in report.successes {
                // Eligibility re-check for the no-pruning ablation: a
                // success can only displace the incumbent with a strictly
                // smaller LOI.
                if bucket[i].0 < l_best && winner.is_none_or(|(w, _)| i < w) {
                    winner = Some((i, p));
                }
            }
        }
        // Discard a winner above the timeout floor: some lower-indexed
        // candidate went unevaluated, so the positional first-success of
        // this bucket is unknown. (The run is truncated below either way.)
        if winner.is_some_and(|(idx, _)| idx >= timeout_floor.load(Ordering::Acquire)) {
            winner = None;
        }
        if let Some((idx, privacy)) = winner {
            let (loi, lifts) = &bucket[idx];
            let abs = space.to_abstraction(bound, lifts);
            incumbent.publish_min(*loi);
            best = Some(BestAbstraction {
                edges_used: abs.edges_used(),
                abstraction: abs,
                loi: *loi,
                privacy,
            });
        }
        if timed_out.load(Ordering::Acquire) {
            stats.truncated = true;
            break 'outer;
        }
        if considered < bucket.len() || stats.abstractions_enumerated >= cfg.max_candidates {
            stats.truncated = true;
            break 'outer;
        }
        if !complete {
            break 'outer;
        }
    }
    SearchOutcome { best, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::running_example;
    use crate::privacy::PrivacyConfig;
    use crate::Sym;

    fn search_with(cfg: SearchConfig) -> SearchOutcome {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        find_optimal_abstraction(&b, &cfg)
    }

    #[test]
    fn example_3_15_optimal_abstraction() {
        // Threshold 2: the optimal abstraction is A1_T with LOI ln 15.
        let out = search_with(SearchConfig {
            privacy: PrivacyConfig {
                threshold: 2,
                ..Default::default()
            },
            ..Default::default()
        });
        let best = out.best.expect("abstraction exists");
        assert!((best.loi - 15f64.ln()).abs() < 1e-9, "loi = {}", best.loi);
        assert_eq!(best.privacy, 2);
        assert_eq!(best.edges_used, 2);
        // The abstraction must map h1 and h2 one level up (Facebook/LinkedIn).
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let rows = best.abstraction.apply(&b).rows;
        let labels: Vec<&str> = rows
            .iter()
            .flat_map(|r| r.syms.iter())
            .filter_map(|s| match s {
                Sym::Abs(n) => Some(fx.db.annotations().name(fx.tree.label(*n))),
                Sym::Leaf(_) => None,
            })
            .collect();
        assert_eq!(labels.len(), 2);
        assert!(labels.contains(&"Facebook_src"));
        assert!(labels.contains(&"LinkedIn_src"));
    }

    #[test]
    fn brute_force_agrees_with_optimized() {
        let mk = |sort, prioritize, early| SearchConfig {
            privacy: PrivacyConfig {
                threshold: 2,
                ..Default::default()
            },
            sort_abstractions: sort,
            prioritize_loi: prioritize,
            early_termination: early,
            parallelism: Some(1),
            ..Default::default()
        };
        let optimized = search_with(mk(true, true, true));
        let brute = search_with(mk(false, false, false));
        let (o, b) = (optimized.best.unwrap(), brute.best.unwrap());
        assert!((o.loi - b.loi).abs() < 1e-9);
        // The optimized search evaluates privacy far less often.
        assert!(optimized.stats.privacy_evaluations < brute.stats.privacy_evaluations);
    }

    #[test]
    fn parallel_matches_sequential_trace() {
        // The determinism contract: every thread count returns the same
        // optimum (abstraction identity included, not just its metrics).
        let mk = |parallelism| SearchConfig {
            privacy: PrivacyConfig {
                threshold: 2,
                ..Default::default()
            },
            parallelism,
            ..Default::default()
        };
        let seq = search_with(mk(Some(1))).best.unwrap();
        for threads in [Some(2), Some(4), Some(8), None] {
            let par = search_with(mk(threads)).best.unwrap();
            assert_eq!(par.abstraction, seq.abstraction, "threads = {threads:?}");
            assert_eq!(par.privacy, seq.privacy);
            assert_eq!(par.edges_used, seq.edges_used);
            assert!((par.loi - seq.loi).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_matches_sequential_without_pruning_flags() {
        // The ablation configurations keep the contract too (the unsorted
        // baseline always runs sequentially, so only sorted variants differ).
        for (prioritize, early) in [(true, false), (false, true), (false, false)] {
            let mk = |parallelism| SearchConfig {
                privacy: PrivacyConfig {
                    threshold: 2,
                    ..Default::default()
                },
                prioritize_loi: prioritize,
                early_termination: early,
                parallelism,
                ..Default::default()
            };
            let seq = search_with(mk(Some(1))).best.unwrap();
            let par = search_with(mk(Some(4))).best.unwrap();
            assert_eq!(
                par.abstraction, seq.abstraction,
                "prioritize={prioritize} early={early}"
            );
            assert_eq!(par.privacy, seq.privacy);
        }
    }

    #[test]
    fn parallel_unreachable_threshold_returns_none() {
        let out = search_with(SearchConfig {
            privacy: PrivacyConfig {
                threshold: 1000,
                ..Default::default()
            },
            parallelism: Some(4),
            ..Default::default()
        });
        assert!(out.best.is_none());
    }

    #[test]
    fn warm_restart_returns_the_same_optimum_with_fewer_evaluations() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let cfg = SearchConfig {
            privacy: PrivacyConfig {
                threshold: 2,
                ..Default::default()
            },
            parallelism: Some(1),
            ..Default::default()
        };
        let cache = PrivacyCache::new();
        let cold = find_optimal_abstraction_with_cache(&b, &cfg, &cache);
        assert!(!cold.stats.warm_start_used);
        let cold_best = cold.best.as_ref().unwrap();
        // Unchanged database: the incumbent is verified once and every
        // bucket is pruned against it.
        let warm = find_optimal_abstraction_incremental(&b, &cfg, &cache, cold.best.as_ref());
        assert!(warm.stats.warm_start_used);
        let warm_best = warm.best.unwrap();
        assert!((warm_best.loi - cold_best.loi).abs() < 1e-12);
        assert_eq!(warm_best.privacy, cold_best.privacy);
        assert_eq!(warm_best.edges_used, cold_best.edges_used);
        assert!(
            warm.stats.privacy_evaluations <= cold.stats.privacy_evaluations,
            "warm {} vs cold {}",
            warm.stats.privacy_evaluations,
            cold.stats.privacy_evaluations
        );
    }

    #[test]
    fn warm_restart_still_finds_improvements() {
        // Seed with a deliberately bad (but threshold-meeting) incumbent:
        // the search must still return the true optimum.
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let cfg = SearchConfig {
            privacy: PrivacyConfig {
                threshold: 2,
                ..Default::default()
            },
            parallelism: Some(1),
            ..Default::default()
        };
        let cache = PrivacyCache::new();
        let cold_best = find_optimal_abstraction_with_cache(&b, &cfg, &cache)
            .best
            .unwrap();
        // Lift h1 and h2 all the way to the root's child: strictly worse
        // LOI than the optimum, still privacy >= 2.
        let mut abs = Abstraction::identity(&b);
        for r in 0..b.num_rows() {
            for i in 0..b.row_occurrences(r).len() {
                if b.max_lift(r, i) >= 3 {
                    abs.lifts[r][i] = 3;
                }
            }
        }
        let bad = BestAbstraction {
            edges_used: abs.edges_used(),
            abstraction: abs,
            loi: f64::INFINITY, // stale value: re-scored inside
            privacy: 0,
        };
        for parallelism in [Some(1), Some(4)] {
            let cfg = SearchConfig {
                parallelism,
                ..cfg.clone()
            };
            let warm = find_optimal_abstraction_incremental(&b, &cfg, &cache, Some(&bad));
            let best = warm.best.unwrap();
            assert!(
                (best.loi - cold_best.loi).abs() < 1e-12,
                "warm restart missed the optimum ({} vs {}) at {parallelism:?}",
                best.loi,
                cold_best.loi
            );
        }
    }

    #[test]
    fn warm_restart_ignores_invalid_incumbents() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let cfg = SearchConfig {
            privacy: PrivacyConfig {
                threshold: 2,
                ..Default::default()
            },
            parallelism: Some(1),
            ..Default::default()
        };
        let cache = PrivacyCache::new();
        // Wrong shape: one row too few.
        let stale = BestAbstraction {
            abstraction: Abstraction {
                lifts: vec![vec![0; 3]],
            },
            loi: 0.0,
            privacy: 5,
            edges_used: 0,
        };
        let out = find_optimal_abstraction_incremental(&b, &cfg, &cache, Some(&stale));
        assert!(!out.stats.warm_start_used);
        let cold = find_optimal_abstraction_with_cache(&b, &cfg, &cache);
        assert!((out.best.unwrap().loi - cold.best.unwrap().loi).abs() < 1e-12);
    }

    #[test]
    fn threshold_one_needs_no_abstraction() {
        let out = search_with(SearchConfig {
            privacy: PrivacyConfig {
                threshold: 1,
                ..Default::default()
            },
            ..Default::default()
        });
        let best = out.best.unwrap();
        assert_eq!(best.loi, 0.0);
        assert_eq!(best.edges_used, 0);
        assert_eq!(best.privacy, 1);
    }

    #[test]
    fn unreachable_threshold_returns_none() {
        let out = search_with(SearchConfig {
            privacy: PrivacyConfig {
                threshold: 1000,
                ..Default::default()
            },
            ..Default::default()
        });
        assert!(out.best.is_none());
    }

    #[test]
    fn min_loi_is_monotone() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let space = AbstractionSpace::new(&b, &LoiDistribution::Uniform);
        let dp = space.min_loi_by_edges();
        assert_eq!(dp[0], 0.0);
        for e in 1..dp.len() {
            assert!(dp[e] >= dp[e - 1]);
        }
        // Total budget: h1, h2, i2 at depth 3; i1 at depth 2 under WikiLeaks.
        assert_eq!(space.total_edges(), 11);
    }

    #[test]
    fn bucket_enumeration_counts() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let space = AbstractionSpace::new(&b, &LoiDistribution::Uniform);
        // e = 0: exactly one abstraction (identity).
        let mut n0 = 0;
        space.for_each_with_edges(0, &mut |_| {
            n0 += 1;
            true
        });
        assert_eq!(n0, 1);
        // e = 1: one per tree occurrence (4).
        let mut n1 = 0;
        space.for_each_with_edges(1, &mut |_| {
            n1 += 1;
            true
        });
        assert_eq!(n1, 4);
        // Total across all budgets = (3+1)(2+1)(3+1)(3+1) = 192 (i1 has
        // depth 2, the rest depth 3).
        let mut total = 0;
        for e in 0..=space.total_edges() {
            space.for_each_with_edges(e, &mut |_| {
                total += 1;
                true
            });
        }
        assert_eq!(total, 192);
        let mut unsorted = 0;
        space.for_each_unsorted(&mut |_| {
            unsorted += 1;
            true
        });
        assert_eq!(unsorted, total);
    }

    #[test]
    fn max_candidates_truncates() {
        let out = search_with(SearchConfig {
            privacy: PrivacyConfig {
                threshold: 50,
                ..Default::default()
            },
            max_candidates: 10,
            ..Default::default()
        });
        assert!(out.stats.truncated);
        assert!(out.stats.abstractions_enumerated <= 11);
    }

    #[test]
    fn max_candidates_truncates_in_parallel_like_sequential() {
        let mk = |parallelism| SearchConfig {
            privacy: PrivacyConfig {
                threshold: 50,
                ..Default::default()
            },
            max_candidates: 10,
            parallelism,
            ..Default::default()
        };
        let seq = search_with(mk(Some(1)));
        let par = search_with(mk(Some(4)));
        assert!(seq.stats.truncated && par.stats.truncated);
        assert_eq!(
            par.stats.abstractions_enumerated,
            seq.stats.abstractions_enumerated
        );
        assert!(par.best.is_none() && seq.best.is_none());
    }

    #[test]
    fn shared_incumbent_orders_like_f64() {
        let inc = SharedIncumbent::new();
        assert_eq!(inc.get(), f64::INFINITY);
        inc.publish_min(2.7);
        assert_eq!(inc.get(), 2.7);
        inc.publish_min(3.1); // larger: no effect
        assert_eq!(inc.get(), 2.7);
        inc.publish_min(0.0);
        assert_eq!(inc.get(), 0.0);
    }
}
