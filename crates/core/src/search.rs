//! Algorithm 2: finding an optimal abstraction.
//!
//! Given a bound K-example and a privacy threshold `k`, find the abstraction
//! meeting the threshold with minimal loss of information. The search
//! enumerates abstractions in increasing number of tree edges used, ties
//! broken by LOI (§4.1 "Sorting abstractions"), evaluates LOI before privacy
//! (§4.1 "Prioritizing loss of information"), and stops early through a
//! monotone lower bound: `minLOI(e)` — the least possible LOI of any
//! abstraction using `e` edges — is non-decreasing in `e` (lifting fewer
//! edges never increases any occurrence's term), so once
//! `minLOI(e) ≥ l_best` no later bucket can improve the optimum.

use crate::loi::{loss_of_information, single_lift_loi, LoiDistribution};
use crate::privacy::{compute_privacy, PrivacyCache, PrivacyConfig, PrivacyStats};
use crate::{Abstraction, Bound};

/// Configuration of the optimal-abstraction search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Privacy-evaluation settings (threshold `k` lives here).
    pub privacy: PrivacyConfig,
    /// §4.1 component 1: enumerate by edge count, ties by LOI. Disabled =
    /// plain odometer order (the brute-force baseline).
    pub sort_abstractions: bool,
    /// §4.1 component 2: skip the privacy computation when the abstraction
    /// cannot improve on the best LOI found.
    pub prioritize_loi: bool,
    /// Stop when the monotone LOI lower bound exceeds the best LOI.
    pub early_termination: bool,
    /// Hard cap on abstractions enumerated (the search space is
    /// `Π (depth_i + 1)`, exponential in the occurrence count).
    pub max_candidates: usize,
    /// Wall-clock budget in milliseconds; `None` disables. Exceeding it
    /// stops the search with `truncated` set (the incumbent, if any, is
    /// still a valid — possibly non-optimal — answer).
    pub time_budget_ms: Option<u64>,
    /// The loss-of-information distribution.
    pub distribution: LoiDistribution,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            privacy: PrivacyConfig::default(),
            sort_abstractions: true,
            prioritize_loi: true,
            early_termination: true,
            max_candidates: 1_000_000,
            time_budget_ms: None,
            distribution: LoiDistribution::Uniform,
        }
    }
}

/// Counters of one search.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Abstractions generated.
    pub abstractions_enumerated: usize,
    /// LOI evaluations.
    pub loi_evaluations: usize,
    /// Privacy evaluations (the expensive part).
    pub privacy_evaluations: usize,
    /// Whether `max_candidates` (or an inner cap) was hit.
    pub truncated: bool,
    /// Aggregated privacy counters.
    pub privacy_stats: PrivacyStats,
}

/// A satisfying abstraction and its metrics.
#[derive(Debug, Clone)]
pub struct BestAbstraction {
    /// The abstraction function.
    pub abstraction: Abstraction,
    /// Its loss of information.
    pub loi: f64,
    /// Its privacy (number of CIM queries, ≥ the threshold).
    pub privacy: usize,
    /// Tree edges used (the paper's "optimal abstraction size").
    pub edges_used: u32,
}

/// The result of a search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The optimal abstraction, or `None` when no abstraction meets the
    /// threshold (within the caps).
    pub best: Option<BestAbstraction>,
    /// Counters.
    pub stats: SearchStats,
}

/// The enumerable abstraction space of a bound example: per-occurrence lift
/// ranges and LOI increments.
pub(crate) struct AbstractionSpace {
    /// Flat occurrences `(row, index)`.
    pub occs: Vec<(usize, usize)>,
    /// Per occurrence: maximal lift.
    pub max_lift: Vec<u32>,
    /// Per occurrence, per lift `0..=max`: the uniform-LOI increment.
    pub loi_table: Vec<Vec<f64>>,
}

impl AbstractionSpace {
    pub fn new(bound: &Bound<'_>) -> Self {
        let occs = bound.occurrences();
        let max_lift: Vec<u32> = occs.iter().map(|&(r, i)| bound.max_lift(r, i)).collect();
        let loi_table: Vec<Vec<f64>> = occs
            .iter()
            .zip(&max_lift)
            .map(|(&(r, i), &max)| {
                (0..=max).map(|c| single_lift_loi(bound, r, i, c)).collect()
            })
            .collect();
        Self {
            occs,
            max_lift,
            loi_table,
        }
    }

    /// Total lift budget `Σ max_lift`.
    pub fn total_edges(&self) -> u32 {
        self.max_lift.iter().sum()
    }

    /// Materializes an abstraction from flat lifts.
    pub fn to_abstraction(&self, bound: &Bound<'_>, lifts: &[u32]) -> Abstraction {
        let mut abs = Abstraction::identity(bound);
        for (&(r, i), &l) in self.occs.iter().zip(lifts) {
            abs.lifts[r][i] = l;
        }
        abs
    }

    /// `minLOI[e]`: the minimum uniform-LOI over all abstractions using
    /// exactly `e` edges. Non-decreasing in `e` (each occurrence's LOI term
    /// is non-decreasing in its lift).
    pub fn min_loi_by_edges(&self) -> Vec<f64> {
        let total = self.total_edges() as usize;
        let mut dp = vec![f64::INFINITY; total + 1];
        dp[0] = 0.0;
        for (j, table) in self.loi_table.iter().enumerate() {
            let cap = self.max_lift[j] as usize;
            let mut ndp = vec![f64::INFINITY; total + 1];
            for (e, &cur) in dp.iter().enumerate() {
                if !cur.is_finite() {
                    continue;
                }
                for (c, &g) in table.iter().enumerate().take(cap + 1) {
                    let ne = e + c;
                    if ne <= total && cur + g < ndp[ne] {
                        ndp[ne] = cur + g;
                    }
                }
            }
            dp = ndp;
        }
        // Enforce monotonicity explicitly for safety against fp noise.
        for e in 1..dp.len() {
            if dp[e] < dp[e - 1] {
                dp[e] = dp[e - 1];
            }
        }
        dp
    }

    /// Enumerates the lift vectors using exactly `e` edges; `f` returns
    /// `false` to abort. Returns `false` when aborted.
    pub fn for_each_with_edges(&self, e: u32, f: &mut impl FnMut(&[u32]) -> bool) -> bool {
        let mut lifts = vec![0u32; self.max_lift.len()];
        // Suffix budget: the maximum edges assignable to occurrences j..
        let mut suffix = vec![0u32; self.max_lift.len() + 1];
        for j in (0..self.max_lift.len()).rev() {
            suffix[j] = suffix[j + 1] + self.max_lift[j];
        }
        self.rec_budget(e, 0, &suffix, &mut lifts, f)
    }

    fn rec_budget(
        &self,
        left: u32,
        j: usize,
        suffix: &[u32],
        lifts: &mut Vec<u32>,
        f: &mut impl FnMut(&[u32]) -> bool,
    ) -> bool {
        if j == self.max_lift.len() {
            return left != 0 || f(lifts);
        }
        if left > suffix[j] {
            return true; // infeasible branch
        }
        let hi = left.min(self.max_lift[j]);
        for c in 0..=hi {
            lifts[j] = c;
            if !self.rec_budget(left - c, j + 1, suffix, lifts, f) {
                lifts[j] = 0;
                return false;
            }
        }
        lifts[j] = 0;
        true
    }

    /// Enumerates every lift vector in odometer order (the brute-force
    /// order); `f` returns `false` to abort.
    pub fn for_each_unsorted(&self, f: &mut impl FnMut(&[u32]) -> bool) -> bool {
        let mut lifts = vec![0u32; self.max_lift.len()];
        self.rec_all(0, &mut lifts, f)
    }

    fn rec_all(
        &self,
        j: usize,
        lifts: &mut Vec<u32>,
        f: &mut impl FnMut(&[u32]) -> bool,
    ) -> bool {
        if j == self.max_lift.len() {
            return f(lifts);
        }
        for c in 0..=self.max_lift[j] {
            lifts[j] = c;
            if !self.rec_all(j + 1, lifts, f) {
                lifts[j] = 0;
                return false;
            }
        }
        lifts[j] = 0;
        true
    }
}

/// Algorithm 2: finds an abstraction with privacy ≥ `cfg.privacy.threshold`
/// minimizing loss of information.
pub fn find_optimal_abstraction(bound: &Bound<'_>, cfg: &SearchConfig) -> SearchOutcome {
    let mut cache = PrivacyCache::new();
    find_optimal_abstraction_with_cache(bound, cfg, &mut cache)
}

/// [`find_optimal_abstraction`] with an externally owned privacy cache
/// (reused across searches by the experiment harness).
pub fn find_optimal_abstraction_with_cache(
    bound: &Bound<'_>,
    cfg: &SearchConfig,
    cache: &mut PrivacyCache,
) -> SearchOutcome {
    let space = AbstractionSpace::new(bound);
    let mut stats = SearchStats::default();
    let mut best: Option<BestAbstraction> = None;
    let deadline = cfg
        .time_budget_ms
        .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
    let out_of_time = move || deadline.is_some_and(|d| std::time::Instant::now() >= d);

    let consider = |lifts: &[u32],
                        stats: &mut SearchStats,
                        best: &mut Option<BestAbstraction>,
                        cache: &mut PrivacyCache|
     -> bool {
        if out_of_time() {
            return false;
        }
        stats.abstractions_enumerated += 1;
        let abs = space.to_abstraction(bound, lifts);
        stats.loi_evaluations += 1;
        let loi = loss_of_information(bound, &abs, &cfg.distribution);
        let l_best = best.as_ref().map_or(f64::INFINITY, |b| b.loi);
        if cfg.prioritize_loi && loi >= l_best {
            return stats.abstractions_enumerated < cfg.max_candidates;
        }
        stats.privacy_evaluations += 1;
        let rows = abs.apply(bound).rows;
        let out = compute_privacy(bound, &rows, &cfg.privacy, cache);
        stats.privacy_stats.absorb(&out.stats);
        if let Some(p) = out.privacy {
            if loi < l_best {
                *best = Some(BestAbstraction {
                    edges_used: abs.edges_used(),
                    abstraction: abs,
                    loi,
                    privacy: p,
                });
            }
        }
        stats.abstractions_enumerated < cfg.max_candidates
    };

    if cfg.sort_abstractions {
        let min_loi = if cfg.early_termination {
            space.min_loi_by_edges()
        } else {
            Vec::new()
        };
        'outer: for e in 0..=space.total_edges() {
            if cfg.early_termination {
                if let Some(b) = &best {
                    if min_loi[e as usize] >= b.loi {
                        break 'outer;
                    }
                }
            }
            // Collect the bucket with LOIs, sort by LOI (the tie-break of
            // Algorithm 2 line 2).
            let mut bucket: Vec<(f64, Vec<u32>)> = Vec::new();
            let complete = space.for_each_with_edges(e, &mut |lifts| {
                let abs = space.to_abstraction(bound, lifts);
                let loi = loss_of_information(bound, &abs, &cfg.distribution);
                bucket.push((loi, lifts.to_vec()));
                bucket.len() + stats.abstractions_enumerated < cfg.max_candidates
            });
            stats.truncated |= !complete;
            bucket.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            for (_, lifts) in &bucket {
                if !consider(lifts, &mut stats, &mut best, cache) {
                    stats.truncated = true;
                    break 'outer;
                }
            }
            if !complete {
                break 'outer;
            }
        }
    } else {
        let complete = space.for_each_unsorted(&mut |lifts| {
            consider(lifts, &mut stats, &mut best, cache)
        });
        stats.truncated |= !complete;
    }
    SearchOutcome { best, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::running_example;
    use crate::privacy::PrivacyConfig;
    use crate::Sym;

    fn search_with(cfg: SearchConfig) -> SearchOutcome {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        find_optimal_abstraction(&b, &cfg)
    }

    #[test]
    fn example_3_15_optimal_abstraction() {
        // Threshold 2: the optimal abstraction is A1_T with LOI ln 15.
        let out = search_with(SearchConfig {
            privacy: PrivacyConfig {
                threshold: 2,
                ..Default::default()
            },
            ..Default::default()
        });
        let best = out.best.expect("abstraction exists");
        assert!((best.loi - 15f64.ln()).abs() < 1e-9, "loi = {}", best.loi);
        assert_eq!(best.privacy, 2);
        assert_eq!(best.edges_used, 2);
        // The abstraction must map h1 and h2 one level up (Facebook/LinkedIn).
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let rows = best.abstraction.apply(&b).rows;
        let labels: Vec<&str> = rows
            .iter()
            .flat_map(|r| r.syms.iter())
            .filter_map(|s| match s {
                Sym::Abs(n) => Some(fx.db.annotations().name(fx.tree.label(*n))),
                Sym::Leaf(_) => None,
            })
            .collect();
        assert_eq!(labels.len(), 2);
        assert!(labels.contains(&"Facebook_src"));
        assert!(labels.contains(&"LinkedIn_src"));
    }

    #[test]
    fn brute_force_agrees_with_optimized() {
        let mk = |sort, prioritize, early| SearchConfig {
            privacy: PrivacyConfig {
                threshold: 2,
                ..Default::default()
            },
            sort_abstractions: sort,
            prioritize_loi: prioritize,
            early_termination: early,
            ..Default::default()
        };
        let optimized = search_with(mk(true, true, true));
        let brute = search_with(mk(false, false, false));
        let (o, b) = (optimized.best.unwrap(), brute.best.unwrap());
        assert!((o.loi - b.loi).abs() < 1e-9);
        // The optimized search evaluates privacy far less often.
        assert!(optimized.stats.privacy_evaluations < brute.stats.privacy_evaluations);
    }

    #[test]
    fn threshold_one_needs_no_abstraction() {
        let out = search_with(SearchConfig {
            privacy: PrivacyConfig {
                threshold: 1,
                ..Default::default()
            },
            ..Default::default()
        });
        let best = out.best.unwrap();
        assert_eq!(best.loi, 0.0);
        assert_eq!(best.edges_used, 0);
        assert_eq!(best.privacy, 1);
    }

    #[test]
    fn unreachable_threshold_returns_none() {
        let out = search_with(SearchConfig {
            privacy: PrivacyConfig {
                threshold: 1000,
                ..Default::default()
            },
            ..Default::default()
        });
        assert!(out.best.is_none());
    }

    #[test]
    fn min_loi_is_monotone() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let space = AbstractionSpace::new(&b);
        let dp = space.min_loi_by_edges();
        assert_eq!(dp[0], 0.0);
        for e in 1..dp.len() {
            assert!(dp[e] >= dp[e - 1]);
        }
        // Total budget: h1, h2, i2 at depth 3; i1 at depth 2 under WikiLeaks.
        assert_eq!(space.total_edges(), 11);
    }

    #[test]
    fn bucket_enumeration_counts() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let space = AbstractionSpace::new(&b);
        // e = 0: exactly one abstraction (identity).
        let mut n0 = 0;
        space.for_each_with_edges(0, &mut |_| {
            n0 += 1;
            true
        });
        assert_eq!(n0, 1);
        // e = 1: one per tree occurrence (4).
        let mut n1 = 0;
        space.for_each_with_edges(1, &mut |_| {
            n1 += 1;
            true
        });
        assert_eq!(n1, 4);
        // Total across all budgets = (3+1)(2+1)(3+1)(3+1) = 192 (i1 has
        // depth 2, the rest depth 3).
        let mut total = 0;
        for e in 0..=space.total_edges() {
            space.for_each_with_edges(e, &mut |_| {
                total += 1;
                true
            });
        }
        assert_eq!(total, 192);
        let mut unsorted = 0;
        space.for_each_unsorted(&mut |_| {
            unsorted += 1;
            true
        });
        assert_eq!(unsorted, total);
    }

    #[test]
    fn max_candidates_truncates() {
        let out = search_with(SearchConfig {
            privacy: PrivacyConfig {
                threshold: 50,
                ..Default::default()
            },
            max_candidates: 10,
            ..Default::default()
        });
        assert!(out.stats.truncated);
        assert!(out.stats.abstractions_enumerated <= 11);
    }
}
