//! Loss of information as concretization-set entropy (§3.2, Def. 3.6).
//!
//! With the uniform distribution over concretizations, `LOI = ln |C(Ã)|`,
//! which by Prop. 3.5 decomposes into a sum over abstracted occurrences of
//! `ln |L_T(target)|`. For non-uniform leaf weights the concretization
//! distribution is the product of independent per-occurrence leaf choices,
//! so the entropy is the sum of per-occurrence entropies.

use crate::{Abstraction, Bound};
use provabs_semiring::AnnotId;
use provabs_tree::NodeId;
use rand::Rng;
use rand::SeedableRng;
use std::collections::HashMap;

/// The probability model over concretizations.
#[derive(Debug, Clone, Default)]
pub enum LoiDistribution {
    /// Discrete uniform over the concretization set: `LOI = ln |C|`.
    #[default]
    Uniform,
    /// Per-leaf positive weights; each abstracted occurrence picks a leaf
    /// under its target with probability proportional to the weight.
    Weighted(LeafWeights),
}

/// Positive weights per leaf annotation.
#[derive(Debug, Clone)]
pub struct LeafWeights {
    weights: HashMap<AnnotId, f64>,
}

impl LeafWeights {
    /// Builds from explicit weights. Missing leaves default to 1.0.
    pub fn new(weights: HashMap<AnnotId, f64>) -> Self {
        Self { weights }
    }

    /// Random weights in `(0, 1]` for every leaf of `leaves`, seeded (the
    /// paper's "entropy with random distribution" configuration).
    pub fn random(leaves: &[AnnotId], seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Self {
            weights: leaves
                .iter()
                .map(|&a| (a, rng.random_range(0.01..=1.0f64)))
                .collect(),
        }
    }

    fn weight(&self, a: AnnotId) -> f64 {
        self.weights.get(&a).copied().unwrap_or(1.0)
    }

    /// Shannon entropy (nats) of the leaf choice under `node`.
    fn node_entropy(&self, bound: &Bound<'_>, node: NodeId) -> f64 {
        let leaves = bound.tree.leaves_under(node);
        let total: f64 = leaves.iter().map(|&a| self.weight(a)).sum();
        if total <= 0.0 {
            return 0.0;
        }
        -leaves
            .iter()
            .map(|&a| {
                let p = self.weight(a) / total;
                if p > 0.0 {
                    p * p.ln()
                } else {
                    0.0
                }
            })
            .sum::<f64>()
    }
}

/// The loss of information of `abs` on `bound` under `dist` (Def. 3.6).
///
/// Unabstracted occurrences contribute 0; an occurrence abstracted to node
/// `v` contributes `ln |L_T(v)|` (uniform) or the entropy of the weighted
/// leaf choice under `v`.
pub fn loss_of_information(bound: &Bound<'_>, abs: &Abstraction, dist: &LoiDistribution) -> f64 {
    let mut total = 0.0;
    for r in 0..bound.num_rows() {
        for i in 0..bound.row_occurrences(r).len() {
            if let Some(node) = abs.target(bound, r, i) {
                total += match dist {
                    LoiDistribution::Uniform => (bound.tree.leaf_count(node) as f64).ln(),
                    LoiDistribution::Weighted(w) => w.node_entropy(bound, node),
                };
            }
        }
    }
    total
}

/// Incrementally maintained loss of information: recomputes the per-
/// occurrence entropy terms only where the lift changed between two
/// abstractions, instead of resolving the tree target of every occurrence.
///
/// `prev_loi` must be `loss_of_information(bound, prev, dist)`. The result
/// equals `loss_of_information(bound, next, dist)` up to floating-point
/// associativity (tests pin a 1e-9 agreement). This is an exported
/// building block for callers that maintain a score across a sequence of
/// small abstraction edits (e.g. a local-search or repair loop over an
/// incumbent); the batch search itself re-scores candidates from scratch,
/// where the sorted-bucket LOI tables already amortize the work.
pub fn delta_loss_of_information(
    bound: &Bound<'_>,
    prev: &Abstraction,
    prev_loi: f64,
    next: &Abstraction,
    dist: &LoiDistribution,
) -> f64 {
    let occ_term = |abs: &Abstraction, r: usize, i: usize| -> f64 {
        match abs.target(bound, r, i) {
            Some(node) => match dist {
                LoiDistribution::Uniform => (bound.tree.leaf_count(node) as f64).ln(),
                LoiDistribution::Weighted(w) => w.node_entropy(bound, node),
            },
            None => 0.0,
        }
    };
    let mut total = prev_loi;
    for r in 0..bound.num_rows() {
        for i in 0..bound.row_occurrences(r).len() {
            if prev.lifts[r][i] != next.lifts[r][i] {
                total += occ_term(next, r, i) - occ_term(prev, r, i);
            }
        }
    }
    total
}

/// Convenience: the uniform-distribution LOI of lifting one occurrence of a
/// leaf at depth `leaf_depth` by `lift` edges — used by the search's
/// lower-bound tables.
pub fn single_lift_loi(bound: &Bound<'_>, r: usize, i: usize, lift: u32) -> f64 {
    occurrence_loi(bound, r, i, lift, &LoiDistribution::Uniform)
}

/// The LOI contribution of lifting occurrence `(r, i)` by `lift` edges
/// under `dist` — the per-occurrence term of the Prop. 3.5 decomposition.
/// `loss_of_information` is exactly the sum of these terms over all
/// occurrences, so the search can tabulate them once per bound and score
/// every candidate by table lookups instead of tree walks.
pub fn occurrence_loi(
    bound: &Bound<'_>,
    r: usize,
    i: usize,
    lift: u32,
    dist: &LoiDistribution,
) -> f64 {
    if lift == 0 {
        return 0.0;
    }
    match bound
        .leaf_node(r, i)
        .and_then(|leaf| bound.tree.ancestor_at(leaf, lift))
    {
        Some(node) => match dist {
            LoiDistribution::Uniform => (bound.tree.leaf_count(node) as f64).ln(),
            LoiDistribution::Weighted(w) => w.node_entropy(bound, node),
        },
        None => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::running_example;
    use crate::{Abstraction, Bound};

    fn abs_lifting(bound: &Bound<'_>, lifts: &[(&str, u32)]) -> Abstraction {
        let mut abs = Abstraction::identity(bound);
        for (name, lift) in lifts {
            let id = bound.db.annotations().get(name).unwrap();
            for r in 0..bound.num_rows() {
                for (i, &a) in bound.row_occurrences(r).iter().enumerate() {
                    if a == id {
                        abs.lifts[r][i] = *lift;
                    }
                }
            }
        }
        abs
    }

    #[test]
    fn example_3_15_uniform_lois() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        // A1_T: ln(5 * 3) = ln 15 ≈ 2.708.
        let a1 = abs_lifting(&b, &[("h1", 1), ("h2", 1)]);
        let l1 = loss_of_information(&b, &a1, &LoiDistribution::Uniform);
        assert!((l1 - 15f64.ln()).abs() < 1e-12);
        // A2_T: ln(4 * 5) = ln 20 ≈ 2.996.
        let a2 = abs_lifting(&b, &[("i1", 1), ("i2", 1)]);
        let l2 = loss_of_information(&b, &a2, &LoiDistribution::Uniform);
        assert!((l2 - 20f64.ln()).abs() < 1e-12);
        assert!(l1 < l2);
    }

    #[test]
    fn identity_has_zero_loi() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = Abstraction::identity(&b);
        assert_eq!(
            loss_of_information(&b, &abs, &LoiDistribution::Uniform),
            0.0
        );
    }

    #[test]
    fn uniform_weights_match_uniform_distribution() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = abs_lifting(&b, &[("h1", 1), ("h2", 1)]);
        let w = LeafWeights::new(HashMap::new()); // all default to 1.0
        let weighted = loss_of_information(&b, &abs, &LoiDistribution::Weighted(w));
        let uniform = loss_of_information(&b, &abs, &LoiDistribution::Uniform);
        assert!((weighted - uniform).abs() < 1e-12);
    }

    #[test]
    fn skewed_weights_lower_entropy() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = abs_lifting(&b, &[("h1", 1)]);
        // Put nearly all mass on h1 under Facebook: entropy ≈ 0.
        let mut weights = HashMap::new();
        for leaf in fx.tree.leaves() {
            weights.insert(*leaf, 1e-9);
        }
        weights.insert(fx.db.annotations().get("h1").unwrap(), 1.0);
        let dist = LoiDistribution::Weighted(LeafWeights::new(weights));
        let skewed = loss_of_information(&b, &abs, &dist);
        let uniform = loss_of_information(&b, &abs, &LoiDistribution::Uniform);
        assert!(skewed < uniform * 0.1);
    }

    #[test]
    fn random_weights_are_seeded() {
        let fx = running_example();
        let w1 = LeafWeights::random(fx.tree.leaves(), 5);
        let w2 = LeafWeights::random(fx.tree.leaves(), 5);
        let w3 = LeafWeights::random(fx.tree.leaves(), 6);
        let a = fx.tree.leaves()[0];
        assert_eq!(w1.weight(a), w2.weight(a));
        assert_ne!(w1.weight(a), w3.weight(a));
    }

    #[test]
    fn delta_loi_matches_full_recomputation() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let steps: [&[(&str, u32)]; 4] = [
            &[("h1", 1), ("h2", 1)],
            &[("h1", 2), ("h2", 1)],
            &[("i1", 1), ("i2", 1)],
            &[],
        ];
        for dist in [
            LoiDistribution::Uniform,
            LoiDistribution::Weighted(LeafWeights::random(fx.tree.leaves(), 3)),
        ] {
            let mut prev = Abstraction::identity(&b);
            let mut prev_loi = loss_of_information(&b, &prev, &dist);
            for lifts in steps {
                let next = abs_lifting(&b, lifts);
                let incremental = delta_loss_of_information(&b, &prev, prev_loi, &next, &dist);
                let full = loss_of_information(&b, &next, &dist);
                assert!(
                    (incremental - full).abs() < 1e-9,
                    "incremental {incremental} vs full {full}"
                );
                prev = next;
                prev_loi = incremental;
            }
        }
    }

    #[test]
    fn single_lift_matches_total() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = abs_lifting(&b, &[("h1", 2)]);
        let total = loss_of_information(&b, &abs, &LoiDistribution::Uniform);
        let h1 = fx.db.annotations().get("h1").unwrap();
        let (r, i) = (0..b.num_rows())
            .flat_map(|r| (0..b.row_occurrences(r).len()).map(move |i| (r, i)))
            .find(|&(r, i)| b.row_occurrences(r)[i] == h1)
            .unwrap();
        assert_eq!(single_lift_loi(&b, r, i, 2), total);
        assert_eq!(single_lift_loi(&b, r, i, 0), 0.0);
    }
}
