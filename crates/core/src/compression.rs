//! The provenance-compression baseline (reference \[24\]: Deutch, Moskovitch,
//! Rinetzky — "Hypothetical reasoning via provenance abstraction", SIGMOD
//! 2019), used as the comparison method of Figure 18.
//!
//! The compression framework abstracts provenance to *reduce its size*: it
//! maps **symbols** (distinct annotations) uniformly — every occurrence of a
//! merged leaf, in every row, moves to the same tree node — greedily merging
//! the cheapest subtree until at most `target` distinct symbols remain. The
//! paper drives it as a black box with a decreasing target size until the
//! privacy threshold is met; because symbol-level merging is so much coarser
//! than the occurrence-level choice of Algorithm 2, it pays ≈2–3× the loss
//! of information for the same privacy.

use crate::loi::{loss_of_information, LoiDistribution};
use crate::privacy::{compute_privacy, PrivacyCache, PrivacyConfig, PrivacyStats};
use crate::search::BestAbstraction;
use crate::{Abstraction, Bound};
use provabs_semiring::AnnotId;
use provabs_tree::NodeId;
use std::collections::HashMap;

/// Compresses the bound example to at most `target` distinct symbols by
/// greedily merging subtrees (minimum LOI-increase per distinct-symbol
/// reduction). Returns the symbol-level abstraction; if `target` cannot be
/// reached (symbols outside the tree cannot merge), the best-effort
/// abstraction is returned.
pub fn compress_to_symbols(bound: &Bound<'_>, target: usize) -> Abstraction {
    // Current target node per distinct leaf annotation (only tree leaves are
    // movable).
    let mut current: HashMap<AnnotId, NodeId> = HashMap::new();
    let mut occ_count: HashMap<AnnotId, usize> = HashMap::new();
    let mut fixed_symbols: std::collections::HashSet<AnnotId> = std::collections::HashSet::new();
    for r in 0..bound.num_rows() {
        for (i, &a) in bound.row_occurrences(r).iter().enumerate() {
            *occ_count.entry(a).or_insert(0) += 1;
            match bound.leaf_node(r, i) {
                Some(leaf) => {
                    current.insert(a, leaf);
                }
                None => {
                    fixed_symbols.insert(a);
                }
            }
        }
    }
    let tree = bound.tree;
    let distinct = |cur: &HashMap<AnnotId, NodeId>, fixed: usize| -> usize {
        let mut nodes: Vec<NodeId> = cur.values().copied().collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len() + fixed
    };
    loop {
        let now = distinct(&current, fixed_symbols.len());
        if now <= target {
            break;
        }
        // Candidate merges: every proper ancestor v of a current symbol;
        // merging moves all current symbols strictly below v up to v.
        let mut candidates: HashMap<NodeId, Vec<AnnotId>> = HashMap::new();
        for (&leaf_annot, &node) in &current {
            for anc in tree.ancestors(node) {
                candidates.entry(anc).or_default().push(leaf_annot);
            }
        }
        let mut best: Option<(f64, NodeId, Vec<AnnotId>)> = None;
        for (v, leaves) in candidates {
            // Distinct symbols strictly below v being replaced.
            let mut replaced: Vec<NodeId> = leaves.iter().map(|a| current[a]).collect();
            replaced.sort_unstable();
            replaced.dedup();
            let reduction =
                replaced.len().saturating_sub(1) + usize::from(current.values().any(|&n| n == v));
            if reduction == 0 {
                continue;
            }
            let v_loi = (tree.leaf_count(v) as f64).ln();
            let delta: f64 = leaves
                .iter()
                .map(|a| {
                    let cur_loi = (tree.leaf_count(current[a]) as f64).ln();
                    (v_loi - cur_loi) * occ_count[a] as f64
                })
                .sum();
            let score = delta / reduction as f64;
            if best.as_ref().is_none_or(|(s, _, _)| score < *s) {
                best = Some((score, v, leaves));
            }
        }
        let Some((_, v, leaves)) = best else {
            break; // nothing can merge further
        };
        for a in leaves {
            current.insert(a, v);
        }
    }
    // Materialize: every occurrence of a moved leaf lifts to its target.
    let mut abs = Abstraction::identity(bound);
    for r in 0..bound.num_rows() {
        for (i, &a) in bound.row_occurrences(r).iter().enumerate() {
            if let (Some(leaf), Some(&tgt)) = (bound.leaf_node(r, i), current.get(&a)) {
                abs.lifts[r][i] = tree.edges_between(leaf, tgt);
            }
        }
    }
    abs
}

/// The outcome of the compression-driven baseline.
#[derive(Debug, Clone)]
pub struct CompressionOutcome {
    /// The satisfying abstraction (when a target size met the threshold).
    pub best: Option<BestAbstraction>,
    /// Number of target sizes (black-box invocations) tried.
    pub targets_tried: usize,
    /// Aggregated privacy counters.
    pub privacy_stats: PrivacyStats,
}

/// Drives [`compress_to_symbols`] as a black box: starting from the number
/// of distinct symbols, decrease the target size until the abstraction
/// meets `cfg.threshold` (the loop the paper uses to compare against \[24\]).
pub fn compression_baseline(
    bound: &Bound<'_>,
    cfg: &PrivacyConfig,
    dist: &LoiDistribution,
) -> CompressionOutcome {
    compression_baseline_with_budget(bound, cfg, dist, None)
}

/// [`compression_baseline`] with a wall-clock budget in milliseconds; on
/// expiry the outcome reports `best: None` with `truncated` set in the
/// stats.
pub fn compression_baseline_with_budget(
    bound: &Bound<'_>,
    cfg: &PrivacyConfig,
    dist: &LoiDistribution,
    budget_ms: Option<u64>,
) -> CompressionOutcome {
    let deadline =
        budget_ms.map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
    let cache = PrivacyCache::new();
    let mut stats = PrivacyStats::default();
    let distinct_symbols = {
        let mut v: Vec<AnnotId> = (0..bound.num_rows())
            .flat_map(|r| bound.row_occurrences(r).iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v.len()
    };
    let mut targets_tried = 0;
    for target in (1..=distinct_symbols).rev() {
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            stats.truncated = true;
            break;
        }
        targets_tried += 1;
        let abs = compress_to_symbols(bound, target);
        let rows = bound.apply_abstraction_cached(&abs).0.rows;
        let out = compute_privacy(bound, &rows, cfg, &cache);
        stats.absorb(&out.stats);
        if let Some(p) = out.privacy {
            let loi = loss_of_information(bound, &abs, dist);
            return CompressionOutcome {
                best: Some(BestAbstraction {
                    edges_used: abs.edges_used(),
                    abstraction: abs,
                    loi,
                    privacy: p,
                }),
                targets_tried,
                privacy_stats: stats,
            };
        }
    }
    CompressionOutcome {
        best: None,
        targets_tried,
        privacy_stats: stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::running_example;
    use crate::search::{find_optimal_abstraction, SearchConfig};

    #[test]
    fn full_target_is_identity() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = compress_to_symbols(&b, 6);
        assert_eq!(abs.edges_used(), 0);
    }

    #[test]
    fn compression_is_symbol_uniform() {
        // Merging always moves *all* occurrences of the merged leaves.
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        for target in (1..6).rev() {
            let abs = compress_to_symbols(&b, target);
            // Per annotation, all its occurrences share one target.
            let mut seen: HashMap<AnnotId, Option<NodeId>> = HashMap::new();
            for r in 0..b.num_rows() {
                for (i, &a) in b.row_occurrences(r).iter().enumerate() {
                    let tgt = abs.target(&b, r, i);
                    if let Some(prev) = seen.insert(a, tgt) {
                        assert_eq!(prev, tgt, "occurrences of {a} diverged");
                    }
                }
            }
        }
    }

    #[test]
    fn lower_targets_increase_loi() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let mut last = -1.0f64;
        for target in (1..=6).rev() {
            let abs = compress_to_symbols(&b, target);
            let loi = loss_of_information(&b, &abs, &LoiDistribution::Uniform);
            assert!(
                loi >= last - 1e-9,
                "LOI decreased at target {target}: {loi} < {last}"
            );
            last = loi;
        }
    }

    #[test]
    fn baseline_meets_threshold_but_pays_more_loi() {
        // Figure 18's shape on the running example: both methods reach
        // privacy 2; the compression baseline pays at least as much LOI.
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let cfg = PrivacyConfig {
            threshold: 2,
            ..Default::default()
        };
        let comp = compression_baseline(&b, &cfg, &LoiDistribution::Uniform);
        let comp_best = comp.best.expect("compression reaches privacy 2");
        assert!(comp_best.privacy >= 2);
        let ours = find_optimal_abstraction(
            &b,
            &SearchConfig {
                privacy: cfg,
                ..Default::default()
            },
        )
        .best
        .unwrap();
        assert!(
            comp_best.loi >= ours.loi - 1e-9,
            "compression {} < optimal {}",
            comp_best.loi,
            ours.loi
        );
    }
}
