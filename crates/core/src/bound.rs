//! Binding a K-example to its database and abstraction tree.

use crate::sharded::ShardedMap;
use crate::{AbsExample, AbsRow, Abstraction, CoreError, CoreResult, Sym};
use provabs_relational::{Database, KExample};
use provabs_semiring::{AnnotId, PolyId, ProvStore};
use provabs_tree::{AbstractionTree, NodeId};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A K-example bound to a compatible abstraction tree and the database its
/// annotations tag.
///
/// Precomputes the occurrence view of every row (Def. 3.1 indexes each
/// variable occurrence) and, per occurrence, the tree leaf and its maximal
/// lift (depth). All core algorithms operate on a `Bound`.
///
/// The bound also owns a [`ProvStore`] interning each row's provenance: two
/// rows with the same monomial share one [`PolyId`], and the memoized
/// abstraction application ([`Bound::apply_abstraction_cached`]) is keyed by
/// that id, so the search abstracts each distinct polynomial under each
/// distinct per-row lift vector exactly once for the bound's lifetime —
/// across buckets, worker threads and warm restarts alike. The memo dies
/// with the bound, which is what makes it sound: a database delta produces a
/// new `Bound`, so retired annotations can never be resolved through a stale
/// entry.
#[derive(Debug)]
pub struct Bound<'a> {
    /// The database whose tuples the example's annotations tag.
    pub db: &'a Database,
    /// The abstraction tree.
    pub tree: &'a AbstractionTree,
    /// The K-example.
    pub example: &'a KExample,
    /// Per row: the flat occurrence list (exponents expanded).
    occ_annots: Vec<Vec<AnnotId>>,
    /// Per row/occurrence: the tree leaf, when the annotation is in `L_T`.
    leaf_nodes: Vec<Vec<Option<NodeId>>>,
    /// Arena interning the rows' provenance (immutable after binding).
    store: ProvStore,
    /// Per row: the interned provenance polynomial.
    row_polys: Vec<PolyId>,
    /// Interns per-row lift vectors to fingerprints: probed by `&[u32]`
    /// (no allocation on the hot path), first insert wins so every equal
    /// vector resolves to one canonical id.
    lift_ids: ShardedMap<Vec<u32>, u32>,
    /// Fingerprint counter for `lift_ids` (racing workers may burn a value;
    /// ids stay unique, which is all the keying needs).
    next_lift: AtomicU32,
    /// Memoized abstraction application:
    /// `(row provenance, lift-vector fingerprint)` → the materialized
    /// symbol list. Sharded and `Send + Sync`, shared by every worker of
    /// the parallel search; first insert wins (values are deterministic, so
    /// racing workers converge on equal rows).
    abs_rows: ShardedMap<(PolyId, u32), Arc<Vec<Sym>>>,
}

impl<'a> Bound<'a> {
    /// Binds `example` to `tree` and `db`.
    ///
    /// Fails if the tree is incompatible (Def. 2.6), the example is empty,
    /// or an annotation does not tag a tuple.
    pub fn new(
        db: &'a Database,
        tree: &'a AbstractionTree,
        example: &'a KExample,
    ) -> CoreResult<Self> {
        if example.is_empty() {
            return Err(CoreError::EmptyExample);
        }
        if !tree.compatible_with(db) {
            return Err(CoreError::IncompatibleTree);
        }
        let mut occ_annots = Vec::with_capacity(example.len());
        let mut leaf_nodes = Vec::with_capacity(example.len());
        let mut store = ProvStore::new();
        let mut row_polys = Vec::with_capacity(example.len());
        for row in &example.rows {
            let occs = row.monomial.occurrences();
            for &a in &occs {
                if db.locate(a).is_none() {
                    return Err(CoreError::UnresolvedAnnotation(a));
                }
            }
            let leaves: Vec<Option<NodeId>> = occs
                .iter()
                .map(|&a| tree.node_by_label(a).filter(|&n| tree.is_leaf(n)))
                .collect();
            occ_annots.push(occs);
            leaf_nodes.push(leaves);
            let mono = store.intern_monomial(row.monomial.clone());
            row_polys.push(store.poly_of_monomial(mono));
        }
        Ok(Self {
            db,
            tree,
            example,
            occ_annots,
            leaf_nodes,
            store,
            row_polys,
            lift_ids: ShardedMap::default(),
            next_lift: AtomicU32::new(0),
            abs_rows: ShardedMap::default(),
        })
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.occ_annots.len()
    }

    /// The annotation occurrences of row `r`.
    pub fn row_occurrences(&self, r: usize) -> &[AnnotId] {
        &self.occ_annots[r]
    }

    /// The tree leaf of occurrence `(r, i)` (`None` when the annotation is
    /// not a leaf of the tree — such occurrences cannot be abstracted,
    /// Def. 3.1: `A_T(v) = v` for `v ∉ L_T`).
    pub fn leaf_node(&self, r: usize, i: usize) -> Option<NodeId> {
        self.leaf_nodes[r][i]
    }

    /// The maximal lift of occurrence `(r, i)`: the depth of its leaf (0
    /// when not abstractable).
    pub fn max_lift(&self, r: usize, i: usize) -> u32 {
        self.leaf_nodes[r][i].map_or(0, |n| self.tree.depth(n))
    }

    /// Flat list of all occurrences as `(row, index)` pairs.
    pub fn occurrences(&self) -> Vec<(usize, usize)> {
        self.occ_annots
            .iter()
            .enumerate()
            .flat_map(|(r, occs)| (0..occs.len()).map(move |i| (r, i)))
            .collect()
    }

    /// Total occurrence count.
    pub fn num_occurrences(&self) -> usize {
        self.occ_annots.iter().map(Vec::len).sum()
    }

    /// The arena interning the rows' provenance.
    pub fn prov_store(&self) -> &ProvStore {
        &self.store
    }

    /// The interned provenance polynomial of row `r`. Rows with equal
    /// monomials share one id (and therefore share abstraction-application
    /// memo entries).
    pub fn row_poly(&self, r: usize) -> PolyId {
        self.row_polys[r]
    }

    /// Number of distinct `(row provenance, per-row lifts)` pairs the
    /// abstraction-application memo holds.
    pub fn abs_memo_len(&self) -> usize {
        self.abs_rows.len()
    }

    /// The fingerprint of a per-row lift vector: interned, probed by slice
    /// so a known vector costs no allocation.
    fn lift_fingerprint(&self, lifts: &[u32]) -> u32 {
        if let Some(id) = self.lift_ids.get_borrowed(lifts) {
            return id;
        }
        let id = self.next_lift.fetch_add(1, Ordering::Relaxed);
        self.lift_ids.insert(lifts.to_vec(), id)
    }

    /// Applies `abs` through the bound's abstraction-application memo.
    ///
    /// Bit-identical to [`Abstraction::apply`], but each distinct
    /// `(row provenance [`PolyId`], per-row lift vector)` pair — the
    /// abstraction fingerprint of a row — is materialized once per bound and
    /// shared (`Arc`) afterwards. Returns the abstracted example plus the
    /// `(misses, hits)` pair for this application: misses are rows actually
    /// re-abstracted, hits were answered in O(1) (the probe interns the lift
    /// vector by reference and looks up a `Copy` key — no allocation).
    pub fn apply_abstraction_cached(&self, abs: &Abstraction) -> (AbsExample, usize, usize) {
        let mut misses = 0usize;
        let mut hits = 0usize;
        let rows = (0..self.num_rows())
            .map(|r| {
                let key = (self.row_polys[r], self.lift_fingerprint(&abs.lifts[r]));
                let syms = match self.abs_rows.get(&key) {
                    Some(s) => {
                        hits += 1;
                        s
                    }
                    None => {
                        misses += 1;
                        // First insert wins: racing workers computed the
                        // same deterministic row and converge on one Arc.
                        self.abs_rows.insert(key, Arc::new(abs.row_syms(self, r)))
                    }
                };
                AbsRow {
                    output: self.example.rows[r].output.clone(),
                    syms,
                }
            })
            .collect();
        (AbsExample { rows }, misses, hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::running_example;
    use provabs_relational::Tuple;
    use provabs_semiring::Monomial;

    #[test]
    fn binds_running_example() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.num_occurrences(), 6);
        // p1 is not in the Figure 3 tree: max lift 0. h1 is at depth 3.
        let p1 = fx.db.annotations().get("p1").unwrap();
        let h1 = fx.db.annotations().get("h1").unwrap();
        let row0 = b.row_occurrences(0).to_vec();
        let p1_idx = row0.iter().position(|&a| a == p1).unwrap();
        let h1_idx = row0.iter().position(|&a| a == h1).unwrap();
        assert_eq!(b.max_lift(0, p1_idx), 0);
        assert_eq!(b.max_lift(0, h1_idx), 3);
        assert_eq!(b.occurrences().len(), 6);
    }

    #[test]
    fn rejects_empty_example() {
        let fx = running_example();
        let empty = KExample::default();
        assert_eq!(
            Bound::new(&fx.db, &fx.tree, &empty).unwrap_err(),
            CoreError::EmptyExample
        );
    }

    #[test]
    fn rejects_unresolved_annotations() {
        let fx = running_example();
        let mut db = fx.db.clone();
        let ghost = db.intern_label("ghost");
        let ex = KExample::new([(Tuple::parse(&["1"]), Monomial::from_annots([ghost]))]);
        assert_eq!(
            Bound::new(&db, &fx.tree, &ex).unwrap_err(),
            CoreError::UnresolvedAnnotation(ghost)
        );
    }
}
