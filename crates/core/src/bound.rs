//! Binding a K-example to its database and abstraction tree.

use crate::{CoreError, CoreResult};
use provabs_relational::{Database, KExample};
use provabs_semiring::AnnotId;
use provabs_tree::{AbstractionTree, NodeId};

/// A K-example bound to a compatible abstraction tree and the database its
/// annotations tag.
///
/// Precomputes the occurrence view of every row (Def. 3.1 indexes each
/// variable occurrence) and, per occurrence, the tree leaf and its maximal
/// lift (depth). All core algorithms operate on a `Bound`.
#[derive(Debug)]
pub struct Bound<'a> {
    /// The database whose tuples the example's annotations tag.
    pub db: &'a Database,
    /// The abstraction tree.
    pub tree: &'a AbstractionTree,
    /// The K-example.
    pub example: &'a KExample,
    /// Per row: the flat occurrence list (exponents expanded).
    occ_annots: Vec<Vec<AnnotId>>,
    /// Per row/occurrence: the tree leaf, when the annotation is in `L_T`.
    leaf_nodes: Vec<Vec<Option<NodeId>>>,
}

impl<'a> Bound<'a> {
    /// Binds `example` to `tree` and `db`.
    ///
    /// Fails if the tree is incompatible (Def. 2.6), the example is empty,
    /// or an annotation does not tag a tuple.
    pub fn new(
        db: &'a Database,
        tree: &'a AbstractionTree,
        example: &'a KExample,
    ) -> CoreResult<Self> {
        if example.is_empty() {
            return Err(CoreError::EmptyExample);
        }
        if !tree.compatible_with(db) {
            return Err(CoreError::IncompatibleTree);
        }
        let mut occ_annots = Vec::with_capacity(example.len());
        let mut leaf_nodes = Vec::with_capacity(example.len());
        for row in &example.rows {
            let occs = row.monomial.occurrences();
            for &a in &occs {
                if db.locate(a).is_none() {
                    return Err(CoreError::UnresolvedAnnotation(a));
                }
            }
            let leaves: Vec<Option<NodeId>> = occs
                .iter()
                .map(|&a| tree.node_by_label(a).filter(|&n| tree.is_leaf(n)))
                .collect();
            occ_annots.push(occs);
            leaf_nodes.push(leaves);
        }
        Ok(Self {
            db,
            tree,
            example,
            occ_annots,
            leaf_nodes,
        })
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.occ_annots.len()
    }

    /// The annotation occurrences of row `r`.
    pub fn row_occurrences(&self, r: usize) -> &[AnnotId] {
        &self.occ_annots[r]
    }

    /// The tree leaf of occurrence `(r, i)` (`None` when the annotation is
    /// not a leaf of the tree — such occurrences cannot be abstracted,
    /// Def. 3.1: `A_T(v) = v` for `v ∉ L_T`).
    pub fn leaf_node(&self, r: usize, i: usize) -> Option<NodeId> {
        self.leaf_nodes[r][i]
    }

    /// The maximal lift of occurrence `(r, i)`: the depth of its leaf (0
    /// when not abstractable).
    pub fn max_lift(&self, r: usize, i: usize) -> u32 {
        self.leaf_nodes[r][i].map_or(0, |n| self.tree.depth(n))
    }

    /// Flat list of all occurrences as `(row, index)` pairs.
    pub fn occurrences(&self) -> Vec<(usize, usize)> {
        self.occ_annots
            .iter()
            .enumerate()
            .flat_map(|(r, occs)| (0..occs.len()).map(move |i| (r, i)))
            .collect()
    }

    /// Total occurrence count.
    pub fn num_occurrences(&self) -> usize {
        self.occ_annots.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::running_example;
    use provabs_relational::Tuple;
    use provabs_semiring::Monomial;

    #[test]
    fn binds_running_example() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.num_occurrences(), 6);
        // p1 is not in the Figure 3 tree: max lift 0. h1 is at depth 3.
        let p1 = fx.db.annotations().get("p1").unwrap();
        let h1 = fx.db.annotations().get("h1").unwrap();
        let row0 = b.row_occurrences(0).to_vec();
        let p1_idx = row0.iter().position(|&a| a == p1).unwrap();
        let h1_idx = row0.iter().position(|&a| a == h1).unwrap();
        assert_eq!(b.max_lift(0, p1_idx), 0);
        assert_eq!(b.max_lift(0, h1_idx), 3);
        assert_eq!(b.occurrences().len(), 6);
    }

    #[test]
    fn rejects_empty_example() {
        let fx = running_example();
        let empty = KExample::default();
        assert_eq!(
            Bound::new(&fx.db, &fx.tree, &empty).unwrap_err(),
            CoreError::EmptyExample
        );
    }

    #[test]
    fn rejects_unresolved_annotations() {
        let fx = running_example();
        let mut db = fx.db.clone();
        let ghost = db.intern_label("ghost");
        let ex = KExample::new([(Tuple::parse(&["1"]), Monomial::from_annots([ghost]))]);
        assert_eq!(
            Bound::new(&db, &fx.tree, &ex).unwrap_err(),
            CoreError::UnresolvedAnnotation(ghost)
        );
    }
}
