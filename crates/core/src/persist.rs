//! Persisting search state across process lifetimes.
//!
//! The incremental search ([`find_optimal_abstraction_incremental`]) can
//! seed itself from a previous optimum — but only within one process, since
//! [`BestAbstraction`] lives in memory. This module serializes a
//! [`BestAbstraction`] through the storage [`Vfs`] so a *restarted* process
//! can warm-start from the incumbent its predecessor found: encode on
//! shutdown with [`save_best`], decode on startup with [`load_best`], and
//! hand the result to the incremental search.
//!
//! The format is checksummed and fail-closed like every other durable
//! artifact ([`checksum64`] over the whole record): a flipped bit loads as
//! [`StorageError::Corrupt`], never as a silently wrong incumbent. A loaded
//! abstraction that no longer fits the current [`Bound`] (the database
//! changed shape across the restart) is the incremental search's problem —
//! it re-validates and simply drops ill-fitting warm starts — so loading
//! deliberately performs structural validation only.
//!
//! LOI values are `f64`s; they round-trip bit-exactly via
//! [`f64::to_bits`], preserving the determinism contract of the storage
//! layer.
//!
//! [`find_optimal_abstraction_incremental`]: crate::search::find_optimal_abstraction_incremental
//! [`Bound`]: crate::Bound

use crate::search::BestAbstraction;
use crate::Abstraction;
use provabs_relational::storage::{
    checksum64, ByteReader, ByteWriter, SharedVfs, StorageError, Vfs,
};

const MAGIC: u32 = 0x5041_4253; // "PABS"
const FORMAT_VERSION: u32 = 1;

/// Serializes `best` to a checksummed byte record.
pub fn encode_best(best: &BestAbstraction) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(MAGIC);
    w.u32(FORMAT_VERSION);
    w.u64(best.loi.to_bits());
    w.u64(best.privacy as u64);
    w.u32(best.edges_used);
    w.u32(best.abstraction.lifts.len() as u32);
    for row in &best.abstraction.lifts {
        w.u32(row.len() as u32);
        for &l in row {
            w.u32(l);
        }
    }
    let mut bytes = w.into_bytes();
    let sum = checksum64(u64::from(MAGIC), &bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
    bytes
}

/// Decodes a record written by [`encode_best`], fail-closed: checksum
/// mismatches, truncation, trailing bytes, and impossible counts all
/// surface as [`StorageError::Corrupt`].
pub fn decode_best(bytes: &[u8]) -> Result<BestAbstraction, StorageError> {
    if bytes.len() < 8 {
        return Err(StorageError::Corrupt(
            "search-state record shorter than its checksum".into(),
        ));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let want = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if checksum64(u64::from(MAGIC), body) != want {
        return Err(StorageError::Corrupt(
            "search-state checksum mismatch".into(),
        ));
    }
    let mut r = ByteReader::new(body);
    if r.u32()? != MAGIC {
        return Err(StorageError::Corrupt("search-state magic mismatch".into()));
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(StorageError::Corrupt(format!(
            "unsupported search-state format version {version}"
        )));
    }
    let loi = f64::from_bits(r.u64()?);
    let privacy = usize::try_from(r.u64()?)
        .map_err(|_| StorageError::Corrupt("privacy count overflows usize".into()))?;
    let edges_used = r.u32()?;
    let nrows = r.u32()? as usize;
    let mut lifts = Vec::with_capacity(nrows.min(r.remaining() / 4));
    for _ in 0..nrows {
        let len = r.u32()? as usize;
        let mut row = Vec::with_capacity(len.min(r.remaining() / 4));
        for _ in 0..len {
            row.push(r.u32()?);
        }
        lifts.push(row);
    }
    r.expect_end()?;
    let best = BestAbstraction {
        abstraction: Abstraction { lifts },
        loi,
        privacy,
        edges_used,
    };
    if best.abstraction.edges_used() != best.edges_used {
        return Err(StorageError::Corrupt(format!(
            "search-state edge count {} disagrees with its lifts ({})",
            best.edges_used,
            best.abstraction.edges_used()
        )));
    }
    Ok(best)
}

/// Writes `best` durably to `file`: full record, truncate to length, sync.
pub fn save_best(vfs: &SharedVfs, file: &str, best: &BestAbstraction) -> Result<(), StorageError> {
    let bytes = encode_best(best);
    let mut v = lock(vfs)?;
    v.write_at(file, 0, &bytes)?;
    v.truncate(file, bytes.len() as u64)?;
    v.sync(file)
}

/// Loads the record `save_best` wrote, or [`StorageError::NotFound`] /
/// [`StorageError::Corrupt`] — never a partial or damaged incumbent.
pub fn load_best(vfs: &SharedVfs, file: &str) -> Result<BestAbstraction, StorageError> {
    let mut v = lock(vfs)?;
    if !v.exists(file) {
        return Err(StorageError::NotFound(file.to_owned()));
    }
    let len = usize::try_from(v.file_len(file)?)
        .map_err(|_| StorageError::Corrupt("search-state file overflows usize".into()))?;
    let mut bytes = vec![0u8; len];
    let got = v.read_at(file, 0, &mut bytes)?;
    if got != len {
        return Err(StorageError::Corrupt(format!(
            "search-state short read: {got} of {len} bytes"
        )));
    }
    drop(v);
    decode_best(&bytes)
}

fn lock(
    vfs: &SharedVfs,
) -> Result<std::sync::MutexGuard<'_, dyn Vfs + Send + 'static>, StorageError> {
    vfs.lock()
        .map_err(|_| StorageError::Io("VFS lock poisoned".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::running_example;
    use crate::privacy::{PrivacyCache, PrivacyConfig};
    use crate::search::{
        find_optimal_abstraction_incremental, find_optimal_abstraction_with_cache, SearchConfig,
    };
    use crate::Bound;
    use provabs_relational::storage::{shared, MemVfs};

    fn search_cfg() -> SearchConfig {
        SearchConfig {
            privacy: PrivacyConfig {
                threshold: 2,
                ..Default::default()
            },
            parallelism: Some(1),
            ..Default::default()
        }
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let best = BestAbstraction {
            abstraction: Abstraction {
                lifts: vec![vec![1, 0, 2], vec![], vec![3]],
            },
            loi: 15f64.ln(),
            privacy: 7,
            edges_used: 6,
        };
        let back = decode_best(&encode_best(&best)).unwrap();
        assert_eq!(back.abstraction.lifts, best.abstraction.lifts);
        assert_eq!(back.loi.to_bits(), best.loi.to_bits(), "bit-exact LOI");
        assert_eq!(back.privacy, best.privacy);
        assert_eq!(back.edges_used, best.edges_used);
    }

    #[test]
    fn every_byte_flip_fails_closed() {
        let best = BestAbstraction {
            abstraction: Abstraction {
                lifts: vec![vec![1, 2], vec![0]],
            },
            loi: 2.5,
            privacy: 3,
            edges_used: 3,
        };
        let bytes = encode_best(&best);
        for off in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[off] ^= 0x10;
            assert!(
                matches!(decode_best(&bad), Err(StorageError::Corrupt(_))),
                "flip at {off} went unnoticed"
            );
        }
        // Truncation too.
        assert!(matches!(
            decode_best(&bytes[..bytes.len() - 1]),
            Err(StorageError::Corrupt(_))
        ));
    }

    /// The cross-process warm restart: the first "process" searches cold
    /// and saves its optimum; the second loads it from storage and must
    /// both use it (`warm_start_used`) and land on the same optimum.
    #[test]
    fn warm_restart_across_process_lifetimes() {
        let vfs = shared(MemVfs::new());
        let fx = running_example();
        let cfg = search_cfg();
        let cold_best = {
            // Process 1: cold search, persist the incumbent, exit.
            let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
            let cold = find_optimal_abstraction_with_cache(&b, &cfg, &PrivacyCache::new());
            assert!(!cold.stats.warm_start_used);
            let best = cold.best.unwrap();
            save_best(&vfs, "search.state", &best).unwrap();
            best
        };
        // Process 2: fresh caches, incumbent loaded from storage.
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let loaded = load_best(&vfs, "search.state").unwrap();
        assert_eq!(loaded.loi.to_bits(), cold_best.loi.to_bits());
        let warm =
            find_optimal_abstraction_incremental(&b, &cfg, &PrivacyCache::new(), Some(&loaded));
        assert!(
            warm.stats.warm_start_used,
            "the persisted incumbent must seed the restarted search"
        );
        let warm_best = warm.best.unwrap();
        assert!((warm_best.loi - cold_best.loi).abs() < 1e-12);
        assert_eq!(warm_best.privacy, cold_best.privacy);
        assert_eq!(warm_best.edges_used, cold_best.edges_used);
    }

    #[test]
    fn loading_nothing_is_not_found_and_flips_are_corrupt() {
        let vfs = shared(MemVfs::new());
        assert!(matches!(
            load_best(&vfs, "absent"),
            Err(StorageError::NotFound(_))
        ));
        let best = BestAbstraction {
            abstraction: Abstraction {
                lifts: vec![vec![1]],
            },
            loi: 1.0,
            privacy: 2,
            edges_used: 1,
        };
        save_best(&vfs, "s", &best).unwrap();
        {
            let mut v = vfs.lock().unwrap();
            let len = v.file_len("s").unwrap();
            let mut buf = vec![0u8; len as usize];
            v.read_at("s", 0, &mut buf).unwrap();
            buf[5] ^= 0x80;
            v.write_at("s", 0, &buf).unwrap();
        }
        assert!(matches!(
            load_best(&vfs, "s"),
            Err(StorageError::Corrupt(_))
        ));
    }
}
