//! # provabs-core — optimizing the privacy/utility trade-off of provenance
//!
//! The primary contribution of *"On Optimizing the Trade-off between Privacy
//! and Utility in Data Provenance"* (Deutch, Frankenthal, Gilad, Moskovitch —
//! SIGMOD 2021), implemented on top of the `provabs` substrates:
//!
//! * [`Bound`] — a K-example bound to a compatible abstraction tree and its
//!   database (occurrence-level bookkeeping for Def. 3.1).
//! * [`Abstraction`] / [`AbsExample`] — abstraction functions and abstracted
//!   K-examples (§3.1).
//! * [`concretize`] — concretization sets and their cardinality (Prop. 3.5).
//! * [`loi`] — loss of information as concretization-set entropy (§3.2),
//!   uniform and weighted distributions.
//! * [`privacy`] — Algorithm 1: the number of CIM queries of an abstracted
//!   K-example, with the paper's row-by-row processing, connectivity
//!   filtering and caching (§4.1–4.2), each toggleable for the Figure 19
//!   ablation.
//! * [`search`] — Algorithm 2: optimal abstraction search with sorted
//!   enumeration and LOI-before-privacy, plus a sound monotone
//!   lower-bound early termination.
//! * [`dual`] — the dual problem (max privacy under an LOI budget).
//! * [`persist`] — checksummed serialization of search incumbents through
//!   the storage layer, for warm restarts across process lifetimes.
//! * [`compression`] — the provenance-compression baseline of \[24\]
//!   (SIGMOD 2019) driven to a privacy threshold, used by Figure 18.
//! * [`fixtures`] — the paper's running example (Figures 1–6) as a reusable
//!   fixture.
//!
//! # Quickstart
//!
//! ```
//! use provabs_core::{fixtures, search, privacy::PrivacyConfig, search::SearchConfig};
//!
//! let fx = fixtures::running_example();
//! let bound = provabs_core::Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
//! let cfg = SearchConfig {
//!     privacy: PrivacyConfig { threshold: 2, ..Default::default() },
//!     ..Default::default()
//! };
//! let out = search::find_optimal_abstraction(&bound, &cfg);
//! let best = out.best.expect("a privacy-2 abstraction exists");
//! // Example 3.15: the optimal abstraction has loss of information ln 15.
//! assert!((best.loi - 15f64.ln()).abs() < 1e-9);
//! assert!(best.privacy >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abstraction;
mod bound;
pub mod compression;
pub mod concretize;
pub mod dual;
mod error;
pub mod fixtures;
pub mod loi;
pub mod persist;
pub mod privacy;
pub mod search;
mod sharded;

pub use abstraction::{AbsExample, AbsRow, Abstraction, Sym};
pub use bound::Bound;
pub use error::{CoreError, CoreResult};
pub use provabs_relational::PlanMode;
