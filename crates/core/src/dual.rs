//! The dual problem (§4, "The dual problem"): maximize privacy subject to a
//! loss-of-information budget `l_max`.
//!
//! Algorithm 2 is patched as the paper prescribes — track the best privacy
//! `p_best`, consider only abstractions within the budget, terminate once
//! every remaining bucket exceeds `l_max` — with one correction: the paper's
//! literal line-6 patch (`l < min(l_best, l_max)`) degenerates whenever the
//! identity abstraction already has positive privacy (`l_best` becomes 0 and
//! everything else is pruned, even though more abstraction usually yields
//! more privacy). We preserve the intent — avoid expensive privacy
//! evaluations that cannot improve the incumbent — by gating each privacy
//! computation at threshold `p_best + 1`, which Algorithm 1 rejects cheaply.

use crate::loi::LoiDistribution;
use crate::privacy::{compute_privacy, PrivacyCache, PrivacyConfig};
use crate::search::{AbstractionSpace, BestAbstraction, SearchOutcome, SearchStats};
use crate::Bound;

/// Configuration of the dual search.
#[derive(Debug, Clone)]
pub struct DualConfig {
    /// Privacy-evaluation settings. The `threshold` field is managed by the
    /// search itself (it tracks `p_best`).
    pub privacy: PrivacyConfig,
    /// The loss-of-information budget `l_max`.
    pub l_max: f64,
    /// Hard cap on abstractions enumerated.
    pub max_candidates: usize,
    /// The loss-of-information distribution.
    pub distribution: LoiDistribution,
}

impl Default for DualConfig {
    fn default() -> Self {
        Self {
            privacy: PrivacyConfig::default(),
            l_max: 3.0,
            max_candidates: 1_000_000,
            distribution: LoiDistribution::Uniform,
        }
    }
}

/// Finds an abstraction maximizing privacy among those with
/// `LOI ≤ l_max` (ties resolved toward smaller LOI, as in the paper's
/// patched Algorithm 2).
///
/// ```
/// use provabs_core::dual::{find_max_privacy_abstraction, DualConfig};
/// use provabs_core::{fixtures, Bound};
///
/// let fx = fixtures::running_example();
/// let bound = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
/// // Example 3.15 inverted: with an LOI budget of ln 15 the search can
/// // afford the A1_T abstraction, which reaches privacy 2.
/// let cfg = DualConfig { l_max: 15f64.ln() + 1e-9, ..Default::default() };
/// let best = find_max_privacy_abstraction(&bound, &cfg).best.unwrap();
/// assert!(best.privacy >= 2);
/// assert!(best.loi <= cfg.l_max);
/// ```
pub fn find_max_privacy_abstraction(bound: &Bound<'_>, cfg: &DualConfig) -> SearchOutcome {
    let space = AbstractionSpace::new(bound, &cfg.distribution);
    let mut stats = SearchStats::default();
    let cache = PrivacyCache::new();
    let mut best: Option<BestAbstraction> = None;
    let min_loi = space.min_loi_by_edges();
    'outer: for e in 0..=space.total_edges() {
        if min_loi[e as usize] > cfg.l_max {
            break; // every later bucket exceeds the budget (monotone)
        }
        let mut bucket: Vec<(f64, Vec<u32>)> = Vec::new();
        let complete = space.for_each_with_edges(e, &mut |lifts| {
            let loi = space.loi_of(lifts);
            if loi <= cfg.l_max {
                bucket.push((loi, lifts.to_vec()));
            }
            bucket.len() + stats.abstractions_enumerated < cfg.max_candidates
        });
        stats.truncated |= !complete;
        bucket.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        for (loi, lifts) in &bucket {
            stats.abstractions_enumerated += 1;
            stats.loi_evaluations += 1;
            let abs = space.to_abstraction(bound, lifts);
            let p_best = best.as_ref().map_or(0, |b| b.privacy);
            // Gate at p_best + 1: only an improvement updates the incumbent,
            // and Algorithm 1 rejects non-improving abstractions cheaply.
            let mut pcfg = cfg.privacy.clone();
            pcfg.threshold = p_best + 1;
            stats.privacy_evaluations += 1;
            let (ex, misses, hits) = bound.apply_abstraction_cached(&abs);
            let rows = ex.rows;
            stats.rows_abstracted += misses;
            stats.abs_cache_hits += hits;
            let out = compute_privacy(bound, &rows, &pcfg, &cache);
            stats.privacy_stats.absorb(&out.stats);
            if let Some(p) = out.privacy {
                best = Some(BestAbstraction {
                    edges_used: abs.edges_used(),
                    abstraction: abs,
                    loi: *loi,
                    privacy: p,
                });
            }
            if stats.abstractions_enumerated >= cfg.max_candidates {
                stats.truncated = true;
                break 'outer;
            }
        }
        if !complete {
            break;
        }
    }
    SearchOutcome { best, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::running_example;

    fn dual_with(l_max: f64) -> SearchOutcome {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        find_max_privacy_abstraction(
            &b,
            &DualConfig {
                l_max,
                ..Default::default()
            },
        )
    }

    #[test]
    fn budget_zero_gives_identity() {
        let out = dual_with(0.0);
        let best = out.best.unwrap();
        assert_eq!(best.loi, 0.0);
        assert_eq!(best.edges_used, 0);
        assert_eq!(best.privacy, 1); // the identity reveals only Qreal
    }

    #[test]
    fn budget_ln15_reaches_privacy_2() {
        // With l_max = ln 15 the A1_T abstraction is affordable.
        let out = dual_with(15f64.ln() + 1e-9);
        let best = out.best.unwrap();
        assert!(best.privacy >= 2, "privacy = {}", best.privacy);
        assert!(best.loi <= 15f64.ln() + 1e-9);
    }

    #[test]
    fn tight_budget_caps_privacy() {
        // A budget below ln 3 (the cheapest non-trivial lift is LinkedIn's
        // ln 3) only allows the identity.
        let out = dual_with(1.0);
        let best = out.best.unwrap();
        assert_eq!(best.privacy, 1);
        assert_eq!(best.edges_used, 0);
    }

    #[test]
    fn larger_budgets_never_reduce_privacy() {
        let mut last = 0;
        for l_max in [0.0, 1.5, 2.8, 4.0] {
            let p = dual_with(l_max).best.map_or(0, |b| b.privacy);
            assert!(p >= last, "privacy dropped at budget {l_max}");
            last = p;
        }
    }
}
