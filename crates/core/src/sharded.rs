//! A sharded concurrent hash map — the `Send + Sync` storage behind
//! [`PrivacyCache`](crate::privacy::PrivacyCache).
//!
//! Keys are routed to one of a fixed number of shards by their hash; each
//! shard is an independent `RwLock<HashMap>`. Concurrent readers of
//! different keys (and of the same key) never contend on a shard's write
//! lock, and writers of different shards proceed in parallel — which is
//! what the parallel abstraction search needs: privacy evaluations of
//! different candidates mostly touch disjoint concretizations, with heavy
//! read sharing on the ones they have in common.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::RwLock;

/// Shard count. A power of two so routing is a mask; 16 is plenty for the
/// worker counts the search uses (contention is per-key-group, not global).
const SHARDS: usize = 16;

/// A hash map split into independently locked shards.
#[derive(Debug)]
pub(crate) struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
    hasher: RandomState,
}

impl<K, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
        }
    }
}

impl<K: Eq + Hash, V: Clone> ShardedMap<K, V> {
    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h & (SHARDS - 1)]
    }

    /// A clone of the value under `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        self.get_borrowed(key)
    }

    /// [`ShardedMap::get`] through a borrowed form of the key (e.g. probe a
    /// `Vec<u32>`-keyed map with a `&[u32]`), so hot-path lookups allocate
    /// nothing. Sound because `Borrow` guarantees the borrowed form hashes
    /// and compares identically — shard routing and the inner map agree.
    pub fn get_borrowed<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let h = self.hasher.hash_one(key) as usize;
        self.shards[h & (SHARDS - 1)]
            .read()
            .expect("shard lock poisoned")
            .get(key)
            .cloned()
    }

    /// Inserts `value` under `key`. If another thread inserted first, the
    /// existing value wins (memoized computations are deterministic, so
    /// both values are equal anyway) and is returned.
    pub fn insert(&self, key: K, value: V) -> V {
        self.shard(&key)
            .write()
            .expect("shard lock poisoned")
            .entry(key)
            .or_insert(value)
            .clone()
    }

    /// Runs `f` on the value under `key` without cloning it, holding the
    /// shard read lock for the duration. Returns `None` when the key is
    /// absent. The closure must not touch the map (it runs under the lock).
    pub fn read<Q, R>(&self, key: &Q, f: impl FnOnce(&V) -> R) -> Option<R>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let h = self.hasher.hash_one(key) as usize;
        self.shards[h & (SHARDS - 1)]
            .read()
            .expect("shard lock poisoned")
            .get(key)
            .map(f)
    }

    /// Upserts in place: inserts `default()` when `key` is absent, then
    /// runs `f` on the value under the shard write lock. Unlike
    /// [`ShardedMap::insert`] this supports values that accumulate (e.g.
    /// version vectors) — racing writers serialize on the shard lock, so
    /// each sees the other's completed mutation.
    pub fn update<R>(&self, key: K, default: impl FnOnce() -> V, f: impl FnOnce(&mut V) -> R) -> R {
        let mut shard = self.shard(&key).write().expect("shard lock poisoned");
        f(shard.entry(key).or_insert_with(default))
    }

    /// Visits every entry, shard by shard, under shard read locks. The
    /// closure must not touch the map.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for shard in &self.shards {
            for (k, v) in shard.read().expect("shard lock poisoned").iter() {
                f(k, v);
            }
        }
    }

    /// Visits every entry mutably, shard by shard, under shard write
    /// locks. The closure must not touch the map.
    pub fn for_each_mut(&self, mut f: impl FnMut(&K, &mut V)) {
        for shard in &self.shards {
            for (k, v) in shard.write().expect("shard lock poisoned").iter_mut() {
                f(k, v);
            }
        }
    }

    /// Keeps only the entries whose key satisfies `f`, shard by shard.
    /// Writers of other shards proceed concurrently; the predicate runs
    /// under one shard's write lock at a time, so it must not touch the map.
    pub fn retain(&self, mut f: impl FnMut(&K) -> bool) {
        self.retain_kv(|k, _| f(k));
    }

    /// [`ShardedMap::retain`] with the value visible to the predicate —
    /// lets an interner collect the ids it evicts in one pass.
    pub fn retain_kv(&self, mut f: impl FnMut(&K, &V) -> bool) {
        for shard in &self.shards {
            shard
                .write()
                .expect("shard lock poisoned")
                .retain(|k, v| f(k, v));
        }
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").len())
            .sum()
    }

    /// Whether no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn insert_get_roundtrip() {
        let m: ShardedMap<String, usize> = ShardedMap::default();
        assert!(m.is_empty());
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get(&"a".into()), Some(1));
        assert_eq!(m.get(&"c".into()), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn first_insert_wins() {
        let m: ShardedMap<u32, u32> = ShardedMap::default();
        assert_eq!(m.insert(7, 70), 70);
        assert_eq!(m.insert(7, 71), 70);
        assert_eq!(m.get(&7), Some(70));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn retain_filters_across_shards() {
        let m: ShardedMap<usize, usize> = ShardedMap::default();
        for i in 0..64 {
            m.insert(i, i);
        }
        m.retain(|&k| k % 2 == 0);
        assert_eq!(m.len(), 32);
        assert_eq!(m.get(&2), Some(2));
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn update_accumulates_in_place() {
        let m: ShardedMap<u32, Vec<u32>> = ShardedMap::default();
        for i in 0..5 {
            m.update(1, Vec::new, |v| v.push(i));
        }
        assert_eq!(m.read(&1, |v| v.len()), Some(5));
        assert_eq!(m.read(&2, |v| v.len()), None);
        let mut total = 0;
        m.for_each(|_, v| total += v.len());
        assert_eq!(total, 5);
        m.for_each_mut(|_, v| v.retain(|&x| x % 2 == 0));
        assert_eq!(m.get(&1), Some(vec![0, 2, 4]));
    }

    #[test]
    fn concurrent_inserts_land() {
        let m: ShardedMap<usize, usize> = ShardedMap::default();
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..8 {
                let (m, hits) = (&m, &hits);
                s.spawn(move || {
                    for i in 0..100 {
                        m.insert(i, i * 10);
                        if m.get(&((i + t) % 100)).is_some() {
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(m.len(), 100);
        assert!(hits.load(Ordering::Relaxed) > 0);
        for i in 0..100 {
            assert_eq!(m.get(&i), Some(i * 10));
        }
    }
}
