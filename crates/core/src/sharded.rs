//! A sharded concurrent hash map — the `Send + Sync` storage behind
//! [`PrivacyCache`](crate::privacy::PrivacyCache).
//!
//! Keys are routed to one of a fixed number of shards by their hash; each
//! shard is an independent `RwLock<HashMap>`. Concurrent readers of
//! different keys (and of the same key) never contend on a shard's write
//! lock, and writers of different shards proceed in parallel — which is
//! what the parallel abstraction search needs: privacy evaluations of
//! different candidates mostly touch disjoint concretizations, with heavy
//! read sharing on the ones they have in common.

use provabs_sched::sync::RwLock;
use std::borrow::Borrow;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, Hash};

/// Shard count. A power of two so routing is a mask; 16 is plenty for the
/// worker counts the search uses (contention is per-key-group, not global).
const SHARDS: usize = 16;

/// Shard routing uses an *unkeyed* SipHash (`DefaultHasher::default`), not
/// `RandomState`: routing must be a pure function of the key bytes so the
/// schedule-enumeration harness sees an identical lock-acquisition sequence
/// — and hence an identical, gateable schedule count — on every run of a
/// scenario, on every machine. HashDoS keying buys nothing here (which of 16
/// in-process locks a key lands on is not an attack surface).
type ShardHasher = BuildHasherDefault<DefaultHasher>;

/// A hash map split into independently locked shards.
///
/// The shard locks are `provabs_sched` shims: plain `std` rwlocks in
/// production, scheduling points under the model checker. All shards share
/// the `core.sharded.shard` lock-order label — the map acquires one shard at
/// a time, never two, so the label can never appear on both sides of a
/// held-while-acquiring edge from this type itself.
#[derive(Debug)]
pub(crate) struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
    hasher: ShardHasher,
}

impl<K, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::labeled("core.sharded.shard")
    }
}

impl<K, V> ShardedMap<K, V> {
    /// A map whose shard locks carry `label` in schedule traces and in the
    /// lock-order audit graph. Maps that nest (one acquired while a shard of
    /// another is held — e.g. the privacy cache's value stores reading the
    /// retirement fences from inside an `update`) must use distinct labels
    /// so the audit sees the hierarchy instead of a self-edge.
    pub fn labeled(label: &'static str) -> Self {
        Self {
            shards: (0..SHARDS)
                .map(|_| RwLock::labeled(label, HashMap::new()))
                .collect(),
            hasher: ShardHasher::default(),
        }
    }
}

impl<K: Eq + Hash, V: Clone> ShardedMap<K, V> {
    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h & (SHARDS - 1)]
    }

    /// A clone of the value under `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        self.get_borrowed(key)
    }

    /// [`ShardedMap::get`] through a borrowed form of the key (e.g. probe a
    /// `Vec<u32>`-keyed map with a `&[u32]`), so hot-path lookups allocate
    /// nothing. Sound because `Borrow` guarantees the borrowed form hashes
    /// and compares identically — shard routing and the inner map agree.
    pub fn get_borrowed<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let h = self.hasher.hash_one(key) as usize;
        self.shards[h & (SHARDS - 1)]
            .read()
            .expect("shard lock poisoned")
            .get(key)
            .cloned()
    }

    /// Inserts `value` under `key`. If another thread inserted first, the
    /// existing value wins (memoized computations are deterministic, so
    /// both values are equal anyway) and is returned.
    pub fn insert(&self, key: K, value: V) -> V {
        self.shard(&key)
            .write()
            .expect("shard lock poisoned")
            .entry(key)
            .or_insert(value)
            .clone()
    }

    /// Runs `f` on the value under `key` without cloning it, holding the
    /// shard read lock for the duration. Returns `None` when the key is
    /// absent. The closure must not touch the map (it runs under the lock).
    pub fn read<Q, R>(&self, key: &Q, f: impl FnOnce(&V) -> R) -> Option<R>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let h = self.hasher.hash_one(key) as usize;
        self.shards[h & (SHARDS - 1)]
            .read()
            .expect("shard lock poisoned")
            .get(key)
            .map(f)
    }

    /// Upserts in place: inserts `default()` when `key` is absent, then
    /// runs `f` on the value under the shard write lock. Unlike
    /// [`ShardedMap::insert`] this supports values that accumulate (e.g.
    /// version vectors) — racing writers serialize on the shard lock, so
    /// each sees the other's completed mutation.
    pub fn update<R>(&self, key: K, default: impl FnOnce() -> V, f: impl FnOnce(&mut V) -> R) -> R {
        let mut shard = self.shard(&key).write().expect("shard lock poisoned");
        f(shard.entry(key).or_insert_with(default))
    }

    /// Visits every entry, shard by shard, under shard read locks. The
    /// closure must not touch the map.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for shard in &self.shards {
            for (k, v) in shard.read().expect("shard lock poisoned").iter() {
                f(k, v);
            }
        }
    }

    /// Visits every entry mutably, shard by shard, under shard write
    /// locks. The closure must not touch the map.
    pub fn for_each_mut(&self, mut f: impl FnMut(&K, &mut V)) {
        for shard in &self.shards {
            for (k, v) in shard.write().expect("shard lock poisoned").iter_mut() {
                f(k, v);
            }
        }
    }

    /// Keeps only the entries whose key satisfies `f`, shard by shard.
    /// Writers of other shards proceed concurrently; the predicate runs
    /// under one shard's write lock at a time, so it must not touch the map.
    pub fn retain(&self, mut f: impl FnMut(&K) -> bool) {
        self.retain_kv(|k, _| f(k));
    }

    /// [`ShardedMap::retain`] with the value visible to the predicate —
    /// lets an interner collect the ids it evicts in one pass.
    pub fn retain_kv(&self, mut f: impl FnMut(&K, &V) -> bool) {
        for shard in &self.shards {
            shard
                .write()
                .expect("shard lock poisoned")
                .retain(|k, v| f(k, v));
        }
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").len())
            .sum()
    }

    /// Whether no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn insert_get_roundtrip() {
        let m: ShardedMap<String, usize> = ShardedMap::default();
        assert!(m.is_empty());
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get(&"a".into()), Some(1));
        assert_eq!(m.get(&"c".into()), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn first_insert_wins() {
        let m: ShardedMap<u32, u32> = ShardedMap::default();
        assert_eq!(m.insert(7, 70), 70);
        assert_eq!(m.insert(7, 71), 70);
        assert_eq!(m.get(&7), Some(70));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn retain_filters_across_shards() {
        let m: ShardedMap<usize, usize> = ShardedMap::default();
        for i in 0..64 {
            m.insert(i, i);
        }
        m.retain(|&k| k % 2 == 0);
        assert_eq!(m.len(), 32);
        assert_eq!(m.get(&2), Some(2));
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn update_accumulates_in_place() {
        let m: ShardedMap<u32, Vec<u32>> = ShardedMap::default();
        for i in 0..5 {
            m.update(1, Vec::new, |v| v.push(i));
        }
        assert_eq!(m.read(&1, |v| v.len()), Some(5));
        assert_eq!(m.read(&2, |v| v.len()), None);
        let mut total = 0;
        m.for_each(|_, v| total += v.len());
        assert_eq!(total, 5);
        m.for_each_mut(|_, v| v.retain(|&x| x % 2 == 0));
        assert_eq!(m.get(&1), Some(vec![0, 2, 4]));
    }

    /// Model-checked: two writers inserting (one shared key, one distinct
    /// key each) racing a reader — across every schedule the first insert
    /// wins, reads are torn-free, and no shard is ever acquired while
    /// another shard is held (lock-order audit comes back acyclic).
    #[test]
    fn sched_insert_race_is_linearizable_across_all_schedules() {
        use provabs_sched as sched;
        let outcome = sched::explore_with(sched::Config::unbounded(), || {
            let m: std::sync::Arc<ShardedMap<u32, u32>> =
                std::sync::Arc::new(ShardedMap::default());
            let m1 = std::sync::Arc::clone(&m);
            let m2 = std::sync::Arc::clone(&m);
            let w1 = sched::thread::spawn(move || {
                m1.insert(7, 70);
                m1.insert(1, 10);
            });
            let w2 = sched::thread::spawn(move || {
                m2.insert(7, 71);
                m2.insert(2, 20);
            });
            // Reader: any observed value of key 7 is one of the two writes.
            if let Some(v) = m.get(&7) {
                assert!(v == 70 || v == 71, "torn read: {v}");
            }
            w1.join().unwrap();
            w2.join().unwrap();
            let v = m.get(&7).expect("key 7 present after both writers");
            assert!(v == 70 || v == 71);
            assert_eq!(m.get(&1), Some(10));
            assert_eq!(m.get(&2), Some(20));
            assert_eq!(m.len(), 3);
        });
        outcome.expect_clean();
        assert!(outcome.schedules >= 2, "outcome: {outcome:?}");
        assert!(
            outcome.lock_cycle().is_none(),
            "sharded map must be cycle-free: {:?}",
            outcome.lock_edges
        );
    }

    /// Model-checked: `update` accumulation racing `retain` never loses a
    /// completed mutation and never deadlocks, in any schedule.
    #[test]
    fn sched_update_vs_retain_has_no_lost_mutations() {
        use provabs_sched as sched;
        let outcome = sched::explore_with(sched::Config::unbounded(), || {
            let m: std::sync::Arc<ShardedMap<u32, Vec<u32>>> =
                std::sync::Arc::new(ShardedMap::default());
            m.update(1, Vec::new, |v| v.push(0));
            let m1 = std::sync::Arc::clone(&m);
            let t = sched::thread::spawn(move || {
                m1.update(1, Vec::new, |v| v.push(1));
            });
            m.retain(|&k| k == 1);
            t.join().unwrap();
            // retain keeps key 1, and the racing update must land exactly
            // once regardless of whether it ran before or after the retain.
            assert_eq!(m.get(&1), Some(vec![0, 1]));
        });
        outcome.expect_clean();
        assert!(outcome.lock_cycle().is_none());
    }

    #[test]
    fn concurrent_inserts_land() {
        let m: ShardedMap<usize, usize> = ShardedMap::default();
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..8 {
                let (m, hits) = (&m, &hits);
                s.spawn(move || {
                    for i in 0..100 {
                        m.insert(i, i * 10);
                        if m.get(&((i + t) % 100)).is_some() {
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(m.len(), 100);
        assert!(hits.load(Ordering::Relaxed) > 0);
        for i in 0..100 {
            assert_eq!(m.get(&i), Some(i * 10));
        }
    }
}
