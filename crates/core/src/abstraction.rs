//! Abstraction functions and abstracted K-examples (§3.1).

use crate::Bound;
use provabs_relational::Tuple;
use provabs_semiring::{AnnotId, AnnotRegistry};
use provabs_tree::NodeId;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A symbol of an abstracted provenance expression: either an original
/// annotation or an inner tree node standing for all leaves below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sym {
    /// An unabstracted annotation occurrence.
    Leaf(AnnotId),
    /// An abstracted occurrence: the tree node replacing the annotation.
    Abs(NodeId),
}

/// One row of an abstracted K-example.
///
/// The symbol list is shared (`Arc`): the search's memoized abstraction
/// application hands the same materialized row to every candidate that
/// abstracts the row's provenance identically, so cloning an `AbsRow` is a
/// reference bump, not a symbol-vector copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsRow {
    /// The (unchanged) output tuple.
    pub output: Tuple,
    /// The abstracted occurrence list.
    pub syms: Arc<Vec<Sym>>,
}

/// An abstracted K-example `Ã = A_T(Ex)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsExample {
    /// The rows, parallel to the original example.
    pub rows: Vec<AbsRow>,
}

impl AbsExample {
    /// Renders the abstracted example with labels from `reg` and the bound
    /// tree (for display in examples and the user-study harness).
    pub fn to_string_with(&self, bound: &Bound<'_>, reg: &AnnotRegistry) -> String {
        self.rows
            .iter()
            .map(|r| {
                let prov = r
                    .syms
                    .iter()
                    .map(|s| match s {
                        Sym::Leaf(a) => reg.name(*a).to_owned(),
                        Sym::Abs(n) => reg.name(bound.tree.label(*n)).to_owned(),
                    })
                    .collect::<Vec<_>>()
                    .join("*");
                format!("{}  |  {}", r.output, prov)
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// An occurrence-level abstraction function `A_T` over a [`Bound`]
/// K-example (Def. 3.1 with explicit occurrence indexes).
///
/// `lifts[r][i]` is the number of tree edges occurrence `(r, i)` is lifted:
/// 0 keeps the annotation, `d` replaces it by its `d`-th ancestor. Lifting a
/// non-leaf occurrence is invalid (checked by [`Abstraction::validate`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Abstraction {
    /// Per-row, per-occurrence lifts.
    pub lifts: Vec<Vec<u32>>,
}

impl Abstraction {
    /// The identity abstraction of `bound` (no occurrence lifted).
    pub fn identity(bound: &Bound<'_>) -> Self {
        Self {
            lifts: (0..bound.num_rows())
                .map(|r| vec![0; bound.row_occurrences(r).len()])
                .collect(),
        }
    }

    /// Checks shape and lift bounds against `bound`.
    pub fn validate(&self, bound: &Bound<'_>) -> bool {
        self.lifts.len() == bound.num_rows()
            && self.lifts.iter().enumerate().all(|(r, row)| {
                row.len() == bound.row_occurrences(r).len()
                    && row
                        .iter()
                        .enumerate()
                        .all(|(i, &l)| l <= bound.max_lift(r, i))
            })
    }

    /// The abstraction-tree edges used: `Σ lifts` (the paper's "optimal
    /// abstraction size" metric, Figures 10/13/15).
    pub fn edges_used(&self) -> u32 {
        self.lifts.iter().flatten().sum()
    }

    /// Number of occurrences actually abstracted (lift > 0).
    pub fn num_abstracted(&self) -> usize {
        self.lifts.iter().flatten().filter(|&&l| l > 0).count()
    }

    /// The target of occurrence `(r, i)`: `None` when kept, `Some(node)`
    /// when abstracted to an ancestor.
    pub fn target(&self, bound: &Bound<'_>, r: usize, i: usize) -> Option<NodeId> {
        let lift = self.lifts[r][i];
        if lift == 0 {
            return None;
        }
        let leaf = bound.leaf_node(r, i)?;
        bound.tree.ancestor_at(leaf, lift)
    }

    /// Materializes the symbol list of row `r` (uncached reference path —
    /// the memoized twin is [`Bound::apply_abstraction_cached`]).
    pub(crate) fn row_syms(&self, bound: &Bound<'_>, r: usize) -> Vec<Sym> {
        bound
            .row_occurrences(r)
            .iter()
            .enumerate()
            .map(|(i, &a)| match self.target(bound, r, i) {
                Some(node) => Sym::Abs(node),
                None => Sym::Leaf(a),
            })
            .collect()
    }

    /// Applies the abstraction, producing `A_T(Ex)`.
    pub fn apply(&self, bound: &Bound<'_>) -> AbsExample {
        AbsExample {
            rows: (0..bound.num_rows())
                .map(|r| AbsRow {
                    output: bound.example.rows[r].output.clone(),
                    syms: Arc::new(self.row_syms(bound, r)),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::running_example;
    use crate::Bound;

    fn lift_named(bound: &Bound<'_>, abs: &mut Abstraction, name: &str, lift: u32) {
        let id = bound.db.annotations().get(name).unwrap();
        for r in 0..bound.num_rows() {
            for (i, &a) in bound.row_occurrences(r).iter().enumerate() {
                if a == id {
                    abs.lifts[r][i] = lift;
                }
            }
        }
    }

    #[test]
    fn identity_keeps_everything() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let abs = Abstraction::identity(&b);
        assert!(abs.validate(&b));
        assert_eq!(abs.edges_used(), 0);
        assert_eq!(abs.num_abstracted(), 0);
        let ae = abs.apply(&b);
        assert!(ae
            .rows
            .iter()
            .flat_map(|r| r.syms.iter())
            .all(|s| matches!(s, Sym::Leaf(_))));
    }

    #[test]
    fn a1t_produces_exabs1() {
        // A1_T: h1 -> Facebook, h2 -> LinkedIn (Figure 4 / Figure 5).
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let mut abs = Abstraction::identity(&b);
        lift_named(&b, &mut abs, "h1", 1);
        lift_named(&b, &mut abs, "h2", 1);
        assert!(abs.validate(&b));
        assert_eq!(abs.edges_used(), 2);
        let ae = abs.apply(&b);
        let shown = ae.to_string_with(&b, fx.db.annotations());
        assert!(shown.contains("Facebook_src"), "{shown}");
        assert!(shown.contains("LinkedIn_src"), "{shown}");
        assert!(shown.contains("p1"), "{shown}");
    }

    #[test]
    fn lift_bounds_enforced() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let mut abs = Abstraction::identity(&b);
        // p1 is not in the tree: any positive lift is invalid.
        lift_named(&b, &mut abs, "p1", 1);
        assert!(!abs.validate(&b));
        let mut abs2 = Abstraction::identity(&b);
        // h1 sits at depth 3; lift 4 exceeds the chain.
        lift_named(&b, &mut abs2, "h1", 4);
        assert!(!abs2.validate(&b));
    }

    #[test]
    fn target_resolves_ancestors() {
        let fx = running_example();
        let b = Bound::new(&fx.db, &fx.tree, &fx.exreal).unwrap();
        let mut abs = Abstraction::identity(&b);
        lift_named(&b, &mut abs, "h1", 2);
        let h1 = fx.db.annotations().get("h1").unwrap();
        let (r, i) = (0..b.num_rows())
            .flat_map(|r| (0..b.row_occurrences(r).len()).map(move |i| (r, i)))
            .find(|&(r, i)| b.row_occurrences(r)[i] == h1)
            .unwrap();
        let node = abs.target(&b, r, i).unwrap();
        assert_eq!(
            fx.tree.label(node),
            fx.db.annotations().get("SocialNetwork").unwrap()
        );
    }
}
