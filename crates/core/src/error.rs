//! Error types of the core crate.

use provabs_semiring::AnnotId;
use std::fmt;

/// Errors raised while binding or abstracting K-examples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The abstraction tree is not compatible with the database: an inner
    /// label tags a tuple (violates Def. 2.6).
    IncompatibleTree,
    /// An annotation of the K-example does not tag any database tuple.
    UnresolvedAnnotation(AnnotId),
    /// The K-example has no rows.
    EmptyExample,
    /// A configured resource limit was exceeded.
    LimitExceeded(&'static str),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::IncompatibleTree => {
                write!(
                    f,
                    "abstraction tree incompatible with the database (inner label tags a tuple)"
                )
            }
            CoreError::UnresolvedAnnotation(a) => {
                write!(f, "annotation {a} does not tag a database tuple")
            }
            CoreError::EmptyExample => write!(f, "K-example has no rows"),
            CoreError::LimitExceeded(what) => write!(f, "limit exceeded: {what}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Result alias for [`CoreError`].
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CoreError::IncompatibleTree
            .to_string()
            .contains("incompatible"));
        assert!(CoreError::UnresolvedAnnotation(AnnotId(3))
            .to_string()
            .contains("x3"));
        assert!(CoreError::LimitExceeded("concretizations")
            .to_string()
            .contains("concretizations"));
    }
}
