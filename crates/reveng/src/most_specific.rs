//! The consistent-query frontier: most-specific queries per alignment.

use crate::alignment::{expansions_of_row, for_each_alignment, rows_alignable};
use crate::canonical::{canonical_cq, canonical_key};
use provabs_relational::{Atom, ConcreteRow, Cq, Term, Value, VarId};
use provabs_semiring::SemiringKind;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Options for [`find_consistent_queries`].
#[derive(Debug, Clone)]
pub struct RevOptions {
    /// The provenance semiring of the K-example. `N[X]` and `B[X]` require
    /// exact occurrence bijections; `Why(X)`/`Trio(X)`/`PosBool(X)` allow
    /// repeated atom→tuple mappings via bounded expansion.
    pub semiring: SemiringKind,
    /// Cap on the number of alignments examined per call (self-joins make
    /// alignments factorial). When hit, the frontier is truncated — counts
    /// derived from it become lower bounds.
    pub max_alignments: usize,
    /// For the exponent-dropping semirings: how many extra units of degree
    /// beyond the support size to try when expanding (`Table 4`, red cell).
    pub max_expansion_extra: u32,
    /// Keep only connected queries.
    pub connected_only: bool,
}

impl Default for RevOptions {
    fn default() -> Self {
        Self {
            semiring: SemiringKind::NX,
            max_alignments: 100_000,
            max_expansion_extra: 1,
            connected_only: false,
        }
    }
}

/// Finds the **candidate frontier** of consistent queries w.r.t. a concrete
/// K-example (Def. 3.9): for every alignment of the rows' occurrences, the
/// most-specific consistent query — constants wherever the aligned value
/// vector is uniform, one shared variable per distinct non-uniform vector.
///
/// Every consistent query `Q` contains (under the semiring's containment
/// order) the frontier query of the alignment induced by `Q`'s derivations,
/// so the frontier's minimal elements are exactly the minimal consistent
/// queries. Queries are returned in canonical form, deduplicated, sorted by
/// canonical key.
///
/// Returns an empty vector when no consistent CQ exists (e.g. rows with
/// different relation signatures — a UCQ may still be consistent, see
/// [`crate::ucq`]).
pub fn find_consistent_queries(rows: &[ConcreteRow], opts: &RevOptions) -> Vec<Cq> {
    let mut out: BTreeMap<String, Cq> = BTreeMap::new();
    if rows.is_empty() {
        return Vec::new();
    }
    // All outputs must share an arity.
    let arity = rows[0].output.arity();
    if rows.iter().any(|r| r.output.arity() != arity) {
        return Vec::new();
    }
    if opts.semiring.keeps_exponents() {
        collect_from_rows(rows, opts, &mut out);
    } else {
        // Exponent-dropping semirings: normalize rows to their support and
        // try increasing common degrees with expansions.
        let supports: Vec<ConcreteRow> = rows.iter().map(support_row).collect();
        let min_degree = supports
            .iter()
            .map(|r| r.occurrences.len())
            .max()
            .unwrap_or(0);
        for extra in 0..=opts.max_expansion_extra as usize {
            let d = min_degree + extra;
            // Cartesian product of per-row degree-d expansions.
            let per_row: Vec<Vec<ConcreteRow>> =
                supports.iter().map(|r| expansions_of_row(r, d)).collect();
            if per_row.iter().any(Vec::is_empty) {
                continue;
            }
            let mut choice: Vec<ConcreteRow> = per_row.iter().map(|v| v[0].clone()).collect();
            expand_product(&per_row, 0, &mut choice, &mut |expanded| {
                collect_from_rows(expanded, opts, &mut out);
            });
        }
    }
    let mut queries: Vec<Cq> = out.into_values().collect();
    if opts.connected_only {
        queries.retain(Cq::is_connected);
    }
    queries
}

fn expand_product(
    per_row: &[Vec<ConcreteRow>],
    i: usize,
    choice: &mut Vec<ConcreteRow>,
    f: &mut impl FnMut(&[ConcreteRow]),
) {
    if i == per_row.len() {
        f(choice);
        return;
    }
    for opt in &per_row[i] {
        choice[i] = opt.clone();
        expand_product(per_row, i + 1, choice, f);
    }
}

fn support_row(row: &ConcreteRow) -> ConcreteRow {
    let mut seen = std::collections::HashSet::new();
    ConcreteRow {
        output: row.output.clone(),
        occurrences: row
            .occurrences
            .iter()
            .filter(|(a, _, _)| seen.insert(*a))
            .cloned()
            .collect(),
    }
}

fn collect_from_rows(rows: &[ConcreteRow], opts: &RevOptions, out: &mut BTreeMap<String, Cq>) {
    if !rows_alignable(rows) {
        return;
    }
    let _complete = for_each_alignment(rows, opts.max_alignments, |alignment| {
        if let Some(q) = most_specific_query(rows, &alignment.per_row) {
            let canon = canonical_cq(&q);
            out.entry(canonical_key(&canon)).or_insert(canon);
        }
    });
}

/// Builds the most-specific consistent query of one alignment, or `None` if
/// a non-uniform head column has no matching body value vector (the head
/// variable would not appear in the body).
pub(crate) fn most_specific_query(rows: &[ConcreteRow], per_row: &[Vec<usize>]) -> Option<Cq> {
    let n_slots = rows[0].occurrences.len();
    let n_rows = rows.len();
    // Assign terms by value vector.
    let mut vectors: HashMap<Vec<Value>, Term> = HashMap::new();
    let mut next_var = 0u32;
    let mut term_for = |vec: Vec<Value>, next_var: &mut u32| -> Term {
        if vec.iter().all(|v| v == &vec[0]) {
            return Term::Const(vec[0].clone());
        }
        vectors
            .entry(vec)
            .or_insert_with(|| {
                let t = Term::Var(VarId(*next_var));
                *next_var += 1;
                t
            })
            .clone()
    };
    let mut body = Vec::with_capacity(n_slots);
    for (slot, occ) in rows[0].occurrences.iter().enumerate() {
        let rel = occ.1;
        let arity = occ.2.arity();
        let mut terms = Vec::with_capacity(arity);
        for pos in 0..arity {
            let vec: Vec<Value> = (0..n_rows)
                .map(|j| rows[j].occurrences[per_row[j][slot]].2[pos].clone())
                .collect();
            terms.push(term_for(vec, &mut next_var));
        }
        body.push(Atom { rel, terms });
    }
    let mut head = Vec::with_capacity(rows[0].output.arity());
    for col in 0..rows[0].output.arity() {
        let vec: Vec<Value> = (0..n_rows).map(|j| rows[j].output[col].clone()).collect();
        if vec.iter().all(|v| v == &vec[0]) {
            head.push(Term::Const(vec[0].clone()));
        } else {
            // Must reuse an existing body vector: head vars appear in body.
            match vectors.get(&vec) {
                Some(t) => head.push(t.clone()),
                None => return None,
            }
        }
    }
    Some(Cq::new(head, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use provabs_relational::{eval_cq, parse_cq, Database, KExample, Tuple};
    use provabs_semiring::Monomial;

    /// The Figure 1 database of the paper.
    fn figure1_db() -> Database {
        let mut db = Database::new();
        let interests = db.add_relation("Interests", &["pid", "interest", "source"]);
        let hobbies = db.add_relation("Hobbies", &["pid", "hobby", "source"]);
        let persons = db.add_relation("Person", &["pid", "name", "age"]);
        for (a, f) in [
            ("i1", ["1", "Music", "WikiLeaks"]),
            ("i2", ["2", "Music", "Facebook"]),
            ("i3", ["3", "Music", "LinkedIn"]),
            ("i4", ["1", "Parties", "WikiLeaks"]),
            ("i5", ["2", "Parties", "Facebook"]),
            ("i6", ["4", "Movies", "WikiLeaks"]),
        ] {
            db.insert_str(interests, a, &f);
        }
        for (a, f) in [
            ("h1", ["1", "Dance", "Facebook"]),
            ("h2", ["2", "Dance", "LinkedIn"]),
            ("h3", ["4", "Dance", "Facebook"]),
            ("h4", ["1", "Trips", "Facebook"]),
            ("h5", ["2", "Trips", "LinkedIn"]),
            ("h6", ["3", "Trips", "WikiLeaks"]),
        ] {
            db.insert_str(hobbies, a, &f);
        }
        db.insert_str(persons, "p1", &["1", "James T", "27"]);
        db.insert_str(persons, "p2", &["2", "Brenda P", "31"]);
        db.build_indexes();
        db
    }

    fn rows_for(db: &Database, pairs: &[(&str, &[&str])]) -> Vec<ConcreteRow> {
        let ex = KExample::new(pairs.iter().map(|(out, annots)| {
            (
                Tuple::parse(&[out]),
                Monomial::from_annots(annots.iter().map(|a| db.annotations().get(a).unwrap())),
            )
        }));
        ex.resolve(db).unwrap()
    }

    #[test]
    fn recovers_qreal_from_exreal() {
        // Exreal (Figure 2a): rows (1, p1*h1*i1) and (2, p2*h2*i2).
        let db = figure1_db();
        let rows = rows_for(
            &db,
            &[("1", &["p1", "h1", "i1"]), ("2", &["p2", "h2", "i2"])],
        );
        let qs = find_consistent_queries(&rows, &RevOptions::default());
        assert_eq!(qs.len(), 1);
        let qreal = parse_cq(
            "Q(id) :- Person(id, n, a), Hobbies(id, 'Dance', w1), Interests(id, 'Music', w2)",
            db.schema(),
        )
        .unwrap();
        assert_eq!(canonical_key(&qs[0]), canonical_key(&qreal));
        assert!(qs[0].is_connected());
    }

    #[test]
    fn recovers_qfalse1_from_exfalse1() {
        // Exfalse1 (Figure 2b): rows (1, p1*h4*i1) and (2, p2*h5*i2).
        let db = figure1_db();
        let rows = rows_for(
            &db,
            &[("1", &["p1", "h4", "i1"]), ("2", &["p2", "h5", "i2"])],
        );
        let qs = find_consistent_queries(&rows, &RevOptions::default());
        assert_eq!(qs.len(), 1);
        let qfalse1 = parse_cq(
            "Q(id) :- Person(id, n, a), Hobbies(id, 'Trips', w1), Interests(id, 'Music', w2)",
            db.schema(),
        )
        .unwrap();
        assert_eq!(canonical_key(&qs[0]), canonical_key(&qfalse1));
    }

    #[test]
    fn frontier_queries_are_consistent_by_evaluation() {
        // O ⊆_K Q(I): evaluate every frontier query on the database and
        // check the example's monomials are produced.
        let db = figure1_db();
        let rows = rows_for(
            &db,
            &[("1", &["p1", "h1", "i1"]), ("2", &["p2", "h2", "i2"])],
        );
        let qs = find_consistent_queries(&rows, &RevOptions::default());
        for q in &qs {
            let out = eval_cq(&db, q);
            for (output, annots) in [("1", ["p1", "h1", "i1"]), ("2", ["p2", "h2", "i2"])] {
                let m =
                    Monomial::from_annots(annots.iter().map(|a| db.annotations().get(a).unwrap()));
                assert!(
                    out.provenance(&Tuple::parse(&[output])).coefficient(&m) >= 1,
                    "query {} does not derive row {output}",
                    q.display(db.schema())
                );
            }
        }
    }

    #[test]
    fn mismatched_signatures_yield_no_cq() {
        let db = figure1_db();
        let rows = rows_for(&db, &[("1", &["p1", "h1"]), ("2", &["p2", "i2"])]);
        assert!(find_consistent_queries(&rows, &RevOptions::default()).is_empty());
    }

    #[test]
    fn disconnected_concretization_yields_disconnected_query() {
        // Row 1 uses h3 (pid 4) with p1 (pid 1): the Hobbies atom shares no
        // vector with Person, so the query is disconnected.
        let db = figure1_db();
        let rows = rows_for(&db, &[("1", &["p1", "h3"]), ("2", &["p2", "h2"])]);
        let all = find_consistent_queries(&rows, &RevOptions::default());
        assert_eq!(all.len(), 1);
        assert!(!all[0].is_connected());
        let connected_only = find_consistent_queries(
            &rows,
            &RevOptions {
                connected_only: true,
                ..Default::default()
            },
        );
        assert!(connected_only.is_empty());
    }

    #[test]
    fn head_without_body_witness_fails() {
        // Outputs (10) and (20) but no tuple column carries 10/20: no
        // consistent query.
        let db = figure1_db();
        let rows = rows_for(&db, &[("10", &["p1"]), ("20", &["p2"])]);
        assert!(find_consistent_queries(&rows, &RevOptions::default()).is_empty());
    }

    #[test]
    fn single_row_yields_ground_query() {
        let db = figure1_db();
        let rows = rows_for(&db, &[("1", &["p1", "h1"])]);
        let qs = find_consistent_queries(&rows, &RevOptions::default());
        assert_eq!(qs.len(), 1);
        assert!(!qs[0].has_variable());
    }

    #[test]
    fn why_semiring_expands_repeats() {
        // Under Why(X), the monomial {t} of a row produced by a self-join
        // query R(x,y),R(y,x) has support {t}; expansion to degree 2 must
        // recover a two-atom query.
        let mut db = Database::new();
        let r = db.add_relation("R", &["a", "b"]);
        db.insert_str(r, "t1", &["1", "1"]);
        db.insert_str(r, "t2", &["2", "2"]);
        db.build_indexes();
        let rows = rows_for(&db, &[("1", &["t1"]), ("2", &["t2"])]);
        let opts = RevOptions {
            semiring: provabs_semiring::SemiringKind::Why,
            max_expansion_extra: 1,
            ..Default::default()
        };
        let qs = find_consistent_queries(&rows, &opts);
        // Expect both the 1-atom query Q(x) :- R(x,x) and 2-atom expansions.
        assert!(qs.iter().any(|q| q.body.len() == 1));
        assert!(qs.iter().any(|q| q.body.len() == 2));
    }

    #[test]
    fn self_join_alignments_generate_multiple_candidates() {
        // Two R-tuples per row; swapping the alignment changes the vectors.
        let mut db = Database::new();
        let r = db.add_relation("R", &["a", "b"]);
        db.insert_str(r, "t1", &["1", "5"]);
        db.insert_str(r, "t2", &["5", "9"]);
        db.insert_str(r, "t3", &["2", "6"]);
        db.insert_str(r, "t4", &["6", "9"]);
        db.build_indexes();
        // Rows: (1, t1*t2), (2, t3*t4): chain query Q(x) :- R(x,y), R(y, 9).
        let rows = rows_for(&db, &[("1", &["t1", "t2"]), ("2", &["t3", "t4"])]);
        let qs = find_consistent_queries(&rows, &RevOptions::default());
        // The straight alignment gives the chain; the crossed alignment has
        // no head witness for the varying output, so exactly one query.
        assert_eq!(qs.len(), 1);
        assert!(qs[0].is_connected());
        assert_eq!(qs[0].body.len(), 2);
    }
}
