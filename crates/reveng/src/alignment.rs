//! Alignments between the annotation occurrences of K-example rows.
//!
//! A consistent CQ must have, for every row, a derivation whose atom→tuple
//! image matches the row's monomial; the derivations of all rows therefore
//! induce a relation-respecting bijection between the occurrences of the
//! first row (the "atom slots") and the occurrences of every other row.
//! This module enumerates those bijections — the generalization of [23]'s
//! bipartite matchings between the first two rows to `n` rows.

use provabs_relational::{ConcreteRow, RelId};
use std::collections::HashMap;

/// An alignment: for every row, `per_row[j][slot]` is the index of the
/// occurrence of row `j` assigned to atom slot `slot`. Row 0 is the
/// identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Per-row slot assignments.
    pub per_row: Vec<Vec<usize>>,
}

/// Groups occurrence indexes by relation.
fn relation_groups(row: &ConcreteRow) -> HashMap<RelId, Vec<usize>> {
    let mut m: HashMap<RelId, Vec<usize>> = HashMap::new();
    for (i, (_, rel, _)) in row.occurrences.iter().enumerate() {
        m.entry(*rel).or_default().push(i);
    }
    m
}

/// Whether all rows have the same relation-occurrence signature (same
/// relations with the same multiplicities). A necessary condition for any
/// alignment — and hence any consistent CQ — to exist.
pub fn rows_alignable(rows: &[ConcreteRow]) -> bool {
    let Some(first) = rows.first() else {
        return false;
    };
    let sig0 = relation_groups(first);
    rows.iter().skip(1).all(|r| {
        let sig = relation_groups(r);
        sig.len() == sig0.len()
            && sig0
                .iter()
                .all(|(rel, g)| sig.get(rel).is_some_and(|h| h.len() == g.len()))
    })
}

/// Enumerates every alignment of `rows`, invoking `visit` for each, up to
/// `max_alignments` total. Returns the number of alignments visited, or
/// `None` if the cap was hit (enumeration incomplete).
pub fn for_each_alignment(
    rows: &[ConcreteRow],
    max_alignments: usize,
    mut visit: impl FnMut(&Alignment),
) -> Option<usize> {
    if rows.is_empty() || !rows_alignable(rows) {
        return Some(0);
    }
    let n_slots = rows[0].occurrences.len();
    let mut per_row: Vec<Vec<usize>> = vec![vec![0; n_slots]; rows.len()];
    per_row[0] = (0..n_slots).collect();
    // Per row > 0, the per-relation permutation choices.
    let groups0 = relation_groups(&rows[0]);
    let mut count = 0usize;
    let complete = assign_row(
        rows,
        &groups0,
        1,
        &mut per_row,
        &mut count,
        max_alignments,
        &mut visit,
    );
    complete.then_some(count)
}

/// Recursively fixes the alignment of `row_idx..`; returns false once the
/// cap is exceeded.
fn assign_row(
    rows: &[ConcreteRow],
    groups0: &HashMap<RelId, Vec<usize>>,
    row_idx: usize,
    per_row: &mut Vec<Vec<usize>>,
    count: &mut usize,
    max: usize,
    visit: &mut impl FnMut(&Alignment),
) -> bool {
    if row_idx == rows.len() {
        if *count >= max {
            return false;
        }
        *count += 1;
        visit(&Alignment {
            per_row: per_row.clone(),
        });
        return true;
    }
    let groups_j = relation_groups(&rows[row_idx]);
    // Deterministic relation order.
    let mut rels: Vec<RelId> = groups0.keys().copied().collect();
    rels.sort_unstable();
    let slot_groups: Vec<&Vec<usize>> = rels.iter().map(|r| &groups0[r]).collect();
    let occ_groups: Vec<&Vec<usize>> = rels.iter().map(|r| &groups_j[r]).collect();
    permute_relations(
        rows,
        groups0,
        row_idx,
        &slot_groups,
        &occ_groups,
        0,
        per_row,
        count,
        max,
        visit,
    )
}

#[allow(clippy::too_many_arguments)]
fn permute_relations(
    rows: &[ConcreteRow],
    groups0: &HashMap<RelId, Vec<usize>>,
    row_idx: usize,
    slot_groups: &[&Vec<usize>],
    occ_groups: &[&Vec<usize>],
    g: usize,
    per_row: &mut Vec<Vec<usize>>,
    count: &mut usize,
    max: usize,
    visit: &mut impl FnMut(&Alignment),
) -> bool {
    if g == slot_groups.len() {
        return assign_row(rows, groups0, row_idx + 1, per_row, count, max, visit);
    }
    let slots = slot_groups[g];
    let occs = occ_groups[g];
    let mut perm: Vec<usize> = occs.clone();
    permute_rec(&mut perm, 0, &mut |p| {
        for (si, &slot) in slots.iter().enumerate() {
            per_row[row_idx][slot] = p[si];
        }
        permute_relations(
            rows,
            groups0,
            row_idx,
            slot_groups,
            occ_groups,
            g + 1,
            per_row,
            count,
            max,
            visit,
        )
    })
}

fn permute_rec(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize]) -> bool) -> bool {
    if k == v.len() {
        return f(v);
    }
    for i in k..v.len() {
        v.swap(k, i);
        if !permute_rec(v, k + 1, f) {
            v.swap(k, i);
            return false;
        }
        v.swap(k, i);
    }
    true
}

/// Enumerates the degree-`d` expansions of a row whose occurrence list is a
/// *support set* (each occurrence exactly once): every way of assigning
/// multiplicities ≥ 1 summing to `d`. Used for the exponent-dropping
/// semirings (`Why(X)`, `Trio(X)`, `PosBool(X)`), where a query atom may map
/// repeatedly onto the same tuple (Table 4, red cell: "expanding the
/// provenance as much as needed").
pub fn expansions_of_row(row: &ConcreteRow, d: usize) -> Vec<ConcreteRow> {
    let s = row.occurrences.len();
    if d < s || s == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut mults = vec![1usize; s];
    distribute(d - s, 0, &mut mults, &mut |m| {
        let mut occs = Vec::with_capacity(d);
        for (i, &mult) in m.iter().enumerate() {
            for _ in 0..mult {
                occs.push(row.occurrences[i].clone());
            }
        }
        out.push(ConcreteRow {
            output: row.output.clone(),
            occurrences: occs,
        });
    });
    out
}

fn distribute(extra: usize, i: usize, mults: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
    if i == mults.len() - 1 {
        mults[i] += extra;
        f(mults);
        mults[i] -= extra;
        return;
    }
    for take in 0..=extra {
        mults[i] += take;
        distribute(extra - take, i + 1, mults, f);
        mults[i] -= take;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provabs_relational::Tuple;
    use provabs_semiring::AnnotId;

    fn row(rels: &[u16]) -> ConcreteRow {
        ConcreteRow {
            output: Tuple::parse(&["1"]),
            occurrences: rels
                .iter()
                .enumerate()
                .map(|(i, &r)| (AnnotId(i as u32), RelId(r), Tuple::parse(&[&i.to_string()])))
                .collect(),
        }
    }

    #[test]
    fn alignable_checks_signature() {
        assert!(rows_alignable(&[row(&[0, 1, 2]), row(&[0, 1, 2])]));
        assert!(rows_alignable(&[row(&[0, 0, 1]), row(&[1, 0, 0])]));
        assert!(!rows_alignable(&[row(&[0, 1]), row(&[0, 0])]));
        assert!(!rows_alignable(&[row(&[0]), row(&[0, 0])]));
        assert!(!rows_alignable(&[]));
    }

    #[test]
    fn distinct_relations_have_unique_alignment() {
        let rows = vec![row(&[0, 1, 2]), row(&[0, 1, 2])];
        let mut seen = 0;
        let n = for_each_alignment(&rows, 100, |_| seen += 1).unwrap();
        assert_eq!(n, 1);
        assert_eq!(seen, 1);
    }

    #[test]
    fn self_joins_multiply_alignments() {
        // Two rows, each with 3 occurrences of the same relation: 3! = 6.
        let rows = vec![row(&[7, 7, 7]), row(&[7, 7, 7])];
        let n = for_each_alignment(&rows, 100, |_| {}).unwrap();
        assert_eq!(n, 6);
        // Three rows: 6 * 6 = 36.
        let rows3 = vec![row(&[7, 7, 7]), row(&[7, 7, 7]), row(&[7, 7, 7])];
        let n3 = for_each_alignment(&rows3, 1000, |_| {}).unwrap();
        assert_eq!(n3, 36);
    }

    #[test]
    fn cap_stops_enumeration() {
        let rows = vec![row(&[7, 7, 7]), row(&[7, 7, 7])];
        let mut seen = 0;
        let n = for_each_alignment(&rows, 2, |_| seen += 1);
        assert_eq!(n, None);
        assert_eq!(seen, 2);
    }

    #[test]
    fn alignment_row0_is_identity() {
        let rows = vec![row(&[0, 1]), row(&[1, 0])];
        let mut alignments = Vec::new();
        for_each_alignment(&rows, 10, |a| alignments.push(a.clone())).unwrap();
        assert_eq!(alignments.len(), 1);
        assert_eq!(alignments[0].per_row[0], vec![0, 1]);
        // Row 1's occurrence of relation 0 is at index 1.
        assert_eq!(alignments[0].per_row[1], vec![1, 0]);
    }

    #[test]
    fn expansions_enumerate_compositions() {
        let r = row(&[0, 1]);
        // degree 2 = support: single expansion.
        assert_eq!(expansions_of_row(&r, 2).len(), 1);
        // degree 3: one extra unit on either occurrence: 2 expansions.
        let e3 = expansions_of_row(&r, 3);
        assert_eq!(e3.len(), 2);
        assert!(e3.iter().all(|x| x.occurrences.len() == 3));
        // degree below support: none.
        assert!(expansions_of_row(&r, 1).is_empty());
    }
}
