//! Connected inclusion-minimal (CIM) queries — Def. 3.10.

use crate::containment::{contained_in, ContainmentMode};
use provabs_relational::{Cq, RelId};

/// Sort key under which two queries can possibly be related by a bijective
/// containment: the multiset of body relations (a bijective homomorphism
/// preserves it exactly).
fn relation_signature(q: &Cq) -> Vec<RelId> {
    let mut v: Vec<RelId> = q.body.iter().map(|a| a.rel).collect();
    v.sort_unstable();
    v
}

/// Keeps one representative per equivalence class, then removes every query
/// that strictly contains another (Def. 3.10's minimality: `Q` is minimal if
/// no consistent `Q' ⊊_K Q` exists; with a frontier as input, the frontier's
/// minimal elements are the minimal consistent queries).
///
/// For the bijective order (`N[X]`/`B[X]`) comparability requires equal
/// relation multisets, so the quadratic comparison runs within signature
/// groups only.
pub fn minimal_queries(queries: &[Cq], mode: ContainmentMode) -> Vec<Cq> {
    if mode == ContainmentMode::Bijective {
        let mut groups: std::collections::BTreeMap<Vec<RelId>, Vec<&Cq>> = Default::default();
        for q in queries {
            groups.entry(relation_signature(q)).or_default().push(q);
        }
        return groups
            .into_values()
            .flat_map(|group| minimal_within(&group, mode))
            .collect();
    }
    let refs: Vec<&Cq> = queries.iter().collect();
    minimal_within(&refs, mode)
}

fn minimal_within(queries: &[&Cq], mode: ContainmentMode) -> Vec<Cq> {
    // Deduplicate by equivalence (the frontier is already deduplicated by
    // isomorphism, which equals equivalence for Bijective mode; Classical
    // mode can identify more queries).
    let mut reps: Vec<Cq> = Vec::new();
    for q in queries {
        if !reps
            .iter()
            .any(|r| contained_in(r, q, mode) && contained_in(q, r, mode))
        {
            reps.push((*q).clone());
        }
    }
    reps.iter()
        .filter(|q| {
            !reps
                .iter()
                .any(|other| contained_in(other, q, mode) && !contained_in(q, other, mode))
        })
        .cloned()
        .collect()
}

/// Extracts the CIM queries from a consistent-query frontier: the minimal
/// elements that are connected.
///
/// Note the order of operations follows Def. 3.10: minimality quantifies
/// over *all* consistent queries (connected or not), so disconnected
/// frontier queries participate in the minimality filter and only then is
/// connectivity applied.
pub fn cim_queries(frontier: &[Cq], mode: ContainmentMode) -> Vec<Cq> {
    minimal_queries(frontier, mode)
        .into_iter()
        .filter(Cq::is_connected)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use provabs_relational::{parse_cq, Schema};

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation("Person", &["pid", "name", "age"]);
        s.add_relation("Hobbies", &["pid", "hobby", "source"]);
        s.add_relation("Interests", &["pid", "interest", "source"]);
        s
    }

    #[test]
    fn example_3_13_two_cim_queries() {
        // The three connected consistent queries of Table 3; the general one
        // is subsumed by Qreal, leaving privacy 2.
        let s = schema();
        let qreal = parse_cq(
            "Q(a) :- Person(a, b, c), Hobbies(a, 'Dance', d), Interests(a, 'Music', e)",
            &s,
        )
        .unwrap();
        let qfalse1 = parse_cq(
            "Q(a) :- Person(a, b, c), Hobbies(a, 'Trips', d), Interests(a, 'Music', e)",
            &s,
        )
        .unwrap();
        let qgeneral = parse_cq(
            "Q(a) :- Person(a, b, c), Hobbies(a, d, e), Interests(a, 'Music', f)",
            &s,
        )
        .unwrap();
        let cim = cim_queries(
            &[qreal.clone(), qfalse1.clone(), qgeneral],
            ContainmentMode::Bijective,
        );
        assert_eq!(cim.len(), 2);
        assert!(cim.contains(&qreal));
        assert!(cim.contains(&qfalse1));
    }

    #[test]
    fn disconnected_minimal_blocks_connected_general() {
        // A disconnected most-specific query makes its connected
        // generalization non-minimal (Def. 3.10 quantifies over all
        // consistent queries).
        let s = schema();
        let specific = parse_cq(
            "Q(a) :- Person(a, b, c), Hobbies(d, 'Dance', 'Facebook')",
            &s,
        )
        .unwrap();
        assert!(!specific.is_connected());
        let general = parse_cq("Q(a) :- Person(a, b, c), Hobbies(d, 'Dance', e)", &s).unwrap();
        let cim = cim_queries(&[specific, general], ContainmentMode::Bijective);
        assert!(cim.is_empty());
    }

    #[test]
    fn equivalent_duplicates_collapse() {
        let s = schema();
        let q1 = parse_cq("Q(x) :- Hobbies(x, h, w)", &s).unwrap();
        let q2 = parse_cq("Q(y) :- Hobbies(y, a, b)", &s).unwrap();
        let cim = cim_queries(&[q1, q2], ContainmentMode::Bijective);
        assert_eq!(cim.len(), 1);
    }

    #[test]
    fn minimal_keeps_incomparable_queries() {
        let s = schema();
        let q1 = parse_cq("Q(x) :- Hobbies(x, 'Dance', w)", &s).unwrap();
        let q2 = parse_cq("Q(x) :- Hobbies(x, 'Trips', w)", &s).unwrap();
        let min = minimal_queries(&[q1, q2], ContainmentMode::Bijective);
        assert_eq!(min.len(), 2);
    }
}
