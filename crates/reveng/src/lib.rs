//! Query reverse-engineering from provenance examples.
//!
//! This crate adapts the `FindConsistentQuery` machinery of Deutch & Gilad
//! (*"Reverse-engineering conjunctive queries from provenance examples"*,
//! EDBT 2019 — reference \[23\] of the paper) as required by §4.2 of *"On
//! Optimizing the Trade-off between Privacy and Utility in Data Provenance"*
//! (SIGMOD 2021):
//!
//! * [`find_consistent_queries`] enumerates the **candidate frontier** of
//!   consistent queries w.r.t. a concrete K-example — the most-specific
//!   consistent query of every *alignment* (relation-respecting bijection
//!   between the annotation occurrences of the rows). Every consistent query
//!   contains some frontier query, so the frontier suffices for counting CIM
//!   queries and soundly gates Algorithm 1's thresholds.
//! * [`containment`] decides `Q1 ⊆_K Q2` per semiring (classical
//!   Chandra–Merlin, and the bijective/surjective homomorphism variants of
//!   annotated containment, Green ICDT 2009).
//! * [`cim_queries`] extracts the connected inclusion-minimal queries
//!   (Def. 3.10) from a frontier.
//! * [`enumerate_consistent_queries`] exhaustively enumerates *all*
//!   consistent queries (up to equivalence) on small inputs — used to
//!   reproduce Table 3 of the paper.
//! * [`ucq`] extends the machinery to unions of conjunctive queries
//!   (Table 4, orange/green cells) and aggregate heads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alignment;
mod canonical;
mod cim;
pub mod containment;
mod enumerate;
mod most_specific;
pub mod ucq;

pub use alignment::{expansions_of_row, Alignment};
pub use canonical::{canonical_cq, canonical_key};
pub use cim::{cim_queries, minimal_queries};
pub use containment::{contained_in, equivalent, strictly_contained, ContainmentMode};
pub use enumerate::enumerate_consistent_queries;
pub use most_specific::{find_consistent_queries, RevOptions};
